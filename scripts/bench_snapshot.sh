#!/usr/bin/env bash
# Regenerates the committed bench baselines (bench/baselines/BENCH_*.json).
#
# Each covered bench runs with fixed seeds and writes its final metrics
# snapshot (counters/gauges/histograms, deterministic key order) via
# --metrics-out. The simulation is deterministic, so a diff in a baseline is
# a real behaviour change — review it like code. Transient exports keep the
# gitignored *.metrics.json suffix; these baselines are named BENCH_*.json
# precisely so they CAN be committed.
#
# Usage: scripts/bench_snapshot.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT=bench/baselines
mkdir -p "$OUT"

run() {
  local name="$1"
  shift
  echo "== $name $* =="
  "$BUILD/bench/$name" "$@" --metrics-out "$OUT/BENCH_${name#bench_}.json" \
    > /dev/null
}

run bench_migration_cost
run bench_forwarding
run bench_soak --quick --seed 1

echo "baselines written to $OUT/:"
ls -l "$OUT"
