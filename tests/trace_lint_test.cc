// Trace validation ("lint") — the CI gate for the observability layer.
//
// Two real runs are exported and checked structurally: a traced migration
// demo, and a seeded fault case (a dropped reply forcing retransmission +
// dedup). For each export:
//   * the Chrome JSON parses,
//   * every 'b' event has a matching 'e' (same id, exactly once),
//   * every flow pair resolves — each flow-start ('s') has a flow-finish
//     ('f') with the same flow id and both bind to real events,
//   * every metric name in the final snapshot matches the
//     `subsystem.noun.verb` convention.
// A final sweep greps src/ for counter()/gauge()/histogram() registrations
// so new metrics cannot drift from the convention unnoticed.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "core/sprite.h"
#include "proc/script.h"
#include "proc/table.h"
#include "rpc/rpc.h"
#include "sim/fault.h"
#include "trace/trace.h"
#include "workload/soak.h"

namespace sprite::trace {
namespace {

using core::SpriteCluster;
using proc::ScriptBuilder;
using sim::Time;

// ---------------------------------------------------------------------------
// A tiny recursive-descent JSON parser producing just enough structure to
// lint trace events (objects with string/number fields, arrays). No external
// dependency; rejects malformed input by returning nullopt-like failure.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* get(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  std::string get_str(const std::string& key) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : "";
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JsonValue::Kind::kString; return string(out.str);
      case 't': out.kind = JsonValue::Kind::kBool; return literal("true");
      case 'f': out.kind = JsonValue::Kind::kBool; return literal("false");
      case 'n': out.kind = JsonValue::Kind::kNull; return literal("null");
      default: out.kind = JsonValue::Kind::kNumber; return number(out.num);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return false;
            pos_ += 4;  // keep the escape opaque; lint only needs names
            out.push_back('?');
            break;
          default: out.push_back(s_[pos_]);
        }
        ++pos_;
        continue;
      }
      out.push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    out = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// The structural lint itself.
// ---------------------------------------------------------------------------

// `subsystem.noun.verb`: lowercase dotted segments, at least two dots, each
// segment [a-z0-9_]+.
bool metric_name_ok(const std::string& name) {
  static const std::regex re("^[a-z0-9_]+(\\.[a-z0-9_]+){2,}$");
  return std::regex_match(name, re);
}

void lint_chrome_json(const Registry& tr) {
  const std::string json = tr.chrome_json();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << "chrome_json does not parse";
  const JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  // 'b'/'e' pairing, keyed by (span) id within (pid, cat-thread) is global
  // here: span ids are globally unique, so pair on id alone.
  std::map<std::string, int> open;  // id -> balance
  std::map<std::string, int> flow_start;
  std::map<std::string, int> flow_finish;
  std::map<std::string, int> begins_at;  // "pid/tid/ts" -> count, flow anchors
  for (const JsonValue& e : events->arr) {
    const std::string ph = e.get_str("ph");
    if (ph == "b") {
      ++open[e.get_str("id")];
      std::ostringstream key;
      key << e.get("pid")->num << "/" << e.get("tid")->num << "/"
          << e.get("ts")->num;
      ++begins_at[key.str()];
    } else if (ph == "e") {
      --open[e.get_str("id")];
    } else if (ph == "s" || ph == "f") {
      ASSERT_NE(e.get("id"), nullptr);
      (ph == "s" ? flow_start : flow_finish)[e.get_str("id")]++;
      // Flow events bind to the event at (pid, tid, ts): one must exist.
      std::ostringstream key;
      key << e.get("pid")->num << "/" << e.get("tid")->num << "/"
          << e.get("ts")->num;
      EXPECT_GE(begins_at[key.str()], 1)
          << "flow '" << ph << "' id=" << e.get_str("id")
          << " does not bind to any span begin";
    }
  }
  for (const auto& [id, bal] : open)
    EXPECT_EQ(bal, 0) << "unbalanced b/e for span id " << id;
  for (const auto& [id, n] : flow_start)
    EXPECT_EQ(flow_finish[id], n) << "flow start without finish, id " << id;
  for (const auto& [id, n] : flow_finish)
    EXPECT_EQ(flow_start[id], n) << "flow finish without start, id " << id;
}

void lint_metric_names(const Registry& tr) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(tr.metrics_json()).parse(root))
      << "metrics_json does not parse";
  int seen = 0;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* s = root.get(section);
    ASSERT_NE(s, nullptr) << section;
    ASSERT_EQ(s->kind, JsonValue::Kind::kArray) << section;
    for (const JsonValue& m : s->arr) {
      const std::string metric = m.get_str("name");
      EXPECT_TRUE(metric_name_ok(metric))
          << "metric '" << metric << "' violates subsystem.noun.verb";
      ++seen;
    }
  }
  EXPECT_GT(seen, 0);
}

// Demo: a traced 3-host migration (the acceptance scenario).
TEST(TraceLintTest, TracedMigrationDemoExportIsWellFormed) {
  SpriteCluster cluster({.workstations = 3, .seed = 11,
                         .enable_load_sharing = false});
  Registry& tr = cluster.sim().trace();
  tr.set_tracing(true);
  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 64, true})
      .compute(Time::sec(2))
      .exit(0);
  cluster.install_program("/bin/work", b.image(8, 64, 2));
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/work", {});
  cluster.run_for(Time::msec(500));
  ASSERT_TRUE(cluster.migrate(pid, cluster.workstation(1)).is_ok());
  cluster.wait(pid);
  // Drain in-flight RPCs (exit notifications to home) so the export is a
  // quiesced run: every span begun has had the chance to end.
  cluster.run_for(Time::sec(2));

  ASSERT_FALSE(tr.events().empty());
  lint_chrome_json(tr);
  lint_metric_names(tr);
}

// Seeded fault case: a dropped reply causes retransmission + dedup; spans
// still pair and flows still resolve (no duplicate or orphaned children).
TEST(TraceLintTest, SeededFaultCaseExportIsWellFormed) {
  SpriteCluster cluster({.workstations = 3, .seed = 23,
                         .enable_load_sharing = false});
  Registry& tr = cluster.sim().trace();
  tr.set_tracing(true);

  sim::FaultPlan plan(cluster.sim(), cluster.kernel().net());
  plan.drop_message(rpc::RpcNode::match_reply(cluster.workstation(0)), 1);
  plan.arm({});

  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 32, true})
      .compute(Time::sec(1))
      .exit(0);
  cluster.install_program("/bin/work", b.image(8, 32, 2));
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/work", {});
  cluster.run_for(Time::msec(500));
  ASSERT_TRUE(cluster.migrate(pid, cluster.workstation(1)).is_ok());
  cluster.wait(pid);
  cluster.run_for(Time::sec(2));  // quiesce before export

  lint_chrome_json(tr);
  lint_metric_names(tr);
}

// Source sweep: every counter()/gauge()/histogram() registration in src/
// uses a literal name matching the convention. Catches drift at review
// speed instead of at dashboard-breakage speed.
TEST(TraceLintTest, RegisteredMetricNamesFollowConvention) {
  const std::filesystem::path src =
      std::filesystem::path(SPRITE_SOURCE_DIR) / "src";
  ASSERT_TRUE(std::filesystem::exists(src));
  static const std::regex reg(
      "(?:counter|gauge|histogram)\\(\\s*\"([^\"]+)\"");
  int checked = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cc" && ext != ".h") continue;
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    for (std::sregex_iterator it(text.begin(), text.end(), reg), end;
         it != end; ++it) {
      const std::string name = (*it)[1].str();
      EXPECT_TRUE(metric_name_ok(name))
          << entry.path().string() << ": metric '" << name
          << "' violates subsystem.noun.verb";
      ++checked;
    }
  }
  EXPECT_GT(checked, 50) << "sweep found suspiciously few registrations";
}

// Checkpoint metric inventory: every ckpt.* name the subsystem documents
// must actually be registered (and lint-clean) after a checkpoint +
// crash-recovery run, and the flight recorder must hold the capture and
// restart instants. Catches silent renames that would orphan dashboards.
TEST(TraceLintTest, CheckpointMetricsRegisteredAndFlightNoted) {
  SpriteCluster cluster({.workstations = 3, .seed = 7,
                         .enable_load_sharing = false});
  Registry& tr = cluster.sim().trace();
  tr.set_tracing(true);
  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 32, true})
      .compute(Time::sec(20))
      .exit(0);
  cluster.install_program("/bin/ckwork", b.image(8, 32, 2));
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/ckwork", {});
  cluster.run_for(Time::msec(500));
  ASSERT_TRUE(cluster.migrate(pid, cluster.workstation(1)).is_ok());
  cluster.run_for(Time::msec(500));

  auto& runner = cluster.host(cluster.workstation(1));
  auto pcb = runner.procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  bool ck_done = false;
  runner.ckpt().checkpoint(pcb, [&](util::Status s) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    ck_done = true;
  });
  cluster.kernel().run_until_done([&] { return ck_done; });
  cluster.run_for(Time::msec(200));
  cluster.kernel().crash_host(cluster.workstation(1));
  cluster.run_for(Time::sec(60));  // down verdict + restart + completion

  // Every documented ckpt.* metric is present in the export.
  JsonValue root;
  ASSERT_TRUE(JsonParser(tr.metrics_json()).parse(root));
  std::map<std::string, bool> want = {
      {"ckpt.capture.completed", false}, {"ckpt.capture.failed", false},
      {"ckpt.capture.full_base", false}, {"ckpt.capture.incremental", false},
      {"ckpt.capture.declined", false},  {"ckpt.page.captured", false},
      {"ckpt.restart.completed", false}, {"ckpt.restart.failed", false},
      {"ckpt.page.restored", false},     {"ckpt.chain.compacted", false},
      {"ckpt.auto.triggered", false},    {"ckpt.depart.completed", false},
      {"ckpt.stale.reaped", false},      {"ckpt.register.received", false},
      {"ckpt.capture.total_ms", false},  {"ckpt.restart.total_ms", false},
  };
  for (const char* section : {"counters", "histograms"}) {
    const JsonValue* s = root.get(section);
    ASSERT_NE(s, nullptr);
    for (const JsonValue& m : s->arr) {
      auto it = want.find(m.get_str("name"));
      if (it != want.end()) it->second = true;
    }
  }
  for (const auto& [name, seen] : want)
    EXPECT_TRUE(seen) << "ckpt metric not registered: " << name;

  // The always-on flight recorder holds the capture and restart events.
  bool captured = false, restarted = false;
  for (const auto& n : tr.flight().tail(4096)) {
    const std::string cat = n.cat;
    if (cat == "ckpt.capture") captured = true;
    if (cat == "ckpt.restart") restarted = true;
  }
  EXPECT_TRUE(captured) << "no ckpt.capture flight note";
  EXPECT_TRUE(restarted) << "no ckpt.restart flight note";

  lint_chrome_json(tr);
  lint_metric_names(tr);
}

// Workload/soak metric inventory: every workload.* and soak.* name the
// subsystem documents must be registered (and lint-clean) after a short
// engine-driven run on the soak harness.
TEST(TraceLintTest, WorkloadAndSoakMetricsRegistered) {
  wl::SoakOptions opts;
  opts.workstations = 4;
  opts.seed = 3;
  opts.sessions.users = 8;
  opts.sessions.horizon = Time::minutes(40);
  opts.faults = false;  // keep the lint run quick; fault metrics have their
                        // own inventory coverage
  wl::SoakHarness harness(opts);
  harness.run();

  JsonValue root;
  ASSERT_TRUE(
      JsonParser(harness.cluster().sim().trace().metrics_json()).parse(root));
  std::map<std::string, bool> want = {
      {"workload.event.applied", false},  {"workload.event.skipped", false},
      {"workload.session.begun", false},  {"workload.session.ended", false},
      {"workload.session.active", false}, {"workload.keystroke.applied", false},
      {"workload.job.submitted", false},  {"workload.job.launched", false},
      {"workload.job.placed", false},     {"workload.job.finished", false},
      {"workload.job.crashed", false},    {"workload.job.dropped", false},
      {"workload.job.queued", false},     {"workload.job.running", false},
      {"workload.job.backlog", false},    {"workload.storm.begun", false},
      {"workload.storm.finished", false}, {"workload.storm.crashed", false},
      {"proc.cpu.foreign_us", false},     {"soak.residency.foreign", false},
      {"soak.util.recovered", false},     {"ls.eviction.latency_ms", false},
  };
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* s = root.get(section);
    ASSERT_NE(s, nullptr);
    for (const JsonValue& m : s->arr) {
      auto it = want.find(m.get_str("name"));
      if (it != want.end()) it->second = true;
    }
  }
  for (const auto& [name, seen] : want)
    EXPECT_TRUE(seen) << "workload/soak metric not registered: " << name;

  lint_metric_names(harness.cluster().sim().trace());
}

}  // namespace
}  // namespace sprite::trace
