// Unit tests for util: Status/Result, Rng, stats, Table.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace sprite::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.err(), Err::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s(Err::kNoEnt, "/a/b");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "NOENT: /a/b");
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.err(), Err::kOk);
}

TEST(Result, HoldsError) {
  Result<int> r(Err::kBadF, "fd 3");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.err(), Err::kBadF);
  EXPECT_EQ(r.status().message(), "fd 3");
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformIntStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(3);
  bool seen[11] = {};
  for (int i = 0; i < 10000; ++i) seen[r.uniform_int(0, 10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(11);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(r.exponential(2.5));
  EXPECT_NEAR(acc.mean(), 2.5, 0.05);
}

TEST(Rng, HyperexponentialMatchesZhouLifetimes) {
  // Calibration used by the policy experiment (E10): mean 1.5 s with a
  // heavy tail. Mixture: p=0.96 short jobs (mean 0.5s), long jobs mean 25.5s
  // -> overall mean = .96*.5 + .04*25.5 = 1.5 s.
  Rng r(13);
  Accumulator acc;
  for (int i = 0; i < 400000; ++i)
    acc.add(r.hyperexponential(0.96, 0.5, 25.5));
  EXPECT_NEAR(acc.mean(), 1.5, 0.1);
  EXPECT_GT(acc.stddev(), 3.0);  // much heavier-tailed than exponential
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.05);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(19);
  auto idx = r.sample_indices(10, 4);
  ASSERT_EQ(idx.size(), 4u);
  for (auto i : idx) EXPECT_LT(i, 10u);
  for (std::size_t a = 0; a < idx.size(); ++a)
    for (std::size_t b = a + 1; b < idx.size(); ++b)
      EXPECT_NE(idx[a], idx[b]);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng b = a.fork();
  // Streams differ from each other and from the parent's continuation.
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Accumulator, WelfordMatchesClosedForm) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Distribution, Quantiles) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
  EXPECT_NEAR(d.median(), 50.0, 1.0);
  EXPECT_NEAR(d.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(d.mean(), 50.5, 1e-9);
}

TEST(Distribution, EmptyIsZero) {
  Distribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.median(), 0.0);
}

TEST(Histogram, BucketsAndAscii) {
  Histogram h({1.0, 10.0, 100.0});
  h.add(0.5);    // underflow
  h.add(5.0);    // [1,10)
  h.add(50.0);   // [10,100)
  h.add(500.0);  // overflow
  h.add(10.0);   // [10,100): boundary goes right
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 2);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Table, FormatsAlignedGrid) {
  Table t({"host", "load"});
  t.add_row({"ws0", Table::num(0.25)});
  t.add_row({"fileserver", Table::num(1.5)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| host       | load |"), std::string::npos);
  EXPECT_NE(s.find("| fileserver | 1.50 |"), std::string::npos);
}

}  // namespace
}  // namespace sprite::util
