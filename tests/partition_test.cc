// Network-partition matrix: the crash matrix's sibling for the failure mode
// a crash cannot model — the victim is alive but unreachable.
//
// A process migrates between two workstations while a scripted victim —
// migration source, target, the process's home machine, the file server
// holding its open stream, or migd's host — is partitioned from every other
// host at each protocol stage. In the healing variant the partition lasts
// 15 s (past the down verdict, so reintegration runs); in the never-heal
// variant it lasts to the end of the run. Either way the cluster must
// converge: no half-open migrations, no residual images, no frozen
// processes, and every down/reboot notification originating from a host
// monitor (Host::peer_crashed CHECK-fails otherwise — no ground truth).
//
// Seed sweep: SPRITE_PARTITION_SEEDS (count, default 2); CI's fault-sweep
// job raises it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"
#include "recov/monitor.h"
#include "rpc/rpc.h"
#include "sim/fault.h"
#include "util/log.h"
#include "vm/vm.h"

namespace sprite {
namespace {

using kern::Cluster;
using mig::MigStage;
using proc::Pid;
using proc::ScriptBuilder;
using proc::ScriptProgram;
using sim::FaultPlan;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Status;

fs::Bytes make_bytes(const std::string& s) {
  return fs::Bytes(s.begin(), s.end());
}

std::vector<std::uint64_t> sweep_seeds() {
  int n = 2;
  if (const char* e = std::getenv("SPRITE_PARTITION_SEEDS")) n = std::atoi(e);
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i <= std::max(1, n); ++i)
    seeds.push_back(static_cast<std::uint64_t>(i));
  return seeds;
}

// Isolates `victim` from every other host (both directions), and restores.
void set_isolated(Cluster& cluster, HostId victim, bool isolated) {
  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h) {
    if (h == victim) continue;
    cluster.net().set_link_up(victim, h, !isolated);
    cluster.net().set_link_up(h, victim, !isolated);
  }
}

enum class Victim : int { kSource, kTarget, kHome, kFileServer, kMigd };

const char* victim_name(Victim v) {
  switch (v) {
    case Victim::kSource: return "Source";
    case Victim::kTarget: return "Target";
    case Victim::kHome: return "Home";
    case Victim::kFileServer: return "FileServer";
    case Victim::kMigd: return "Migd";
  }
  return "?";
}

using MatrixParam = std::tuple<Victim, MigStage, bool, std::uint64_t>;

class PartitionMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(PartitionMatrixTest, ClusterConvergesAcrossPartition) {
  if (std::getenv("SPRITE_TEST_VERBOSE"))
    util::set_log_level(util::LogLevel::kInfo);
  const auto [victim, stage, heals, seed] = GetParam();
  Cluster cluster({.num_workstations = 4, .num_file_servers = 2, .seed = seed});
  ls::Facility facility(cluster, ls::Arch::kCentral);

  const auto wss = cluster.workstations();
  const HostId home = wss[0];
  const HostId source = wss[1];
  const HostId target = wss[2];
  const HostId file_server = cluster.file_server(1).id();
  const HostId migd = cluster.file_server(0).id();
  HostId victim_host = sim::kInvalidHost;
  switch (victim) {
    case Victim::kSource: victim_host = source; break;
    case Victim::kTarget: victim_host = target; break;
    case Victim::kHome: victim_host = home; break;
    case Victim::kFileServer: victim_host = file_server; break;
    case Victim::kMigd: victim_host = migd; break;
  }

  ASSERT_TRUE(cluster.file_server(1).fs_server()->mkdir_p("/s1").is_ok());
  ScriptBuilder b;
  b.act(proc::SysOpen{"/s1/data", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("before-"), 0};
      })
      .act(proc::Touch{vm::Segment::kHeap, 0, 64, true})
      .compute(Time::sec(10))
      .step([](ScriptProgram::Ctx& c) {
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("after"), 0};
      })
      .act(proc::SysExit{7});
  ASSERT_TRUE(
      cluster.install_program("/bin/partwork", b.image(16, 64, 4)).is_ok());

  util::Result<Pid> spawned(Err::kAgain);
  bool spawn_done = false;
  cluster.host(home).procs().spawn("/bin/partwork", {},
                                   [&](util::Result<Pid> r) {
                                     spawned = std::move(r);
                                     spawn_done = true;
                                   });
  cluster.run_until_done([&] { return spawn_done; });
  ASSERT_TRUE(spawned.is_ok()) << spawned.status().to_string();
  const Pid pid = *spawned;
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));

  {
    auto pcb = cluster.host(home).procs().find(pid);
    ASSERT_TRUE(pcb != nullptr);
    Status st(Err::kAgain);
    bool done = false;
    cluster.host(home).mig().migrate(pcb, source, [&](Status s) {
      st = s;
      done = true;
    });
    cluster.run_until_done([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  bool partition_fired = false;
  cluster.host(source).mig().add_stage_observer(
      [&, victim_host = victim_host, heals = heals](Pid p, MigStage s) {
        if (p != pid || s != stage || partition_fired) return;
        partition_fired = true;
        set_isolated(cluster, victim_host, true);
        if (heals)
          cluster.sim().after(Time::sec(15), [&cluster, victim_host] {
            set_isolated(cluster, victim_host, false);
          });
      });

  auto pcb = cluster.host(source).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  bool mig_done = false;
  cluster.host(source).mig().migrate(pcb, target,
                                     [&](Status) { mig_done = true; });

  // Long enough for suspicion to age into down verdicts (~8.5 s), the heal
  // plus reintegration when scripted, and the 10 s compute wherever the
  // process ended up.
  cluster.sim().run_until(cluster.sim().now() + Time::sec(120));

  EXPECT_TRUE(partition_fired) << "migration never reached the scripted stage";
  // Nobody actually crashed: the partition is the only fault.
  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h)
    ASSERT_FALSE(cluster.host_crashed(h));

  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h) {
    EXPECT_EQ(cluster.host(h).mig().active_migrations(), 0u)
        << "half-open migration on host " << h;
    EXPECT_EQ(cluster.host(h).mig().residual_spaces(), 0u)
        << "leaked residual image on host " << h;
    for (const auto& p : cluster.host(h).procs().local_processes())
      EXPECT_NE(p->state, proc::ProcState::kFrozen)
          << "pid " << p->pid << " frozen forever on host " << h;
  }
  EXPECT_TRUE(mig_done) << "migration neither completed nor rolled back";
  // The home record resolved: the process finished, or a down verdict
  // (false or real from home's point of view) marked it exited.
  EXPECT_FALSE(cluster.host(home).procs().home_record_alive(pid));

  if (heals) {
    // Down peers are not probed (re-detection is organic), so survivors
    // with no post-heal traffic legitimately still hold the verdict. Give
    // each one a reason to talk to the victim — a single call gets one
    // doubtful attempt against a down peer, and the same-epoch reply
    // reintegrates it.
    int pokes_pending = 0;
    for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h) {
      if (h == victim_host) continue;
      ++pokes_pending;
      cluster.host(h).rpc().call(victim_host, rpc::ServiceId::kRecov, 0,
                                 nullptr, [&pokes_pending](
                                              util::Result<rpc::Reply>) {
                                   --pokes_pending;
                                 });
    }
    cluster.run_until_done([&] { return pokes_pending == 0; });
    for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h) {
      if (h == victim_host) continue;
      EXPECT_NE(cluster.host(h).monitor().peer_state(victim_host),
                recov::PeerState::kDown)
          << "host " << h << " never reintegrated the healed victim";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PartitionMatrixTest,
    ::testing::Combine(::testing::Values(Victim::kSource, Victim::kTarget,
                                         Victim::kHome, Victim::kFileServer,
                                         Victim::kMigd),
                       ::testing::Values(MigStage::kInit, MigStage::kFreeze,
                                         MigStage::kVmTransfer,
                                         MigStage::kStreams,
                                         MigStage::kResume),
                       ::testing::Bool(),  // heals
                       ::testing::ValuesIn(sweep_seeds())),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      const char* stage = "";
      switch (std::get<1>(info.param)) {
        case MigStage::kInit: stage = "Init"; break;
        case MigStage::kFreeze: stage = "Freeze"; break;
        case MigStage::kVmTransfer: stage = "VmTransfer"; break;
        case MigStage::kStreams: stage = "Streams"; break;
        case MigStage::kResume: stage = "Resume"; break;
      }
      return std::string(victim_name(std::get<0>(info.param))) + "At" + stage +
             (std::get<2>(info.param) ? "Heals" : "NeverHeals") + "Seed" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------------
// Determinism: scripted partitions replay byte-identically per seed
// ---------------------------------------------------------------------------

std::string traced_partition_run(std::uint64_t seed) {
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1, .seed = seed});
  cluster.sim().trace().set_tracing(true);
  ls::Facility facility(cluster, ls::Arch::kCentral);
  const auto wss = cluster.workstations();

  ScriptBuilder b;
  b.act(proc::SysOpen{"/pdetfile", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("det"), 0};
      })
      .act(proc::Touch{vm::Segment::kHeap, 0, 32, true})
      .compute(Time::sec(15))
      .act(proc::SysExit{0});
  SPRITE_CHECK(
      cluster.install_program("/bin/pdetwork", b.image(16, 32, 4)).is_ok());

  FaultPlan plan(cluster.sim(), cluster.net());
  // Scripted two-sided partition mid-migration, healing at 20 s, plus a
  // one-way cut that never heals inside the window of the run.
  plan.partition({wss[1]}, {wss[0], wss[2], cluster.file_server(0).id()},
                 Time::sec(3), Time::sec(20));
  plan.cut_link(wss[3], wss[2], Time::sec(5), Time::sec(12));
  plan.arm({.crash = [&cluster](HostId h) { cluster.crash_host(h); },
            .reboot = [&cluster](HostId h) { cluster.reboot_host(h); }});

  bool spawn_done = false;
  Pid pid = proc::kInvalidPid;
  cluster.host(wss[0]).procs().spawn("/bin/pdetwork", {},
                                     [&](util::Result<Pid> r) {
                                       if (r.is_ok()) pid = *r;
                                       spawn_done = true;
                                     });
  cluster.run_until_done([&] { return spawn_done; });
  SPRITE_CHECK(pid != proc::kInvalidPid);
  cluster.sim().after(Time::sec(1), [&cluster, &wss, pid] {
    auto pcb = cluster.host(wss[0]).procs().find(pid);
    if (!pcb) return;
    cluster.host(wss[0]).mig().migrate(pcb, wss[1], [](Status) {});
  });

  cluster.sim().run_until(Time::sec(60));
  return cluster.sim().trace().chrome_json();
}

class PartitionDeterminismTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionDeterminismTest, SameSeedSamePlanIsByteIdentical) {
  const std::uint64_t seed = GetParam();
  const std::string a = traced_partition_run(seed);
  const std::string b = traced_partition_run(seed);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "partition schedule replay diverged for seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionDeterminismTest,
                         ::testing::ValuesIn(sweep_seeds()));

}  // namespace
}  // namespace sprite
