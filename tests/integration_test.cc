// Cross-module integration scenarios: competing pmakes with cooperative
// recall, a full "day in the life" of the cluster, and smaller cross-layer
// behaviours not covered by the per-module suites.
#include <gtest/gtest.h>

#include "apps/pmake.h"
#include "apps/workload.h"
#include "core/sprite.h"
#include "migration/manager.h"

namespace sprite {
namespace {

using apps::Pmake;
using apps::make_compile_graph;
using core::SpriteCluster;
using proc::ScriptBuilder;
using sim::HostId;
using sim::Time;

TEST(PmakeContentionTest, TwoBuildsShareTheClusterViaCooperativeRecall) {
  SpriteCluster cluster({.workstations = 8, .seed = 77});
  cluster.warm_up();

  auto make_build = [&](int controller_ws, int objects) {
    Pmake::Options opt;
    opt.controller = cluster.workstation(controller_ws);
    opt.max_jobs = 8;
    opt.facility = &cluster.load_sharing();
    return std::make_unique<Pmake>(
        cluster.kernel(), opt,
        make_compile_graph(objects, 4, Time::sec(3), Time::sec(1)));
  };

  auto build_a = make_build(0, 16);
  auto build_b = make_build(1, 16);
  build_a->prepare();
  build_b->prepare();

  bool done_a = false, done_b = false;
  Pmake::Result ra, rb;
  build_a->run([&](Pmake::Result r) {
    ra = r;
    done_a = true;
  });
  // B starts once A has grabbed most hosts.
  cluster.run_for(Time::sec(5));
  build_b->run([&](Pmake::Result r) {
    rb = r;
    done_b = true;
  });
  cluster.kernel().run_until_done([&] { return done_a && done_b; });

  EXPECT_EQ(ra.jobs, 17);
  EXPECT_EQ(rb.jobs, 17);
  // Both used remote hosts: the late build was not starved, because migd
  // recalled part of the early build's allocation.
  EXPECT_GE(ra.remote_jobs, 4);
  EXPECT_GE(rb.remote_jobs, 4);
  // Neither build took pathological time (serial would be ~50 s each).
  EXPECT_LT(ra.makespan.s(), 45.0);
  EXPECT_LT(rb.makespan.s(), 45.0);
}

TEST(DayInTheLifeTest, MigrationLoadSharingAndEvictionCoexist) {
  // A long mixed scenario on one cluster: users come and go, a build runs,
  // long simulations are farmed out and evicted, and at the end every piece
  // of work completed and no host holds foreign processes while its user is
  // active.
  SpriteCluster cluster({.workstations = 10,
                         .seed = 99,
                         .horizon = Time::hours(3)});
  cluster.warm_up();

  // Long simulations from workstation 0, farmed to idle hosts.
  ScriptBuilder sim_prog;
  sim_prog.act(proc::Touch{vm::Segment::kHeap, 0, 128, true})
      .compute(Time::minutes(10))
      .exit(0);
  cluster.install_program("/bin/longsim", sim_prog.image(16, 128, 4));

  std::vector<proc::Pid> sims;
  auto hosts = cluster.request_idle_hosts(cluster.workstation(0), 3);
  ASSERT_GE(hosts.size(), 2u);
  for (auto h : hosts) {
    auto pid = cluster.spawn(cluster.workstation(0), "/bin/longsim", {});
    cluster.run_for(Time::msec(100));
    ASSERT_TRUE(cluster.migrate(pid, h).is_ok());
    sims.push_back(pid);
  }

  // A build from workstation 1 competes for the remaining hosts.
  Pmake::Options opt;
  opt.controller = cluster.workstation(1);
  opt.max_jobs = 6;
  opt.facility = &cluster.load_sharing();
  Pmake build(cluster.kernel(), opt,
              make_compile_graph(12, 4, Time::sec(3), Time::sec(1)));
  build.prepare();
  bool build_done = false;
  build.run([&](Pmake::Result) { build_done = true; });

  // Meanwhile two users return at their desks (eviction of whatever landed
  // there).
  cluster.sim().after(Time::sec(20), [&] {
    cluster.host(hosts[0]).note_user_input();
  });
  cluster.sim().after(Time::sec(40), [&] {
    cluster.host(cluster.workstation(5)).note_user_input();
  });

  cluster.kernel().run_until_done([&] { return build_done; });

  // All simulations finish despite evictions.
  for (auto pid : sims) EXPECT_EQ(cluster.wait(pid), 0);

  // Owner protection held: the returned hosts carry no foreign processes.
  cluster.run_for(Time::sec(10));
  EXPECT_TRUE(
      cluster.host(hosts[0]).procs().foreign_processes().empty());
  EXPECT_TRUE(cluster.host(cluster.workstation(5))
                  .procs()
                  .foreign_processes()
                  .empty());
}

TEST(PmakeEvictionTest, BuildSurvivesAnOwnerReturningMidCompile) {
  // A compile job is running on a granted host when its owner comes back.
  // The job is evicted to its home (the pmake controller) and finishes
  // there; the build completes with every output present.
  SpriteCluster cluster({.workstations = 6, .seed = 88});
  cluster.warm_up();

  Pmake::Options opt;
  opt.controller = cluster.workstation(0);
  opt.max_jobs = 6;
  opt.facility = &cluster.load_sharing();
  Pmake build(cluster.kernel(), opt,
              make_compile_graph(10, 4, Time::sec(5), Time::sec(1)));
  build.prepare();
  bool done = false;
  Pmake::Result result;
  build.run([&](Pmake::Result r) {
    result = r;
    done = true;
  });

  // Mid-build, the owners of two granted hosts return.
  int evicted_hosts = 0;
  cluster.sim().after(Time::sec(6), [&] {
    for (auto w : cluster.kernel().workstations()) {
      if (w == cluster.workstation(0)) continue;
      if (!cluster.host(w).procs().foreign_processes().empty()) {
        cluster.host(w).note_user_input();
        if (++evicted_hosts == 2) break;
      }
    }
  });

  cluster.kernel().run_until_done([&] { return done; });
  EXPECT_EQ(result.jobs, 11);
  EXPECT_GE(evicted_hosts, 1);
  // Every output exists despite the evictions.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(cluster.kernel()
                    .file_server()
                    .fs_server()
                    ->stat_path("/src/f" + std::to_string(i) + ".o")
                    .is_ok());
  }
  EXPECT_TRUE(
      cluster.kernel().file_server().fs_server()->stat_path("/src/prog").is_ok());
}

TEST(NameCacheIntegrationTest, PmakeWithNameCacheReducesServerWork) {
  auto run_build = [](bool cache) {
    SpriteCluster cluster({.workstations = 6, .seed = 55});
    if (cache) {
      for (std::size_t i = 0; i < cluster.kernel().num_hosts(); ++i)
        cluster.kernel().host(static_cast<HostId>(i)).fs().enable_name_cache(
            true);
    }
    cluster.warm_up();
    Pmake::Options opt;
    opt.controller = cluster.workstation(0);
    opt.max_jobs = 6;
    opt.facility = &cluster.load_sharing();
    // Enough jobs per host that cache reuse dominates first-touch misses.
    Pmake build(cluster.kernel(), opt,
                make_compile_graph(30, 10, Time::sec(2), Time::sec(1)));
    build.prepare();
    cluster.kernel().file_server().fs_server()->reset_stats();
    bool done = false;
    Pmake::Result result;
    build.run([&](Pmake::Result r) {
      result = r;
      done = true;
    });
    cluster.kernel().run_until_done([&] { return done; });
    return std::make_pair(
        result.makespan.s(),
        cluster.kernel().file_server().fs_server()->stats().lookup_components);
  };

  auto [t_off, lookups_off] = run_build(false);
  auto [t_on, lookups_on] = run_build(true);
  // Each host pays first-touch lookups once; everything after that resolves
  // by hint, so total lookup work drops well below the uncached build's.
  EXPECT_LT(lookups_on, lookups_off * 6 / 10);
  EXPECT_LE(t_on, t_off);
}

}  // namespace
}  // namespace sprite
