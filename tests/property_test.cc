// Property-based sweeps: randomized (but seeded and deterministic) sequences
// exercising cross-module invariants.
//
//   * FS sequential consistency: a random cross-host op sequence always
//     reads what a simple reference model says it should — through caches,
//     delayed writes, recalls, cache disabling, and writebacks.
//   * Migration transparency: a process's observable output is identical no
//     matter how many times (or with which strategy) it migrates.
//   * Scheduler work conservation.
//   * RPC liveness under host churn: calls complete or fail, never hang.
//   * Gossip convergence.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/sprite.h"
#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"
#include "util/rng.h"

namespace sprite {
namespace {

using core::SpriteCluster;
using kern::Cluster;
using proc::ScriptBuilder;
using proc::ScriptProgram;
using sim::HostId;
using sim::Time;

// ---------------------------------------------------------------------------
// FS sequential consistency vs a reference model
// ---------------------------------------------------------------------------

class FsConsistencyProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FsConsistencyProperty, RandomCrossHostOpsMatchReferenceModel) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1,
                   .seed = GetParam()});
  util::Rng rng(GetParam() * 7919 + 1);
  const auto ws = cluster.workstations();

  // Reference model: the file is a byte array; ops are sequential, so
  // read-after-write must hold across hosts (the consistency protocol's
  // whole job).
  std::vector<std::uint8_t> model;
  cluster.file_server().fs_server()->create_file("/prop", 0);

  // One open stream per host, lazily created.
  std::map<HostId, fs::StreamPtr> streams;
  auto stream_for = [&](HostId h) -> fs::StreamPtr {
    auto it = streams.find(h);
    if (it != streams.end()) return it->second;
    fs::StreamPtr out;
    bool done = false;
    cluster.host(h).fs().open("/prop", fs::OpenFlags::read_write(),
                              [&](util::Result<fs::StreamPtr> r) {
                                ASSERT_TRUE(r.is_ok());
                                out = *r;
                                done = true;
                              });
    cluster.run_until_done([&] { return done; });
    streams[h] = out;
    return out;
  };

  for (int step = 0; step < 120; ++step) {
    const HostId h = ws[rng.index(ws.size())];
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op < 4) {
      // Write random bytes at a random offset.
      auto s = stream_for(h);
      const std::int64_t off = rng.uniform_int(0, 12000);
      fs::Bytes data(static_cast<std::size_t>(rng.uniform_int(1, 3000)));
      for (auto& b : data)
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      ASSERT_TRUE(cluster.host(h).fs().seek(s, off).is_ok());
      bool done = false;
      cluster.host(h).fs().write(s, data,
                                 [&](util::Result<std::int64_t> r) {
                                   ASSERT_TRUE(r.is_ok());
                                   done = true;
                                 });
      cluster.run_until_done([&] { return done; });
      if (model.size() < static_cast<std::size_t>(off) + data.size())
        model.resize(static_cast<std::size_t>(off) + data.size(), 0);
      std::copy(data.begin(), data.end(),
                model.begin() + static_cast<std::ptrdiff_t>(off));
    } else if (op < 8) {
      // Read a random range and compare against the model.
      auto s = stream_for(h);
      const std::int64_t off = rng.uniform_int(0, 14000);
      const std::int64_t len = rng.uniform_int(1, 4000);
      ASSERT_TRUE(cluster.host(h).fs().seek(s, off).is_ok());
      bool done = false;
      cluster.host(h).fs().read(s, len, [&](util::Result<fs::Bytes> r) {
        ASSERT_TRUE(r.is_ok());
        // Expected: bytes from the model, clipped at model size.
        const auto msize = static_cast<std::int64_t>(model.size());
        const std::int64_t expect_len =
            std::max<std::int64_t>(0, std::min(len, msize - off));
        ASSERT_EQ(static_cast<std::int64_t>(r->size()), expect_len)
            << "step " << step << " host " << h << " off " << off;
        for (std::int64_t i = 0; i < expect_len; ++i) {
          ASSERT_EQ((*r)[static_cast<std::size_t>(i)],
                    model[static_cast<std::size_t>(off + i)])
              << "step " << step << " byte " << i;
        }
        done = true;
      });
      cluster.run_until_done([&] { return done; });
    } else if (op == 8) {
      // Close the host's stream (it will reopen later).
      auto it = streams.find(h);
      if (it != streams.end()) {
        bool done = false;
        cluster.host(h).fs().close(it->second,
                                   [&](util::Status) { done = true; });
        cluster.run_until_done([&] { return done; });
        streams.erase(it);
      }
    } else {
      // Let delayed writebacks fire.
      cluster.sim().run_until(cluster.sim().now() + Time::sec(31));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsConsistencyProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ---------------------------------------------------------------------------
// Migration transparency under random migration chains
// ---------------------------------------------------------------------------

struct ChainParam {
  std::uint64_t seed;
  mig::VmStrategy strategy;
};

class MigrationChainProperty : public ::testing::TestWithParam<ChainParam> {};

TEST_P(MigrationChainProperty, OutputIdenticalUnderRandomMigrationChains) {
  // The program interleaves identity queries, memory writes, file appends,
  // and sleeps; we run it once undisturbed and once migrated at random
  // points, and require byte-identical output files.
  auto build = [](const std::string& outfile) {
    ScriptBuilder b;
    b.act(proc::SysOpen{outfile, fs::OpenFlags::create_rw()});
    b.step([](ScriptProgram::Ctx& c) {
      c.locals["fd"] = c.view->rv;
      return proc::SysGetPid{};
    });
    for (int i = 0; i < 6; ++i) {
      b.step([i](ScriptProgram::Ctx& c) {
        (void)i;
        c.locals["acc"] = c.locals["acc"] * 31 + c.view->rv;
        return proc::Touch{vm::Segment::kHeap, 0, 32, true};
      });
      b.act(proc::Pause{Time::msec(400)});
      b.step([](ScriptProgram::Ctx& c) {
        const std::string line =
            "acc=" + std::to_string(c.locals["acc"]) + ";";
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              fs::Bytes(line.begin(), line.end()), 0};
      });
      b.act(proc::SysGetHostName{});
    }
    b.step([](ScriptProgram::Ctx& c) {
      const std::string line = "host=" + c.view->text;
      return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                            fs::Bytes(line.begin(), line.end()), 0};
    });
    b.step([](ScriptProgram::Ctx& c) {
      return proc::SysFsync{static_cast<int>(c.locals["fd"])};
    });
    b.exit(0);
    return b;
  };

  auto read_out = [](SpriteCluster& cluster, const std::string& path) {
    auto st = cluster.kernel().file_server().fs_server()->stat_path(path);
    if (!st.is_ok()) return std::string("<missing>");
    auto d = cluster.kernel().file_server().fs_server()->read_direct(
        st->id, 0, st->size);
    return std::string(d->begin(), d->end());
  };

  const auto param = GetParam();

  // Baseline run.
  std::string baseline;
  {
    SpriteCluster cluster({.workstations = 4, .seed = 100});
    auto prog = build("/base");
    cluster.install_program("/bin/chain", prog.image(8, 64, 4));
    const auto pid = cluster.spawn(cluster.workstation(0), "/bin/chain", {});
    EXPECT_EQ(cluster.wait(pid), 0);
    baseline = read_out(cluster, "/base");
    ASSERT_NE(baseline, "<missing>");
  }

  // Migrated run: same program, random migration chain.
  {
    SpriteCluster cluster({.workstations = 4, .seed = 100});
    for (int i = 0; i < 4; ++i)
      cluster.host(cluster.workstation(i)).mig().set_strategy(param.strategy);
    auto prog = build("/base");  // same output path on a fresh cluster
    cluster.install_program("/bin/chain", prog.image(8, 64, 4));
    const auto pid = cluster.spawn(cluster.workstation(0), "/bin/chain", {});

    util::Rng rng(param.seed);
    int moved = 0;
    for (int hop = 0; hop < 5; ++hop) {
      cluster.run_for(Time::msec(rng.uniform_int(150, 700)));
      const auto where = cluster.locate(pid);
      if (where == sim::kInvalidHost) break;  // already exited
      HostId target = cluster.workstation(
          static_cast<int>(rng.index(4)));
      if (target == where) continue;
      auto st = cluster.migrate(pid, target);
      if (st.is_ok()) ++moved;
    }
    EXPECT_EQ(cluster.wait(pid), 0);
    EXPECT_EQ(read_out(cluster, "/base"), baseline)
        << "strategy " << mig::strategy_name(param.strategy) << " after "
        << moved << " migrations";
    EXPECT_GE(moved, 1);  // the chain did something
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, MigrationChainProperty,
    ::testing::Values(
        ChainParam{11, mig::VmStrategy::kSpriteFlush},
        ChainParam{12, mig::VmStrategy::kSpriteFlush},
        ChainParam{13, mig::VmStrategy::kWholeCopy},
        ChainParam{14, mig::VmStrategy::kWholeCopy},
        ChainParam{15, mig::VmStrategy::kCopyOnRef},
        ChainParam{16, mig::VmStrategy::kCopyOnRef},
        ChainParam{17, mig::VmStrategy::kPreCopy}),
    [](const ::testing::TestParamInfo<ChainParam>& info) {
      std::string n = mig::strategy_name(info.param.strategy);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n + "_seed" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Scheduler work conservation
// ---------------------------------------------------------------------------

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, WorkConservingUnderRandomDemands) {
  sim::Simulator sim(GetParam());
  sim::Costs costs;
  sim::Cpu cpu(sim, costs);
  util::Rng rng(GetParam());

  double total_ms = 0;
  int completed = 0;
  const int n = 20;
  std::vector<double> done_at(n);
  for (int i = 0; i < n; ++i) {
    // Whole microseconds so accumulation matches the clock exactly
    // (Time::msec would truncate fractional microseconds).
    const std::int64_t demand_us = rng.uniform_int(1000, 400000);
    const double demand_ms = static_cast<double>(demand_us) / 1000.0;
    total_ms += demand_ms;
    cpu.submit(sim::JobClass::kUser, Time::usec(demand_us),
               [&, i] {
                 done_at[static_cast<std::size_t>(i)] = sim.now().ms();
                 ++completed;
               });
  }
  sim.run();
  EXPECT_EQ(completed, n);
  // Work conservation: the CPU never idles while jobs are runnable, so the
  // last completion is exactly the total demand.
  double last = 0;
  for (double d : done_at) last = std::max(last, d);
  EXPECT_NEAR(last, total_ms, 0.001);
  // And nobody finishes before its own demand could have been served.
  EXPECT_NEAR(cpu.busy_time(sim::JobClass::kUser).ms(), total_ms, 0.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ---------------------------------------------------------------------------
// RPC liveness under churn
// ---------------------------------------------------------------------------

class RpcChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpcChurnProperty, CallsCompleteOrFailNeverHang) {
  Cluster cluster({.num_workstations = 5, .num_file_servers = 1,
                   .seed = GetParam()});
  util::Rng rng(GetParam() * 31 + 7);
  const auto ws = cluster.workstations();

  int outcomes = 0;
  const int kCalls = 150;
  // Random churn: hosts flap during the storm.
  for (int i = 0; i < 12; ++i) {
    const HostId victim = ws[rng.index(ws.size())];
    const Time when = Time::msec(rng.uniform_int(0, 4000));
    const bool up = rng.bernoulli(0.5);
    cluster.sim().at(when, [&cluster, victim, up] {
      cluster.net().set_host_up(victim, up);
    });
  }
  // Everyone back up at the end so straggler retries can finish.
  cluster.sim().at(Time::sec(5), [&cluster, &ws] {
    for (HostId h : ws) cluster.net().set_host_up(h, true);
  });

  for (int i = 0; i < kCalls; ++i) {
    const HostId from = ws[rng.index(ws.size())];
    const HostId to = ws[rng.index(ws.size())];
    const Time when = Time::msec(rng.uniform_int(0, 4000));
    cluster.sim().at(when, [&cluster, &outcomes, from, to] {
      cluster.host(from).rpc().call(
          to, rpc::ServiceId::kProc,
          static_cast<int>(proc::ProcOp::kGetHostName), nullptr,
          [&outcomes](util::Result<rpc::Reply>) { ++outcomes; });
    });
  }
  cluster.run_until_done([&] { return outcomes == kCalls; });
  EXPECT_EQ(outcomes, kCalls);  // every call resolved one way or the other
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcChurnProperty,
                         ::testing::Values(31u, 32u, 33u, 34u));

// ---------------------------------------------------------------------------
// Gossip convergence
// ---------------------------------------------------------------------------

class GossipProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GossipProperty, VectorsConvergeToFullMembership) {
  Cluster cluster({.num_workstations = 10, .num_file_servers = 1,
                   .seed = GetParam()});
  ls::Facility facility(cluster, ls::Arch::kProbabilistic);
  cluster.sim().run_until(Time::sec(60));
  const auto ws = cluster.workstations();
  for (HostId h : ws) {
    const auto& vec = facility.node(h).load_vector();
    // Every host should know about (nearly) every other idle host.
    EXPECT_GE(vec.size(), ws.size() - 2)
        << "host " << h << " knows only " << vec.size();
    const Time now = cluster.sim().now();
    for (const auto& [peer, entry] : vec) {
      EXPECT_LE((now - entry.stamped).s(),
                cluster.costs().ls_entry_max_age.s() + 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GossipProperty,
                         ::testing::Values(41u, 42u, 43u));

// ---------------------------------------------------------------------------
// migd crash-restart recovery
// ---------------------------------------------------------------------------

TEST(MigdRecoveryTest, RestartRepopulatesAndAvoidsDoubleGrants) {
  Cluster cluster({.num_workstations = 5, .num_file_servers = 1, .seed = 61});
  ls::Facility facility(cluster, ls::Arch::kCentral);
  cluster.sim().run_until(Time::sec(45));
  const auto ws = cluster.workstations();

  // Put real (load-producing) work on a granted host.
  proc::ScriptBuilder b;
  b.compute(Time::minutes(10)).exit(0);
  SPRITE_CHECK(cluster.install_program("/bin/busy", b.image()).is_ok());

  std::vector<HostId> granted;
  bool d1 = false;
  facility.selector(ws[0]).request_hosts(1, [&](std::vector<HostId> h) {
    granted = std::move(h);
    d1 = true;
  });
  cluster.run_until_done([&] { return d1; });
  ASSERT_EQ(granted.size(), 1u);

  bool spawned = false;
  proc::Pid pid = proc::kInvalidPid;
  cluster.host(ws[0]).procs().spawn("/bin/busy", {},
                                    [&](util::Result<proc::Pid> r) {
                                      pid = *r;
                                      spawned = true;
                                    });
  cluster.run_until_done([&] { return spawned; });
  cluster.sim().run_until(cluster.sim().now() + Time::msec(200));
  auto pcb = cluster.host(ws[0]).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  util::Status mst(util::Err::kAgain);
  bool md = false;
  cluster.host(ws[0]).mig().migrate(pcb, granted[0], [&](util::Status s) {
    mst = s;
    md = true;
  });
  cluster.run_until_done([&] { return md; });
  ASSERT_TRUE(mst.is_ok());

  // migd crashes and restarts: all soft state gone.
  facility.daemon()->restart();
  EXPECT_TRUE(facility.daemon()->table().empty());

  // Immediately after restart nothing is known, so nothing is granted.
  bool d2 = false;
  std::vector<HostId> after_crash;
  facility.selector(ws[1]).request_hosts(5, [&](std::vector<HostId> h) {
    after_crash = std::move(h);
    d2 = true;
  });
  cluster.run_until_done([&] { return d2; });
  EXPECT_TRUE(after_crash.empty());

  // Announcements repopulate within the update period; the host running the
  // granted (foreign) work announces itself busy, so it is never
  // double-granted despite the lost assignment table.
  cluster.sim().run_until(cluster.sim().now() + Time::sec(90));
  bool d3 = false;
  std::vector<HostId> recovered;
  facility.selector(ws[1]).request_hosts(5, [&](std::vector<HostId> h) {
    recovered = std::move(h);
    d3 = true;
  });
  cluster.run_until_done([&] { return d3; });
  EXPECT_GE(recovered.size(), 2u);
  for (HostId h : recovered) EXPECT_NE(h, granted[0]);
}

}  // namespace
}  // namespace sprite
