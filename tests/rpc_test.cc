// Unit tests for the kernel-to-kernel RPC layer.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rpc/rpc.h"
#include "sim/costs.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace sprite::rpc {
namespace {

using sim::HostId;
using sim::Time;

struct IntBody : Message {
  explicit IntBody(int v) : value(v) {}
  int value;
  std::int64_t wire_bytes() const override { return 8; }
};

struct BigBody : Message {
  explicit BigBody(std::int64_t n) : bytes(n) {}
  std::int64_t bytes;
  std::int64_t wire_bytes() const override { return bytes; }
};

// Minimal multi-host rig: one Cpu + RpcNode per host on a shared network.
class Rig {
 public:
  explicit Rig(int n_hosts, sim::Costs costs = {})
      : costs_(costs), sim_(1), net_(sim_, costs_) {
    for (int i = 0; i < n_hosts; ++i) {
      auto cpu = std::make_unique<sim::Cpu>(sim_, costs_);
      cpus_.push_back(std::move(cpu));
    }
    for (int i = 0; i < n_hosts; ++i) {
      HostId id = net_.attach([this, i](const sim::Packet& p) {
        nodes_[static_cast<std::size_t>(i)]->handle_packet(p);
      });
      EXPECT_EQ(id, i);
      nodes_.push_back(std::make_unique<RpcNode>(
          sim_, net_, *cpus_[static_cast<std::size_t>(i)], id, costs_));
    }
  }

  RpcNode& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }

 private:
  sim::Costs costs_;
  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<sim::Cpu>> cpus_;
  std::vector<std::unique_ptr<RpcNode>> nodes_;
};

// Registers an echo service that doubles the integer it receives.
void register_doubler(RpcNode& n) {
  n.register_service(
      ServiceId::kEcho,
      [](HostId, const Request& req, std::function<void(Reply)> respond) {
        auto body = body_cast<IntBody>(req.body);
        ASSERT_TRUE(body);
        respond(Reply{util::Status::ok(),
                      std::make_shared<IntBody>(body->value * 2)});
      });
}

TEST(Rpc, RoundTripDeliversReply) {
  Rig rig(2);
  register_doubler(rig.node(1));
  int result = 0;
  rig.node(0).call(1, ServiceId::kEcho, 0, std::make_shared<IntBody>(21),
                   [&](util::Result<Reply> r) {
                     ASSERT_TRUE(r.is_ok());
                     result = body_cast<IntBody>(r->body)->value;
                   });
  rig.sim().run();
  EXPECT_EQ(result, 42);
}

TEST(Rpc, SmallRoundTripCostIsNearCalibration) {
  // The calibration target for a small kernel-to-kernel RPC is ~1.6 ms.
  Rig rig(2);
  register_doubler(rig.node(1));
  Time done;
  rig.node(0).call(1, ServiceId::kEcho, 0, std::make_shared<IntBody>(1),
                   [&](util::Result<Reply> r) {
                     ASSERT_TRUE(r.is_ok());
                     done = rig.sim().now();
                   });
  rig.sim().run();
  EXPECT_GT(done.ms(), 0.8);
  EXPECT_LT(done.ms(), 2.5);
}

TEST(Rpc, LocalCallBypassesNetwork) {
  Rig rig(1);
  register_doubler(rig.node(0));
  int result = 0;
  rig.node(0).call(0, ServiceId::kEcho, 0, std::make_shared<IntBody>(5),
                   [&](util::Result<Reply> r) {
                     ASSERT_TRUE(r.is_ok());
                     result = body_cast<IntBody>(r->body)->value;
                   });
  rig.sim().run();
  EXPECT_EQ(result, 10);
  EXPECT_EQ(rig.net().messages_sent(), 0);
}

TEST(Rpc, UnknownServiceFailsCleanly) {
  Rig rig(2);
  util::Err err = util::Err::kOk;
  rig.node(0).call(1, ServiceId::kEcho, 0, nullptr,
                   [&](util::Result<Reply> r) {
                     ASSERT_TRUE(r.is_ok());  // transport worked
                     err = r->status.err();
                   });
  rig.sim().run();
  EXPECT_EQ(err, util::Err::kNotSupported);
}

TEST(Rpc, DownServerTimesOutAfterRetries) {
  Rig rig(2);
  register_doubler(rig.node(1));
  rig.net().set_host_up(1, false);
  util::Err err = util::Err::kOk;
  rig.node(0).call(1, ServiceId::kEcho, 0, std::make_shared<IntBody>(1),
                   [&](util::Result<Reply> r) { err = r.err(); });
  rig.sim().run();
  EXPECT_EQ(err, util::Err::kTimedOut);
  EXPECT_GE(rig.node(0).retransmissions(), 1);
  EXPECT_EQ(rig.node(0).timeouts(), 1);
}

TEST(Rpc, ServerRecoveringMidCallStillAnswers) {
  Rig rig(2);
  register_doubler(rig.node(1));
  rig.net().set_host_up(1, false);
  int result = 0;
  rig.node(0).call(1, ServiceId::kEcho, 0, std::make_shared<IntBody>(4),
                   [&](util::Result<Reply> r) {
                     ASSERT_TRUE(r.is_ok());
                     result = body_cast<IntBody>(r->body)->value;
                   });
  // Bring the server back before retries are exhausted.
  rig.sim().after(Time::msec(600), [&] { rig.net().set_host_up(1, true); });
  rig.sim().run();
  EXPECT_EQ(result, 8);
  EXPECT_GE(rig.node(0).retransmissions(), 1);
}

TEST(Rpc, AtMostOnceDespiteDuplicateDelivery) {
  // A slow (asynchronous) handler plus a retransmission must not execute the
  // handler twice.
  Rig rig(2);
  int executions = 0;
  rig.node(1).register_service(
      ServiceId::kEcho,
      [&](HostId, const Request&, std::function<void(Reply)> respond) {
        ++executions;
        // Respond only after the client has had time to retransmit.
        rig.sim().after(Time::msec(700), [respond = std::move(respond)] {
          respond(Reply{util::Status::ok(), nullptr});
        });
      });
  int replies = 0;
  rig.node(0).call(1, ServiceId::kEcho, 0, nullptr,
                   [&](util::Result<Reply> r) {
                     EXPECT_TRUE(r.is_ok());
                     ++replies;
                   });
  rig.sim().run();
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(replies, 1);
  EXPECT_GE(rig.node(0).retransmissions(), 1);
}

TEST(Rpc, ManyConcurrentCallsAllComplete) {
  Rig rig(4);
  for (int s = 1; s < 4; ++s) register_doubler(rig.node(s));
  int completed = 0;
  for (int i = 0; i < 300; ++i) {
    const HostId dst = 1 + (i % 3);
    rig.node(0).call(dst, ServiceId::kEcho, 0, std::make_shared<IntBody>(i),
                     [&, i](util::Result<Reply> r) {
                       ASSERT_TRUE(r.is_ok());
                       EXPECT_EQ(body_cast<IntBody>(r->body)->value, 2 * i);
                       ++completed;
                     });
  }
  rig.sim().run();
  EXPECT_EQ(completed, 300);
}

TEST(Rpc, BulkPayloadTakesBandwidthTime) {
  Rig rig(2);
  rig.node(1).register_service(
      ServiceId::kEcho,
      [](HostId, const Request&, std::function<void(Reply)> respond) {
        respond(Reply{util::Status::ok(), nullptr});
      });
  Time done;
  const std::int64_t megabyte = 1 << 20;
  rig.node(0).call(1, ServiceId::kEcho, 0, std::make_shared<BigBody>(megabyte),
                   [&](util::Result<Reply> r) {
                     ASSERT_TRUE(r.is_ok());
                     done = rig.sim().now();
                   });
  rig.sim().run();
  // The round trip must be dominated by the payload's wire time.
  const double wire_ms = sim::Costs{}.wire_time(megabyte).ms();
  EXPECT_GT(done.ms(), wire_ms);
  EXPECT_LT(done.ms(), wire_ms * 1.2);
}

TEST(Rpc, StatsCountServedRequests) {
  Rig rig(2);
  register_doubler(rig.node(1));
  for (int i = 0; i < 5; ++i) {
    rig.node(0).call(1, ServiceId::kEcho, 0, std::make_shared<IntBody>(i),
                     [](util::Result<Reply>) {});
  }
  rig.sim().run();
  EXPECT_EQ(rig.node(0).calls_started(), 5);
  EXPECT_EQ(rig.node(1).requests_served(), 5);
}

}  // namespace
}  // namespace sprite::rpc
