// Tests for the trace-driven workload subsystem (src/workload/): the binary
// trace format, the deterministic session generator, and the engine's
// record/replay round-trip on a live cluster.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "sim/time.h"
#include "workload/engine.h"
#include "workload/session.h"
#include "workload/trace_file.h"

namespace sprite::wl {
namespace {

using kern::Cluster;
using sim::HostId;
using sim::Time;

// ---------------------------------------------------------------------------
// Trace format
// ---------------------------------------------------------------------------

std::vector<WorkloadEvent> sample_events() {
  return {
      {Time::zero(), EvKind::kSessionBegin, 0, 7, 0},
      {Time::msec(1), EvKind::kKeystroke, 0, 0, 0},
      {Time::msec(1), EvKind::kBatchSubmit, 3, 1500000, 0},
      {Time::sec(5), EvKind::kStorm, 2, 8, 2000000},
      {Time::hours(200), EvKind::kSessionEnd, 0, 7, 0},  // wide delta
  };
}

TEST(TraceFileTest, RoundTripsEventsAndSeed) {
  const auto evs = sample_events();
  const auto bytes = encode_trace(42, evs);
  auto parsed = decode_trace(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->seed, 42u);
  EXPECT_EQ(parsed->events, evs);
}

TEST(TraceFileTest, EmptyTraceRoundTrips) {
  const auto bytes = encode_trace(7, {});
  auto parsed = decode_trace(bytes);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_TRUE(parsed->events.empty());
}

TEST(TraceFileTest, EncodingIsDeterministic) {
  EXPECT_EQ(encode_trace(9, sample_events()), encode_trace(9, sample_events()));
}

TEST(TraceFileTest, RejectsTruncationAtEveryLength) {
  const auto bytes = encode_trace(42, sample_events());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(n));
    EXPECT_FALSE(decode_trace(cut).is_ok()) << "accepted " << n << " bytes";
  }
}

TEST(TraceFileTest, RejectsEverySingleBitFlip) {
  const auto bytes = encode_trace(42, sample_events());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x01;
    // Any flip must be caught: header flips break the magic, body and
    // footer flips break the checksum (or the sentinel/count).
    EXPECT_FALSE(decode_trace(bad).is_ok()) << "accepted flip at byte " << i;
  }
}

TEST(TraceFileTest, RejectsForeignMagicAndFutureFormat) {
  auto bytes = encode_trace(1, sample_events());
  auto bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(decode_trace(bad).is_ok());
}

TEST(TraceFileTest, RejectsUnknownEventKind) {
  // Hand-build a body with an out-of-range kind, then re-seal the footer
  // with a valid checksum: decode must fail on the kind, not the checksum.
  TraceWriter w(5);
  w.add({Time::msec(2), EvKind::kKeystroke, 1, 0, 0});
  auto bytes = w.finish();
  // The kind byte of the single event: header(16) + varint delta(2000 -> 2
  // bytes) puts it at offset 18.
  ASSERT_EQ(bytes[18], static_cast<std::uint8_t>(EvKind::kKeystroke));
  bytes[18] = 0x7E;  // not a kind
  // Re-seal: recompute the checksum the writer would have produced.
  const auto body_end = bytes.size() - 17;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < body_end; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  for (int i = 0; i < 8; ++i)
    bytes[body_end + 9 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(h >> (8 * i));
  EXPECT_FALSE(decode_trace(bytes).is_ok());
}

// ---------------------------------------------------------------------------
// Session generator
// ---------------------------------------------------------------------------

SessionSpec small_spec() {
  SessionSpec spec;
  spec.users = 12;
  spec.horizon = Time::hours(8);
  return spec;
}

TEST(GeneratorTest, StreamIsTimeOrderedAndBoundedByHorizon) {
  Generator gen(small_spec(), {0, 1, 2, 3}, 17);
  auto evs = gen.all();
  ASSERT_FALSE(evs.empty());
  for (std::size_t i = 1; i < evs.size(); ++i)
    ASSERT_GE(evs[i].at, evs[i - 1].at) << "out of order at " << i;
  // Sessions start before the horizon; their contents may run past it only
  // by one session length (the generator stops deciding at the horizon).
  int begins = 0;
  for (const auto& e : evs)
    if (e.kind == EvKind::kSessionBegin) {
      ++begins;
      EXPECT_LT(e.at, small_spec().horizon);
    }
  EXPECT_GT(begins, 12);  // several sessions per user over 8 h
}

TEST(GeneratorTest, SameSeedSameStreamDifferentSeedDifferent) {
  Generator a(small_spec(), {0, 1, 2, 3}, 99);
  Generator b(small_spec(), {0, 1, 2, 3}, 99);
  Generator c(small_spec(), {0, 1, 2, 3}, 100);
  const auto ea = a.all();
  EXPECT_EQ(ea, b.all());
  EXPECT_NE(ea, c.all());
}

TEST(GeneratorTest, UsersSitRoundRobinOnHosts) {
  Generator gen(small_spec(), {5, 9}, 3);
  for (const auto& e : gen.all())
    EXPECT_TRUE(e.host == 5 || e.host == 9);
}

TEST(GeneratorTest, EmitsAllEventKindsOverALongRun) {
  SessionSpec spec = small_spec();
  spec.horizon = Time::hours(48);
  spec.storm_per_session = 0.5;
  Generator gen(spec, {0, 1, 2, 3}, 23);
  std::array<int, kNumEvKinds> seen{};
  for (const auto& e : gen.all()) ++seen[static_cast<std::size_t>(e.kind)];
  for (std::size_t k = 0; k < kNumEvKinds; ++k)
    EXPECT_GT(seen[k], 0) << ev_kind_name(static_cast<EvKind>(k));
}

// ---------------------------------------------------------------------------
// Engine on a live cluster
// ---------------------------------------------------------------------------

SessionSpec engine_spec() {
  SessionSpec spec;
  spec.users = 8;
  spec.horizon = Time::hours(2);
  spec.batch_per_hour = 6.0;
  spec.storm_per_session = 0.2;
  return spec;
}

TEST(EngineTest, DrainsEveryJobToATerminalState) {
  Cluster cluster({.num_workstations = 6,
                   .num_file_servers = 1,
                   .seed = 5,
                   .horizon = Time::hours(4)});
  ls::Facility facility(cluster, ls::Arch::kCentral);
  Engine engine(cluster, &facility, {});
  engine.start(engine_spec(), 21);
  cluster.run_until_done([&] { return engine.drained(); });

  const auto sum = engine.summary();
  EXPECT_GT(sum.sessions_begun, 0);
  EXPECT_GT(sum.jobs_submitted, 0);
  EXPECT_EQ(sum.jobs_running, 0);
  EXPECT_EQ(sum.jobs_queued, 0);
  EXPECT_EQ(sum.storms_active, 0);
  EXPECT_GE(sum.events_total, 0);  // stream closed
  for (const auto& j : engine.jobs())
    EXPECT_TRUE(j.terminal()) << "job " << j.id << " not terminal";
  // Without faults every batch job must actually finish.
  EXPECT_EQ(sum.jobs_finished, sum.jobs_submitted);
}

TEST(EngineTest, RecordedTraceReplaysByteIdentically) {
  auto run = [](const std::vector<std::uint8_t>* replay_bytes) {
    Cluster cluster({.num_workstations = 6,
                     .num_file_servers = 1,
                     .seed = 5,
                     .horizon = Time::hours(4)});
    ls::Facility facility(cluster, ls::Arch::kCentral);
    Engine::Options opts;
    opts.record = true;
    Engine engine(cluster, &facility, opts);
    if (replay_bytes == nullptr) {
      engine.start(engine_spec(), 77);
    } else {
      auto parsed = decode_trace(*replay_bytes);
      EXPECT_TRUE(parsed.is_ok());
      engine.start_replay(std::move(*parsed));
    }
    cluster.run_until_done([&] { return engine.drained(); });
    return engine.take_recorded_trace();
  };

  const auto recorded = run(nullptr);
  ASSERT_FALSE(recorded.empty());
  EXPECT_EQ(run(&recorded), recorded);
  // And a freshly generated run with the same seed records the same bytes.
  EXPECT_EQ(run(nullptr), recorded);
}

TEST(EngineTest, RunsWithoutAFacility) {
  Cluster cluster({.num_workstations = 4,
                   .num_file_servers = 1,
                   .seed = 2,
                   .horizon = Time::hours(3)});
  Engine engine(cluster, nullptr, {});
  engine.start(engine_spec(), 13);
  cluster.run_until_done([&] { return engine.drained(); });
  const auto sum = engine.summary();
  EXPECT_EQ(sum.jobs_finished, sum.jobs_submitted);
}

}  // namespace
}  // namespace sprite::wl
