// Tests for the virtual memory substrate: demand paging, zero-fill, dirty
// tracking, flushing to backing store, and space adoption across hosts.
#include <gtest/gtest.h>

#include "kern/cluster.h"
#include "sim/time.h"
#include "vm/vm.h"

namespace sprite::vm {
namespace {

using kern::Cluster;
using sim::Time;
using util::Err;
using util::Status;

class VmTest : public ::testing::Test {
 protected:
  VmTest() : cluster_({.num_workstations = 2, .num_file_servers = 1}) {
    // A 64 KB executable (16 pages of code).
    cluster_.file_server().fs_server()->mkdir_p("/bin");
    auto r =
        cluster_.file_server().fs_server()->create_file("/bin/prog", 16 * 4096);
    SPRITE_CHECK(r.is_ok());
  }

  SpacePtr create_ok(sim::HostId h, std::int64_t code, std::int64_t heap,
                     std::int64_t stack) {
    util::Result<SpacePtr> out(Err::kAgain);
    bool done = false;
    cluster_.host(h).vm().create_space("/bin/prog", code, heap, stack,
                                       [&](util::Result<SpacePtr> r) {
                                         out = std::move(r);
                                         done = true;
                                       });
    cluster_.run_until_done([&] { return done; });
    EXPECT_TRUE(out.is_ok()) << out.status().to_string();
    return out.is_ok() ? *out : nullptr;
  }

  Status touch_s(sim::HostId h, const SpacePtr& sp, Segment seg,
                 std::int64_t first, std::int64_t count, bool write) {
    Status out(Err::kAgain);
    bool done = false;
    cluster_.host(h).vm().touch(sp, seg, first, count, write, [&](Status s) {
      out = s;
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return out;
  }

  Status flush_s(sim::HostId h, const SpacePtr& sp) {
    Status out(Err::kAgain);
    bool done = false;
    cluster_.host(h).vm().flush_dirty(sp, [&](Status s) {
      out = s;
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return out;
  }

  sim::HostId ws(int i) {
    return cluster_.workstations()[static_cast<std::size_t>(i)];
  }

  Cluster cluster_;
};

TEST_F(VmTest, CreateSpaceStartsEmpty) {
  auto sp = create_ok(ws(0), 16, 32, 8);
  ASSERT_TRUE(sp);
  EXPECT_EQ(sp->total_pages(), 56);
  EXPECT_EQ(sp->resident_pages(), 0);
  EXPECT_EQ(sp->dirty_pages(), 0);
}

TEST_F(VmTest, MissingExecutableFailsCreation) {
  util::Result<SpacePtr> out(Err::kAgain);
  bool done = false;
  cluster_.host(ws(0)).vm().create_space("/bin/missing", 4, 4, 4,
                                         [&](util::Result<SpacePtr> r) {
                                           out = std::move(r);
                                           done = true;
                                         });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(out.err(), Err::kNoEnt);
}

TEST_F(VmTest, CodeFaultsReadFromExecutable) {
  auto sp = create_ok(ws(0), 16, 4, 4);
  auto& vmm = cluster_.host(ws(0)).vm();
  EXPECT_TRUE(touch_s(ws(0), sp, Segment::kCode, 0, 16, false).is_ok());
  EXPECT_EQ(sp->segment(Segment::kCode).resident_pages(), 16);
  EXPECT_EQ(vmm.stats().pages_in, 16);
  EXPECT_EQ(vmm.stats().pages_zero_fill, 0);
}

TEST_F(VmTest, HeapFirstTouchIsZeroFill) {
  auto sp = create_ok(ws(0), 4, 32, 4);
  auto& vmm = cluster_.host(ws(0)).vm();
  EXPECT_TRUE(touch_s(ws(0), sp, Segment::kHeap, 0, 32, true).is_ok());
  EXPECT_EQ(vmm.stats().pages_zero_fill, 32);
  EXPECT_EQ(vmm.stats().pages_in, 0);
  EXPECT_EQ(sp->segment(Segment::kHeap).dirty_pages(), 32);
}

TEST_F(VmTest, WriteToCodeSegmentRejected) {
  auto sp = create_ok(ws(0), 4, 4, 4);
  EXPECT_EQ(touch_s(ws(0), sp, Segment::kCode, 0, 1, true).err(),
            Err::kAccess);
}

TEST_F(VmTest, TouchOutOfBoundsRejected) {
  auto sp = create_ok(ws(0), 4, 4, 4);
  EXPECT_EQ(touch_s(ws(0), sp, Segment::kHeap, 2, 10, false).err(),
            Err::kInval);
}

TEST_F(VmTest, RepeatedTouchFaultsOnlyOnce) {
  auto sp = create_ok(ws(0), 8, 8, 8);
  auto& vmm = cluster_.host(ws(0)).vm();
  touch_s(ws(0), sp, Segment::kCode, 0, 8, false);
  const auto faults = vmm.stats().faults;
  touch_s(ws(0), sp, Segment::kCode, 0, 8, false);
  EXPECT_EQ(vmm.stats().faults, faults);
}

TEST_F(VmTest, FlushWritesDirtyPagesAndCleans) {
  auto sp = create_ok(ws(0), 4, 64, 4);
  auto& vmm = cluster_.host(ws(0)).vm();
  touch_s(ws(0), sp, Segment::kHeap, 0, 64, true);
  EXPECT_TRUE(flush_s(ws(0), sp).is_ok());
  EXPECT_EQ(vmm.stats().pages_flushed, 64);
  EXPECT_EQ(sp->dirty_pages(), 0);
  EXPECT_EQ(sp->segment(Segment::kHeap).resident_pages(), 64);  // stays in
  // The swap file now holds the pages.
  auto st = cluster_.file_server().fs_server()->stat_path(
      sp->segment(Segment::kHeap).backing_path);
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->size, 64 * 4096);
}

TEST_F(VmTest, FlushTimeScalesWithDirtyPages) {
  // Calibration check for E1/E2: ~480 ms per dirty megabyte.
  auto sp = create_ok(ws(0), 4, 256, 4);  // 1 MB heap
  touch_s(ws(0), sp, Segment::kHeap, 0, 256, true);
  const Time start = cluster_.sim().now();
  flush_s(ws(0), sp);
  const double ms = (cluster_.sim().now() - start).ms();
  EXPECT_GT(ms, 380.0);
  EXPECT_LT(ms, 700.0);
}

TEST_F(VmTest, ReFaultAfterFlushReadsFromSwap) {
  auto sp = create_ok(ws(0), 4, 16, 4);
  auto& vmm = cluster_.host(ws(0)).vm();
  touch_s(ws(0), sp, Segment::kHeap, 0, 16, true);
  flush_s(ws(0), sp);
  vmm.invalidate(sp);
  EXPECT_EQ(sp->resident_pages(), 0);
  vmm.reset_stats();
  touch_s(ws(0), sp, Segment::kHeap, 0, 16, false);
  EXPECT_EQ(vmm.stats().pages_in, 16);  // from swap now, not zero-fill
  EXPECT_EQ(vmm.stats().pages_zero_fill, 0);
}

TEST_F(VmTest, AdoptedSpaceDemandPagesFromSharedSwap) {
  // Sprite's migration VM strategy end-to-end at the VM layer: flush on the
  // source, adopt on the destination with nothing resident, fault from the
  // shared backing files.
  auto sp = create_ok(ws(0), 8, 32, 8);
  touch_s(ws(0), sp, Segment::kHeap, 0, 32, true);
  flush_s(ws(0), sp);

  auto desc = cluster_.host(ws(0)).vm().describe(sp);
  for (auto& seg : desc.segments) {
    seg.resident.assign(seg.resident.size(), false);
    seg.dirty.assign(seg.dirty.size(), false);
  }

  bool released = false;
  cluster_.host(ws(0)).vm().release_space(sp, [&](Status) { released = true; });
  cluster_.run_until_done([&] { return released; });

  util::Result<SpacePtr> adopted(Err::kAgain);
  bool done = false;
  cluster_.host(ws(1)).vm().adopt_space(desc, [&](util::Result<SpacePtr> r) {
    adopted = std::move(r);
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  ASSERT_TRUE(adopted.is_ok());
  EXPECT_EQ((*adopted)->asid(), sp->asid());
  EXPECT_EQ((*adopted)->resident_pages(), 0);

  auto& vmm1 = cluster_.host(ws(1)).vm();
  vmm1.reset_stats();
  EXPECT_TRUE(touch_s(ws(1), *adopted, Segment::kHeap, 0, 32, false).is_ok());
  EXPECT_EQ(vmm1.stats().pages_in, 32);  // pulled from the server's swap
}

TEST_F(VmTest, DestroyUnlinksSwapFiles) {
  auto sp = create_ok(ws(0), 4, 8, 8);
  const std::string heap_path = sp->segment(Segment::kHeap).backing_path;
  touch_s(ws(0), sp, Segment::kHeap, 0, 8, true);
  flush_s(ws(0), sp);
  ASSERT_TRUE(
      cluster_.file_server().fs_server()->stat_path(heap_path).is_ok());

  bool done = false;
  cluster_.host(ws(0)).vm().destroy_space(sp, [&](Status s) {
    EXPECT_TRUE(s.is_ok());
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(
      cluster_.file_server().fs_server()->stat_path(heap_path).err(),
      Err::kNoEnt);
}

TEST_F(VmTest, DescriptorWireSizeScalesWithPages) {
  auto small = create_ok(ws(0), 4, 4, 4);
  auto large = create_ok(ws(0), 4, 2048, 4);
  const auto ds = cluster_.host(ws(0)).vm().describe(small);
  const auto dl = cluster_.host(ws(0)).vm().describe(large);
  EXPECT_LT(ds.wire_bytes(), dl.wire_bytes());
  EXPECT_LT(dl.wire_bytes(), 2048 * 4096 / 2);  // far smaller than the data
}

TEST_F(VmTest, ZeroSizedSegmentsAreLegal) {
  auto sp = create_ok(ws(0), 4, 0, 0);
  ASSERT_TRUE(sp);
  EXPECT_EQ(sp->total_pages(), 4);
  EXPECT_TRUE(touch_s(ws(0), sp, Segment::kCode, 0, 4, false).is_ok());
}

}  // namespace
}  // namespace sprite::vm
