// Short soak: the workload engine over faults, partitions, and
// autocheckpoint (ctest -L soak; CI's bounded smoke).
//
// These runs are deliberately small versions of bench_soak's week: a few
// simulated hours, a rotating crash schedule, one partition, autocheckpoint
// on. What they assert is the subsystem's core invariant — every submitted
// job reaches exactly one terminal state and no process incarnation is lost
// or duplicated, no matter how the fault schedule interleaves with the
// workload — plus the record/replay determinism contract under faults.
#include <gtest/gtest.h>

#include "sim/time.h"
#include "workload/soak.h"

namespace sprite::wl {
namespace {

using sim::Time;

SoakOptions short_soak(std::uint64_t seed) {
  SoakOptions opts;
  opts.workstations = 10;
  opts.seed = seed;
  opts.sessions.users = 30;
  opts.sessions.horizon = Time::hours(8);
  opts.sessions.batch_per_hour = 6.0;
  opts.crash_period = Time::hours(2);
  opts.reboot_after = Time::minutes(2);
  opts.partition_period = Time::hours(3);
  opts.ckpt_interval = Time::minutes(5);
  return opts;
}

TEST(SoakTest, ShortSoakKeepsTheIncarnationInvariant) {
  SoakHarness harness(short_soak(101));
  const SoakReport r = harness.run();
  SCOPED_TRACE(r.to_string());

  // The fault plan actually ran.
  EXPECT_GE(r.crashes, 3);
  EXPECT_GE(r.reboots, 3);
  EXPECT_GT(r.links_cut, 0);
  EXPECT_GT(r.checkpoints, 0);

  // The workload actually exercised the cluster.
  EXPECT_GT(r.workload.sessions_begun, 50);
  EXPECT_GT(r.workload.jobs_submitted, 50);
  EXPECT_GT(r.workload.jobs_finished, 0);

  // The invariant: nothing lost, nothing duplicated.
  EXPECT_TRUE(r.audit.ok()) << r.audit.lost << " lost, " << r.audit.duplicated
                            << " duplicated";
  for (const auto& p : r.audit.problems) ADD_FAILURE() << p;
}

TEST(SoakTest, MigrationRecoversCpuAndOwnersGetTheirMachinesBack) {
  SoakOptions opts = short_soak(202);
  opts.faults = false;  // clean run isolates the load-sharing numbers
  SoakHarness harness(opts);
  const SoakReport r = harness.run();
  SCOPED_TRACE(r.to_string());

  EXPECT_TRUE(r.audit.ok());
  EXPECT_GT(r.foreign_cpu_s, 0.0) << "no CPU was ever delivered remotely";
  EXPECT_GT(r.utilization_recovered, 0.0);
  if (r.evictions > 0) {
    EXPECT_GT(r.evict_p99_ms, 0.0);
    EXPECT_LE(r.evict_p50_ms, r.evict_p99_ms);
  }
}

TEST(SoakTest, RecordedSoakReplaysByteIdenticallyUnderFaults) {
  SoakOptions opts = short_soak(303);
  opts.sessions.horizon = Time::hours(6);
  opts.engine.record = true;

  SoakHarness first(opts);
  const SoakReport r1 = first.run();
  EXPECT_TRUE(r1.audit.ok());
  const auto bytes = first.take_recorded_trace();
  ASSERT_FALSE(bytes.empty());

  auto parsed = decode_trace(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();

  SoakHarness second(opts);
  const SoakReport r2 = second.run_replay(std::move(*parsed));
  EXPECT_TRUE(r2.audit.ok());
  EXPECT_EQ(second.take_recorded_trace(), bytes)
      << "replay re-recorded a different trace";
  // Same event stream + same cluster seed => identical workload outcome.
  EXPECT_EQ(r2.workload.jobs_submitted, r1.workload.jobs_submitted);
  EXPECT_EQ(r2.workload.jobs_finished, r1.workload.jobs_finished);
  EXPECT_EQ(r2.workload.sessions_begun, r1.workload.sessions_begun);
}

}  // namespace
}  // namespace sprite::wl
