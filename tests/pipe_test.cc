// Tests for pipes: blocking reads/writes through the server-resident
// buffer, EOF/EPIPE semantics, fork-shared ends, and — the point of the
// design — endpoints that migrate while the stream flows.
#include <gtest/gtest.h>

#include "core/sprite.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"

namespace sprite::fs {
namespace {

using core::SpriteCluster;
using proc::Action;
using proc::ScriptBuilder;
using proc::ScriptProgram;
using sim::Time;

Bytes make_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

// Kernel-level helpers driving FsClient directly.
class PipeTest : public ::testing::Test {
 protected:
  PipeTest() : cluster_({.workstations = 3, .seed = 201}) {}

  std::pair<StreamPtr, StreamPtr> make_pipe(int ws) {
    std::pair<StreamPtr, StreamPtr> out;
    bool done = false;
    cluster_.host(cluster_.workstation(ws))
        .fs()
        .create_pipe([&](util::Result<std::pair<StreamPtr, StreamPtr>> r) {
          ASSERT_TRUE(r.is_ok());
          out = *r;
          done = true;
        });
    cluster_.kernel().run_until_done([&] { return done; });
    return out;
  }

  SpriteCluster cluster_;
};

TEST_F(PipeTest, WriteThenReadRoundTrip) {
  auto [rd, wr] = make_pipe(0);
  bool wrote = false;
  cluster_.host(cluster_.workstation(0))
      .fs()
      .write(wr, make_bytes("through the pipe"),
             [&](util::Result<std::int64_t> r) {
               ASSERT_TRUE(r.is_ok());
               EXPECT_EQ(*r, 16);
               wrote = true;
             });
  cluster_.kernel().run_until_done([&] { return wrote; });

  bool read_done = false;
  cluster_.host(cluster_.workstation(0))
      .fs()
      .read(rd, 64, [&](util::Result<Bytes> r) {
        ASSERT_TRUE(r.is_ok());
        EXPECT_EQ(std::string(r->begin(), r->end()), "through the pipe");
        read_done = true;
      });
  cluster_.kernel().run_until_done([&] { return read_done; });
}

TEST_F(PipeTest, ReadBlocksUntilDataArrives) {
  auto [rd, wr] = make_pipe(0);
  bool read_done = false;
  Time completed;
  cluster_.host(cluster_.workstation(0))
      .fs()
      .read(rd, 16, [&](util::Result<Bytes> r) {
        ASSERT_TRUE(r.is_ok());
        EXPECT_EQ(std::string(r->begin(), r->end()), "late");
        completed = cluster_.sim().now();
        read_done = true;
      });
  // Nothing to read yet: the op parks.
  cluster_.run_for(Time::sec(2));
  EXPECT_FALSE(read_done);

  cluster_.host(cluster_.workstation(1));  // (another host could write too)
  cluster_.host(cluster_.workstation(0))
      .fs()
      .write(wr, make_bytes("late"), [](util::Result<std::int64_t>) {});
  cluster_.kernel().run_until_done([&] { return read_done; });
  EXPECT_GE(completed.s(), 2.0);
}

TEST_F(PipeTest, ReaderSeesEofAfterWriterCloses) {
  auto [rd, wr] = make_pipe(0);
  auto& fs = cluster_.host(cluster_.workstation(0)).fs();
  bool closed = false;
  fs.close(wr, [&](util::Status) { closed = true; });
  cluster_.kernel().run_until_done([&] { return closed; });

  bool read_done = false;
  fs.read(rd, 16, [&](util::Result<Bytes> r) {
    ASSERT_TRUE(r.is_ok());
    EXPECT_TRUE(r->empty());  // EOF
    read_done = true;
  });
  cluster_.kernel().run_until_done([&] { return read_done; });
}

TEST_F(PipeTest, WriterGetsEpipeWithoutReaders) {
  auto [rd, wr] = make_pipe(0);
  auto& fs = cluster_.host(cluster_.workstation(0)).fs();
  bool closed = false;
  fs.close(rd, [&](util::Status) { closed = true; });
  cluster_.kernel().run_until_done([&] { return closed; });

  bool write_done = false;
  fs.write(wr, make_bytes("x"), [&](util::Result<std::int64_t> r) {
    EXPECT_EQ(r.err(), util::Err::kPipe);
    write_done = true;
  });
  cluster_.kernel().run_until_done([&] { return write_done; });
}

TEST_F(PipeTest, WriterBlocksWhenFullUntilReaderDrains) {
  auto [rd, wr] = make_pipe(0);
  auto& fs = cluster_.host(cluster_.workstation(0)).fs();
  const auto cap = cluster_.kernel().costs().pipe_capacity;

  // Fill past capacity: the second write must park.
  bool first = false, second = false;
  fs.write(wr, Bytes(static_cast<std::size_t>(cap), 'a'),
           [&](util::Result<std::int64_t> r) {
             ASSERT_TRUE(r.is_ok());
             first = true;
           });
  cluster_.kernel().run_until_done([&] { return first; });
  fs.write(wr, make_bytes("overflow"), [&](util::Result<std::int64_t> r) {
    ASSERT_TRUE(r.is_ok());
    second = true;
  });
  cluster_.run_for(Time::sec(1));
  EXPECT_FALSE(second);  // parked on the full buffer

  // Draining unblocks it.
  bool drained = false;
  fs.read(rd, cap, [&](util::Result<Bytes> r) {
    ASSERT_TRUE(r.is_ok());
    drained = true;
  });
  cluster_.kernel().run_until_done([&] { return drained && second; });
}

TEST(PipeProcessTest, ForkPipelineAcrossMigration) {
  // The canonical shell pattern, plus migration: parent creates a pipe and
  // forks; the child produces data; the parent consumes. Mid-stream the
  // CHILD is migrated to another host — the parent cannot tell.
  SpriteCluster cluster({.workstations = 3, .seed = 202});
  ScriptBuilder b;
  b.act(proc::SysPipe{});
  b.step([](ScriptProgram::Ctx& c) {
    c.locals["rd"] = c.view->rv;
    c.locals["wr"] = c.view->aux;
    return proc::SysFork{};
  });
  b.step([](ScriptProgram::Ctx& c) {
    c.locals["is_child"] = c.view->is_child ? 1 : 0;
    if (c.locals["is_child"]) {
      // Producer: close the read end, then emit 8 chunks with pauses (the
      // migration happens during one of them).
      return Action{proc::SysClose{static_cast<int>(c.locals["rd"])}};
    }
    // Consumer: close the write end and start reading.
    return Action{proc::SysClose{static_cast<int>(c.locals["wr"])}};
  });
  const int child_loop = b.next_index();
  b.step([child_loop](ScriptProgram::Ctx& c) -> Action {
    if (c.locals["is_child"]) {
      if (c.locals["i"] >= 8) return proc::SysExit{0};
      c.jump(child_loop + 1);
      return proc::Pause{Time::msec(300)};
    }
    // Parent: read until EOF.
    c.jump(child_loop + 2);
    return proc::SysRead{static_cast<int>(c.locals["rd"]), 64};
  });
  // child_loop+1: child writes a chunk and loops.
  b.step([child_loop](ScriptProgram::Ctx& c) -> Action {
    const std::string chunk = "chunk" + std::to_string(c.locals["i"]++) + ";";
    c.jump(child_loop);
    return proc::SysWrite{static_cast<int>(c.locals["wr"]),
                          fs::Bytes(chunk.begin(), chunk.end()), 0};
  });
  // child_loop+2: parent accumulates until EOF, then verifies.
  b.step([child_loop](ScriptProgram::Ctx& c) -> Action {
    if (!c.view->data.empty()) {
      c.note(std::string(c.view->data.begin(), c.view->data.end()));
      c.jump(child_loop);
      return proc::Compute{Time::zero()};
    }
    std::string all;
    for (const auto& t : c.trace) all += t;
    std::string expect;
    for (int i = 0; i < 8; ++i) expect += "chunk" + std::to_string(i) + ";";
    return proc::SysExit{all == expect ? 0 : 1};
  });

  cluster.install_program("/bin/pipeline", b.image());
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/pipeline", {});

  // Find the child (the other process on ws0) and migrate it mid-stream.
  cluster.run_for(Time::msec(900));
  proc::Pid child = proc::kInvalidPid;
  for (const auto& pcb :
       cluster.host(cluster.workstation(0)).procs().local_processes()) {
    if (pcb->pid != pid) child = pcb->pid;
  }
  ASSERT_NE(child, proc::kInvalidPid);
  ASSERT_TRUE(cluster.migrate(child, cluster.workstation(2)).is_ok());

  EXPECT_EQ(cluster.wait(child), 0);
  EXPECT_EQ(cluster.wait(pid), 0) << "parent saw every chunk, in order, "
                                     "despite the producer migrating";
}

TEST(PipeProcessTest, BothEndsMigrateAndDataStillFlows) {
  SpriteCluster cluster({.workstations = 4, .seed = 203});
  // Producer and consumer as separate kernel-driven streams.
  auto& fs0 = cluster.host(cluster.workstation(0)).fs();
  std::pair<StreamPtr, StreamPtr> pipe_ends;
  bool made = false;
  fs0.create_pipe([&](util::Result<std::pair<StreamPtr, StreamPtr>> r) {
    ASSERT_TRUE(r.is_ok());
    pipe_ends = *r;
    made = true;
  });
  cluster.kernel().run_until_done([&] { return made; });

  // Move the read end to ws1 and the write end to ws2.
  ExportedStream rd_exp, wr_exp;
  bool e1 = false, e2 = false;
  fs0.export_stream(pipe_ends.first, cluster.workstation(1), false,
                    [&](util::Result<ExportedStream> r) {
                      ASSERT_TRUE(r.is_ok());
                      rd_exp = *r;
                      e1 = true;
                    });
  cluster.kernel().run_until_done([&] { return e1; });
  fs0.export_stream(pipe_ends.second, cluster.workstation(2), false,
                    [&](util::Result<ExportedStream> r) {
                      ASSERT_TRUE(r.is_ok());
                      wr_exp = *r;
                      e2 = true;
                    });
  cluster.kernel().run_until_done([&] { return e2; });

  auto rd = cluster.host(cluster.workstation(1)).fs().import_stream(rd_exp);
  auto wr = cluster.host(cluster.workstation(2)).fs().import_stream(wr_exp);

  bool read_done = false;
  cluster.host(cluster.workstation(1))
      .fs()
      .read(rd, 64, [&](util::Result<Bytes> r) {
        ASSERT_TRUE(r.is_ok());
        EXPECT_EQ(std::string(r->begin(), r->end()), "cross-host");
        read_done = true;
      });
  cluster.run_for(Time::msec(100));  // reader parks on the empty pipe
  cluster.host(cluster.workstation(2))
      .fs()
      .write(wr, make_bytes("cross-host"), [](util::Result<std::int64_t>) {});
  cluster.kernel().run_until_done([&] { return read_done; });
}

}  // namespace
}  // namespace sprite::fs
