// Additional FS tests: client name caching (the implemented future-work
// optimization), stream-migration consistency (regression for the
// write-A->B->A stale-cache bug), and multi-server prefix routing.
#include <gtest/gtest.h>

#include <string>

#include "fs/client.h"
#include "fs/server.h"
#include "kern/cluster.h"
#include "sim/time.h"

namespace sprite::fs {
namespace {

using kern::Cluster;
using sim::Time;
using util::Err;
using util::Status;

Bytes make_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string to_string(const Bytes& b) { return std::string(b.begin(), b.end()); }

class FsExtraTest : public ::testing::Test {
 protected:
  FsExtraTest() : cluster_({.num_workstations = 3, .num_file_servers = 1}) {}

  StreamPtr open_ok(sim::HostId h, const std::string& path, OpenFlags flags) {
    StreamPtr out;
    bool done = false;
    cluster_.host(h).fs().open(path, flags, [&](util::Result<StreamPtr> r) {
      EXPECT_TRUE(r.is_ok()) << r.status().to_string();
      if (r.is_ok()) out = *r;
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return out;
  }

  void close_ok(sim::HostId h, const StreamPtr& s) {
    bool done = false;
    cluster_.host(h).fs().close(s, [&](Status) { done = true; });
    cluster_.run_until_done([&] { return done; });
  }

  sim::HostId ws(int i) {
    return cluster_.workstations()[static_cast<std::size_t>(i)];
  }
  FsServer& server() { return *cluster_.file_server().fs_server(); }

  Cluster cluster_;
};

TEST_F(FsExtraTest, NameCacheSkipsServerLookups) {
  server().mkdir_p("/a/b/c");
  server().create_file("/a/b/c/deep", 128);
  auto& fs = cluster_.host(ws(0)).fs();
  fs.enable_name_cache(true);

  auto s1 = open_ok(ws(0), "/a/b/c/deep", OpenFlags::read_only());
  close_ok(ws(0), s1);
  const auto lookups_after_first = server().stats().lookup_components;
  EXPECT_EQ(fs.name_cache_size(), 1u);

  auto s2 = open_ok(ws(0), "/a/b/c/deep", OpenFlags::read_only());
  close_ok(ws(0), s2);
  EXPECT_EQ(server().stats().lookup_components, lookups_after_first)
      << "second open must resolve by hint, not by path";
  EXPECT_EQ(server().stats().hinted_opens, 1);
  EXPECT_GE(fs.stats().name_cache_hits, 1);
}

TEST_F(FsExtraTest, StaleNameCacheHintFallsBackTransparently) {
  server().create_file("/victim", 16);
  auto& fs = cluster_.host(ws(0)).fs();
  fs.enable_name_cache(true);
  auto s1 = open_ok(ws(0), "/victim", OpenFlags::read_only());
  close_ok(ws(0), s1);

  // Another host replaces the file: unlink + recreate (new inode).
  bool done = false;
  cluster_.host(ws(1)).fs().unlink("/victim", [&](Status st) {
    EXPECT_TRUE(st.is_ok());
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  server().create_file("/victim", 32);

  // The cached hint names a reaped inode: the server detects it and falls
  // back to a full lookup on its own, so the open still succeeds and finds
  // the NEW file.
  const auto hinted_before = server().stats().hinted_opens;
  auto s2 = open_ok(ws(0), "/victim", OpenFlags::read_only());
  ASSERT_TRUE(s2);
  EXPECT_EQ(s2->size_hint, 32);
  EXPECT_EQ(server().stats().hinted_opens, hinted_before);

  // And the client's cache self-corrects: the next open hints the new inode.
  close_ok(ws(0), s2);
  auto s3 = open_ok(ws(0), "/victim", OpenFlags::read_only());
  ASSERT_TRUE(s3);
  EXPECT_EQ(server().stats().hinted_opens, hinted_before + 1);
}

TEST_F(FsExtraTest, NameCacheInvalidatedByLocalUnlink) {
  server().create_file("/gone2", 8);
  auto& fs = cluster_.host(ws(0)).fs();
  fs.enable_name_cache(true);
  auto s = open_ok(ws(0), "/gone2", OpenFlags::read_only());
  close_ok(ws(0), s);
  EXPECT_EQ(fs.name_cache_size(), 1u);
  bool done = false;
  fs.unlink("/gone2", [&](Status) { done = true; });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(fs.name_cache_size(), 0u);
}

TEST_F(FsExtraTest, WriteStreamMigrationBumpsVersionAndInvalidatesStaleCache) {
  // Regression for the bug the migration-chain property test caught: a
  // write stream moving A -> B -> A must not let A reuse its stale cache.
  auto s = open_ok(ws(0), "/roundtrip", OpenFlags::create_rw());
  bool done = false;
  cluster_.host(ws(0)).fs().write(s, make_bytes("AAAA"),
                                  [&](util::Result<std::int64_t>) {
                                    done = true;
                                  });
  cluster_.run_until_done([&] { return done; });

  // Move the stream to host 1, write there, move it back.
  ExportedStream e1;
  done = false;
  cluster_.host(ws(0)).fs().export_stream(
      s, ws(1), false, [&](util::Result<ExportedStream> r) {
        ASSERT_TRUE(r.is_ok());
        e1 = *r;
        done = true;
      });
  cluster_.run_until_done([&] { return done; });
  auto s1 = cluster_.host(ws(1)).fs().import_stream(e1);
  done = false;
  cluster_.host(ws(1)).fs().write(s1, make_bytes("BBBB"),
                                  [&](util::Result<std::int64_t>) {
                                    done = true;
                                  });
  cluster_.run_until_done([&] { return done; });

  ExportedStream e2;
  done = false;
  cluster_.host(ws(1)).fs().export_stream(
      s1, ws(0), false, [&](util::Result<ExportedStream> r) {
        ASSERT_TRUE(r.is_ok());
        e2 = *r;
        done = true;
      });
  cluster_.run_until_done([&] { return done; });
  auto s0 = cluster_.host(ws(0)).fs().import_stream(e2);

  // Write once more on host 0 (extends the same block) and flush.
  done = false;
  cluster_.host(ws(0)).fs().write(s0, make_bytes("CCCC"),
                                  [&](util::Result<std::int64_t>) {
                                    done = true;
                                  });
  cluster_.run_until_done([&] { return done; });
  done = false;
  cluster_.host(ws(0)).fs().fsync(s0, [&](Status) { done = true; });
  cluster_.run_until_done([&] { return done; });

  auto st = server().stat_path("/roundtrip");
  ASSERT_TRUE(st.is_ok());
  auto data = server().read_direct(st->id, 0, st->size);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(to_string(*data), "AAAABBBBCCCC");
}

TEST(FsMultiServerTest, PrefixesRouteToDistinctServersAndMigrationSpansThem) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 2});
  auto ws = cluster.workstations();
  // Server 1 exports /s1.
  ASSERT_TRUE(cluster.file_server(1).fs_server()->mkdir_p("/s1").is_ok());
  ASSERT_TRUE(
      cluster.file_server(1).fs_server()->create_file("/s1/data", 64).is_ok());
  ASSERT_TRUE(
      cluster.file_server(0).fs_server()->create_file("/rootdata", 64).is_ok());

  auto open_on = [&](sim::HostId h, const std::string& p) {
    StreamPtr out;
    bool done = false;
    cluster.host(h).fs().open(p, OpenFlags::read_write(),
                              [&](util::Result<StreamPtr> r) {
                                EXPECT_TRUE(r.is_ok());
                                if (r.is_ok()) out = *r;
                                done = true;
                              });
    cluster.run_until_done([&] { return done; });
    return out;
  };

  auto a = open_on(ws[0], "/rootdata");
  auto b = open_on(ws[0], "/s1/data");
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->file.server, cluster.file_server(0).id());
  EXPECT_EQ(b->file.server, cluster.file_server(1).id());

  // A stream on the second server migrates between workstations: the
  // I/O-server RPC goes to server 1, not server 0.
  const auto migs_before =
      cluster.file_server(1).fs_server()->stats().stream_migrations;
  bool done = false;
  cluster.host(ws[0]).fs().export_stream(
      b, ws[1], false, [&](util::Result<ExportedStream> r) {
        ASSERT_TRUE(r.is_ok());
        auto imported = cluster.host(ws[1]).fs().import_stream(*r);
        EXPECT_EQ(imported->file.server, cluster.file_server(1).id());
        done = true;
      });
  cluster.run_until_done([&] { return done; });
  EXPECT_EQ(cluster.file_server(1).fs_server()->stats().stream_migrations,
            migs_before + 1);
  EXPECT_EQ(cluster.file_server(0).fs_server()->stats().stream_migrations, 0);
}

}  // namespace
}  // namespace sprite::fs
