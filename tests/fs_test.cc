// Tests for the Sprite network file system substrate: naming, block caching,
// delayed writes, cache consistency (recall / disable), shared access
// positions, stream migration, and pseudo-devices.
#include <gtest/gtest.h>

#include <string>

#include "fs/client.h"
#include "fs/server.h"
#include "kern/cluster.h"
#include "sim/time.h"

namespace sprite::fs {
namespace {

using kern::Cluster;
using sim::Time;
using util::Err;
using util::Status;

Bytes make_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string to_string(const Bytes& b) { return std::string(b.begin(), b.end()); }

class FsTest : public ::testing::Test {
 protected:
  FsTest() : cluster_({.num_workstations = 3, .num_file_servers = 1}) {}

  // Blocking-style wrappers: run the simulation until the callback fires.
  StreamPtr open_ok(sim::HostId h, const std::string& path, OpenFlags flags) {
    util::Result<StreamPtr> out(Err::kAgain);
    bool done = false;
    cluster_.host(h).fs().open(path, flags, [&](util::Result<StreamPtr> r) {
      out = std::move(r);
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    EXPECT_TRUE(out.is_ok()) << out.status().to_string();
    return out.is_ok() ? *out : nullptr;
  }

  Err open_err(sim::HostId h, const std::string& path, OpenFlags flags) {
    Err out = Err::kOk;
    bool done = false;
    cluster_.host(h).fs().open(path, flags, [&](util::Result<StreamPtr> r) {
      out = r.err();
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return out;
  }

  Bytes read_ok(sim::HostId h, const StreamPtr& s, std::int64_t len) {
    util::Result<Bytes> out(Err::kAgain);
    bool done = false;
    cluster_.host(h).fs().read(s, len, [&](util::Result<Bytes> r) {
      out = std::move(r);
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    EXPECT_TRUE(out.is_ok()) << out.status().to_string();
    return out.is_ok() ? *out : Bytes{};
  }

  std::int64_t write_ok(sim::HostId h, const StreamPtr& s, const Bytes& data) {
    util::Result<std::int64_t> out(Err::kAgain);
    bool done = false;
    cluster_.host(h).fs().write(s, data, [&](util::Result<std::int64_t> r) {
      out = std::move(r);
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    EXPECT_TRUE(out.is_ok()) << out.status().to_string();
    return out.is_ok() ? *out : -1;
  }

  Status close_s(sim::HostId h, const StreamPtr& s) {
    Status out(Err::kAgain);
    bool done = false;
    cluster_.host(h).fs().close(s, [&](Status st) {
      out = st;
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return out;
  }

  Status fsync_s(sim::HostId h, const StreamPtr& s) {
    Status out(Err::kAgain);
    bool done = false;
    cluster_.host(h).fs().fsync(s, [&](Status st) {
      out = st;
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return out;
  }

  FsServer& server() { return *cluster_.file_server().fs_server(); }
  sim::HostId ws(int i) { return cluster_.workstations()[static_cast<std::size_t>(i)]; }

  Cluster cluster_;
};

TEST_F(FsTest, PrefixRoutingPicksLongestMatch) {
  auto& fs = cluster_.host(ws(0)).fs();
  fs.add_prefix("/special", 2);
  auto r1 = fs.route("/a/b");
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(*r1, cluster_.file_server().id());
  auto r2 = fs.route("/special/x");
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(*r2, 2);
}

TEST_F(FsTest, OpenMissingFileFails) {
  EXPECT_EQ(open_err(ws(0), "/nope", OpenFlags::read_only()), Err::kNoEnt);
}

TEST_F(FsTest, CreateWriteReadBackSameHost) {
  auto s = open_ok(ws(0), "/f", OpenFlags::create_rw());
  ASSERT_TRUE(s);
  EXPECT_EQ(write_ok(ws(0), s, make_bytes("hello sprite")), 12);
  EXPECT_TRUE(cluster_.host(ws(0)).fs().seek(s, 0).is_ok());
  EXPECT_EQ(to_string(read_ok(ws(0), s, 64)), "hello sprite");
  EXPECT_TRUE(close_s(ws(0), s).is_ok());
}

TEST_F(FsTest, DataVisibleAcrossHostsAfterDelayedWriteRecall) {
  // Host 0 writes through its cache (delayed write, nothing at the server
  // yet); host 1's open triggers a recall of the dirty blocks [NWO88].
  auto s0 = open_ok(ws(0), "/shared", OpenFlags::create_rw());
  write_ok(ws(0), s0, make_bytes("cached-data"));
  EXPECT_TRUE(close_s(ws(0), s0).is_ok());
  EXPECT_GT(cluster_.host(ws(0)).fs().dirty_bytes(s0->file), 0);

  auto s1 = open_ok(ws(1), "/shared", OpenFlags::read_only());
  ASSERT_TRUE(s1);
  EXPECT_EQ(to_string(read_ok(ws(1), s1, 64)), "cached-data");
  EXPECT_EQ(server().stats().recalls, 1);
  // The recall flushed host 0's cache.
  EXPECT_EQ(cluster_.host(ws(0)).fs().dirty_bytes(s0->file), 0);
}

TEST_F(FsTest, RepeatedReadsHitClientCache) {
  server().create_file("/warm", 8192);
  auto s = open_ok(ws(0), "/warm", OpenFlags::read_only());
  read_ok(ws(0), s, 8192);
  const auto misses_before =
      cluster_.host(ws(0)).fs().stats().cache_miss_blocks;
  cluster_.host(ws(0)).fs().seek(s, 0);
  read_ok(ws(0), s, 8192);
  const auto& st = cluster_.host(ws(0)).fs().stats();
  EXPECT_EQ(st.cache_miss_blocks, misses_before);  // no new misses
  EXPECT_GE(st.cache_hit_blocks, 2);
}

TEST_F(FsTest, DelayedWritebackReachesServerAfterDelay) {
  auto s = open_ok(ws(0), "/delayed", OpenFlags::create_rw());
  write_ok(ws(0), s, make_bytes("zzz"));
  // Before the 30 s delay, the server has no data.
  auto direct = server().read_direct(s->file, 0, 3);
  ASSERT_TRUE(direct.is_ok());
  EXPECT_EQ(direct->size(), 0u);  // size still 0 at server
  cluster_.sim().run_until(cluster_.sim().now() + Time::sec(31));
  direct = server().read_direct(s->file, 0, 3);
  ASSERT_TRUE(direct.is_ok());
  EXPECT_EQ(to_string(*direct), "zzz");
}

TEST_F(FsTest, FsyncFlushesImmediately) {
  auto s = open_ok(ws(0), "/sync", OpenFlags::create_rw());
  write_ok(ws(0), s, make_bytes("now"));
  EXPECT_TRUE(fsync_s(ws(0), s).is_ok());
  auto direct = server().read_direct(s->file, 0, 3);
  ASSERT_TRUE(direct.is_ok());
  EXPECT_EQ(to_string(*direct), "now");
}

TEST_F(FsTest, ConcurrentWriteSharingDisablesCaching) {
  auto s0 = open_ok(ws(0), "/conc", OpenFlags::create_rw());
  ASSERT_TRUE(s0->cacheable);
  // A second host opens for writing while host 0 still has it open.
  auto s1 = open_ok(ws(1), "/conc", OpenFlags::write_only());
  ASSERT_TRUE(s1);
  EXPECT_FALSE(s1->cacheable);
  EXPECT_FALSE(server().is_cacheable(s0->file));
  EXPECT_GE(server().stats().cache_disables, 1);
  // Run a little so host 0 processes its disable callback.
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(50));
  EXPECT_GE(cluster_.host(ws(0)).fs().stats().cache_disables, 1);
}

TEST_F(FsTest, UncachedWritesAreImmediatelyVisibleToOtherHost) {
  auto s0 = open_ok(ws(0), "/wshare", OpenFlags::create_rw());
  auto s1 = open_ok(ws(1), "/wshare", OpenFlags::read_write());
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(50));
  // Both hosts now bypass their caches: writes go straight to the server.
  write_ok(ws(0), s0, make_bytes("AB"));
  auto got = read_ok(ws(1), s1, 2);
  EXPECT_EQ(to_string(got), "AB");
}

TEST_F(FsTest, CachingReenabledAfterSharingEnds) {
  auto s0 = open_ok(ws(0), "/reuse", OpenFlags::create_rw());
  auto s1 = open_ok(ws(1), "/reuse", OpenFlags::write_only());
  EXPECT_FALSE(s1->cacheable);
  EXPECT_TRUE(close_s(ws(0), s0).is_ok());
  EXPECT_TRUE(close_s(ws(1), s1).is_ok());
  // With no conflicting users left, a fresh open may cache again.
  auto s2 = open_ok(ws(2), "/reuse", OpenFlags::read_write());
  EXPECT_TRUE(s2->cacheable);
}

TEST_F(FsTest, VersionChangeInvalidatesStaleCache) {
  server().create_file("/ver", 0);
  auto s0 = open_ok(ws(0), "/ver", OpenFlags::read_write());
  write_ok(ws(0), s0, make_bytes("old!"));
  close_s(ws(0), s0);

  // Host 1 rewrites the file (recall flushes host 0, version bumps).
  auto s1 = open_ok(ws(1), "/ver", OpenFlags::read_write());
  write_ok(ws(1), s1, make_bytes("new!"));
  close_s(ws(1), s1);

  // Host 0 reopens: version mismatch must invalidate its old blocks, and the
  // open recalls host 1's dirty data.
  auto s2 = open_ok(ws(0), "/ver", OpenFlags::read_only());
  EXPECT_EQ(to_string(read_ok(ws(0), s2, 4)), "new!");
}

TEST_F(FsTest, LargeFileRoundTripAcrossHosts) {
  // Multi-block, multi-RPC-run content integrity.
  auto s0 = open_ok(ws(0), "/big", OpenFlags::create_rw());
  Bytes data(50 * 1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>((i * 7 + 3) & 0xff);
  write_ok(ws(0), s0, data);
  close_s(ws(0), s0);

  auto s1 = open_ok(ws(1), "/big", OpenFlags::read_only());
  Bytes got = read_ok(ws(1), s1, static_cast<std::int64_t>(data.size()) + 100);
  EXPECT_EQ(got, data);
}

TEST_F(FsTest, ReadModifyWritePreservesSurroundingBytes) {
  // A partial-block write on a host that has not cached the block must
  // fetch it first (read-modify-write).
  auto s0 = open_ok(ws(0), "/rmw", OpenFlags::create_rw());
  Bytes base(6000, 'a');
  write_ok(ws(0), s0, base);
  fsync_s(ws(0), s0);
  close_s(ws(0), s0);

  auto s1 = open_ok(ws(1), "/rmw", OpenFlags::read_write());
  cluster_.host(ws(1)).fs().seek(s1, 100);
  write_ok(ws(1), s1, make_bytes("XY"));
  fsync_s(ws(1), s1);

  auto direct = server().read_direct(s1->file, 0, 6000);
  ASSERT_TRUE(direct.is_ok());
  EXPECT_EQ((*direct)[99], 'a');
  EXPECT_EQ((*direct)[100], 'X');
  EXPECT_EQ((*direct)[101], 'Y');
  EXPECT_EQ((*direct)[102], 'a');
  EXPECT_EQ((*direct)[5999], 'a');
}

TEST_F(FsTest, SeekBeyondEofReadsShort) {
  server().create_file("/short", 10);
  auto s = open_ok(ws(0), "/short", OpenFlags::read_only());
  cluster_.host(ws(0)).fs().seek(s, 8);
  EXPECT_EQ(read_ok(ws(0), s, 100).size(), 2u);
  EXPECT_EQ(read_ok(ws(0), s, 100).size(), 0u);  // at EOF
}

TEST_F(FsTest, UnlinkRemovesName) {
  server().create_file("/gone", 5);
  bool done = false;
  Status st(Err::kAgain);
  cluster_.host(ws(0)).fs().unlink("/gone", [&](Status s) {
    st = s;
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(open_err(ws(0), "/gone", OpenFlags::read_only()), Err::kNoEnt);
}

TEST_F(FsTest, MkdirAndNestedCreate) {
  bool done = false;
  cluster_.host(ws(0)).fs().mkdir("/dir", [&](Status s) {
    EXPECT_TRUE(s.is_ok());
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  auto s = open_ok(ws(0), "/dir/file", OpenFlags::create_rw());
  EXPECT_TRUE(s);
}

TEST_F(FsTest, StatReportsSizeAndType) {
  server().mkdir_p("/d");
  server().create_file("/d/f", 1234);
  bool done = false;
  StatResult st;
  cluster_.host(ws(0)).fs().stat("/d/f", [&](util::Result<StatResult> r) {
    ASSERT_TRUE(r.is_ok());
    st = *r;
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(st.size, 1234);
  EXPECT_EQ(st.type, FileType::kRegular);
}

TEST_F(FsTest, TruncateOnOpenClearsContent) {
  auto s0 = open_ok(ws(0), "/t", OpenFlags::create_rw());
  write_ok(ws(0), s0, make_bytes("0123456789"));
  fsync_s(ws(0), s0);
  close_s(ws(0), s0);
  OpenFlags trunc = OpenFlags::create_rw();
  trunc.truncate = true;
  auto s1 = open_ok(ws(1), "/t", trunc);
  EXPECT_EQ(read_ok(ws(1), s1, 10).size(), 0u);
}

TEST_F(FsTest, LookupCostScalesWithPathComponents) {
  server().mkdir_p("/a/b/c/d");
  server().create_file("/a/b/c/d/deep", 0);
  server().create_file("/flat", 0);
  server().reset_stats();
  open_ok(ws(0), "/a/b/c/d/deep", OpenFlags::read_only());
  EXPECT_EQ(server().stats().lookup_components, 5);
  open_ok(ws(0), "/flat", OpenFlags::read_only());
  EXPECT_EQ(server().stats().lookup_components, 6);
}

TEST_F(FsTest, SharedOffsetMovesToServerAndStaysCoherent) {
  server().create_file("/log", 0);
  auto s = open_ok(ws(0), "/log", OpenFlags::read_write());
  write_ok(ws(0), s, make_bytes("aaaa"));  // offset now 4

  // Simulate migration splitting the stream group across hosts 0 and 1.
  bool done = false;
  ExportedStream exported;
  cluster_.host(ws(0)).fs().export_stream(
      s, ws(1), /*shared_on_source=*/true,
      [&](util::Result<ExportedStream> r) {
        ASSERT_TRUE(r.is_ok());
        exported = *r;
        done = true;
      });
  cluster_.run_until_done([&] { return done; });
  EXPECT_TRUE(exported.server_offset);
  EXPECT_TRUE(s->server_offset);  // the copy left behind also goes remote
  EXPECT_EQ(server().group_offset(s->file, s->group), 4);

  auto s1 = cluster_.host(ws(1)).fs().import_stream(exported);
  // Writes from both hosts interleave through the server-managed offset.
  write_ok(ws(1), s1, make_bytes("bb"));
  write_ok(ws(0), s, make_bytes("cc"));
  EXPECT_EQ(server().group_offset(s->file, s->group), 8);
  auto direct = server().read_direct(s->file, 0, 8);
  ASSERT_TRUE(direct.is_ok());
  EXPECT_EQ(to_string(*direct), "aaaabbcc");
}

TEST_F(FsTest, ExportFlushesDirtyDataSoDestinationSeesIt) {
  auto s = open_ok(ws(0), "/mig", OpenFlags::create_rw());
  write_ok(ws(0), s, make_bytes("payload"));
  EXPECT_GT(cluster_.host(ws(0)).fs().dirty_bytes(s->file), 0);

  bool done = false;
  ExportedStream exported;
  cluster_.host(ws(0)).fs().export_stream(
      s, ws(1), /*shared_on_source=*/false,
      [&](util::Result<ExportedStream> r) {
        ASSERT_TRUE(r.is_ok());
        exported = *r;
        done = true;
      });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(cluster_.host(ws(0)).fs().dirty_bytes(s->file), 0);
  EXPECT_EQ(server().stats().stream_migrations, 1);

  auto s1 = cluster_.host(ws(1)).fs().import_stream(exported);
  EXPECT_EQ(s1->offset, 7);         // access position travelled with it
  EXPECT_FALSE(s1->server_offset);  // sole owner: offset stays local
  cluster_.host(ws(1)).fs().seek(s1, 0);
  EXPECT_EQ(to_string(read_ok(ws(1), s1, 7)), "payload");
}

TEST_F(FsTest, MigrationCreatingWriteSharingDisablesCaching) {
  // A writer and a reader on the SAME host share nothing across hosts, so
  // caching stays enabled. Migrating the writer stream to another host
  // creates cross-host write sharing, which must disable caching.
  auto w = open_ok(ws(0), "/x", OpenFlags::create_rw());
  auto r = open_ok(ws(0), "/x", OpenFlags::read_only());
  ASSERT_TRUE(w->cacheable);
  ASSERT_TRUE(r->cacheable);
  ASSERT_TRUE(server().is_cacheable(w->file));

  bool done = false;
  ExportedStream exported;
  cluster_.host(ws(0)).fs().export_stream(
      w, ws(1), false, [&](util::Result<ExportedStream> res) {
        ASSERT_TRUE(res.is_ok());
        exported = *res;
        done = true;
      });
  cluster_.run_until_done([&] { return done; });
  // Writer now on 1, reader still on 0 -> write-shared.
  EXPECT_FALSE(exported.cacheable);
  EXPECT_FALSE(server().is_cacheable(w->file));
}

TEST_F(FsTest, PdevRequestResponseAcrossHosts) {
  // A server process on workstation 2 registers a pseudo-device; host 0
  // opens it and transacts.
  auto& owner = cluster_.host(ws(2));
  const int tag = owner.pdev().register_server(
      [](const Bytes& req, std::function<void(util::Result<Bytes>)> reply) {
        Bytes out = req;
        for (auto& b : out) b = static_cast<std::uint8_t>(b + 1);
        reply(out);
      });
  server().mkdir_p("/dev");
  ASSERT_TRUE(server().create_pdev("/dev/svc", ws(2), tag).is_ok());

  auto s = open_ok(ws(0), "/dev/svc", OpenFlags::read_write());
  ASSERT_TRUE(s);
  EXPECT_EQ(s->type, FileType::kPseudoDevice);

  bool done = false;
  Bytes rep;
  cluster_.host(ws(0)).fs().pdev_call(s, make_bytes("abc"),
                                      [&](util::Result<Bytes> r) {
                                        ASSERT_TRUE(r.is_ok());
                                        rep = *r;
                                        done = true;
                                      });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(to_string(rep), "bcd");
}

TEST_F(FsTest, PdevCallIncludesWakeupLatency) {
  auto& owner = cluster_.host(ws(1));
  const int tag = owner.pdev().register_server(
      [](const Bytes&, std::function<void(util::Result<Bytes>)> reply) {
        reply(Bytes{});
      });
  server().mkdir_p("/dev");
  ASSERT_TRUE(server().create_pdev("/dev/slow", ws(1), tag).is_ok());
  auto s = open_ok(ws(0), "/dev/slow", OpenFlags::read_write());
  const Time start = cluster_.sim().now();
  bool done = false;
  cluster_.host(ws(0)).fs().pdev_call(s, {}, [&](util::Result<Bytes>) {
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  const double ms = (cluster_.sim().now() - start).ms();
  // Two RPC legs + 10 ms wakeup + ~4 ms service CPU.
  EXPECT_GT(ms, 14.0);
  EXPECT_LT(ms, 40.0);
}

TEST_F(FsTest, NoCacheStreamsBypassClientCache) {
  server().create_file("/swapfile", 64 * 1024);
  OpenFlags flags = OpenFlags::read_write();
  flags.no_cache = true;
  auto s = open_ok(ws(0), "/swapfile", flags);
  read_ok(ws(0), s, 16 * 1024);
  const auto& st = cluster_.host(ws(0)).fs().stats();
  EXPECT_EQ(st.cache_hit_blocks + st.cache_miss_blocks, 0);
  EXPECT_GE(st.remote_reads, 1);
}

TEST_F(FsTest, BulkFlushRateNearCalibration) {
  // E1's per-MB figure: flushing 1 MB of dirty data through the FS should
  // take roughly 480 ms (we accept 380-700 ms).
  auto s = open_ok(ws(0), "/bulk", OpenFlags::create_rw());
  Bytes mb(1 << 20, 0x5a);
  write_ok(ws(0), s, mb);
  const Time start = cluster_.sim().now();
  EXPECT_TRUE(fsync_s(ws(0), s).is_ok());
  const double ms = (cluster_.sim().now() - start).ms();
  EXPECT_GT(ms, 380.0);
  EXPECT_LT(ms, 700.0);
}

}  // namespace
}  // namespace sprite::fs
