// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sprite::sim {
namespace {

TEST(Time, ArithmeticAndConversions) {
  EXPECT_EQ(Time::msec(1).us(), 1000);
  EXPECT_EQ(Time::sec(1).us(), 1000000);
  EXPECT_EQ((Time::msec(2) + Time::msec(3)).ms(), 5.0);
  EXPECT_EQ((Time::sec(1) - Time::msec(250)).ms(), 750.0);
  EXPECT_DOUBLE_EQ(Time::sec(3) / Time::sec(2), 1.5);
  EXPECT_LT(Time::msec(1), Time::msec(2));
  EXPECT_EQ((Time::msec(10) * 2.5).ms(), 25.0);
}

TEST(Time, ToStringPicksSensibleUnits) {
  EXPECT_EQ(Time::usec(12).to_string(), "12us");
  EXPECT_EQ(Time::msec(12).to_string(), "12.000ms");
  EXPECT_EQ(Time::sec(2).to_string(), "2.000s");
}

TEST(EventQueue, FiresInTimeThenInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(Time::msec(5), [&] { order.push_back(2); });
  sim.at(Time::msec(1), [&] { order.push_back(1); });
  sim.at(Time::msec(5), [&] { order.push_back(3); });  // same time, later seq
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time::msec(5));
}

TEST(EventQueue, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.at(Time::msec(1), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFiringIsNoop) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.at(Time::msec(1), [&] { ++fired; });
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.run_until(Time::sec(3));
  EXPECT_EQ(sim.now(), Time::sec(3));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.after(Time::msec(1), chain);
  };
  sim.after(Time::msec(1), chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), Time::msec(5));
}

TEST(Simulator, EveryStopsAtHorizon) {
  Simulator sim;
  sim.set_horizon(Time::sec(10));
  int ticks = 0;
  sim.every(Time::sec(1), [&] { ++ticks; });
  sim.run();
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(sim.now(), Time::sec(10));
}

TEST(Simulator, ForkedRngStreamsAreIndependentAndDeterministic) {
  Simulator a(42), b(42);
  auto ra1 = a.fork_rng();
  auto ra2 = a.fork_rng();
  auto rb1 = b.fork_rng();
  EXPECT_EQ(ra1.next_u64(), rb1.next_u64());      // same seed, same stream
  EXPECT_NE(ra1.next_u64(), ra2.next_u64());      // distinct streams
}

TEST(Network, PointToPointDeliveryTimesReflectBandwidthAndLatency) {
  Simulator sim;
  Costs costs;
  Network net(sim, costs);
  Time delivered_at;
  HostId a = net.attach(nullptr);
  HostId b = net.attach([&](const Packet& p) {
    EXPECT_EQ(p.src, 0);
    EXPECT_EQ(p.bytes, 10000);
    delivered_at = sim.now();
  });
  net.send(a, b, 10000, {});
  sim.run();
  const Time expected =
      costs.wire_time(10000) + costs.net_latency;
  EXPECT_EQ(delivered_at, expected);
}

TEST(Network, SharedMediumSerializesConcurrentSenders) {
  Simulator sim;
  Costs costs;
  Network net(sim, costs);
  std::vector<Time> deliveries;
  HostId a = net.attach(nullptr);
  HostId b = net.attach(nullptr);
  HostId c = net.attach([&](const Packet&) { deliveries.push_back(sim.now()); });
  net.send(a, c, 100000, {});
  net.send(b, c, 100000, {});  // must queue behind the first transmission
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  const Time tx = costs.wire_time(100000);
  EXPECT_EQ(deliveries[0], tx + costs.net_latency);
  EXPECT_EQ(deliveries[1], tx + tx + costs.net_latency);
}

TEST(Network, MulticastReachesAllUpHostsExceptSender) {
  Simulator sim;
  Costs costs;
  Network net(sim, costs);
  int received = 0;
  HostId a = net.attach([&](const Packet&) { ++received; });
  net.attach([&](const Packet&) { ++received; });
  net.attach([&](const Packet&) { ++received; });
  HostId d = net.attach([&](const Packet&) { ++received; });
  net.set_host_up(d, false);
  net.multicast(a, 100, {});
  sim.run();
  EXPECT_EQ(received, 2);  // b and c only: sender and down host excluded
}

TEST(Network, DownDestinationDropsMessage) {
  Simulator sim;
  Costs costs;
  Network net(sim, costs);
  int received = 0;
  HostId a = net.attach(nullptr);
  HostId b = net.attach([&](const Packet&) { ++received; });
  net.set_host_up(b, false);
  net.send(a, b, 100, {});
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_sent(), 1);  // it did occupy the wire
}

TEST(Cpu, KernelJobRunsToCompletion) {
  Simulator sim;
  Costs costs;
  Cpu cpu(sim, costs);
  Time done_at;
  cpu.submit(JobClass::kKernel, Time::msec(3), [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, Time::msec(3));
  EXPECT_EQ(cpu.busy_time(JobClass::kKernel), Time::msec(3));
}

TEST(Cpu, KernelPreemptsUser) {
  Simulator sim;
  Costs costs;
  Cpu cpu(sim, costs);
  Time user_done, kernel_done;
  cpu.submit(JobClass::kUser, Time::msec(50), [&] { user_done = sim.now(); });
  sim.run_until(Time::msec(10));
  cpu.submit(JobClass::kKernel, Time::msec(5), [&] { kernel_done = sim.now(); });
  sim.run();
  EXPECT_EQ(kernel_done, Time::msec(15));
  EXPECT_EQ(user_done, Time::msec(55));  // 50 ms of service, 5 ms stolen
}

TEST(Cpu, RoundRobinSharesCpuFairly) {
  Simulator sim;
  Costs costs;
  costs.quantum = Time::msec(10);
  Cpu cpu(sim, costs);
  Time a_done, b_done;
  cpu.submit(JobClass::kUser, Time::msec(30), [&] { a_done = sim.now(); });
  cpu.submit(JobClass::kUser, Time::msec(30), [&] { b_done = sim.now(); });
  sim.run();
  // Interleaved in 10 ms quanta: A finishes at 50 ms, B at 60 ms.
  EXPECT_EQ(a_done, Time::msec(50));
  EXPECT_EQ(b_done, Time::msec(60));
}

TEST(Cpu, CancelQueuedJobNeverRuns) {
  Simulator sim;
  Costs costs;
  Cpu cpu(sim, costs);
  bool ran = false;
  cpu.submit(JobClass::kUser, Time::msec(20), [] {});
  CpuJobId id = cpu.submit(JobClass::kUser, Time::msec(20), [&] { ran = true; });
  cpu.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Cpu, CancelRunningJobStartsNext) {
  Simulator sim;
  Costs costs;
  Cpu cpu(sim, costs);
  Time b_done;
  CpuJobId a = cpu.submit(JobClass::kUser, Time::msec(100), [] {});
  cpu.submit(JobClass::kUser, Time::msec(10), [&] { b_done = sim.now(); });
  sim.run_until(Time::msec(5));
  cpu.cancel(a);
  sim.run();
  EXPECT_EQ(b_done, Time::msec(15));  // 5 ms wasted by A, then B's 10 ms
}

TEST(Cpu, ZeroDemandJobCompletesImmediately) {
  Simulator sim;
  Costs costs;
  Cpu cpu(sim, costs);
  bool done = false;
  cpu.submit(JobClass::kUser, Time::zero(), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(Cpu, LoadAverageTracksRunnableJobs) {
  Simulator sim;
  sim.set_horizon(Time::sec(900));
  Costs costs;
  Cpu cpu(sim, costs);
  cpu.start_load_sampling();
  // Two CPU-bound jobs serialize on the single CPU: both runnable until
  // t=300 s (2 x 150 s of demand).
  cpu.submit(JobClass::kUser, Time::sec(150), [] {});
  cpu.submit(JobClass::kUser, Time::sec(150), [] {});
  sim.run_until(Time::sec(120));
  EXPECT_NEAR(cpu.load_average(), 2.0, 0.1);
  sim.run();  // drains to the 900 s horizon
  EXPECT_NEAR(cpu.load_average(), 0.0, 0.05);  // decayed back towards idle
}

TEST(Cpu, LoadBiasAddsAnticipatedLoad) {
  Simulator sim;
  Costs costs;
  Cpu cpu(sim, costs);
  EXPECT_DOUBLE_EQ(cpu.load_average(), 0.0);
  cpu.set_load_bias(1.0);
  EXPECT_DOUBLE_EQ(cpu.load_average(), 1.0);
}

TEST(Cpu, UtilizationAccountsBothClasses) {
  Simulator sim;
  Costs costs;
  Cpu cpu(sim, costs);
  cpu.submit(JobClass::kUser, Time::msec(30), [] {});
  cpu.submit(JobClass::kKernel, Time::msec(20), [] {});
  sim.run();
  EXPECT_EQ(cpu.busy_time(JobClass::kUser), Time::msec(30));
  EXPECT_EQ(cpu.busy_time(JobClass::kKernel), Time::msec(20));
  EXPECT_NEAR(cpu.utilization(), 1.0, 1e-9);
}

}  // namespace
}  // namespace sprite::sim
