// Tests for the application layer: pmake, the user-activity model, and the
// policy workload.
#include <gtest/gtest.h>

#include "apps/pmake.h"
#include "apps/workload.h"
#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "sim/time.h"

namespace sprite::apps {
namespace {

using kern::Cluster;
using sim::HostId;
using sim::Time;

Pmake::Result run_pmake(Cluster& cluster, ls::Facility* facility,
                        std::vector<Target> targets, int max_jobs) {
  Pmake::Options opt;
  opt.controller = cluster.workstations()[0];
  opt.max_jobs = max_jobs;
  opt.facility = facility;
  Pmake pmake(cluster, opt, std::move(targets));
  pmake.prepare();
  bool done = false;
  Pmake::Result result;
  pmake.run([&](Pmake::Result r) {
    result = r;
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  return result;
}

TEST(PmakeTest, SerialBuildCompletesAndCreatesOutputs) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1});
  auto targets = make_compile_graph(4, 3, Time::sec(2), Time::sec(1));
  auto result = run_pmake(cluster, nullptr, targets, 1);
  EXPECT_EQ(result.jobs, 5);  // 4 compiles + 1 link
  EXPECT_EQ(result.remote_jobs, 0);
  // Outputs exist on the server.
  for (int i = 0; i < 4; ++i) {
    auto st = cluster.file_server().fs_server()->stat_path(
        "/src/f" + std::to_string(i) + ".o");
    EXPECT_TRUE(st.is_ok());
  }
  EXPECT_TRUE(
      cluster.file_server().fs_server()->stat_path("/src/prog").is_ok());
  // Serial: makespan at least the sum of CPU demands.
  EXPECT_GE(result.makespan.s(), 9.0);
}

TEST(PmakeTest, ParallelBuildIsFasterThanSerial) {
  const auto graph = make_compile_graph(8, 3, Time::sec(3), Time::sec(1));

  Cluster serial_cluster({.num_workstations = 6, .num_file_servers = 1});
  auto serial = run_pmake(serial_cluster, nullptr, graph, 1);

  Cluster par_cluster({.num_workstations = 6, .num_file_servers = 1});
  ls::Facility facility(par_cluster, ls::Arch::kCentral);
  par_cluster.sim().run_until(Time::sec(45));  // hosts become idle
  auto parallel = run_pmake(par_cluster, &facility, graph, 8);

  EXPECT_EQ(parallel.jobs, 9);
  EXPECT_GE(parallel.remote_jobs, 4);
  const double speedup = serial.makespan.s() / parallel.makespan.s();
  EXPECT_GT(speedup, 2.0) << "serial " << serial.makespan.s() << "s vs "
                          << parallel.makespan.s() << "s";
}

TEST(PmakeTest, LinkWaitsForAllObjects) {
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1});
  ls::Facility facility(cluster, ls::Arch::kCentral);
  cluster.sim().run_until(Time::sec(45));
  auto targets = make_compile_graph(3, 2, Time::sec(1), Time::msec(500));
  auto result = run_pmake(cluster, &facility, targets, 8);
  EXPECT_EQ(result.jobs, 4);
  // Even perfectly parallel, the link's CPU is serial: makespan exceeds
  // compile + link.
  EXPECT_GE(result.makespan.s(), 1.5);
}

TEST(ActivityModelTest, DayIdleFractionNearPaper) {
  Cluster cluster({.num_workstations = 20,
                   .num_file_servers = 1,
                   .horizon = sim::Time::hours(30)});
  ls::Facility facility(cluster, ls::Arch::kCentral);
  UserActivityModel activity(cluster, UserActivityModel::Profile::office());
  activity.start();

  // Sample idleness hourly from 9:00 to 18:00 of day one.
  double idle_sum = 0;
  int samples = 0;
  for (int hour = 9; hour <= 17; ++hour) {
    cluster.sim().run_until(Time::hours(hour));
    idle_sum += facility.idle_count();
    ++samples;
  }
  const double day_idle = idle_sum / samples / 20.0;
  EXPECT_GT(day_idle, 0.5);
  EXPECT_LT(day_idle, 0.85);

  // Night: hosts mostly idle.
  cluster.sim().run_until(Time::hours(26));  // 2 AM next day
  const double night_idle = facility.idle_count() / 20.0;
  EXPECT_GT(night_idle, day_idle - 0.05);
}

TEST(ZhouLifetimesTest, HeavyTailedWithPaperMoments) {
  ZhouLifetimes gen{util::Rng(99)};
  util::Accumulator acc;
  for (int i = 0; i < 300000; ++i) acc.add(gen.next().s());
  EXPECT_NEAR(acc.mean(), 1.5, 0.15);
  EXPECT_GT(acc.stddev(), 14.0);
  EXPECT_LT(acc.stddev(), 26.0);
}

TEST(PolicyWorkloadTest, PlacementReducesSlowdownUnderLoad) {
  auto run_policy = [](PolicyWorkload::Policy policy) {
    Cluster cluster({.num_workstations = 8,
                     .num_file_servers = 1,
                     .seed = 7,
                     .horizon = sim::Time::hours(4)});
    ls::Facility facility(cluster, ls::Arch::kCentral);
    cluster.sim().run_until(Time::sec(45));
    PolicyWorkload::Options opt;
    opt.policy = policy;
    opt.arrivals_per_host_hz = 0.25;
    opt.duration = Time::minutes(8);
    PolicyWorkload wl(cluster, facility, opt);
    return wl.run();
  };

  auto none = run_policy(PolicyWorkload::Policy::kNone);
  auto placed = run_policy(PolicyWorkload::Policy::kPlacement);

  EXPECT_EQ(none.jobs_submitted, none.jobs_finished);
  EXPECT_EQ(placed.jobs_submitted, placed.jobs_finished);
  EXPECT_GT(placed.placed_remotely, 0);
  // With heavy-tailed lifetimes, queueing behind a long job dominates the
  // local-only policy; placement must shrink mean response time.
  EXPECT_LT(placed.response_s.mean(), none.response_s.mean())
      << "placement " << placed.response_s.mean() << "s vs local-only "
      << none.response_s.mean() << "s";
}

TEST(PolicyWorkloadTest, MigrationAddsActiveMoves) {
  Cluster cluster({.num_workstations = 8,
                   .num_file_servers = 1,
                   .seed = 11,
                   .horizon = sim::Time::hours(4)});
  ls::Facility facility(cluster, ls::Arch::kCentral);
  cluster.sim().run_until(Time::sec(45));
  PolicyWorkload::Options opt;
  opt.policy = PolicyWorkload::Policy::kPlacementPlusMigration;
  opt.arrivals_per_host_hz = 0.5;
  opt.duration = Time::minutes(8);
  PolicyWorkload wl(cluster, facility, opt);
  auto r = wl.run();
  EXPECT_EQ(r.jobs_submitted, r.jobs_finished);
  EXPECT_GT(r.active_migrations, 0);
}

}  // namespace
}  // namespace sprite::apps
