// Focused unit tests for paths the scenario suites exercise only
// incidentally: one-way RPC multicast, pseudo-device registry edges, CPU
// accounting details, gossip aging, stream reference counting, and VM
// release/re-adopt round trips.
#include <gtest/gtest.h>

#include "fs/pdev.h"
#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"
#include "rpc/rpc.h"
#include "vm/vm.h"

namespace sprite {
namespace {

using kern::Cluster;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Status;

TEST(RpcMulticastTest, OneWayRequestReachesEveryServiceNoReplies) {
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1});
  // Count kLoadShare deliveries via a custom service on each workstation.
  int delivered = 0;
  for (HostId w : cluster.workstations()) {
    cluster.host(w).rpc().register_service(
        rpc::ServiceId::kEcho,
        [&delivered](HostId, const rpc::Request&,
                     std::function<void(rpc::Reply)> respond) {
          ++delivered;
          respond(rpc::Reply{Status::ok(), nullptr});  // sink: goes nowhere
        });
  }
  cluster.net().reset_stats();
  cluster.host(cluster.workstations()[0])
      .rpc()
      .multicast(rpc::ServiceId::kEcho, 0, nullptr);
  cluster.sim().run_until(cluster.sim().now() + Time::msec(50));
  EXPECT_EQ(delivered, 3);  // all workstations except the sender...
  // ...plus the file server has no kEcho service: silently ignored.
  EXPECT_EQ(cluster.net().messages_sent(), 1);  // ONE transmission, no replies
}

TEST(PdevTest, UnregisteredTagFailsAndUnregisterWorks) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1});
  auto& owner = cluster.host(cluster.workstations()[1]);
  const int tag = owner.pdev().register_server(
      [](const fs::Bytes&, std::function<void(util::Result<fs::Bytes>)> r) {
        r(fs::Bytes{});
      });
  cluster.file_server().fs_server()->mkdir_p("/dev");
  ASSERT_TRUE(cluster.file_server()
                  .fs_server()
                  ->create_pdev("/dev/x", owner.id(), tag)
                  .is_ok());

  auto& fs0 = cluster.host(cluster.workstations()[0]).fs();
  fs::StreamPtr s;
  bool opened = false;
  fs0.open("/dev/x", fs::OpenFlags::read_write(),
           [&](util::Result<fs::StreamPtr> r) {
             ASSERT_TRUE(r.is_ok());
             s = *r;
             opened = true;
           });
  cluster.run_until_done([&] { return opened; });

  // Works while registered.
  bool ok1 = false;
  fs0.pdev_call(s, {}, [&](util::Result<fs::Bytes> r) {
    EXPECT_TRUE(r.is_ok());
    ok1 = true;
  });
  cluster.run_until_done([&] { return ok1; });

  // The server process "exits": calls now fail cleanly.
  owner.pdev().unregister_server(tag);
  bool ok2 = false;
  fs0.pdev_call(s, {}, [&](util::Result<fs::Bytes> r) {
    EXPECT_EQ(r.err(), Err::kNoEnt);
    ok2 = true;
  });
  cluster.run_until_done([&] { return ok2; });
}

TEST(CpuAccountingTest, BiasNeverGoesNegativeAndUtilizationIsBounded) {
  sim::Simulator sim;
  sim::Costs costs;
  sim::Cpu cpu(sim, costs);
  cpu.set_load_bias(1.0);
  cpu.set_load_bias(std::max(0.0, cpu.load_bias() - 1.0));
  cpu.set_load_bias(std::max(0.0, cpu.load_bias() - 1.0));
  EXPECT_DOUBLE_EQ(cpu.load_bias(), 0.0);

  cpu.submit(sim::JobClass::kUser, Time::msec(10), [] {});
  sim.run_until(Time::msec(100));
  EXPECT_LE(cpu.utilization(), 1.0);
  EXPECT_NEAR(cpu.utilization(), 0.1, 1e-6);
}

TEST(CpuAccountingTest, CancelReportsRemainingForQueuedAndRunning) {
  sim::Simulator sim;
  sim::Costs costs;
  sim::Cpu cpu(sim, costs);
  auto running = cpu.submit(sim::JobClass::kUser, Time::msec(100), [] {});
  auto queued = cpu.submit(sim::JobClass::kUser, Time::msec(40), [] {});
  sim.run_until(Time::msec(30));
  EXPECT_EQ(cpu.cancel(queued).ms(), 40.0);
  EXPECT_EQ(cpu.cancel(running).ms(), 70.0);
  EXPECT_EQ(cpu.cancel(running).ms(), 0.0);  // already cancelled
}

TEST(GossipAgingTest, StaleEntriesExpireFromVectors) {
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1});
  ls::Facility facility(cluster, ls::Arch::kProbabilistic);
  cluster.sim().run_until(Time::sec(50));
  const auto ws = cluster.workstations();
  ASSERT_GE(facility.node(ws[0]).load_vector().size(), 3u);

  // Partition one host: its entries age out of everyone's vectors.
  cluster.net().set_host_up(ws[3], false);
  cluster.sim().run_until(cluster.sim().now() +
                          cluster.costs().ls_entry_max_age + Time::sec(5));
  for (int i = 0; i < 3; ++i) {
    const auto& vec = facility.node(ws[static_cast<std::size_t>(i)])
                          .load_vector();
    EXPECT_EQ(vec.count(ws[3]), 0u)
        << "host " << i << " still remembers the partitioned host";
  }
}

TEST(StreamRefCountTest, ServerSeesOneOpenUntilLastLocalCloseAfterFork) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1});
  // A process opens a file, forks; parent and child both close. The server
  // must not underflow its reference counts, and the file must stay
  // consistent throughout (exercised via the final reopen).
  proc::ScriptBuilder b;
  b.act(proc::SysOpen{"/refc", fs::OpenFlags::create_rw()})
      .step([](proc::ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return proc::SysFork{};
      })
      .step([](proc::ScriptProgram::Ctx& c) {
        c.locals["is_child"] = c.view->is_child ? 1 : 0;
        return proc::SysClose{static_cast<int>(c.locals["fd"])};
      })
      .step([](proc::ScriptProgram::Ctx& c) {
        if (c.locals["is_child"]) return proc::Action{proc::SysExit{0}};
        return proc::Action{proc::SysWait{}};
      })
      .act(proc::SysExit{0});
  SPRITE_CHECK(cluster.install_program("/bin/refc", b.image()).is_ok());
  bool spawned = false;
  proc::Pid pid = proc::kInvalidPid;
  cluster.host(cluster.workstations()[0])
      .procs()
      .spawn("/bin/refc", {}, [&](util::Result<proc::Pid> r) {
        pid = *r;
        spawned = true;
      });
  cluster.run_until_done([&] { return spawned; });
  int status = -1;
  bool exited = false;
  cluster.host(cluster.workstations()[0]).procs().notify_on_exit(pid, [&](int s) {
    status = s;
    exited = true;
  });
  cluster.run_until_done([&] { return exited; });
  EXPECT_EQ(status, 0);
  cluster.sim().run_until(cluster.sim().now() + Time::msec(100));

  // A fresh exclusive open from the other host sees a clean, cacheable file.
  bool checked = false;
  cluster.host(cluster.workstations()[1])
      .fs()
      .open("/refc", fs::OpenFlags::write_only(),
            [&](util::Result<fs::StreamPtr> r) {
              ASSERT_TRUE(r.is_ok());
              EXPECT_TRUE((*r)->cacheable);
              checked = true;
            });
  cluster.run_until_done([&] { return checked; });
}

TEST(VmReleaseTest, ReleasedSpaceCanBeReadoptedOnTheSameHost) {
  Cluster cluster({.num_workstations = 1, .num_file_servers = 1});
  cluster.file_server().fs_server()->mkdir_p("/bin");
  ASSERT_TRUE(
      cluster.file_server().fs_server()->create_file("/bin/e", 4 * 4096).is_ok());
  auto& vmm = cluster.host(1).vm();

  vm::SpacePtr sp;
  bool created = false;
  vmm.create_space("/bin/e", 4, 16, 4, [&](util::Result<vm::SpacePtr> r) {
    ASSERT_TRUE(r.is_ok());
    sp = *r;
    created = true;
  });
  cluster.run_until_done([&] { return created; });

  bool touched = false;
  vmm.touch(sp, vm::Segment::kHeap, 0, 16, true, [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    touched = true;
  });
  cluster.run_until_done([&] { return touched; });
  bool flushed = false;
  vmm.flush_dirty(sp, [&](Status) { flushed = true; });
  cluster.run_until_done([&] { return flushed; });

  auto desc = vmm.describe(sp);
  bool released = false;
  vmm.release_space(sp, [&](Status) { released = true; });
  cluster.run_until_done([&] { return released; });

  // Swap files survive a release (unlike destroy): re-adoption works and
  // the flushed pages fault back in from backing store.
  vm::SpacePtr again;
  bool adopted = false;
  vmm.adopt_space(desc, [&](util::Result<vm::SpacePtr> r) {
    ASSERT_TRUE(r.is_ok());
    again = *r;
    adopted = true;
  });
  cluster.run_until_done([&] { return adopted; });
  vmm.reset_stats();
  vmm.invalidate(again);
  bool refaulted = false;
  vmm.touch(again, vm::Segment::kHeap, 0, 16, false, [&](Status s) {
    EXPECT_TRUE(s.is_ok());
    refaulted = true;
  });
  cluster.run_until_done([&] { return refaulted; });
  EXPECT_EQ(vmm.stats().pages_in, 16);
}

TEST(MigrationStatsTest, RecordsAccumulateAcrossMigrations) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1});
  proc::ScriptBuilder b;
  b.compute(Time::sec(20)).exit(0);
  SPRITE_CHECK(cluster.install_program("/bin/mover", b.image()).is_ok());
  bool spawned = false;
  proc::Pid pid = proc::kInvalidPid;
  cluster.host(cluster.workstations()[0])
      .procs()
      .spawn("/bin/mover", {}, [&](util::Result<proc::Pid> r) {
        pid = *r;
        spawned = true;
      });
  cluster.run_until_done([&] { return spawned; });
  cluster.sim().run_until(cluster.sim().now() + Time::msec(100));

  auto migrate_now = [&](HostId from, HostId to) {
    auto pcb = cluster.host(from).procs().find(pid);
    ASSERT_TRUE(pcb != nullptr);
    bool done = false;
    cluster.host(from).mig().migrate(pcb, to, [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      done = true;
    });
    cluster.run_until_done([&] { return done; });
  };
  const auto w = cluster.workstations();
  migrate_now(w[0], w[1]);
  migrate_now(w[1], w[2]);
  migrate_now(w[2], w[0]);

  EXPECT_EQ(cluster.host(w[0]).mig().stats().out, 1);
  EXPECT_EQ(cluster.host(w[0]).mig().stats().in, 1);
  EXPECT_EQ(cluster.host(w[1]).mig().stats().out, 1);
  EXPECT_EQ(cluster.host(w[1]).mig().stats().in, 1);
  EXPECT_EQ(cluster.host(w[2]).mig().records().size(), 1u);
}

TEST(SimulatorHorizonTest, RecurringEventsStopButWorkContinues) {
  sim::Simulator sim;
  sim.set_horizon(Time::sec(5));
  int ticks = 0;
  sim.every(Time::sec(1), [&] { ++ticks; });
  bool late_work = false;
  sim.at(Time::sec(20), [&] { late_work = true; });
  sim.run();
  EXPECT_EQ(ticks, 5);        // recurring stopped at the horizon
  EXPECT_TRUE(late_work);     // one-shot events past the horizon still fire
  EXPECT_EQ(sim.now(), Time::sec(20));
}

}  // namespace
}  // namespace sprite
