// Tests for the process substrate: spawn/fork/exec/exit/wait, kernel-call
// dispatch, signals, the Appendix-A classification table, and home records.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kern/cluster.h"
#include "proc/script.h"
#include "proc/syscalls.h"
#include "proc/table.h"

namespace sprite::proc {
namespace {

using kern::Cluster;
using sim::Time;
using util::Err;

std::string to_string(const fs::Bytes& b) {
  return std::string(b.begin(), b.end());
}
fs::Bytes make_bytes(const std::string& s) { return fs::Bytes(s.begin(), s.end()); }

class ProcTest : public ::testing::Test {
 protected:
  ProcTest() : cluster_({.num_workstations = 3, .num_file_servers = 1}) {}

  // Installs `prog` under /bin/<name> and spawns it on ws(i)'s host,
  // returning the pid.
  Pid spawn_ok(int i, const std::string& name, ScriptBuilder& prog) {
    const std::string path = "/bin/" + name;
    SPRITE_CHECK(cluster_.install_program(path, prog.image()).is_ok());
    return spawn_installed(i, path);
  }

  Pid spawn_installed(int i, const std::string& path) {
    util::Result<Pid> out(Err::kAgain);
    bool done = false;
    cluster_.host(ws(i)).procs().spawn(path, {}, [&](util::Result<Pid> r) {
      out = std::move(r);
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    EXPECT_TRUE(out.is_ok()) << out.status().to_string();
    return out.is_ok() ? *out : kInvalidPid;
  }

  int wait_exit(int home_ws, Pid pid) {
    int status = -1;
    bool done = false;
    cluster_.host(ws(home_ws)).procs().notify_on_exit(pid, [&](int s) {
      status = s;
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return status;
  }

  sim::HostId ws(int i) {
    return cluster_.workstations()[static_cast<std::size_t>(i)];
  }

  Cluster cluster_;
};

TEST_F(ProcTest, DispatchTableIsTotalOverAllSyscalls) {
  // Appendix-A property: every kernel call has a defined handling class.
  std::set<Handling> seen;
  for (Syscall c : all_syscalls()) {
    seen.insert(handling_of(c));  // UNREACHABLE-aborts if unclassified
    EXPECT_STRNE(syscall_name(c), "?");
  }
  // All four classes are exercised by the table.
  EXPECT_EQ(seen.size(), 4u);
}

TEST_F(ProcTest, FileCallsAreTransferredStateAndFamilyCallsInvolveHome) {
  EXPECT_EQ(handling_of(Syscall::kRead), Handling::kTransferredState);
  EXPECT_EQ(handling_of(Syscall::kOpen), Handling::kTransferredState);
  EXPECT_EQ(handling_of(Syscall::kGetTime), Handling::kLocal);
  EXPECT_EQ(handling_of(Syscall::kGetHostName), Handling::kForwardHome);
  EXPECT_EQ(handling_of(Syscall::kWait), Handling::kForwardHome);
  EXPECT_EQ(handling_of(Syscall::kFork), Handling::kHomeInvolved);
  EXPECT_EQ(handling_of(Syscall::kExit), Handling::kHomeInvolved);
}

TEST_F(ProcTest, AppendixATableIsTotalAndConsistent) {
  // The full 4.3BSD classification: every entry has a class and a
  // rationale, no duplicate names, and every call the simulation implements
  // through the Syscall enum agrees with the big table's classification.
  const auto& table = appendix_a();
  EXPECT_GE(table.size(), 70u);  // the appendix walks the whole call list
  std::set<std::string> names;
  int implemented = 0;
  for (const auto& e : table) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate " << e.name;
    EXPECT_STRNE(e.note, "");
    if (e.implemented) ++implemented;
  }
  EXPECT_GE(implemented, 18);

  // Cross-check the enum subset against the table.
  for (Syscall c : all_syscalls()) {
    const std::string n = syscall_name(c);
    bool found = false;
    for (const auto& e : table) {
      if (n == e.name) {
        found = true;
        EXPECT_TRUE(e.implemented) << n;
        EXPECT_EQ(e.handling, handling_of(c)) << n;
      }
    }
    EXPECT_TRUE(found) << n << " missing from the Appendix-A table";
  }
}

TEST_F(ProcTest, PidEncodesHomeHost) {
  const Pid p = make_pid(3, 17);
  EXPECT_EQ(pid_home(p), 3);
  EXPECT_NE(p, kInvalidPid);
}

TEST_F(ProcTest, SpawnRunExitDeliversStatus) {
  ScriptBuilder b;
  b.compute(Time::msec(50)).exit(7);
  const Pid pid = spawn_ok(0, "simple", b);
  EXPECT_EQ(wait_exit(0, pid), 7);
  EXPECT_FALSE(cluster_.host(ws(0)).procs().home_record_alive(pid));
}

TEST_F(ProcTest, ComputeConsumesSimulatedTime) {
  ScriptBuilder b;
  b.compute(Time::sec(2)).exit(0);
  const Time start = cluster_.sim().now();
  const Pid pid = spawn_ok(0, "burn", b);
  wait_exit(0, pid);
  EXPECT_GE((cluster_.sim().now() - start).s(), 2.0);
}

TEST_F(ProcTest, GetPidAndTimeAndHostName) {
  ScriptBuilder b;
  b.act(SysGetPid{})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["pid"] = c.view->rv;
        return SysGetTime{};
      })
      .step([](ScriptProgram::Ctx& c) {
        c.locals["time"] = c.view->rv;
        return SysGetHostName{};
      })
      .step([](ScriptProgram::Ctx& c) {
        c.note("host=" + c.view->text);
        return SysExit{0};
      });
  const Pid pid = spawn_ok(1, "ident", b);
  // Find the program's final state through the pcb before it exits... the
  // process exits quickly, so instead verify via home record death plus the
  // fact that nothing crashed: identity checks continue in the fork test.
  EXPECT_EQ(wait_exit(1, pid), 0);
}

TEST_F(ProcTest, OpenWriteReadRoundTripThroughProcess) {
  ScriptBuilder b;
  b.act(SysOpen{"/data", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return SysWrite{static_cast<int>(c.locals["fd"]),
                        make_bytes("process data"), 0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return SysSeek{static_cast<int>(c.locals["fd"]), 0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return SysRead{static_cast<int>(c.locals["fd"]), 64};
      })
      .step([](ScriptProgram::Ctx& c) {
        if (std::string(c.view->data.begin(), c.view->data.end()) ==
            "process data")
          return Action{SysExit{0}};
        return Action{SysExit{1}};
      });
  const Pid pid = spawn_ok(0, "fileio", b);
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(ProcTest, BadDescriptorsFailCleanly) {
  ScriptBuilder b;
  b.act(SysRead{42, 10})
      .step([](ScriptProgram::Ctx& c) {
        return SysExit{c.view->status.err() == Err::kBadF ? 0 : 1};
      });
  const Pid pid = spawn_ok(0, "badfd", b);
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(ProcTest, ForkGivesChildNewPidAndSharedOffsets) {
  // Parent opens a file, forks; the child writes, then the parent writes:
  // the shared access position must make the writes append, not overlap.
  ScriptBuilder b;
  b.act(SysOpen{"/forkfile", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return SysFork{};
      })
      .step([](ScriptProgram::Ctx& c) {
        c.locals["is_child"] = c.view->is_child ? 1 : 0;
        if (c.locals["is_child"]) {
          return Action{SysWrite{static_cast<int>(c.locals["fd"]),
                                 make_bytes("AA"), 0}};
        }
        c.locals["child"] = c.view->rv;
        // Parent: give the child time to write first.
        return Action{Pause{Time::msec(200)}};
      })
      .step([](ScriptProgram::Ctx& c) {
        if (c.locals["is_child"]) return Action{SysExit{42}};
        return Action{SysWrite{static_cast<int>(c.locals["fd"]),
                               make_bytes("BB"), 0}};
      })
      .step([](ScriptProgram::Ctx& c) {
        (void)c;
        return Action{SysWait{}};
      })
      .step([](ScriptProgram::Ctx& c) {
        const bool ok = c.view->rv == c.locals["child"] && c.view->aux == 42;
        return Action{SysExit{ok ? 0 : 1}};
      });
  const Pid pid = spawn_ok(0, "forker", b);
  EXPECT_EQ(wait_exit(0, pid), 0);

  // "AA" then "BB" via the shared offset.
  bool checked = false;
  cluster_.host(ws(1)).fs().open(
      "/forkfile", fs::OpenFlags::read_only(),
      [&](util::Result<fs::StreamPtr> r) {
        ASSERT_TRUE(r.is_ok());
        cluster_.host(ws(1)).fs().read(*r, 4, [&](util::Result<fs::Bytes> d) {
          ASSERT_TRUE(d.is_ok());
          EXPECT_EQ(to_string(*d), "AABB");
          checked = true;
        });
      });
  cluster_.run_until_done([&] { return checked; });
}

TEST_F(ProcTest, WaitBeforeChildExitsBlocksUntilNotify) {
  ScriptBuilder b;
  b.act(SysFork{})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["is_child"] = c.view->is_child ? 1 : 0;
        if (c.locals["is_child"]) return Action{Compute{Time::sec(1)}};
        return Action{SysWait{}};  // blocks ~1 s
      })
      .step([](ScriptProgram::Ctx& c) {
        if (c.locals["is_child"]) return Action{SysExit{5}};
        return Action{SysExit{c.view->aux == 5 ? 0 : 1}};
      });
  const Time start = cluster_.sim().now();
  const Pid pid = spawn_ok(0, "waiter", b);
  EXPECT_EQ(wait_exit(0, pid), 0);
  EXPECT_GE((cluster_.sim().now() - start).s(), 1.0);
}

TEST_F(ProcTest, WaitWithNoChildrenReturnsEchild) {
  ScriptBuilder b;
  b.act(SysWait{}).step([](ScriptProgram::Ctx& c) {
    return SysExit{c.view->status.err() == Err::kChild ? 0 : 1};
  });
  const Pid pid = spawn_ok(0, "lonely", b);
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(ProcTest, ExecReplacesImage) {
  ScriptBuilder worker;
  worker.compute(Time::msec(10)).exit(99);
  SPRITE_CHECK(cluster_.install_program("/bin/worker", worker.image()).is_ok());

  ScriptBuilder b;
  b.act(SysExec{"/bin/worker", {}});
  const Pid pid = spawn_ok(0, "execer", b);
  EXPECT_EQ(wait_exit(0, pid), 99);  // same pid, new image's exit status
}

TEST_F(ProcTest, ExecOfMissingBinaryReportsNoent) {
  ScriptBuilder b;
  b.act(SysExec{"/bin/nonexistent", {}})
      .step([](ScriptProgram::Ctx& c) {
        return SysExit{c.view->status.err() == Err::kNoEnt ? 0 : 1};
      });
  const Pid pid = spawn_ok(0, "execfail", b);
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(ProcTest, KillTerminatesComputingProcess) {
  ScriptBuilder victim;
  victim.compute(Time::hours(1)).exit(0);
  const Pid vpid = spawn_ok(0, "victim", victim);

  ScriptBuilder killer;
  killer.act(Pause{Time::msec(100)})
      .step([vpid](ScriptProgram::Ctx&) { return SysKill{vpid, 9}; })
      .step([](ScriptProgram::Ctx& c) {
        return SysExit{c.view->status.is_ok() ? 0 : 1};
      });
  const Pid kpid = spawn_ok(1, "killer", killer);

  EXPECT_EQ(wait_exit(1, kpid), 0);
  EXPECT_EQ(wait_exit(0, vpid), 128 + 9);
  // The hour-long compute must NOT have elapsed.
  EXPECT_LT(cluster_.sim().now().s(), 30.0);
}

TEST_F(ProcTest, KillOfDeadProcessReturnsEsrch) {
  ScriptBuilder quick;
  quick.exit(0);
  const Pid dead = spawn_ok(0, "quick", quick);
  wait_exit(0, dead);

  ScriptBuilder killer;
  killer.step([dead](ScriptProgram::Ctx&) { return SysKill{dead, 9}; })
      .step([](ScriptProgram::Ctx& c) {
        return SysExit{c.view->status.err() == Err::kSrch ? 0 : 1};
      });
  const Pid kpid = spawn_ok(1, "killer2", killer);
  EXPECT_EQ(wait_exit(1, kpid), 0);
}

TEST_F(ProcTest, DupSharesAccessPosition) {
  // dup(2) semantics: writes through either descriptor advance one shared
  // offset, exactly like the fork-shared case.
  ScriptBuilder b;
  b.act(SysOpen{"/dupfile", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return SysDup{static_cast<int>(c.locals["fd"])};
      })
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd2"] = c.view->rv;
        return SysWrite{static_cast<int>(c.locals["fd"]), make_bytes("AB"), 0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return SysWrite{static_cast<int>(c.locals["fd2"]), make_bytes("CD"),
                        0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return SysClose{static_cast<int>(c.locals["fd"])};
      })
      // The file must stay open at the server through the dup'd fd.
      .step([](ScriptProgram::Ctx& c) {
        return SysWrite{static_cast<int>(c.locals["fd2"]), make_bytes("EF"),
                        0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return SysFsync{static_cast<int>(c.locals["fd2"])};
      })
      .exit(0);
  const Pid pid = spawn_ok(0, "duper", b);
  EXPECT_EQ(wait_exit(0, pid), 0);
  auto st = cluster_.file_server().fs_server()->stat_path("/dupfile");
  ASSERT_TRUE(st.is_ok());
  auto data =
      cluster_.file_server().fs_server()->read_direct(st->id, 0, st->size);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(to_string(*data), "ABCDEF");
}

TEST_F(ProcTest, FtruncateShrinksFile) {
  ScriptBuilder b;
  b.act(SysOpen{"/trunc", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return SysWrite{static_cast<int>(c.locals["fd"]),
                        make_bytes("0123456789"), 0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return SysFsync{static_cast<int>(c.locals["fd"])};
      })
      .step([](ScriptProgram::Ctx& c) {
        return SysFtruncate{static_cast<int>(c.locals["fd"]), 4};
      })
      .step([](ScriptProgram::Ctx& c) {
        return SysExit{c.view->status.is_ok() ? 0 : 1};
      });
  const Pid pid = spawn_ok(0, "truncer", b);
  EXPECT_EQ(wait_exit(0, pid), 0);
  auto st = cluster_.file_server().fs_server()->stat_path("/trunc");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->size, 4);
}

TEST_F(ProcTest, TouchDrivesVmFaults) {
  ScriptBuilder b;
  b.act(Touch{vm::Segment::kHeap, 0, 8, true})
      .act(Touch{vm::Segment::kHeap, 0, 8, false})  // already resident
      .exit(0);
  const Pid pid = spawn_ok(0, "tocher", b);
  EXPECT_EQ(wait_exit(0, pid), 0);
  EXPECT_EQ(cluster_.host(ws(0)).vm().stats().pages_zero_fill, 8);
}

TEST_F(ProcTest, HomeRecordTracksLocation) {
  ScriptBuilder b;
  b.compute(Time::sec(5)).exit(0);
  const Pid pid = spawn_ok(0, "tracked", b);
  EXPECT_TRUE(cluster_.host(ws(0)).procs().home_record_alive(pid));
  EXPECT_EQ(cluster_.host(ws(0)).procs().home_record_location(pid), ws(0));
  wait_exit(0, pid);
  EXPECT_FALSE(cluster_.host(ws(0)).procs().home_record_alive(pid));
}

TEST_F(ProcTest, SchedulerTimeSharesTwoProcesses) {
  ScriptBuilder b;
  b.compute(Time::sec(1)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/cpu1", b.image()).is_ok());
  const Pid a = spawn_installed(0, "/bin/cpu1");
  const Pid c = spawn_installed(0, "/bin/cpu1");
  int done = 0;
  cluster_.host(ws(0)).procs().notify_on_exit(a, [&](int) { ++done; });
  cluster_.host(ws(0)).procs().notify_on_exit(c, [&](int) { ++done; });
  cluster_.run_until_done([&] { return done == 2; });
  // Two seconds of demand on one CPU: at least two seconds of wall clock.
  EXPECT_GE(cluster_.sim().now().s(), 2.0);
  EXPECT_LT(cluster_.sim().now().s(), 2.6);
}

TEST_F(ProcTest, SpawnOfUnregisteredProgramFails) {
  util::Result<Pid> out(Err::kAgain);
  bool done = false;
  cluster_.host(ws(0)).procs().spawn("/bin/ghost", {},
                                     [&](util::Result<Pid> r) {
                                       out = std::move(r);
                                       done = true;
                                     });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(out.err(), Err::kNoEnt);
}

TEST_F(ProcTest, ExitClosesServerSideOpenReferences) {
  ScriptBuilder b;
  b.act(SysOpen{"/leaky", fs::OpenFlags::create_rw()}).exit(0);
  const Pid pid = spawn_ok(0, "leaker", b);
  wait_exit(0, pid);
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(100));
  // Another host may now open-for-write without triggering write sharing.
  bool checked = false;
  cluster_.host(ws(1)).fs().open("/leaky", fs::OpenFlags::write_only(),
                                 [&](util::Result<fs::StreamPtr> r) {
                                   ASSERT_TRUE(r.is_ok());
                                   EXPECT_TRUE((*r)->cacheable);
                                   checked = true;
                                 });
  cluster_.run_until_done([&] { return checked; });
}

}  // namespace
}  // namespace sprite::proc
