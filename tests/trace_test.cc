// Tests for the tracing & metrics registry: metric accumulation, event
// gating, span pairing, determinism of the Chrome JSON export, and the
// kernel instrumentation (migration lifecycle spans).
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/sprite.h"
#include "kern/cluster.h"
#include "proc/script.h"
#include "proc/table.h"
#include "rpc/rpc.h"
#include "sim/cpu.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "trace/analysis.h"
#include "trace/trace.h"

namespace sprite::trace {
namespace {

using core::SpriteCluster;
using proc::ScriptBuilder;
using sim::Time;

// ---------------------------------------------------------------------------
// A minimal JSON validator (objects, arrays, strings, numbers, literals) —
// enough to prove the export is well-formed without a JSON dependency.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Registry unit tests (fake clock).
// ---------------------------------------------------------------------------

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : reg_([this] { return now_us_; }) {}

  std::int64_t now_us_ = 0;
  Registry reg_;
};

TEST_F(RegistryTest, CountersAccumulateAndAreKeyedByHost) {
  Counter& a = reg_.counter("x.y.z", 1);
  Counter& b = reg_.counter("x.y.z", 2);
  a.inc();
  a.inc(4);
  b.inc();
  EXPECT_EQ(reg_.counter_value("x.y.z", 1), 5);
  EXPECT_EQ(reg_.counter_value("x.y.z", 2), 1);
  EXPECT_EQ(reg_.counter_value("x.y.z", 3), 0);       // never touched
  EXPECT_EQ(reg_.counter_value("no.such.metric"), 0);
  // Addresses are stable: a second lookup returns the same counter.
  EXPECT_EQ(&reg_.counter("x.y.z", 1), &a);
}

TEST_F(RegistryTest, HistogramBucketsAndMean) {
  LatencyHistogram& h = reg_.histogram("m.lat.ms", {1.0, 10.0, 100.0});
  h.record(0.5);    // [0,1)
  h.record(5.0);    // [1,10)
  h.record(50.0);   // [10,100)
  h.record(500.0);  // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 5.0 + 50.0 + 500.0) / 4.0);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 1);
}

TEST_F(RegistryTest, DisabledRegistryRecordsNoEvents) {
  ASSERT_FALSE(reg_.tracing());
  EXPECT_EQ(reg_.begin_span("cat", "name", 0), 0u);
  reg_.end_span(0);
  reg_.instant("cat", "name", 0);
  reg_.span_at("cat", "name", 0, -1, Time::usec(1), Time::usec(2));
  EXPECT_TRUE(reg_.events().empty());
  EXPECT_EQ(reg_.dropped_events(), 0);
  // Metrics still work while events are off.
  reg_.counter("c").inc();
  EXPECT_EQ(reg_.counter_value("c"), 1);
}

TEST_F(RegistryTest, SpanPairingAndTimestamps) {
  reg_.set_tracing(true);
  now_us_ = 100;
  const SpanId id = reg_.begin_span("rpc", "call", 3, 7, {{"k", "v"}});
  ASSERT_NE(id, 0u);
  now_us_ = 250;
  reg_.end_span(id);
  ASSERT_EQ(reg_.events().size(), 2u);
  const Event& b = reg_.events()[0];
  const Event& e = reg_.events()[1];
  EXPECT_EQ(b.phase, 'b');
  EXPECT_EQ(e.phase, 'e');
  EXPECT_EQ(b.id, e.id);
  EXPECT_EQ(b.ts_us, 100);
  EXPECT_EQ(e.ts_us, 250);
  EXPECT_EQ(b.host, 3);
  EXPECT_EQ(b.pid, 7);
  // The end inherits the begin's attribution so viewers pair them.
  EXPECT_EQ(e.host, 3);
  EXPECT_EQ(e.pid, 7);
}

TEST_F(RegistryTest, MaxEventsDropsInsteadOfGrowing) {
  reg_.set_tracing(true);
  reg_.set_max_events(3);
  for (int i = 0; i < 10; ++i) reg_.instant("c", "n", 0);
  EXPECT_EQ(reg_.events().size(), 3u);
  EXPECT_EQ(reg_.dropped_events(), 7);
}

TEST_F(RegistryTest, ChromeJsonIsValidJson) {
  reg_.set_tracing(true);
  reg_.set_host_name(0, "host0");
  now_us_ = 10;
  const SpanId id = reg_.begin_span("mig", "migrate", 0, 42);
  now_us_ = 20;
  reg_.instant("vm", "page \"flush\"\n", 0, 42, {{"count", "3"}});
  now_us_ = 30;
  reg_.end_span(id);
  const std::string json = reg_.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Kernel integration: instrumentation through a real simulated run.
// ---------------------------------------------------------------------------

// A small workload: spawn a process on ws0 that dirties some heap and
// computes, then actively migrate it to ws1 and wait for it.
void run_migration_workload(SpriteCluster& cluster) {
  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 64, true})
      .compute(Time::sec(2))
      .exit(0);
  cluster.install_program("/bin/work", b.image(8, 64, 2));
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/work", {});
  cluster.run_for(Time::msec(500));
  const auto st = cluster.migrate(pid, cluster.workstation(1));
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  cluster.wait(pid);
}

TEST(TraceIntegrationTest, CountersAccumulateDuringRun) {
  SpriteCluster cluster({.workstations = 3, .seed = 11,
                         .enable_load_sharing = false});
  run_migration_workload(cluster);
  Registry& tr = cluster.sim().trace();
  const auto ws0 = cluster.workstation(0);
  const auto ws1 = cluster.workstation(1);
  EXPECT_EQ(tr.counter_value("mig.out.completed", ws0), 1);
  EXPECT_EQ(tr.counter_value("mig.in.completed", ws1), 1);
  EXPECT_GE(tr.counter_value("proc.process.spawned", ws0), 1);
  EXPECT_GT(tr.counter_value("rpc.call.started", ws0), 0);
  EXPECT_GT(tr.counter_value("vm.page.flushed", ws0), 0);
  // The legacy Stats views are backed by the same counters.
  EXPECT_EQ(cluster.host(ws0).mig().stats().out,
            tr.counter_value("mig.out.completed", ws0));
  EXPECT_EQ(cluster.host(ws0).procs().stats().spawns,
            tr.counter_value("proc.process.spawned", ws0));
  // No tracing requested: the metrics came for free, no events recorded.
  EXPECT_TRUE(tr.events().empty());
}

bool has_event(const Registry& tr, const std::string& cat,
               const std::string& name) {
  for (const Event& e : tr.events())
    if (e.cat == cat && e.name == name) return true;
  return false;
}

TEST(TraceIntegrationTest, MigrationRunEmitsLifecycleSpans) {
  SpriteCluster cluster({.workstations = 3, .seed = 11,
                         .enable_load_sharing = false});
  Registry& tr = cluster.sim().trace();
  tr.set_tracing(true);
  run_migration_workload(cluster);
  ASSERT_FALSE(tr.events().empty());

  EXPECT_TRUE(has_event(tr, "mig", "init handshake"));
  EXPECT_TRUE(has_event(tr, "mig", "vm sprite-flush"));
  EXPECT_TRUE(has_event(tr, "mig", "streams re-attribute"));
  EXPECT_TRUE(has_event(tr, "mig", "transfer+resume"));
  EXPECT_TRUE(has_event(tr, "mig", "frozen"));
  EXPECT_TRUE(has_event(tr, "mig", "migrated in"));
  EXPECT_TRUE(has_event(tr, "vm", "page flush"));

  // The lifecycle spans carry host and pid attribution.
  const auto ws0 = cluster.workstation(0);
  bool attributed = false;
  for (const Event& e : tr.events()) {
    if (e.cat != "mig" || e.name != "init handshake") continue;
    EXPECT_EQ(e.host, ws0);
    EXPECT_GT(e.pid, 0);
    attributed = true;
  }
  EXPECT_TRUE(attributed);

  const std::string json = tr.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("init handshake"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Causal context: ScopedContext, scheduling capture, wire propagation.
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, ScopedContextParentsNewSpans) {
  reg_.set_tracing(true);
  const Context root = reg_.new_trace();
  ASSERT_TRUE(root.valid());
  SpanId parent = 0;
  SpanId child = 0;
  {
    ScopedContext scope(reg_, root);
    parent = reg_.begin_span("t", "parent", 0);
    {
      ScopedContext inner(reg_, reg_.span_context(parent));
      child = reg_.begin_span("t", "child", 0);
      reg_.end_span(child);
    }
    reg_.end_span(parent);
  }
  EXPECT_FALSE(reg_.current().valid());  // restored on scope exit

  const Event* pb = nullptr;
  const Event* cb = nullptr;
  for (const Event& e : reg_.events()) {
    if (e.phase != 'b') continue;
    if (e.id == parent) pb = &e;
    if (e.id == child) cb = &e;
  }
  ASSERT_NE(pb, nullptr);
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(pb->trace_id, root.trace_id);
  EXPECT_EQ(pb->parent, 0u);
  EXPECT_EQ(cb->trace_id, root.trace_id);
  EXPECT_EQ(cb->parent, parent);

  // Applying an invalid context is a no-op, not a reset to "no context".
  {
    ScopedContext outer(reg_, root);
    ScopedContext noop(reg_, Context{});
    EXPECT_EQ(reg_.current().trace_id, root.trace_id);
  }
}

TEST_F(RegistryTest, ClearEventsOrphansStaleSpanIds) {
  reg_.set_tracing(true);
  const SpanId stale = reg_.begin_span("t", "open-across-clear", 0);
  ASSERT_NE(stale, 0u);
  reg_.clear_events();
  EXPECT_TRUE(reg_.events().empty());

  // Ending a span begun before the clear neither crashes nor emits a
  // dangling 'e'; it is counted instead.
  reg_.end_span(stale);
  EXPECT_TRUE(reg_.events().empty());
  EXPECT_EQ(reg_.counter_value("trace.span.orphaned"), 1);

  // Fresh spans after the clear pair normally.
  const SpanId fresh = reg_.begin_span("t", "fresh", 0);
  reg_.end_span(fresh);
  ASSERT_EQ(reg_.events().size(), 2u);
  EXPECT_EQ(reg_.events()[0].phase, 'b');
  EXPECT_EQ(reg_.events()[1].phase, 'e');
  EXPECT_EQ(reg_.counter_value("trace.span.orphaned"), 1);
}

TEST_F(RegistryTest, ReservedSpanCanBeEmittedRetroactively) {
  reg_.set_tracing(true);
  const Context trace = reg_.new_trace();
  const SpanId root = reg_.reserve_span();
  ASSERT_NE(root, 0u);
  // A live child recorded while the root exists only as a reservation.
  SpanId child = 0;
  {
    ScopedContext scope(reg_, Context{trace.trace_id, root});
    child = reg_.begin_span("t", "child", 0);
    reg_.end_span(child);
  }
  const SpanId used = reg_.span_at("t", "root", 0, -1, Time::usec(1),
                                   Time::usec(9), {}, Context{trace.trace_id, 0},
                                   root);
  EXPECT_EQ(used, root);
  const analysis::SpanTree t = analysis::build_tree(reg_.events(),
                                                    trace.trace_id);
  const analysis::Span* r = t.root_like("t", "root");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->children.size(), 1u);
  EXPECT_EQ(t.spans[r->children[0]].id, child);
}

TEST_F(RegistryTest, MetricsJsonIsValidAndDeterministic) {
  reg_.counter("a.b.c", 1).inc(3);
  reg_.gauge("g.load.avg", 2).set(2.5);
  reg_.histogram("m.lat.ms", {1.0, 10.0}).record(5.0);
  const std::string j = reg_.metrics_json();
  EXPECT_TRUE(JsonChecker(j).valid()) << j;
  EXPECT_NE(j.find("a.b.c"), std::string::npos);
  EXPECT_NE(j.find("g.load.avg"), std::string::npos);
  EXPECT_NE(j.find("m.lat.ms"), std::string::npos);
  EXPECT_EQ(j, reg_.metrics_json());
}

TEST(FlightRecorderTest, RingKeepsNewestEntriesInOrder) {
  FlightRecorder fr(4);
  for (int i = 0; i < 6; ++i) fr.note(i, i, -1, "cat", "note", i * 10, 0);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.recorded(), 6);
  const auto t = fr.tail(100);
  ASSERT_EQ(t.size(), 4u);  // oldest two fell off
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_EQ(t[i].ts_us, static_cast<std::int64_t>(i) + 2);
  const auto t2 = fr.tail(2);
  ASSERT_EQ(t2.size(), 2u);
  EXPECT_EQ(t2[0].ts_us, 4);
  EXPECT_EQ(t2[1].ts_us, 5);
  EXPECT_NE(fr.report(4).find("note"), std::string::npos);
}

TEST_F(RegistryTest, FlightNotesRecordRegardlessOfTracing) {
  ASSERT_FALSE(reg_.tracing());
  now_us_ = 1234;
  reg_.flight_note("rpc.call", "echo", 1, -1, 2, 0);
  EXPECT_EQ(reg_.flight().recorded(), 1);
  const auto t = reg_.flight().tail(1);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].ts_us, 1234);
  EXPECT_EQ(t[0].host, 1);
  EXPECT_STREQ(t[0].cat, "rpc.call");
  EXPECT_TRUE(reg_.events().empty());  // forensics are not trace events
}

TEST(TraceCausalityTest, SimulatorSchedulingCarriesAmbientContext) {
  sim::Simulator s(1);
  Registry& tr = s.trace();
  tr.set_tracing(true);
  const Context ctx = tr.new_trace();
  SpanId outer = 0;
  SpanId child = 0;
  {
    ScopedContext scope(tr, ctx);
    outer = tr.begin_span("t", "outer", 0);
    ScopedContext inner(tr, tr.span_context(outer));
    s.after(Time::msec(1), [&] {
      // The continuation runs long after both scopes unwound; the context
      // captured at scheduling time must be ambient again here.
      child = tr.begin_span("t", "child", 0);
      tr.end_span(child);
      tr.end_span(outer);
    });
  }
  EXPECT_FALSE(tr.current().valid());
  s.run();
  ASSERT_NE(child, 0u);
  for (const Event& e : tr.events()) {
    if (e.phase != 'b' || e.id != child) continue;
    EXPECT_EQ(e.trace_id, ctx.trace_id);
    EXPECT_EQ(e.parent, outer);
  }
}

struct TraceEchoBody : rpc::Message {
  std::int64_t wire_bytes() const override { return 16; }
};

// A retransmitted-then-deduplicated RPC must not spawn a second server-side
// child span: the retransmission carries the same context and the dedup
// cache replays the cached reply without re-dispatching.
TEST(TraceCausalityTest, RetransmittedThenDedupedCallHasOneServeSpan) {
  sim::Costs costs;
  sim::Simulator s(1);
  sim::Network net(s, costs);
  std::vector<std::unique_ptr<sim::Cpu>> cpus;
  std::vector<std::unique_ptr<rpc::RpcNode>> nodes;
  for (int i = 0; i < 2; ++i) cpus.push_back(std::make_unique<sim::Cpu>(s, costs));
  for (int i = 0; i < 2; ++i) {
    const sim::HostId id = net.attach([&nodes, i](const sim::Packet& p) {
      nodes[static_cast<std::size_t>(i)]->handle_packet(p);
    });
    ASSERT_EQ(id, i);
    nodes.push_back(std::make_unique<rpc::RpcNode>(
        s, net, *cpus[static_cast<std::size_t>(i)], id, costs));
  }
  nodes[1]->register_service(
      rpc::ServiceId::kEcho,
      [](sim::HostId, const rpc::Request&,
         std::function<void(rpc::Reply)> respond) {
        respond(rpc::Reply{util::Status::ok(), nullptr});
      });

  // Lose the first reply to host 0: the server has served, the client
  // retransmits, the server's dedup cache answers the duplicate.
  sim::FaultPlan plan(s, net);
  plan.drop_message(rpc::RpcNode::match_reply(0), 1);
  plan.arm({});

  Registry& tr = s.trace();
  tr.set_tracing(true);
  const Context ctx = tr.new_trace();
  bool done = false;
  {
    ScopedContext scope(tr, ctx);
    nodes[0]->call(1, rpc::ServiceId::kEcho, 0,
                   std::make_shared<TraceEchoBody>(),
                   [&](util::Result<rpc::Reply> r) {
                     EXPECT_TRUE(r.is_ok());
                     done = true;
                   });
  }
  s.run();
  ASSERT_TRUE(done);
  EXPECT_GE(nodes[0]->retransmissions(), 1);
  EXPECT_EQ(nodes[1]->requests_served(), 1);  // dedup hit did not re-serve

  SpanId call_span = 0;
  int serve_begins = 0;
  SpanId serve_parent = 0;
  std::uint64_t serve_trace = 0;
  for (const Event& e : tr.events()) {
    if (e.phase != 'b' || e.cat != "rpc") continue;
    if (e.name == "call echo") call_span = e.id;
    if (e.name == "serve echo") {
      ++serve_begins;
      serve_parent = e.parent;
      serve_trace = e.trace_id;
    }
  }
  EXPECT_EQ(serve_begins, 1);
  ASSERT_NE(call_span, 0u);
  EXPECT_EQ(serve_parent, call_span);
  EXPECT_EQ(serve_trace, ctx.trace_id);
}

TEST(TraceIntegrationTest, MigrationTraceSpansHostsWithFlowEvents) {
  SpriteCluster cluster({.workstations = 3, .seed = 11,
                         .enable_load_sharing = false});
  Registry& tr = cluster.sim().trace();
  tr.set_tracing(true);
  run_migration_workload(cluster);

  // One migration trace whose spans live on both the source and the target.
  const auto ids = analysis::trace_ids(tr.events());
  ASSERT_FALSE(ids.empty());
  std::uint64_t mig_trace = 0;
  for (std::uint64_t id : ids)
    if (analysis::build_tree(tr.events(), id).root_like("mig", "migrate"))
      mig_trace = id;
  ASSERT_NE(mig_trace, 0u);

  const auto ws0 = cluster.workstation(0);
  const auto ws1 = cluster.workstation(1);
  bool on_source = false;
  bool on_target = false;
  for (const Event& e : tr.events()) {
    if (e.phase != 'b' || e.trace_id != mig_trace) continue;
    if (e.host == ws0) on_source = true;
    if (e.host == ws1) on_target = true;
  }
  EXPECT_TRUE(on_source);
  EXPECT_TRUE(on_target);

  // The export carries cross-host causality as Chrome flow ('s'/'f') pairs.
  const std::string json = tr.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

  // And the analysis layer can decompose the migration: the in-total
  // components tile the end-to-end span.
  const auto bd = analysis::migration_breakdown(tr.events(), mig_trace);
  ASSERT_TRUE(bd.valid);
  EXPECT_GT(bd.total_us, 0);
  EXPECT_NEAR(static_cast<double>(bd.sum_in_total_us()),
              static_cast<double>(bd.total_us),
              0.05 * static_cast<double>(bd.total_us));
  EXPECT_GT(bd.freeze_us, 0);
}

TEST(TraceIntegrationTest, SameSeedProducesByteIdenticalTraceJson) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    SpriteCluster cluster({.workstations = 3, .seed = 11,
                           .enable_load_sharing = false});
    Registry& tr = cluster.sim().trace();
    tr.set_tracing(true);
    tr.set_host_name(cluster.workstation(0), "ws0");
    run_migration_workload(cluster);
    *out = tr.chrome_json();
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace sprite::trace
