// Tests for the tracing & metrics registry: metric accumulation, event
// gating, span pairing, determinism of the Chrome JSON export, and the
// kernel instrumentation (migration lifecycle spans).
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "core/sprite.h"
#include "kern/cluster.h"
#include "proc/script.h"
#include "proc/table.h"
#include "trace/trace.h"

namespace sprite::trace {
namespace {

using core::SpriteCluster;
using proc::ScriptBuilder;
using sim::Time;

// ---------------------------------------------------------------------------
// A minimal JSON validator (objects, arrays, strings, numbers, literals) —
// enough to prove the export is well-formed without a JSON dependency.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Registry unit tests (fake clock).
// ---------------------------------------------------------------------------

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : reg_([this] { return now_us_; }) {}

  std::int64_t now_us_ = 0;
  Registry reg_;
};

TEST_F(RegistryTest, CountersAccumulateAndAreKeyedByHost) {
  Counter& a = reg_.counter("x.y.z", 1);
  Counter& b = reg_.counter("x.y.z", 2);
  a.inc();
  a.inc(4);
  b.inc();
  EXPECT_EQ(reg_.counter_value("x.y.z", 1), 5);
  EXPECT_EQ(reg_.counter_value("x.y.z", 2), 1);
  EXPECT_EQ(reg_.counter_value("x.y.z", 3), 0);       // never touched
  EXPECT_EQ(reg_.counter_value("no.such.metric"), 0);
  // Addresses are stable: a second lookup returns the same counter.
  EXPECT_EQ(&reg_.counter("x.y.z", 1), &a);
}

TEST_F(RegistryTest, HistogramBucketsAndMean) {
  LatencyHistogram& h = reg_.histogram("m.lat.ms", {1.0, 10.0, 100.0});
  h.record(0.5);    // [0,1)
  h.record(5.0);    // [1,10)
  h.record(50.0);   // [10,100)
  h.record(500.0);  // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 5.0 + 50.0 + 500.0) / 4.0);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 1);
}

TEST_F(RegistryTest, DisabledRegistryRecordsNoEvents) {
  ASSERT_FALSE(reg_.tracing());
  EXPECT_EQ(reg_.begin_span("cat", "name", 0), 0u);
  reg_.end_span(0);
  reg_.instant("cat", "name", 0);
  reg_.span_at("cat", "name", 0, -1, Time::usec(1), Time::usec(2));
  EXPECT_TRUE(reg_.events().empty());
  EXPECT_EQ(reg_.dropped_events(), 0);
  // Metrics still work while events are off.
  reg_.counter("c").inc();
  EXPECT_EQ(reg_.counter_value("c"), 1);
}

TEST_F(RegistryTest, SpanPairingAndTimestamps) {
  reg_.set_tracing(true);
  now_us_ = 100;
  const SpanId id = reg_.begin_span("rpc", "call", 3, 7, {{"k", "v"}});
  ASSERT_NE(id, 0u);
  now_us_ = 250;
  reg_.end_span(id);
  ASSERT_EQ(reg_.events().size(), 2u);
  const Event& b = reg_.events()[0];
  const Event& e = reg_.events()[1];
  EXPECT_EQ(b.phase, 'b');
  EXPECT_EQ(e.phase, 'e');
  EXPECT_EQ(b.id, e.id);
  EXPECT_EQ(b.ts_us, 100);
  EXPECT_EQ(e.ts_us, 250);
  EXPECT_EQ(b.host, 3);
  EXPECT_EQ(b.pid, 7);
  // The end inherits the begin's attribution so viewers pair them.
  EXPECT_EQ(e.host, 3);
  EXPECT_EQ(e.pid, 7);
}

TEST_F(RegistryTest, MaxEventsDropsInsteadOfGrowing) {
  reg_.set_tracing(true);
  reg_.set_max_events(3);
  for (int i = 0; i < 10; ++i) reg_.instant("c", "n", 0);
  EXPECT_EQ(reg_.events().size(), 3u);
  EXPECT_EQ(reg_.dropped_events(), 7);
}

TEST_F(RegistryTest, ChromeJsonIsValidJson) {
  reg_.set_tracing(true);
  reg_.set_host_name(0, "host0");
  now_us_ = 10;
  const SpanId id = reg_.begin_span("mig", "migrate", 0, 42);
  now_us_ = 20;
  reg_.instant("vm", "page \"flush\"\n", 0, 42, {{"count", "3"}});
  now_us_ = 30;
  reg_.end_span(id);
  const std::string json = reg_.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Kernel integration: instrumentation through a real simulated run.
// ---------------------------------------------------------------------------

// A small workload: spawn a process on ws0 that dirties some heap and
// computes, then actively migrate it to ws1 and wait for it.
void run_migration_workload(SpriteCluster& cluster) {
  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 64, true})
      .compute(Time::sec(2))
      .exit(0);
  cluster.install_program("/bin/work", b.image(8, 64, 2));
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/work", {});
  cluster.run_for(Time::msec(500));
  const auto st = cluster.migrate(pid, cluster.workstation(1));
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  cluster.wait(pid);
}

TEST(TraceIntegrationTest, CountersAccumulateDuringRun) {
  SpriteCluster cluster({.workstations = 3, .seed = 11,
                         .enable_load_sharing = false});
  run_migration_workload(cluster);
  Registry& tr = cluster.sim().trace();
  const auto ws0 = cluster.workstation(0);
  const auto ws1 = cluster.workstation(1);
  EXPECT_EQ(tr.counter_value("mig.out.completed", ws0), 1);
  EXPECT_EQ(tr.counter_value("mig.in.completed", ws1), 1);
  EXPECT_GE(tr.counter_value("proc.process.spawned", ws0), 1);
  EXPECT_GT(tr.counter_value("rpc.call.started", ws0), 0);
  EXPECT_GT(tr.counter_value("vm.page.flushed", ws0), 0);
  // The legacy Stats views are backed by the same counters.
  EXPECT_EQ(cluster.host(ws0).mig().stats().out,
            tr.counter_value("mig.out.completed", ws0));
  EXPECT_EQ(cluster.host(ws0).procs().stats().spawns,
            tr.counter_value("proc.process.spawned", ws0));
  // No tracing requested: the metrics came for free, no events recorded.
  EXPECT_TRUE(tr.events().empty());
}

bool has_event(const Registry& tr, const std::string& cat,
               const std::string& name) {
  for (const Event& e : tr.events())
    if (e.cat == cat && e.name == name) return true;
  return false;
}

TEST(TraceIntegrationTest, MigrationRunEmitsLifecycleSpans) {
  SpriteCluster cluster({.workstations = 3, .seed = 11,
                         .enable_load_sharing = false});
  Registry& tr = cluster.sim().trace();
  tr.set_tracing(true);
  run_migration_workload(cluster);
  ASSERT_FALSE(tr.events().empty());

  EXPECT_TRUE(has_event(tr, "mig", "init handshake"));
  EXPECT_TRUE(has_event(tr, "mig", "vm sprite-flush"));
  EXPECT_TRUE(has_event(tr, "mig", "streams re-attribute"));
  EXPECT_TRUE(has_event(tr, "mig", "transfer+resume"));
  EXPECT_TRUE(has_event(tr, "mig", "frozen"));
  EXPECT_TRUE(has_event(tr, "mig", "migrated in"));
  EXPECT_TRUE(has_event(tr, "vm", "page flush"));

  // The lifecycle spans carry host and pid attribution.
  const auto ws0 = cluster.workstation(0);
  bool attributed = false;
  for (const Event& e : tr.events()) {
    if (e.cat != "mig" || e.name != "init handshake") continue;
    EXPECT_EQ(e.host, ws0);
    EXPECT_GT(e.pid, 0);
    attributed = true;
  }
  EXPECT_TRUE(attributed);

  const std::string json = tr.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("init handshake"), std::string::npos);
}

TEST(TraceIntegrationTest, SameSeedProducesByteIdenticalTraceJson) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    SpriteCluster cluster({.workstations = 3, .seed = 11,
                           .enable_load_sharing = false});
    Registry& tr = cluster.sim().trace();
    tr.set_tracing(true);
    tr.set_host_name(cluster.workstation(0), "ws0");
    run_migration_workload(cluster);
    *out = tr.chrome_json();
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace sprite::trace
