// FS robustness: cache-capacity eviction, delayed writes surviving close,
// cold reads paying disk latency, server crash visibility, and RPC dedup
// under load.
#include <gtest/gtest.h>

#include "fs/client.h"
#include "fs/server.h"
#include "kern/cluster.h"
#include "sim/time.h"

namespace sprite::fs {
namespace {

using kern::Cluster;
using sim::Time;
using util::Err;
using util::Status;

StreamPtr open_blocking(Cluster& cluster, sim::HostId h,
                        const std::string& path, OpenFlags flags) {
  StreamPtr out;
  bool done = false;
  cluster.host(h).fs().open(path, flags, [&](util::Result<StreamPtr> r) {
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    if (r.is_ok()) out = *r;
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  return out;
}

Bytes read_blocking(Cluster& cluster, sim::HostId h, const StreamPtr& s,
                    std::int64_t len) {
  Bytes out;
  bool done = false;
  cluster.host(h).fs().read(s, len, [&](util::Result<Bytes> r) {
    EXPECT_TRUE(r.is_ok());
    if (r.is_ok()) out = std::move(*r);
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  return out;
}

TEST(FsCapacityTest, ClientCacheEvictsUnderPressureWithoutDataLoss) {
  // A tiny client cache (16 blocks): reading a 64-block file sweeps the
  // cache several times; integrity must survive the evictions.
  kern::Cluster::Config config{.num_workstations = 1, .num_file_servers = 1};
  config.costs.fs_client_cache_blocks = 16;
  Cluster cluster(config);
  auto* server = cluster.file_server().fs_server();

  // Seed known contents directly at the server.
  auto id = server->create_file("/big", 0);
  ASSERT_TRUE(id.is_ok());
  {
    // Write through a client once (fills and overflows the cache).
    auto s = open_blocking(cluster, 1, "/big", OpenFlags::read_write());
    Bytes data(64 * 4096);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::uint8_t>((i / 4096 + i) & 0xff);
    bool done = false;
    cluster.host(1).fs().write(s, data, [&](util::Result<std::int64_t> r) {
      ASSERT_TRUE(r.is_ok());
      done = true;
    });
    cluster.run_until_done([&] { return done; });
    done = false;
    cluster.host(1).fs().fsync(s, [&](Status) { done = true; });
    cluster.run_until_done([&] { return done; });

    // Read it all back through the same (small) cache.
    cluster.host(1).fs().seek(s, 0);
    Bytes got = read_blocking(cluster, 1, s, 64 * 4096);
    ASSERT_EQ(got.size(), data.size());
    EXPECT_EQ(got, data);
  }
  // The cache respected its capacity: of the 64 blocks read back, only the
  // ~16 still resident after the write sweep could hit.
  EXPECT_GE(cluster.host(1).fs().stats().cache_miss_blocks, 48);
}

TEST(FsDelayedWriteTest, DirtyDataSurvivesCloseAndFlushesLater) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1});
  auto* server = cluster.file_server().fs_server();
  auto s = open_blocking(cluster, 1, "/later", OpenFlags::create_rw());
  bool done = false;
  Bytes payload{'d', 'a', 't', 'a'};
  cluster.host(1).fs().write(s, payload, [&](util::Result<std::int64_t> r) {
    ASSERT_TRUE(r.is_ok());
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  done = false;
  cluster.host(1).fs().close(s, [&](Status) { done = true; });
  cluster.run_until_done([&] { return done; });

  // Closed, but the delayed write has not fired: server sees nothing yet.
  auto st = server->stat_path("/later");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->size, 0);

  // After the 30 s delay it lands.
  cluster.sim().run_until(cluster.sim().now() + Time::sec(31));
  st = server->stat_path("/later");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->size, 4);
}

TEST(FsDiskLatencyTest, ColdServerReadsPayDiskWarmOnesDoNot) {
  // Shrink the server cache so the file cannot fit, then read it twice.
  kern::Cluster::Config config{.num_workstations = 1, .num_file_servers = 1};
  config.costs.fs_server_cache_blocks = 4;
  Cluster cluster(config);
  auto* server = cluster.file_server().fs_server();
  server->create_file("/cold", 16 * 4096);

  OpenFlags flags = OpenFlags::read_only();
  flags.no_cache = true;  // bypass the client cache: hit the server each time
  auto s = open_blocking(cluster, 1, "/cold", flags);

  const auto disk_before = server->stats().disk_accesses;
  const Time t0 = cluster.sim().now();
  read_blocking(cluster, 1, s, 16 * 4096);
  const double cold_ms = (cluster.sim().now() - t0).ms();
  EXPECT_GT(server->stats().disk_accesses, disk_before);
  // 16 blocks, mostly misses at 15 ms each: disk dominates.
  EXPECT_GT(cold_ms, 100.0);

  // A 4-block re-read fits the LRU tail and can be served warm.
  cluster.host(1).fs().seek(s, 12 * 4096);
  const auto disk_mid = server->stats().disk_accesses;
  const Time t1 = cluster.sim().now();
  read_blocking(cluster, 1, s, 4 * 4096);
  const double warm_ms = (cluster.sim().now() - t1).ms();
  EXPECT_EQ(server->stats().disk_accesses, disk_mid);  // all cached
  EXPECT_LT(warm_ms, cold_ms / 4);
}

TEST(FsServerDownTest, OperationsFailWithTimeoutsNotHangs) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1});
  cluster.file_server().fs_server()->create_file("/there", 128);
  auto s = open_blocking(cluster, 1, "/there", OpenFlags::read_only());

  cluster.net().set_host_up(cluster.file_server().id(), false);
  bool done = false;
  Err err = Err::kOk;
  // Bypass the cache so the read must reach the (dead) server.
  OpenFlags nf = OpenFlags::read_only();
  nf.no_cache = true;
  cluster.host(1).fs().open("/there", nf, [&](util::Result<StreamPtr> r) {
    err = r.err();
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  EXPECT_EQ(err, Err::kTimedOut);
  (void)s;
}

TEST(FsWritebackCoalescingTest, FlushBatchesContiguousDirtyBlocks) {
  Cluster cluster({.num_workstations = 1, .num_file_servers = 1});
  auto s = open_blocking(cluster, 1, "/batch", OpenFlags::create_rw());
  bool done = false;
  // 64 KB of contiguous dirty data = 16 blocks; at 16 KB per transfer the
  // flush needs exactly 4 write RPCs, not 16.
  cluster.host(1).fs().write(s, Bytes(64 * 1024, 'b'),
                             [&](util::Result<std::int64_t> r) {
                               ASSERT_TRUE(r.is_ok());
                               done = true;
                             });
  cluster.run_until_done([&] { return done; });
  const auto writes_before = cluster.host(1).fs().stats().remote_writes;
  done = false;
  cluster.host(1).fs().fsync(s, [&](Status) { done = true; });
  cluster.run_until_done([&] { return done; });
  EXPECT_EQ(cluster.host(1).fs().stats().remote_writes - writes_before, 4);
}

}  // namespace
}  // namespace sprite::fs
