// Tests for the Remote-UNIX-style file-call forwarding comparator
// (thesis §4.3.1's design alternative): correctness of forwarded calls,
// restoration of direct access when the process returns home, and the
// performance gap versus transferred-state handling.
#include <gtest/gtest.h>

#include "core/sprite.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"

namespace sprite::mig {
namespace {

using core::SpriteCluster;
using proc::Action;
using proc::ScriptBuilder;
using proc::ScriptProgram;
using sim::Time;

fs::Bytes make_bytes(const std::string& s) {
  return fs::Bytes(s.begin(), s.end());
}

// Program: open /fwd, write, pause (migration point), write again, read all
// back, verify, fsync, exit 0/1.
ScriptBuilder make_prog() {
  ScriptBuilder b;
  b.act(proc::SysOpen{"/fwd", fs::OpenFlags::create_rw()});
  b.step([](ScriptProgram::Ctx& c) {
    c.locals["fd"] = c.view->rv;
    return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                          make_bytes("first."), 0};
  });
  b.act(proc::Pause{Time::sec(1)});
  b.step([](ScriptProgram::Ctx& c) {
    return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                          make_bytes("second."), 0};
  });
  b.step([](ScriptProgram::Ctx& c) {
    return proc::SysSeek{static_cast<int>(c.locals["fd"]), 0};
  });
  b.step([](ScriptProgram::Ctx& c) {
    return proc::SysRead{static_cast<int>(c.locals["fd"]), 64};
  });
  b.step([](ScriptProgram::Ctx& c) {
    const std::string got(c.view->data.begin(), c.view->data.end());
    c.locals["ok"] = got == "first.second." ? 1 : 0;
    return proc::SysFsync{static_cast<int>(c.locals["fd"])};
  });
  b.step([](ScriptProgram::Ctx& c) {
    return proc::SysClose{static_cast<int>(c.locals["fd"])};
  });
  b.step([](ScriptProgram::Ctx& c) {
    return proc::SysExit{c.locals["ok"] == 1 ? 0 : 1};
  });
  return b;
}

TEST(ForwardingModeTest, ForwardedFileCallsProduceIdenticalResults) {
  SpriteCluster cluster({.workstations = 3, .seed = 101});
  for (int i = 0; i < 3; ++i) {
    cluster.host(cluster.workstation(i))
        .mig()
        .set_file_call_mode(FileCallMode::kForwardHome);
  }
  auto prog = make_prog();
  cluster.install_program("/bin/fwd", prog.image());
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/fwd", {});
  cluster.run_for(Time::msec(300));
  ASSERT_TRUE(cluster.migrate(pid, cluster.workstation(1)).is_ok());

  // The stream stayed home: no stream migration at the file server.
  EXPECT_EQ(
      cluster.kernel().file_server().fs_server()->stats().stream_migrations,
      0);
  EXPECT_EQ(cluster.wait(pid), 0);  // the program verified its own data
}

TEST(ForwardingModeTest, ForwardedCallsLoadTheHomeMachine) {
  // The same remote I/O loop under both modes: forwarding must burn home
  // CPU and RPCs; transferred state must not.
  auto run_mode = [](FileCallMode mode, std::int64_t* home_rpcs) {
    SpriteCluster cluster({.workstations = 3, .seed = 102});
    for (int i = 0; i < 3; ++i)
      cluster.host(cluster.workstation(i)).mig().set_file_call_mode(mode);
    ScriptBuilder b;
    b.act(proc::SysOpen{"/loop", fs::OpenFlags::create_rw()});
    b.step([](ScriptProgram::Ctx& c) {
      c.locals["fd"] = c.view->rv;
      return proc::Pause{Time::msec(500)};
    });
    const int head = b.next_index();
    b.step([head](ScriptProgram::Ctx& c) {
      if (c.locals["i"]++ >= 50) return Action{proc::SysExit{0}};
      c.jump(head);
      return Action{proc::SysWrite{static_cast<int>(c.locals["fd"]),
                                   make_bytes("x"), 0}};
    });
    cluster.install_program("/bin/loop", b.image());
    const auto pid = cluster.spawn(cluster.workstation(0), "/bin/loop", {});
    cluster.run_for(Time::msec(200));
    EXPECT_TRUE(cluster.migrate(pid, cluster.workstation(1)).is_ok());
    const auto before =
        cluster.host(cluster.workstation(0)).rpc().requests_served();
    EXPECT_EQ(cluster.wait(pid), 0);
    *home_rpcs =
        cluster.host(cluster.workstation(0)).rpc().requests_served() - before;
  };

  std::int64_t fwd_rpcs = 0, xfer_rpcs = 0;
  run_mode(FileCallMode::kForwardHome, &fwd_rpcs);
  run_mode(FileCallMode::kTransferStreams, &xfer_rpcs);
  EXPECT_GE(fwd_rpcs, 50);  // one home RPC per forwarded write
  EXPECT_LE(xfer_rpcs, 10);  // transferred state leaves home alone
}

TEST(ForwardingModeTest, EvictionHomeRestoresDirectAccess) {
  SpriteCluster cluster({.workstations = 3, .seed = 103});
  for (int i = 0; i < 3; ++i) {
    cluster.host(cluster.workstation(i))
        .mig()
        .set_file_call_mode(FileCallMode::kForwardHome);
  }
  ScriptBuilder b;
  b.act(proc::SysOpen{"/back", fs::OpenFlags::create_rw()});
  b.step([](ScriptProgram::Ctx& c) {
    c.locals["fd"] = c.view->rv;
    return proc::Pause{Time::sec(2)};  // migrated away during this
  });
  b.step([](ScriptProgram::Ctx& c) {
    return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                          make_bytes("home-again"), 0};
  });
  b.step([](ScriptProgram::Ctx& c) {
    return proc::SysFsync{static_cast<int>(c.locals["fd"])};
  });
  b.exit(0);
  cluster.install_program("/bin/back", b.image());
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/back", {});
  cluster.run_for(Time::msec(300));
  ASSERT_TRUE(cluster.migrate(pid, cluster.workstation(1)).is_ok());

  // Owner returns; the process is evicted home mid-sleep.
  cluster.run_for(Time::msec(300));
  EXPECT_EQ(cluster.evict(cluster.workstation(1)), 1);
  auto pcb = cluster.host(cluster.workstation(0)).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  EXPECT_FALSE(pcb->forward_file_calls);  // direct access restored
  EXPECT_EQ(pcb->fds.size(), 1u);         // the parked stream came back

  EXPECT_EQ(cluster.wait(pid), 0);
  auto st = cluster.kernel().file_server().fs_server()->stat_path("/back");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->size, 10);  // "home-again" written through the direct path
}

}  // namespace
}  // namespace sprite::mig
