// Fault-injection tests: the crash matrix (who dies × when), determinism of
// fault schedules, no-fault invariance, at-most-once behaviour under host
// flapping, stale-generation recovery, and load-sharing (migd) crash-restart.
//
// The crash matrix is the heart: a process migrates between two
// workstations while a scripted victim — migration source, target, the
// process's home machine, the file server holding its open stream, or
// migd's host — crashes at each protocol stage and reboots two seconds
// later. Whatever happens to the process (finishes, dies with the crash
// exit status, or is silently reaped when its home vanished), the cluster
// must converge: no half-open migrations, no residual images, no frozen or
// leaked PCBs, and the home record resolved.
//
// Seed sweep: the matrix and determinism suites re-run under every seed in
// SPRITE_FAULT_SEEDS (count, default 2); CI's fault-sweep job raises it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ckpt/image.h"
#include "ckpt/manager.h"
#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "loadshare/wire.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"
#include "rpc/rpc.h"
#include "sim/fault.h"
#include "vm/vm.h"

namespace sprite {
namespace {

using kern::Cluster;
using mig::MigStage;
using proc::Pid;
using proc::ScriptBuilder;
using proc::ScriptProgram;
using sim::FaultPlan;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Status;

fs::Bytes make_bytes(const std::string& s) {
  return fs::Bytes(s.begin(), s.end());
}

std::vector<std::uint64_t> sweep_seeds() {
  int n = 2;
  if (const char* e = std::getenv("SPRITE_FAULT_SEEDS")) n = std::atoi(e);
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i <= std::max(1, n); ++i)
    seeds.push_back(static_cast<std::uint64_t>(i));
  return seeds;
}

FaultPlan::Hooks cluster_hooks(Cluster& cluster) {
  return {.crash = [&cluster](HostId h) { cluster.crash_host(h); },
          .reboot = [&cluster](HostId h) { cluster.reboot_host(h); }};
}

// ---------------------------------------------------------------------------
// Crash matrix
// ---------------------------------------------------------------------------

enum class Victim : int { kSource, kTarget, kHome, kFileServer, kMigd };

const char* victim_name(Victim v) {
  switch (v) {
    case Victim::kSource: return "Source";
    case Victim::kTarget: return "Target";
    case Victim::kHome: return "Home";
    case Victim::kFileServer: return "FileServer";
    case Victim::kMigd: return "Migd";
  }
  return "?";
}

using MatrixParam = std::tuple<Victim, MigStage, std::uint64_t>;

class CrashMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CrashMatrixTest, ClusterConvergesAfterCrashAndReboot) {
  const auto [victim, stage, seed] = GetParam();
  Cluster cluster({.num_workstations = 4, .num_file_servers = 2, .seed = seed});
  ls::Facility facility(cluster, ls::Arch::kCentral);

  const auto wss = cluster.workstations();
  const HostId home = wss[0];
  const HostId source = wss[1];
  const HostId target = wss[2];
  const HostId file_server = cluster.file_server(1).id();
  const HostId migd = cluster.file_server(0).id();
  HostId victim_host = sim::kInvalidHost;
  switch (victim) {
    case Victim::kSource: victim_host = source; break;
    case Victim::kTarget: victim_host = target; break;
    case Victim::kHome: victim_host = home; break;
    case Victim::kFileServer: victim_host = file_server; break;
    case Victim::kMigd: victim_host = migd; break;
  }

  // The process keeps an open stream on the second file server (so a file
  // server crash is distinguishable from migd's host, file server 0),
  // dirties heap pages, computes, then writes again — the post-crash write
  // exercises the stale-generation reopen when the server rebooted.
  ASSERT_TRUE(cluster.file_server(1).fs_server()->mkdir_p("/s1").is_ok());
  ScriptBuilder b;
  b.act(proc::SysOpen{"/s1/data", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("before-"), 0};
      })
      .act(proc::Touch{vm::Segment::kHeap, 0, 64, true})
      .compute(Time::sec(10))
      .step([](ScriptProgram::Ctx& c) {
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("after"), 0};
      })
      .act(proc::SysExit{7});
  ASSERT_TRUE(
      cluster.install_program("/bin/faultwork", b.image(16, 64, 4)).is_ok());

  // Spawn on `home`, then move it to `source` so home != source for the
  // faulted migration.
  util::Result<Pid> spawned(Err::kAgain);
  bool spawn_done = false;
  cluster.host(home).procs().spawn("/bin/faultwork", {},
                                   [&](util::Result<Pid> r) {
                                     spawned = std::move(r);
                                     spawn_done = true;
                                   });
  cluster.run_until_done([&] { return spawn_done; });
  ASSERT_TRUE(spawned.is_ok()) << spawned.status().to_string();
  const Pid pid = *spawned;
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));

  {
    auto pcb = cluster.host(home).procs().find(pid);
    ASSERT_TRUE(pcb != nullptr);
    Status st(Err::kAgain);
    bool done = false;
    cluster.host(home).mig().migrate(pcb, source, [&](Status s) {
      st = s;
      done = true;
    });
    cluster.run_until_done([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  bool exited = false;
  int exit_status = -1;
  cluster.host(home).procs().notify_on_exit(pid, [&](int s) {
    exited = true;
    exit_status = s;
  });

  bool crash_fired = false;
  cluster.host(source).mig().add_stage_observer(
      [&, victim_host = victim_host](Pid p, MigStage s) {
        if (p != pid || s != stage || crash_fired) return;
        crash_fired = true;
        cluster.crash_host(victim_host);
        cluster.sim().after(Time::sec(2), [&cluster, victim_host] {
          cluster.reboot_host(victim_host);
        });
      });

  Status mig_status(Err::kAgain);
  bool mig_done = false;
  auto pcb = cluster.host(source).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  cluster.host(source).mig().migrate(pcb, target, [&](Status s) {
    mig_status = s;
    mig_done = true;
  });

  // Long enough for retries, the reboot, stale-reopen recovery, and the 10 s
  // compute wherever the process ended up.
  cluster.sim().run_until(cluster.sim().now() + Time::sec(120));

  EXPECT_TRUE(crash_fired) << "migration never reached the scripted stage";
  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h) {
    EXPECT_FALSE(cluster.host_crashed(h)) << "host " << h << " still down";
    EXPECT_EQ(cluster.host(h).mig().active_migrations(), 0u)
        << "half-open migration on host " << h;
    EXPECT_EQ(cluster.host(h).mig().residual_spaces(), 0u)
        << "leaked residual image on host " << h;
    EXPECT_EQ(cluster.host(h).procs().find(pid), nullptr)
        << "leaked PCB on host " << h;
    for (const auto& p : cluster.host(h).procs().local_processes())
      EXPECT_NE(p->state, proc::ProcState::kFrozen)
          << "pid " << p->pid << " frozen forever on host " << h;
  }
  // The home record resolved one way or the other.
  EXPECT_FALSE(cluster.host(home).procs().home_record_alive(pid));
  if (victim != Victim::kHome) {
    // The waiter unblocked: the process finished (7) or died with the crash
    // (137). Only a home crash may silently drop the observer.
    EXPECT_TRUE(exited);
    EXPECT_TRUE(exit_status == 7 ||
                exit_status == proc::kHostCrashExitStatus)
        << "unexpected exit status " << exit_status;
  }
  if (victim == Victim::kTarget && stage != MigStage::kResume) {
    // A target crash before completion must roll back: the migrate call
    // fails and the process finishes where it was.
    EXPECT_TRUE(mig_done);
    EXPECT_FALSE(mig_status.is_ok());
    EXPECT_EQ(exit_status, 7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashMatrixTest,
    ::testing::Combine(::testing::Values(Victim::kSource, Victim::kTarget,
                                         Victim::kHome, Victim::kFileServer,
                                         Victim::kMigd),
                       ::testing::Values(MigStage::kInit, MigStage::kFreeze,
                                         MigStage::kVmTransfer,
                                         MigStage::kStreams,
                                         MigStage::kResume),
                       ::testing::ValuesIn(sweep_seeds())),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      const char* stage = "";
      switch (std::get<1>(info.param)) {
        case MigStage::kInit: stage = "Init"; break;
        case MigStage::kFreeze: stage = "Freeze"; break;
        case MigStage::kVmTransfer: stage = "VmTransfer"; break;
        case MigStage::kStreams: stage = "Streams"; break;
        case MigStage::kResume: stage = "Resume"; break;
      }
      return std::string(victim_name(std::get<0>(info.param))) + "At" +
             stage + "Seed" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

// One traced run: a migrating workload under an optional fault schedule.
// Returns the full Chrome-trace export, which captures every event and its
// timestamp — byte equality means the runs were indistinguishable.
std::string traced_run(std::uint64_t seed, bool with_plan, bool empty_plan) {
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1, .seed = seed});
  cluster.sim().trace().set_tracing(true);
  ls::Facility facility(cluster, ls::Arch::kCentral);
  const auto wss = cluster.workstations();

  ScriptBuilder b;
  b.act(proc::SysOpen{"/detfile", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("det"), 0};
      })
      .act(proc::Touch{vm::Segment::kHeap, 0, 32, true})
      .compute(Time::sec(15))
      .act(proc::SysExit{0});
  SPRITE_CHECK(
      cluster.install_program("/bin/detwork", b.image(16, 32, 4)).is_ok());

  std::unique_ptr<FaultPlan> plan;
  if (with_plan) {
    plan = std::make_unique<FaultPlan>(cluster.sim(), cluster.net());
    if (!empty_plan) {
      // Crash the migration target mid-run and reboot it; drop one FS I/O
      // request and delay one reply for good measure.
      plan->crash_host(wss[1], Time::sec(3), Time::sec(2));
      plan->drop_message(
          rpc::RpcNode::match_request(rpc::ServiceId::kFsIo), 2);
      plan->delay_message(rpc::RpcNode::match_reply(), 5, Time::msec(7));
    }
    plan->arm(cluster_hooks(cluster));
  }

  bool spawn_done = false;
  Pid pid = proc::kInvalidPid;
  cluster.host(wss[0]).procs().spawn("/bin/detwork", {},
                                     [&](util::Result<Pid> r) {
                                       if (r.is_ok()) pid = *r;
                                       spawn_done = true;
                                     });
  cluster.run_until_done([&] { return spawn_done; });
  SPRITE_CHECK(pid != proc::kInvalidPid);
  cluster.sim().after(Time::sec(1), [&cluster, &wss, pid] {
    auto pcb = cluster.host(wss[0]).procs().find(pid);
    if (!pcb) return;
    cluster.host(wss[0]).mig().migrate(pcb, wss[1], [](Status) {});
  });

  cluster.sim().run_until(Time::sec(60));
  return cluster.sim().trace().chrome_json();
}

class FaultDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultDeterminismTest, SameSeedSamePlanIsByteIdentical) {
  const std::uint64_t seed = GetParam();
  const std::string a = traced_run(seed, true, /*empty_plan=*/false);
  const std::string b = traced_run(seed, true, /*empty_plan=*/false);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "fault schedule replay diverged for seed " << seed;
}

TEST_P(FaultDeterminismTest, ArmedEmptyPlanIsObservationallyAbsent) {
  const std::uint64_t seed = GetParam();
  const std::string without = traced_run(seed, false, false);
  const std::string with_empty = traced_run(seed, true, /*empty_plan=*/true);
  EXPECT_EQ(without, with_empty)
      << "an armed plan with no entries perturbed the run for seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultDeterminismTest,
                         ::testing::ValuesIn(sweep_seeds()));

// ---------------------------------------------------------------------------
// At-most-once under flapping
// ---------------------------------------------------------------------------

TEST(FaultRpcTest, FlappingHostReplaysCachedReplyWithoutReexecution) {
  // B is down when A's request first goes out; retransmissions bring it
  // through once B returns. The first reply is then dropped, so A
  // retransmits a request B has already executed — the at-most-once cache
  // must replay the reply without running the handler again.
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 3});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];

  int handler_runs = 0;
  cluster.host(b).rpc().register_service(
      rpc::ServiceId::kLoadShare,
      [&](HostId, const rpc::Request&,
          std::function<void(rpc::Reply)> respond) {
        ++handler_runs;
        respond(rpc::Reply{Status::ok(), nullptr});
      });

  FaultPlan plan(cluster.sim(), cluster.net());
  plan.drop_message(rpc::RpcNode::match_reply(a), 1);
  plan.arm(cluster_hooks(cluster));

  cluster.net().set_host_up(b, false);
  cluster.sim().after(Time::msec(150),
                      [&cluster, b] { cluster.net().set_host_up(b, true); });

  Status out(Err::kAgain);
  bool done = false;
  cluster.host(a).rpc().call(b, rpc::ServiceId::kLoadShare, 0,
                             std::make_shared<ls::GossipReq>(),
                             [&](util::Result<rpc::Reply> r) {
                               out = r.is_ok() ? r->status : r.status();
                               done = true;
                             });
  cluster.run_until_done([&] { return done; });

  EXPECT_TRUE(out.is_ok()) << out.to_string();
  EXPECT_EQ(handler_runs, 1)
      << "duplicate request re-executed a non-idempotent handler";
}

// ---------------------------------------------------------------------------
// Stale-generation recovery
// ---------------------------------------------------------------------------

TEST(FaultFsTest, StaleGenerationRecoversByReopen) {
  // A client stream survives its server's crash+reboot: the server's new
  // boot generation makes the next I/O fail kStale, the client reopens by
  // path, and the retried read returns the (durable) data.
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 5});
  const auto wss = cluster.workstations();
  const HostId client = wss[0];
  const HostId server = cluster.file_server(0).id();

  // Bypass the client block cache so the post-reboot read must consult the
  // server and see the generation mismatch.
  fs::OpenFlags flags = fs::OpenFlags::create_rw();
  flags.no_cache = true;
  fs::StreamPtr stream;
  bool ready = false;
  cluster.host(client).fs().open(
      "/stalefile", flags,
      [&](util::Result<fs::StreamPtr> r) {
        ASSERT_TRUE(r.is_ok());
        stream = *r;
        cluster.host(client).fs().write(
            stream, make_bytes("durable"), [&](util::Result<std::int64_t> w) {
              ASSERT_TRUE(w.is_ok());
              cluster.host(client).fs().fsync(stream, [&](Status s) {
                ASSERT_TRUE(s.is_ok());
                ready = true;
              });
            });
      });
  cluster.run_until_done([&] { return ready; });

  cluster.crash_host(server);
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  cluster.reboot_host(server);

  ASSERT_TRUE(cluster.host(client).fs().seek(stream, 0).is_ok());
  fs::Bytes data;
  bool read_done = false;
  cluster.host(client).fs().read(stream, 7, [&](util::Result<fs::Bytes> r) {
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    data = *r;
    read_done = true;
  });
  cluster.run_until_done([&] { return read_done; });

  EXPECT_EQ(std::string(data.begin(), data.end()), "durable");
  EXPECT_GE(cluster.sim()
                .trace()
                .counter("fs.client.stale.reopen", client)
                .value(),
            1)
      << "recovery did not go through the stale-reopen path";
}

// ---------------------------------------------------------------------------
// Load sharing: migd crash-restart, reservation clearing
// ---------------------------------------------------------------------------

TEST(FaultLoadShareTest, MigdCrashRestartRecoversEndToEnd) {
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1, .seed = 9});
  ls::Facility facility(cluster, ls::Arch::kCentral);
  const auto wss = cluster.workstations();
  const HostId migd = cluster.file_server(0).id();

  // Let a few announcement rounds populate the daemon's table.
  // Hosts only report idle after 30s without input, so run well past the
  // threshold to let post-threshold announcements populate the table.
  cluster.sim().run_until(Time::sec(60));
  ASSERT_GT(facility.daemon()->idle_unassigned(cluster.sim().now()), 0);

  auto request = [&](int n) {
    std::vector<HostId> got;
    bool done = false;
    facility.selector(wss[0]).request_hosts(n, [&](std::vector<HostId> h) {
      got = std::move(h);
      done = true;
    });
    cluster.run_until_done([&] { return done; });
    return got;
  };

  const auto first = request(2);
  ASSERT_FALSE(first.empty());

  cluster.crash_host(migd);
  cluster.sim().after(Time::sec(1),
                      [&cluster, migd] { cluster.reboot_host(migd); });
  // Announcers reopen the reinstalled pseudo-device and repopulate the
  // table; the selector's first post-crash attempt may fail and drop its
  // cached stream, so poll until a grant lands.
  std::vector<HostId> regrant;
  for (int attempt = 0; attempt < 12 && regrant.empty(); ++attempt) {
    cluster.sim().run_until(cluster.sim().now() + Time::sec(10));
    regrant = request(2);
  }
  EXPECT_FALSE(regrant.empty())
      << "no grants after migd's host crashed and rebooted";
  // The restarted daemon rebuilt its table purely from announcements.
  EXPECT_GT(facility.daemon()->stats().announcements, 0);
}

TEST(FaultLoadShareTest, ReserverCrashClearsReservation) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1, .seed = 11});
  ls::Facility facility(cluster, ls::Arch::kCentral);
  const auto wss = cluster.workstations();
  // Past the 30 s no-input threshold, so the workstations count as idle.
  cluster.sim().run_until(Time::sec(40));

  // Reserve over the wire (as real selectors do): the kReserve request also
  // teaches wss[2]'s host monitor the requester's boot epoch, which is what
  // lets it recognise the reboot below as a new incarnation.
  auto req = std::make_shared<ls::ReserveReq>();
  req->requester = wss[1];
  bool reserved = false;
  cluster.host(wss[1]).rpc().call(
      wss[2], rpc::ServiceId::kLoadShare,
      static_cast<int>(ls::LsOp::kReserve), req,
      [&](util::Result<rpc::Reply> r) {
        ASSERT_TRUE(r.is_ok() && r->status.is_ok());
        reserved = true;
      });
  cluster.run_until_done([&] { return reserved; });
  ASSERT_TRUE(facility.node(wss[2]).reserved());

  cluster.crash_host(wss[1]);
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  cluster.reboot_host(wss[1]);
  // No omniscient notification: wss[2]'s monitor must probe the reserver
  // (the reservation makes it interesting) and see the epoch jump. Give it
  // a few echo intervals.
  cluster.sim().run_until(cluster.sim().now() + Time::sec(10));

  EXPECT_FALSE(facility.node(wss[2]).reserved())
      << "reservation pinned to a crashed requester was never cleared";
  EXPECT_EQ(
      cluster.sim().trace().counter("ls.eviction.crash", wss[2]).value(), 1);
}

// ---------------------------------------------------------------------------
// Checkpoint crash sweep: a checkpointed victim's host crashes during
// {checkpoint, compaction, restart} at every observable stage. Whatever the
// timing, two invariants must hold when the cluster converges:
//   * no double incarnation — at most one live copy of the pid exists, and
//     the process either runs to correct completion or crash-exits;
//   * no lost checkpoint chain — a crash mid-capture or mid-compaction
//     never corrupts the previously committed chain (the head-rewrite
//     commit protocol), so a later restart still works or the home record
//     resolves cleanly.
// ---------------------------------------------------------------------------

using ckpt::CkptStage;

const char* ckpt_crash_point_name(CkptStage s) {
  switch (s) {
    case CkptStage::kFrozen: return "Frozen";
    case CkptStage::kFlushed: return "Flushed";
    case CkptStage::kPagesWritten: return "PagesWritten";
    case CkptStage::kMetaWritten: return "MetaWritten";
    case CkptStage::kCommitted: return "Committed";
    case CkptStage::kCompacted: return "Compacted";
    case CkptStage::kRegistered: return "Registered";
    case CkptStage::kRestartRead: return "RestartRead";
    case CkptStage::kRestartStaged: return "RestartStaged";
    case CkptStage::kRestartResumed: return "RestartResumed";
  }
  return "?";
}

using CkptMatrixParam = std::tuple<CkptStage, std::uint64_t>;

class CkptCrashMatrixTest : public ::testing::TestWithParam<CkptMatrixParam> {
};

TEST_P(CkptCrashMatrixTest, OneIncarnationAndNoLostChain) {
  const auto [crash_stage, seed] = GetParam();
  kern::Cluster::Config cfg{.num_workstations = 3, .num_file_servers = 1,
                            .seed = seed};
  cfg.costs.ckpt_chain_max = 2;  // compaction happens within the sweep
  kern::Cluster cluster(cfg);
  const auto wss = cluster.workstations();
  const HostId home = wss[0], runner = wss[1];

  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 32, true});
  for (int i = 0; i < 6; ++i)
    b.compute(Time::sec(3)).act(proc::Touch{vm::Segment::kHeap, 0, 2, true});
  b.act(proc::SysExit{7});
  ASSERT_TRUE(cluster.install_program("/bin/ckv", b.image(8, 32, 2)).is_ok());

  util::Result<Pid> spawned(Err::kAgain);
  bool spawn_done = false;
  cluster.host(home).procs().spawn("/bin/ckv", {}, [&](util::Result<Pid> r) {
    spawned = std::move(r);
    spawn_done = true;
  });
  cluster.run_until_done([&] { return spawn_done; });
  ASSERT_TRUE(spawned.is_ok());
  const Pid pid = *spawned;
  cluster.sim().run_until(cluster.sim().now() + Time::msec(500));
  {
    auto pcb = cluster.host(home).procs().find(pid);
    ASSERT_TRUE(pcb != nullptr);
    Status st(Err::kAgain);
    bool done = false;
    cluster.host(home).mig().migrate(pcb, runner, [&](Status s) {
      st = s;
      done = true;
    });
    cluster.run_until_done([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  bool exited = false;
  int exit_status = -1;
  cluster.host(home).procs().notify_on_exit(pid, [&](int s) {
    exited = true;
    exit_status = s;
  });

  // Crash the host where the observed stage fires (capture stages fire on
  // the capturing host, restart stages on the restart target), then reboot
  // it so the cluster can converge either way.
  bool crash_fired = false;
  auto arm = [&](HostId h) {
    cluster.host(h).ckpt().add_stage_observer(
        [&, h](Pid p, CkptStage s) {
          if (p != pid || s != crash_stage || crash_fired) return;
          if (cluster.host_crashed(h)) return;
          crash_fired = true;
          cluster.sim().after(Time::zero(), [&cluster, h] {
            if (!cluster.host_crashed(h)) cluster.crash_host(h);
          });
          cluster.sim().after(Time::sec(2), [&cluster, h] {
            if (cluster.host_crashed(h)) cluster.reboot_host(h);
          });
        });
  };
  for (const HostId h : wss) arm(h);

  // Drive captures: one base, increments past ckpt_chain_max (forces the
  // compaction the kCompacted point needs), and — because a capture dies
  // with the crash — keep checkpointing while the process lives. Restart
  // stages fire when the home recovers the process after a crash at a
  // capture stage killed the runner... so for restart-stage sweeps, crash
  // the runner explicitly once a checkpoint is committed.
  const bool restart_stage = crash_stage >= CkptStage::kRestartRead;
  int captures_requested = 0;
  std::function<void()> drive = [&] {
    if (exited || captures_requested >= 5) return;
    ++captures_requested;
    for (const HostId h : wss) {
      if (cluster.host_crashed(h)) continue;
      if (auto pcb = cluster.host(h).procs().find(pid)) {
        cluster.host(h).ckpt().checkpoint(pcb, [](Status) {});
        break;
      }
    }
    cluster.sim().after(Time::sec(4), drive);
  };
  drive();
  if (restart_stage) {
    // Let a checkpoint commit, then kill the runner outright: recovery's
    // restore passes through the restart stages, where the observer fires.
    cluster.sim().after(Time::sec(6), [&] {
      if (!cluster.host_crashed(runner)) cluster.crash_host(runner);
      cluster.sim().after(Time::sec(2), [&] {
        if (cluster.host_crashed(runner)) cluster.reboot_host(runner);
      });
    });
  }

  cluster.sim().run_until(cluster.sim().now() + Time::sec(180));

  // Convergence: every host back up, nothing frozen, nothing half-open.
  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h) {
    EXPECT_FALSE(cluster.host_crashed(h)) << "host " << h << " still down";
    EXPECT_EQ(cluster.host(h).ckpt().active_ops(), 0u)
        << "half-open checkpoint op on host " << h;
    for (const auto& p : cluster.host(h).procs().local_processes())
      EXPECT_NE(p->state, proc::ProcState::kFrozen)
          << "pid " << p->pid << " frozen forever on host " << h;
  }
  // No double incarnation: at most one host still has a live copy, and only
  // if the process has not exited yet (it must then be unreachable — count
  // live copies directly).
  int live_copies = 0;
  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h) {
    auto p = cluster.host(h).procs().find(pid);
    if (p && p->state != proc::ProcState::kDead) ++live_copies;
  }
  EXPECT_LE(live_copies, 1) << "double incarnation";
  if (exited) {
    EXPECT_EQ(live_copies, 0);
    EXPECT_TRUE(exit_status == 7 || exit_status == proc::kHostCrashExitStatus)
        << "unexpected exit status " << exit_status;
  }
  // No lost chain: if a head file exists for the pid it must decode and its
  // referenced metas must all exist (the commit protocol's guarantee); a
  // retired record may legitimately have scrubbed everything.
  auto* srv = cluster.file_server(0).fs_server();
  auto head_stat = srv->stat_path(ckpt::head_path(pid));
  if (head_stat.is_ok()) {
    auto raw = srv->read_direct(head_stat->id, 0, head_stat->size);
    ASSERT_TRUE(raw.is_ok());
    auto head = ckpt::decode_head(*raw);
    ASSERT_TRUE(head.is_ok()) << "committed head does not decode";
    auto meta_stat = srv->stat_path(ckpt::meta_path(pid, *head));
    ASSERT_TRUE(meta_stat.is_ok()) << "head names a missing meta";
    auto meta_raw = srv->read_direct(meta_stat->id, 0, meta_stat->size);
    ASSERT_TRUE(meta_raw.is_ok());
    auto meta = ckpt::CkptMeta::decode(*meta_raw);
    ASSERT_TRUE(meta.is_ok()) << "committed meta does not decode";
    for (const std::int64_t s : meta->chain)
      EXPECT_TRUE(srv->stat_path(ckpt::pages_path(pid, s)).is_ok())
          << "chain seq " << s << " lost its pages file";
  }
}

INSTANTIATE_TEST_SUITE_P(
    CkptMatrix, CkptCrashMatrixTest,
    ::testing::Combine(
        ::testing::Values(CkptStage::kFrozen, CkptStage::kFlushed,
                          CkptStage::kPagesWritten, CkptStage::kMetaWritten,
                          CkptStage::kCommitted, CkptStage::kCompacted,
                          CkptStage::kRestartRead, CkptStage::kRestartStaged,
                          CkptStage::kRestartResumed),
        ::testing::ValuesIn(sweep_seeds())),
    [](const ::testing::TestParamInfo<CkptMatrixParam>& info) {
      return std::string("CrashAt") +
             ckpt_crash_point_name(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sprite
