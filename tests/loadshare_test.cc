// Tests for load sharing: idle detection, the four host-selection
// architectures, reservation, fairness, flood prevention, and eviction on
// user return.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"

namespace sprite::ls {
namespace {

using kern::Cluster;
using proc::Pid;
using proc::ScriptBuilder;
using sim::HostId;
using sim::Time;
using util::Err;

class LoadShareTest : public ::testing::TestWithParam<Arch> {
 protected:
  LoadShareTest()
      : cluster_({.num_workstations = 6, .num_file_servers = 1}),
        facility_(cluster_, GetParam()) {}

  // Runs the cluster until hosts have warmed up to idleness and the
  // architecture has propagated availability.
  void warm_up(double seconds = 45.0) {
    cluster_.sim().run_until(cluster_.sim().now() + Time::sec(seconds));
  }

  std::vector<HostId> request(int from_ws, int n) {
    std::vector<HostId> out;
    bool done = false;
    facility_.selector(ws(from_ws)).request_hosts(n, [&](std::vector<HostId> h) {
      out = std::move(h);
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return out;
  }

  void release(int from_ws, HostId h) {
    facility_.selector(ws(from_ws)).release_host(h);
    cluster_.sim().run_until(cluster_.sim().now() + Time::msec(200));
  }

  HostId ws(int i) {
    return cluster_.workstations()[static_cast<std::size_t>(i)];
  }

  Cluster cluster_;
  Facility facility_;
};

TEST_P(LoadShareTest, FreshHostsBecomeIdleAfterThreshold) {
  EXPECT_FALSE(facility_.node(ws(0)).is_idle());  // input threshold not met
  warm_up();
  EXPECT_TRUE(facility_.node(ws(0)).is_idle());
  EXPECT_EQ(facility_.idle_count(), 6);
}

TEST_P(LoadShareTest, TypingMakesHostNotIdle) {
  warm_up();
  cluster_.host(ws(0)).note_user_input();
  EXPECT_FALSE(facility_.node(ws(0)).is_idle());
  EXPECT_TRUE(facility_.node(ws(1)).is_idle());
}

TEST_P(LoadShareTest, CpuLoadMakesHostNotIdle) {
  ScriptBuilder b;
  b.compute(Time::sec(300)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/hog", b.image()).is_ok());
  bool spawned = false;
  cluster_.host(ws(0)).procs().spawn("/bin/hog", {},
                                     [&](util::Result<Pid>) { spawned = true; });
  cluster_.run_until_done([&] { return spawned; });
  warm_up();
  EXPECT_FALSE(facility_.node(ws(0)).is_idle());
  EXPECT_TRUE(facility_.node(ws(1)).is_idle());
}

TEST_P(LoadShareTest, RequestGrantsOnlyActuallyIdleHosts) {
  warm_up();
  auto hosts = request(0, 2);
  ASSERT_GE(hosts.size(), 1u);
  for (HostId h : hosts) {
    EXPECT_NE(h, ws(0));  // never granted itself
  }
  EXPECT_EQ(facility_.aggregate_stats().bad_grants, 0);
}

TEST_P(LoadShareTest, GrantedHostNotGrantedAgainUntilReleased) {
  warm_up();
  auto first = request(0, 1);
  ASSERT_EQ(first.size(), 1u);
  // Collect everything another requester can get: the granted host must not
  // be among it.
  auto rest = request(1, 10);
  for (HostId h : rest) EXPECT_NE(h, first[0]);

  for (HostId h : rest) release(1, h);
  release(0, first[0]);
  warm_up(20);
  // Ask from a third workstation (a requester is never granted its own
  // machine, and first[0] may be requester 1's machine).
  auto again = request(2, 10);
  bool found = false;
  for (HostId h : again) found |= (h == first[0]);
  EXPECT_TRUE(found) << "released host should be grantable again";
}

TEST_P(LoadShareTest, NoIdleHostsMeansEmptyGrant) {
  // Every workstation's user is typing.
  warm_up();
  for (int i = 0; i < 6; ++i) cluster_.host(ws(i)).note_user_input();
  // Give state time to propagate (announcements, gossip, load file).
  cluster_.sim().run_until(cluster_.sim().now() + Time::sec(6));
  auto hosts = request(0, 3);
  EXPECT_TRUE(hosts.empty());
}

TEST_P(LoadShareTest, UserReturnEvictsForeignProcesses) {
  warm_up();
  // Put a long-running process from ws0 onto an idle host.
  ScriptBuilder b;
  b.compute(Time::sec(600)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/guest", b.image()).is_ok());
  bool spawned = false;
  Pid pid = proc::kInvalidPid;
  cluster_.host(ws(0)).procs().spawn("/bin/guest", {},
                                     [&](util::Result<Pid> r) {
                                       pid = *r;
                                       spawned = true;
                                     });
  cluster_.run_until_done([&] { return spawned; });

  auto hosts = request(0, 1);
  ASSERT_EQ(hosts.size(), 1u);
  const HostId target = hosts[0];
  auto pcb = cluster_.host(ws(0)).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  util::Status st(Err::kAgain);
  bool done = false;
  cluster_.host(ws(0)).mig().migrate(pcb, target, [&](util::Status s) {
    st = s;
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  ASSERT_TRUE(st.is_ok());
  ASSERT_EQ(cluster_.host(target).procs().foreign_processes().size(), 1u);

  // The owner comes back: the foreign process must be evicted home.
  cluster_.host(target).note_user_input();
  cluster_.sim().run_until(cluster_.sim().now() + Time::sec(5));
  EXPECT_TRUE(cluster_.host(target).procs().foreign_processes().empty());
  auto home_pcb = cluster_.host(ws(0)).procs().find(pid);
  ASSERT_TRUE(home_pcb != nullptr);
  EXPECT_FALSE(home_pcb->foreign());
  EXPECT_GE(facility_.node(target).stats().evictions_triggered, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, LoadShareTest,
    ::testing::Values(Arch::kCentral, Arch::kSharedFile, Arch::kProbabilistic,
                      Arch::kMulticast),
    [](const ::testing::TestParamInfo<Arch>& info) {
      std::string n = arch_name(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// ---- Architecture-specific behaviours ----

TEST(CentralTest, SelectAndReleaseNearCalibration) {
  // E5: select + release an idle host through migd ~56 ms.
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1});
  Facility facility(cluster, Arch::kCentral);
  cluster.sim().run_until(Time::sec(45));

  HostId target = sim::kInvalidHost;
  // Warm the pdev stream first (the one-time open is not part of the
  // steady-state cost the thesis reports).
  {
    bool done = false;
    facility.selector(cluster.workstations()[0])
        .request_hosts(1, [&](std::vector<HostId> h) {
          ASSERT_EQ(h.size(), 1u);
          target = h[0];
          done = true;
        });
    cluster.run_until_done([&] { return done; });
    facility.selector(cluster.workstations()[0]).release_host(target);
    cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  }

  const Time start = cluster.sim().now();
  bool done = false;
  facility.selector(cluster.workstations()[0])
      .request_hosts(1, [&](std::vector<HostId> h) {
        ASSERT_EQ(h.size(), 1u);
        facility.selector(cluster.workstations()[0]).release_host(h[0]);
        done = true;
      });
  cluster.run_until_done([&] { return done; });
  // Wait for the release transaction to finish too.
  cluster.sim().run_until(cluster.sim().now() + Time::msec(60));
  const double ms = (cluster.sim().now() - start).ms();
  EXPECT_GT(ms, 35.0);
  EXPECT_LT(ms, 110.0);
}

TEST(CentralTest, FairAllocationUnderContention) {
  Cluster cluster({.num_workstations = 8, .num_file_servers = 1});
  Facility facility(cluster, Arch::kCentral);
  cluster.sim().run_until(Time::sec(45));
  const auto w = cluster.workstations();

  // Requester A grabs everything first; when B arrives, the daemon must
  // recall part of A's allocation rather than starve B (cooperative recall).
  std::vector<HostId> got_a, got_b;
  bool da = false, db = false;
  facility.selector(w[0]).request_hosts(10, [&](std::vector<HostId> h) {
    got_a = std::move(h);
    da = true;
  });
  cluster.run_until_done([&] { return da; });
  EXPECT_GE(got_a.size(), 6u);  // A holds nearly everything

  facility.selector(w[1]).request_hosts(10, [&](std::vector<HostId> h) {
    got_b = std::move(h);
    db = true;
  });
  cluster.run_until_done([&] { return db; });
  EXPECT_GE(got_b.size(), 2u) << "B must not be starved";

  // A polls again and learns which hosts were recalled.
  bool da2 = false;
  facility.selector(w[0]).request_hosts(0, [&](std::vector<HostId>) {
    da2 = true;
  });
  cluster.run_until_done([&] { return da2; });
  auto* sel_a = static_cast<CentralSelector*>(&facility.selector(w[0]));
  const auto revoked = sel_a->take_revoked();
  // Everything recalled from A went to B (B may also have received hosts
  // that were never A's, e.g. A's own idle workstation).
  EXPECT_GE(revoked.size(), 1u);
  EXPECT_LE(revoked.size(), got_b.size());
  for (HostId r : revoked)
    EXPECT_NE(std::find(got_b.begin(), got_b.end(), r), got_b.end());

  // After honouring the recall, effective holdings are disjoint.
  std::set<HostId> a_effective(got_a.begin(), got_a.end());
  for (HostId h : revoked) a_effective.erase(h);
  for (HostId b : got_b) EXPECT_EQ(a_effective.count(b), 0u);
}

TEST(ProbabilisticTest, StaleVectorCausesRefusedReservations) {
  Cluster cluster({.num_workstations = 5, .num_file_servers = 1});
  Facility facility(cluster, Arch::kProbabilistic);
  cluster.sim().run_until(Time::sec(45));
  const auto w = cluster.workstations();

  // All hosts look idle in everyone's vector. Suddenly make one busy; until
  // gossip catches up, a requester may pick it and get refused.
  ASSERT_FALSE(facility.node(w[0]).load_vector().empty());
  cluster.host(w[1]).note_user_input();  // now busy, vectors stale

  bool done = false;
  std::vector<HostId> got;
  facility.selector(w[0]).request_hosts(4, [&](std::vector<HostId> h) {
    got = std::move(h);
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  for (HostId h : got) EXPECT_NE(h, w[1]);  // the busy host refused
  EXPECT_GE(facility.selector(w[0]).stats().bad_grants, 1);
}

TEST(MulticastTest, ConcurrentRequestersNeverShareAHost) {
  Cluster cluster({.num_workstations = 6, .num_file_servers = 1});
  Facility facility(cluster, Arch::kMulticast);
  cluster.sim().run_until(Time::sec(45));
  const auto w = cluster.workstations();

  std::vector<HostId> got_a, got_b;
  bool da = false, db = false;
  facility.selector(w[0]).request_hosts(3, [&](std::vector<HostId> h) {
    got_a = std::move(h);
    da = true;
  });
  facility.selector(w[1]).request_hosts(3, [&](std::vector<HostId> h) {
    got_b = std::move(h);
    db = true;
  });
  cluster.run_until_done([&] { return da && db; });
  EXPECT_GE(got_a.size() + got_b.size(), 3u);
  for (HostId a : got_a)
    for (HostId b : got_b) EXPECT_NE(a, b);  // reservation arbitrates
}

TEST(MulticastTest, QueryCostsOneTransmissionPlusOffers) {
  Cluster cluster({.num_workstations = 6, .num_file_servers = 1});
  Facility facility(cluster, Arch::kMulticast);
  cluster.sim().run_until(Time::sec(45));
  const auto w = cluster.workstations();

  cluster.net().reset_stats();
  bool done = false;
  facility.selector(w[0]).request_hosts(1, [&](std::vector<HostId> h) {
    EXPECT_EQ(h.size(), 1u);
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  // 1 multicast + 5 offers + 1 reserve round trip (+ offer acks); far fewer
  // than a per-host poll would need, but every host received the query.
  EXPECT_LT(cluster.net().messages_sent(), 20);
  EXPECT_GE(cluster.net().messages_sent(), 7);
}

TEST(FloodPreventionTest, ReservationAddsAnticipatedLoad) {
  // MOSIX-style flood prevention: a reserved host reports itself busier
  // before the migrated work arrives, so other selectors skip it even
  // though its measured load is still zero.
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1});
  Facility facility(cluster, Arch::kProbabilistic);
  cluster.sim().run_until(Time::sec(45));
  const auto w = cluster.workstations();

  auto& node = facility.node(w[2]);
  ASSERT_TRUE(node.is_idle());
  ASSERT_TRUE(node.try_reserve(w[0]).is_ok());
  // The bias pushes the advertised load over the idle threshold.
  EXPECT_GE(cluster.host(w[2]).cpu().load_average(),
            cluster.costs().idle_load_threshold);
  EXPECT_FALSE(node.is_idle());
  // A second reservation is refused outright.
  EXPECT_EQ(node.try_reserve(w[1]).err(), Err::kBusy);

  // Releasing removes the anticipation; idleness returns.
  node.release(w[0]);
  EXPECT_TRUE(node.is_idle());
}

TEST(SharedFileTest, ClaimsArbitrateSequentialRequesters) {
  Cluster cluster({.num_workstations = 4, .num_file_servers = 1});
  Facility facility(cluster, Arch::kSharedFile);
  cluster.sim().run_until(Time::sec(45));
  const auto w = cluster.workstations();

  bool d1 = false;
  std::vector<HostId> got1;
  facility.selector(w[0]).request_hosts(1, [&](std::vector<HostId> h) {
    got1 = std::move(h);
    d1 = true;
  });
  cluster.run_until_done([&] { return d1; });
  ASSERT_EQ(got1.size(), 1u);

  bool d2 = false;
  std::vector<HostId> got2;
  facility.selector(w[1]).request_hosts(3, [&](std::vector<HostId> h) {
    got2 = std::move(h);
    d2 = true;
  });
  cluster.run_until_done([&] { return d2; });
  for (HostId h : got2) EXPECT_NE(h, got1[0]);
}

TEST(SharedFileTest, SelectionIsSlowerThanCentral) {
  // The thesis's complaint: shared-file selection does several uncacheable
  // file operations per request.
  Cluster c1({.num_workstations = 6, .num_file_servers = 1});
  Facility f1(c1, Arch::kSharedFile);
  c1.sim().run_until(Time::sec(45));
  bool done = false;
  const Time s1 = c1.sim().now();
  f1.selector(c1.workstations()[0]).request_hosts(1, [&](std::vector<HostId> h) {
    EXPECT_EQ(h.size(), 1u);
    done = true;
  });
  c1.run_until_done([&] { return done; });
  const double shared_ms = (c1.sim().now() - s1).ms();

  // Shared-file requests do a multi-record read plus claim write + verify
  // read on an uncacheable file: multiple server round trips.
  EXPECT_GT(shared_ms, 5.0);
}

}  // namespace
}  // namespace sprite::ls
