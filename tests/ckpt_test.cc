// Checkpoint/restart (src/ckpt/) tests: image format roundtrip, full +
// incremental capture chains and compaction, eligibility declines,
// home-node crash recovery (a checkpointed process survives its host),
// the eviction-by-checkpoint fast path, the incarnation guard, the
// autocheckpoint daemon, and the determinism property — a crash +
// restart-from-checkpoint run must produce byte-identical script output
// and FS contents as an uninterrupted run, across seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/image.h"
#include "ckpt/manager.h"
#include "kern/cluster.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"
#include "vm/vm.h"

namespace sprite {
namespace {

using ckpt::CkptStage;
using kern::Cluster;
using proc::Pid;
using proc::ScriptBuilder;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Status;

fs::Bytes make_bytes(const std::string& s) {
  return fs::Bytes(s.begin(), s.end());
}

std::vector<std::uint64_t> sweep_seeds() {
  int n = 2;
  if (const char* e = std::getenv("SPRITE_FAULT_SEEDS")) n = std::atoi(e);
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i <= std::max(1, n); ++i)
    seeds.push_back(static_cast<std::uint64_t>(i));
  return seeds;
}

// Blocking-style checkpoint of a resident process.
Status checkpoint_now(Cluster& cluster, HostId host, Pid pid) {
  auto pcb = cluster.host(host).procs().find(pid);
  if (!pcb) return Status(Err::kSrch, "pid not on host");
  Status st(Err::kAgain);
  bool done = false;
  cluster.host(host).ckpt().checkpoint(pcb, [&](Status s) {
    st = s;
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  return st;
}

Pid spawn_blocking(Cluster& cluster, HostId where, const std::string& exe) {
  util::Result<Pid> spawned(Err::kAgain);
  bool done = false;
  cluster.host(where).procs().spawn(exe, {}, [&](util::Result<Pid> r) {
    spawned = std::move(r);
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  SPRITE_CHECK(spawned.is_ok());
  return *spawned;
}

void migrate_blocking(Cluster& cluster, HostId from, Pid pid, HostId to) {
  auto pcb = cluster.host(from).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  Status st(Err::kAgain);
  bool done = false;
  cluster.host(from).mig().migrate(pcb, to, [&](Status s) {
    st = s;
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  ASSERT_TRUE(st.is_ok()) << st.to_string();
}

// ---------------------------------------------------------------------------
// Image format
// ---------------------------------------------------------------------------

TEST(CkptImageTest, MetaEncodeDecodeRoundtrip) {
  ckpt::CkptMeta m;
  m.pid = 0x100000007;
  m.seq = 3;
  m.chain = {1, 2, 3};
  m.incarnation = 2;
  m.ppid = 0x100000001;
  m.home = 1;
  m.exe_path = "/bin/thing";
  m.args = {"a", "bb"};
  m.program_state = make_bytes("state");
  m.view_rv = 42;
  m.view_text = "host3";
  m.remaining_compute_us = 1234;
  m.blocked_in_wait = true;
  m.next_fd = 5;
  m.streams.push_back(
      {3, "/tmp/x", 17, fs::OpenFlags::read_write()});
  m.code_pages = 16;
  m.heap.pages = 64;
  m.heap.runs = {{0, 4}, {10, 2}};
  m.stack.pages = 4;
  m.stack.runs = {{0, 1}};

  auto r = ckpt::CkptMeta::decode(m.encode());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r->pid, m.pid);
  EXPECT_EQ(r->seq, 3);
  EXPECT_EQ(r->chain, m.chain);
  EXPECT_EQ(r->incarnation, 2);
  EXPECT_EQ(r->exe_path, "/bin/thing");
  EXPECT_EQ(r->args, m.args);
  EXPECT_EQ(r->program_state, m.program_state);
  EXPECT_EQ(r->view_rv, 42);
  EXPECT_EQ(r->view_text, "host3");
  EXPECT_EQ(r->remaining_compute_us, 1234);
  EXPECT_TRUE(r->blocked_in_wait);
  ASSERT_EQ(r->streams.size(), 1u);
  EXPECT_EQ(r->streams[0].fd, 3);
  EXPECT_EQ(r->streams[0].path, "/tmp/x");
  EXPECT_EQ(r->streams[0].offset, 17);
  EXPECT_TRUE(r->streams[0].flags.write);
  EXPECT_EQ(r->heap.runs, m.heap.runs);
  EXPECT_EQ(r->captured_pages(), 4 + 2 + 1);

  // Truncated input must be rejected, not misparsed.
  fs::Bytes raw = m.encode();
  raw.resize(raw.size() / 2);
  EXPECT_FALSE(ckpt::CkptMeta::decode(raw).is_ok());

  // Head roundtrip.
  auto h = ckpt::decode_head(ckpt::encode_head(7));
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(*h, 7);
  EXPECT_FALSE(ckpt::decode_head(make_bytes("garbage")).is_ok());
}

// ---------------------------------------------------------------------------
// Capture chains
// ---------------------------------------------------------------------------

TEST(CkptTest, IncrementalCapturesOnlyDirtyPages) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 1});
  const auto wss = cluster.workstations();
  const HostId ws = wss[0];

  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 64, true})
      .compute(Time::sec(5))
      .act(proc::Touch{vm::Segment::kHeap, 0, 4, true})
      .compute(Time::sec(5))
      .act(proc::SysExit{0});
  ASSERT_TRUE(cluster.install_program("/bin/w", b.image(16, 64, 4)).is_ok());

  const Pid pid = spawn_blocking(cluster, ws, "/bin/w");
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));

  auto& ck = cluster.host(ws).ckpt();
  ASSERT_TRUE(checkpoint_now(cluster, ws, pid).is_ok());
  const auto s1 = ck.stats();
  EXPECT_EQ(s1.captures, 1);
  EXPECT_EQ(s1.full_bases, 1);
  EXPECT_GE(s1.pages_captured, 64);  // the 64 touched pages at least
  EXPECT_EQ(ck.chain_length(pid), 1);
  EXPECT_EQ(ck.last_seq(pid), 1);

  // The second capture, after only 4 pages were re-dirtied, must be an
  // increment whose size tracks the dirty set — not the 64-page image.
  cluster.sim().run_until(cluster.sim().now() + Time::sec(5.5e0));
  ASSERT_TRUE(checkpoint_now(cluster, ws, pid).is_ok());
  const auto s2 = ck.stats();
  EXPECT_EQ(s2.captures, 2);
  EXPECT_EQ(s2.incrementals, 1);
  const std::int64_t incr_pages = s2.pages_captured - s1.pages_captured;
  EXPECT_GE(incr_pages, 4);
  EXPECT_LE(incr_pages, 8) << "increment captured far more than the dirty set";
  EXPECT_EQ(ck.chain_length(pid), 2);
  EXPECT_EQ(ck.last_seq(pid), 2);

  // The home's restart table learned about the image.
  cluster.sim().run_until(cluster.sim().now() + Time::msec(100));
  EXPECT_TRUE(cluster.host(ws).ckpt().home_has_checkpoint(pid));
}

TEST(CkptTest, ChainCompactsAfterMaxIncrements) {
  Cluster::Config cfg{.num_workstations = 2, .num_file_servers = 1, .seed = 1};
  cfg.costs.ckpt_chain_max = 3;
  Cluster cluster(cfg);
  const HostId ws = cluster.workstations()[0];

  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 8, true});
  for (int i = 0; i < 8; ++i)
    b.compute(Time::sec(2)).act(proc::Touch{vm::Segment::kHeap, 0, 2, true});
  b.act(proc::SysExit{0});
  ASSERT_TRUE(cluster.install_program("/bin/w", b.image(16, 16, 4)).is_ok());

  const Pid pid = spawn_blocking(cluster, ws, "/bin/w");
  auto& ck = cluster.host(ws).ckpt();
  // Four captures: 1 full + 2 increments fill the chain (max 3), the fourth
  // forces a fresh base and compacts seqs 1-3.
  for (int i = 0; i < 4; ++i) {
    cluster.sim().run_until(cluster.sim().now() + Time::sec(2));
    ASSERT_TRUE(checkpoint_now(cluster, ws, pid).is_ok()) << "capture " << i;
  }
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  const auto st = ck.stats();
  EXPECT_EQ(st.captures, 4);
  EXPECT_EQ(st.full_bases, 2);
  EXPECT_EQ(st.incrementals, 2);
  EXPECT_EQ(st.compactions, 1);
  EXPECT_EQ(ck.chain_length(pid), 1);  // fresh base only
  EXPECT_EQ(ck.last_seq(pid), 4);     // seq numbers stay monotonic

  // The compacted files are gone; the fresh base remains.
  auto* srv = cluster.file_server(0).fs_server();
  EXPECT_FALSE(srv->stat_path(ckpt::meta_path(pid, 1)).is_ok());
  EXPECT_FALSE(srv->stat_path(ckpt::pages_path(pid, 2)).is_ok());
  EXPECT_TRUE(srv->stat_path(ckpt::meta_path(pid, 4)).is_ok());
  EXPECT_TRUE(srv->stat_path(ckpt::head_path(pid)).is_ok());
}

TEST(CkptTest, DeclinesPipesAndKeepsProcessRunning) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 1});
  const HostId ws = cluster.workstations()[0];

  ScriptBuilder b;
  b.act(proc::SysPipe{}).compute(Time::sec(10)).act(proc::SysExit{0});
  ASSERT_TRUE(cluster.install_program("/bin/p", b.image(8, 8, 2)).is_ok());
  const Pid pid = spawn_blocking(cluster, ws, "/bin/p");
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));

  const Status st = checkpoint_now(cluster, ws, pid);
  EXPECT_EQ(st.err(), Err::kNotMigratable) << st.to_string();
  EXPECT_EQ(cluster.host(ws).ckpt().stats().declined, 1);
  // The decline must not leave the process frozen.
  auto pcb = cluster.host(ws).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  EXPECT_NE(pcb->state, proc::ProcState::kFrozen);
}

// ---------------------------------------------------------------------------
// Crash recovery: the acceptance scenario
// ---------------------------------------------------------------------------

TEST(CkptTest, CheckpointedProcessSurvivesHostCrash) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1, .seed = 1});
  const auto wss = cluster.workstations();
  const HostId home = wss[0], runner = wss[1];

  // Writes before and after the crash point, at fixed offsets so replay
  // after restart converges; heap pages dirty so real image bytes move.
  ScriptBuilder b;
  b.act(proc::SysOpen{"/out", fs::OpenFlags::create_rw()})
      .step([](proc::ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("before"), 0};
      })
      .act(proc::Touch{vm::Segment::kHeap, 0, 32, true})
      .compute(Time::sec(20))
      .step([](proc::ScriptProgram::Ctx& c) {
        return proc::SysSeek{static_cast<int>(c.locals["fd"]), 6};
      })
      .step([](proc::ScriptProgram::Ctx& c) {
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("-after"), 0};
      })
      .step([](proc::ScriptProgram::Ctx& c) {
        return proc::SysFsync{static_cast<int>(c.locals["fd"])};
      })
      .act(proc::SysExit{7});
  ASSERT_TRUE(cluster.install_program("/bin/w", b.image(16, 32, 4)).is_ok());

  const Pid pid = spawn_blocking(cluster, home, "/bin/w");
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  migrate_blocking(cluster, home, pid, runner);

  bool exited = false;
  int exit_status = -1;
  cluster.host(home).procs().notify_on_exit(pid, [&](int s) {
    exited = true;
    exit_status = s;
  });

  ASSERT_TRUE(checkpoint_now(cluster, runner, pid).is_ok());
  cluster.sim().run_until(cluster.sim().now() + Time::msec(200));
  ASSERT_TRUE(cluster.host(home).ckpt().home_has_checkpoint(pid));

  // Kill the host mid-compute. The home's monitor must discover the death,
  // and recovery must restart the process from the image elsewhere.
  cluster.crash_host(runner);
  cluster.sim().run_until(cluster.sim().now() + Time::sec(120));

  EXPECT_TRUE(exited) << "checkpointed process never finished";
  EXPECT_EQ(exit_status, 7) << "restart did not run to correct completion";
  // It finished on some surviving host via a restart, not at the grave.
  std::int64_t restarts = 0;
  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h)
    restarts += cluster.host(h).ckpt().stats().restarts;
  EXPECT_EQ(restarts, 1);
  EXPECT_FALSE(cluster.host(home).procs().home_record_alive(pid));
  // Output reflects the full run: the pre-crash write survived (it was
  // flushed by the capture) and the post-restart writes followed.
  auto* srv = cluster.file_server(0).fs_server();
  auto stat = srv->stat_path("/out");
  ASSERT_TRUE(stat.is_ok());
  auto bytes = srv->read_direct(stat->id, 0, stat->size);
  ASSERT_TRUE(bytes.is_ok());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "before-after");
  // The image was cleaned up when the home record retired.
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  EXPECT_FALSE(srv->stat_path(ckpt::head_path(pid)).is_ok());
}

TEST(CkptTest, UncheckpointedProcessStillDiesWithCrash) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1, .seed = 1});
  const auto wss = cluster.workstations();
  const HostId home = wss[0], runner = wss[1];

  ScriptBuilder b;
  b.compute(Time::sec(30)).act(proc::SysExit{0});
  ASSERT_TRUE(cluster.install_program("/bin/w", b.image(8, 8, 2)).is_ok());
  const Pid pid = spawn_blocking(cluster, home, "/bin/w");
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  migrate_blocking(cluster, home, pid, runner);

  bool exited = false;
  int exit_status = -1;
  cluster.host(home).procs().notify_on_exit(pid, [&](int s) {
    exited = true;
    exit_status = s;
  });
  cluster.crash_host(runner);
  cluster.sim().run_until(cluster.sim().now() + Time::sec(60));
  EXPECT_TRUE(exited);
  EXPECT_EQ(exit_status, proc::kHostCrashExitStatus);
}

// ---------------------------------------------------------------------------
// Incarnation guard
// ---------------------------------------------------------------------------

TEST(CkptTest, RestoreWithSupersededIncarnationIsRefused) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1, .seed = 1});
  const auto wss = cluster.workstations();
  const HostId home = wss[0], runner = wss[1], other = wss[2];

  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 8, true})
      .compute(Time::sec(30))
      .act(proc::SysExit{0});
  ASSERT_TRUE(cluster.install_program("/bin/w", b.image(8, 8, 2)).is_ok());
  const Pid pid = spawn_blocking(cluster, home, "/bin/w");
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  migrate_blocking(cluster, home, pid, runner);
  ASSERT_TRUE(checkpoint_now(cluster, runner, pid).is_ok());
  cluster.sim().run_until(cluster.sim().now() + Time::msec(200));

  // An incarnation older than the home's epoch must be rejected at the
  // claim step: the restore tears itself down and nothing is installed.
  const std::int64_t current =
      cluster.host(home).procs().home_record_incarnation(pid);
  Status st(Err::kAgain);
  bool done = false;
  cluster.host(other).ckpt().restore(pid, current - 1, [&](Status s) {
    st = s;
    done = true;
  });
  cluster.run_until_done([&] { return done; });
  EXPECT_EQ(st.err(), Err::kStale) << st.to_string();
  EXPECT_EQ(cluster.host(other).procs().find(pid), nullptr);
  EXPECT_EQ(cluster.host(other).ckpt().stats().restarts_failed, 1);
  // The original keeps running: exactly one incarnation.
  EXPECT_NE(cluster.host(runner).procs().find(pid), nullptr);
}

// ---------------------------------------------------------------------------
// Eviction fast path
// ---------------------------------------------------------------------------

TEST(CkptTest, EvictionByCheckpointDepartsAndRestartsElsewhere) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1, .seed = 1});
  const auto wss = cluster.workstations();
  const HostId home = wss[0], borrowed = wss[1];

  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 16, true})
      .compute(Time::sec(15))
      .act(proc::SysExit{5});
  ASSERT_TRUE(cluster.install_program("/bin/w", b.image(8, 16, 2)).is_ok());
  const Pid pid = spawn_blocking(cluster, home, "/bin/w");
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  migrate_blocking(cluster, home, pid, borrowed);

  bool exited = false;
  int exit_status = -1;
  cluster.host(home).procs().notify_on_exit(pid, [&](int s) {
    exited = true;
    exit_status = s;
  });

  cluster.host(borrowed).ckpt().set_evict_via_checkpoint(true);
  int evicted = -1;
  cluster.host(borrowed).mig().evict_all_foreign([&](int n) { evicted = n; });
  cluster.run_until_done([&] { return evicted >= 0; });
  EXPECT_EQ(evicted, 1);
  // The frozen copy is gone from the owner's machine immediately.
  EXPECT_EQ(cluster.host(borrowed).procs().find(pid), nullptr);
  EXPECT_EQ(cluster.host(borrowed).ckpt().stats().departs, 1);

  cluster.sim().run_until(cluster.sim().now() + Time::sec(60));
  EXPECT_TRUE(exited);
  EXPECT_EQ(exit_status, 5);
  std::int64_t restarts = 0;
  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h)
    restarts += cluster.host(h).ckpt().stats().restarts;
  EXPECT_EQ(restarts, 1);
}

// ---------------------------------------------------------------------------
// Autocheckpoint daemon
// ---------------------------------------------------------------------------

TEST(CkptTest, AutocheckpointCapturesOnIntervalAndDirtyThreshold) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 1});
  const HostId ws = cluster.workstations()[0];

  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 32, true});
  for (int i = 0; i < 10; ++i)
    b.compute(Time::sec(3)).act(proc::Touch{vm::Segment::kHeap, 0, 2, true});
  b.act(proc::SysExit{0});
  ASSERT_TRUE(cluster.install_program("/bin/w", b.image(8, 32, 2)).is_ok());

  auto& ck = cluster.host(ws).ckpt();
  ck.set_auto_policy(Time::sec(8), 1000000);  // interval-driven only
  ck.enable_autocheckpoint(true);
  const Pid pid = spawn_blocking(cluster, ws, "/bin/w");
  cluster.sim().run_until(cluster.sim().now() + Time::sec(28));

  const auto st = ck.stats();
  EXPECT_GE(st.auto_triggers, 2) << "daemon never triggered on interval";
  EXPECT_GE(st.captures, 2);
  EXPECT_GE(st.incrementals, 1) << "follow-up captures should be increments";
  (void)pid;
}

// ---------------------------------------------------------------------------
// Determinism property (satellite): crash + restart-from-checkpoint produces
// byte-identical output and FS contents vs an uninterrupted run.
// ---------------------------------------------------------------------------

struct RunResult {
  int exit_status = -1;
  std::string file;
  std::string script_trace;
};

RunResult determinism_run(std::uint64_t seed, bool with_crash) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1,
                   .seed = seed});
  const auto wss = cluster.workstations();
  const HostId home = wss[0], runner = wss[1];

  // Idempotent fixed-offset writes: replay after a restart rewrites the
  // same bytes at the same offsets, so the converged file is identical.
  ScriptBuilder b;
  b.act(proc::SysOpen{"/det", fs::OpenFlags::create_rw()})
      .step([](proc::ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return proc::Compute{Time::msec(1)};
      });
  for (int i = 0; i < 6; ++i) {
    b.step([i](proc::ScriptProgram::Ctx& c) {
         return proc::SysSeek{static_cast<int>(c.locals["fd"]), i * 4};
       })
        .step([i](proc::ScriptProgram::Ctx& c) {
          c.note("w" + std::to_string(i));
          return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                                make_bytes("w" + std::to_string(i) + "._"),
                                0};
        })
        .act(proc::Touch{vm::Segment::kHeap, i, 2, true})
        .compute(Time::sec(3));
  }
  b.step([](proc::ScriptProgram::Ctx& c) {
     return proc::SysFsync{static_cast<int>(c.locals["fd"])};
   }).act(proc::SysExit{4});
  SPRITE_CHECK(cluster.install_program("/bin/det", b.image(8, 16, 2)).is_ok());

  const Pid pid = spawn_blocking(cluster, home, "/bin/det");
  cluster.sim().run_until(cluster.sim().now() + Time::msec(500));
  auto pcb = cluster.host(home).procs().find(pid);
  SPRITE_CHECK(pcb != nullptr);
  {
    Status st(Err::kAgain);
    bool done = false;
    cluster.host(home).mig().migrate(pcb, runner, [&](Status s) {
      st = s;
      done = true;
    });
    cluster.run_until_done([&] { return done; });
    SPRITE_CHECK(st.is_ok());
  }

  RunResult out;
  bool exited = false;
  cluster.host(home).procs().notify_on_exit(pid, [&](int s) {
    out.exit_status = s;
    exited = true;
  });

  if (with_crash) {
    // Checkpoint a few iterations in, let it run further (writes land
    // between the checkpoint and the crash — replay must absorb them),
    // then kill the host and let recovery restart from the image.
    cluster.sim().run_until(cluster.sim().now() + Time::sec(5));
    SPRITE_CHECK(checkpoint_now(cluster, runner, pid).is_ok());
    cluster.sim().run_until(cluster.sim().now() + Time::sec(4));
    cluster.crash_host(runner);
  }
  cluster.sim().run_until(cluster.sim().now() + Time::sec(120));
  SPRITE_CHECK(exited);

  auto* srv = cluster.file_server(0).fs_server();
  auto stat = srv->stat_path("/det");
  SPRITE_CHECK(stat.is_ok());
  auto bytes = srv->read_direct(stat->id, 0, stat->size);
  SPRITE_CHECK(bytes.is_ok());
  out.file.assign(bytes->begin(), bytes->end());
  return out;
}

class CkptDeterminismTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CkptDeterminismTest, CrashRestartRunMatchesUninterruptedRun) {
  const std::uint64_t seed = GetParam();
  const RunResult clean = determinism_run(seed, /*with_crash=*/false);
  const RunResult faulted = determinism_run(seed, /*with_crash=*/true);
  EXPECT_EQ(clean.exit_status, 4);
  EXPECT_EQ(faulted.exit_status, clean.exit_status);
  EXPECT_EQ(faulted.file, clean.file)
      << "FS contents diverged after restart-from-checkpoint";
  EXPECT_EQ(clean.file, "w0._w1._w2._w3._w4._w5._");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CkptDeterminismTest,
                         ::testing::ValuesIn(sweep_seeds()),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "Seed" + std::to_string(i.param);
                         });

// ---------------------------------------------------------------------------
// Migration interplay: the chain stays incremental across a migration.
// ---------------------------------------------------------------------------

TEST(CkptTest, ChainStaysIncrementalAcrossMigration) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1, .seed = 1});
  const auto wss = cluster.workstations();
  const HostId home = wss[0], second = wss[1];

  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 32, true})
      .compute(Time::sec(5))
      .act(proc::Touch{vm::Segment::kHeap, 0, 3, true})
      .compute(Time::sec(20))
      .act(proc::SysExit{0});
  ASSERT_TRUE(cluster.install_program("/bin/w", b.image(8, 32, 2)).is_ok());
  const Pid pid = spawn_blocking(cluster, home, "/bin/w");
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  ASSERT_TRUE(checkpoint_now(cluster, home, pid).is_ok());
  EXPECT_EQ(cluster.host(home).ckpt().stats().full_bases, 1);

  // Move the process; the new host has no chain knowledge, but the head on
  // the shared FS does — its next capture must still be an increment.
  cluster.sim().run_until(cluster.sim().now() + Time::sec(5));
  migrate_blocking(cluster, home, pid, second);
  EXPECT_EQ(cluster.host(home).ckpt().chain_length(pid), 0)
      << "source should forget the chain when the process departs";
  ASSERT_TRUE(checkpoint_now(cluster, second, pid).is_ok());
  const auto st = cluster.host(second).ckpt().stats();
  EXPECT_EQ(st.incrementals, 1)
      << "capture after migration restarted the chain instead of extending";
  EXPECT_EQ(cluster.host(second).ckpt().last_seq(pid), 2);
}

}  // namespace
}  // namespace sprite
