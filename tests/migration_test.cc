// Tests for the migration mechanism: exec-time and active migration, pid and
// stream preservation, transparency of forwarded calls, the four VM transfer
// strategies, version skew, eligibility, and eviction.
#include <gtest/gtest.h>

#include <string>

#include "kern/cluster.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"

namespace sprite::mig {
namespace {

using kern::Cluster;
using proc::Action;
using proc::Pid;
using proc::ScriptBuilder;
using proc::ScriptProgram;
using sim::Time;
using util::Err;

std::string to_string(const fs::Bytes& b) {
  return std::string(b.begin(), b.end());
}
fs::Bytes make_bytes(const std::string& s) {
  return fs::Bytes(s.begin(), s.end());
}

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : cluster_({.num_workstations = 4, .num_file_servers = 1}) {}

  Pid spawn_installed(int i, const std::string& path) {
    util::Result<Pid> out(Err::kAgain);
    bool done = false;
    cluster_.host(ws(i)).procs().spawn(path, {}, [&](util::Result<Pid> r) {
      out = std::move(r);
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    EXPECT_TRUE(out.is_ok()) << out.status().to_string();
    return out.is_ok() ? *out : proc::kInvalidPid;
  }

  int wait_exit(int home_ws, Pid pid) {
    int status = -1;
    bool done = false;
    cluster_.host(ws(home_ws)).procs().notify_on_exit(pid, [&](int s) {
      status = s;
      done = true;
    });
    cluster_.run_until_done([&] { return done; });
    return status;
  }

  // Directly migrates `pid` (currently on host `from_ws`) to `to_ws`.
  util::Status migrate_now(int from_ws, Pid pid, int to_ws) {
    auto pcb = cluster_.host(ws(from_ws)).procs().find(pid);
    SPRITE_CHECK(pcb != nullptr);
    util::Status out(Err::kAgain);
    bool done = false;
    cluster_.host(ws(from_ws)).mig().migrate(pcb, ws(to_ws),
                                             [&](util::Status s) {
                                               out = s;
                                               done = true;
                                             });
    cluster_.run_until_done([&] { return done; });
    return out;
  }

  std::string read_file(const std::string& path) {
    auto st = cluster_.file_server().fs_server()->stat_path(path);
    if (!st.is_ok()) return "<missing>";
    auto data = cluster_.file_server().fs_server()->read_direct(
        st->id, 0, st->size);
    return data.is_ok() ? to_string(*data) : "<error>";
  }

  sim::HostId ws(int i) {
    return cluster_.workstations()[static_cast<std::size_t>(i)];
  }

  Cluster cluster_;
};

// A program that migrates itself at exec time (pmake's remote-exec pattern):
// migrate-self deferred, exec /bin/remotework, which writes its identity to
// /out and exits.
void install_remote_work(Cluster& cluster) {
  ScriptBuilder work;
  work.act(proc::SysGetPid{})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["pid"] = c.view->rv;
        return proc::SysGetHostName{};
      })
      .step([](ScriptProgram::Ctx& c) {
        c.locals["hn"] = 1;
        c.note("host=" + c.view->text);
        return proc::SysOpen{"/out", fs::OpenFlags::create_rw()};
      })
      .step([](ScriptProgram::Ctx& c) {
        c.locals["out"] = c.view->rv;
        const std::string line = "pid=" + std::to_string(c.locals["pid"]) +
                                 " " + c.trace.back();
        return proc::SysWrite{static_cast<int>(c.locals["out"]),
                              make_bytes(line), 0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return proc::SysFsync{static_cast<int>(c.locals["out"])};
      })
      .act(proc::SysExit{0});
  SPRITE_CHECK(
      cluster.install_program("/bin/remotework", work.image()).is_ok());
}

TEST_F(MigrationTest, ExecTimeMigrationRunsOnTargetKeepsIdentity) {
  install_remote_work(cluster_);
  ScriptBuilder launcher;
  launcher.act(proc::SysMigrateSelf{.target = sim::kInvalidHost})  // patched
      .act(proc::SysExec{"/bin/remotework", {}});
  // Patch in the concrete target.
  ScriptBuilder launcher2;
  const sim::HostId target = ws(2);
  launcher2.act(proc::SysMigrateSelf{.target = target, .at_exec = true})
      .act(proc::SysExec{"/bin/remotework", {}});
  SPRITE_CHECK(
      cluster_.install_program("/bin/launcher", launcher2.image()).is_ok());

  const Pid pid = spawn_installed(0, "/bin/launcher");
  EXPECT_EQ(wait_exit(0, pid), 0);

  // Identity was preserved: same pid, and gethostname reported the HOME
  // machine even though the work ran on the target.
  const std::string out = read_file("/out");
  EXPECT_EQ(out, "pid=" + std::to_string(pid) +
                     " host=" + cluster_.host(ws(0)).name());

  // The work really did run on the target host.
  EXPECT_EQ(cluster_.host(target).mig().stats().in, 1);
  EXPECT_EQ(cluster_.host(ws(0)).mig().stats().out, 1);
  const auto& rec = cluster_.host(ws(0)).mig().last_record();
  EXPECT_TRUE(rec.exec_time);
  EXPECT_EQ(rec.pages_moved, 0);
  EXPECT_EQ(rec.pages_flushed, 0);
}

TEST_F(MigrationTest, NullExecTimeMigrationCostNearCalibration) {
  // E1 headline: exec-time migration of a trivial process ~76 ms.
  install_remote_work(cluster_);
  ScriptBuilder launcher;
  launcher.act(proc::SysMigrateSelf{.target = ws(1), .at_exec = true})
      .act(proc::SysExec{"/bin/remotework", {}});
  SPRITE_CHECK(
      cluster_.install_program("/bin/nullmig", launcher.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/nullmig");
  EXPECT_EQ(wait_exit(0, pid), 0);
  const auto& rec = cluster_.host(ws(0)).mig().last_record();
  const double ms = rec.total_time().ms();
  EXPECT_GT(ms, 40.0);
  EXPECT_LT(ms, 120.0);
}

TEST_F(MigrationTest, ActiveMigrationCarriesRemainingCompute) {
  ScriptBuilder b;
  b.compute(Time::sec(2)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/burn", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/burn");

  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(500));
  EXPECT_TRUE(migrate_now(0, pid, 1).is_ok());
  EXPECT_EQ(wait_exit(0, pid), 0);

  // ~0.5 s ran on the source, ~1.5 s on the target.
  EXPECT_GT(cluster_.host(ws(1)).cpu().busy_time(sim::JobClass::kUser).s(),
            1.3);
  // Home record followed the process and then its death.
  EXPECT_FALSE(cluster_.host(ws(0)).procs().home_record_alive(pid));
}

TEST_F(MigrationTest, MigratedProcessKeepsOpenStreamOffset) {
  ScriptBuilder b;
  b.act(proc::SysOpen{"/streamfile", fs::OpenFlags::create_rw()})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("first-"), 0};
      })
      .act(proc::Pause{Time::sec(1)})  // migration happens here
      .step([](ScriptProgram::Ctx& c) {
        return proc::SysWrite{static_cast<int>(c.locals["fd"]),
                              make_bytes("second"), 0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return proc::SysFsync{static_cast<int>(c.locals["fd"])};
      })
      .act(proc::SysExit{0});
  SPRITE_CHECK(cluster_.install_program("/bin/streamer", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/streamer");
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(300));
  EXPECT_TRUE(migrate_now(0, pid, 2).is_ok());
  EXPECT_EQ(wait_exit(0, pid), 0);
  EXPECT_EQ(read_file("/streamfile"), "first-second");
  EXPECT_EQ(cluster_.host(ws(0)).mig().last_record().streams_moved, 1);
}

TEST_F(MigrationTest, TransparencyTraceIdenticalWithAndWithoutMigration) {
  // The observable behaviour of a program (file contents it produces from
  // its identity and data it reads) must be identical whether or not it
  // migrated mid-run.
  auto build = [](const std::string& outfile) {
    ScriptBuilder b;
    b.act(proc::SysOpen{"/input", fs::OpenFlags::read_only()})
        .step([](ScriptProgram::Ctx& c) {
          c.locals["in"] = c.view->rv;
          return proc::SysRead{static_cast<int>(c.locals["in"]), 16};
        })
        .step([](ScriptProgram::Ctx& c) {
          c.note(std::string(c.view->data.begin(), c.view->data.end()));
          return proc::SysGetPid{};
        })
        .act(proc::Pause{Time::sec(1)})  // migration point
        .act(proc::SysGetHostName{})
        .step([outfile](ScriptProgram::Ctx& c) {
          c.note(c.view->text);
          return proc::SysOpen{outfile, fs::OpenFlags::create_rw()};
        })
        .step([](ScriptProgram::Ctx& c) {
          c.locals["out"] = c.view->rv;
          std::string all;
          for (const auto& t : c.trace) all += t + ";";
          return proc::SysWrite{static_cast<int>(c.locals["out"]),
                                make_bytes(all), 0};
        })
        .step([](ScriptProgram::Ctx& c) {
          return proc::SysFsync{static_cast<int>(c.locals["out"])};
        })
        .act(proc::SysExit{0});
    return b;
  };

  cluster_.file_server().fs_server()->create_file("/input", 0);
  // Seed input content.
  {
    bool done = false;
    cluster_.host(ws(3)).fs().open(
        "/input", fs::OpenFlags::write_only(),
        [&](util::Result<fs::StreamPtr> r) {
          ASSERT_TRUE(r.is_ok());
          // Hoist the stream: the inner callbacks outlive `r` itself.
          fs::StreamPtr s = *r;
          cluster_.host(ws(3)).fs().write(
              s, make_bytes("hello"), [&, s](util::Result<std::int64_t>) {
                cluster_.host(ws(3)).fs().fsync(
                    s, [&](util::Status) { done = true; });
              });
        });
    cluster_.run_until_done([&] { return done; });
  }

  auto local_prog = build("/out_local");
  SPRITE_CHECK(
      cluster_.install_program("/bin/tr_local", local_prog.image()).is_ok());
  auto mig_prog = build("/out_mig");
  SPRITE_CHECK(
      cluster_.install_program("/bin/tr_mig", mig_prog.image()).is_ok());

  const Pid a = spawn_installed(0, "/bin/tr_local");
  wait_exit(0, a);

  const Pid b = spawn_installed(0, "/bin/tr_mig");
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(200));
  EXPECT_TRUE(migrate_now(0, b, 1).is_ok());
  wait_exit(0, b);

  std::string local = read_file("/out_local");
  std::string migrated = read_file("/out_mig");
  // Same input data, same hostname (the home machine's): traces identical.
  EXPECT_EQ(local, migrated);
  EXPECT_NE(local.find(cluster_.host(ws(0)).name()), std::string::npos)
      << "hostname must be the home machine's, got: " << local;
}

TEST_F(MigrationTest, ForeignProcessVisibleAndEvictable) {
  ScriptBuilder b;
  b.compute(Time::sec(10)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/longburn", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/longburn");
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(100));
  ASSERT_TRUE(migrate_now(0, pid, 1).is_ok());

  auto foreign = cluster_.host(ws(1)).procs().foreign_processes();
  ASSERT_EQ(foreign.size(), 1u);
  EXPECT_EQ(foreign[0]->pid, pid);
  EXPECT_EQ(foreign[0]->home, ws(0));

  // Owner returns: eviction sends it home, where it finishes.
  int evicted = -1;
  bool done = false;
  cluster_.host(ws(1)).mig().evict_all_foreign([&](int n) {
    evicted = n;
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(evicted, 1);
  EXPECT_TRUE(cluster_.host(ws(1)).procs().foreign_processes().empty());
  auto back = cluster_.host(ws(0)).procs().find(pid);
  ASSERT_TRUE(back != nullptr);
  EXPECT_FALSE(back->foreign());
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(MigrationTest, KillChasesMigratedProcess) {
  ScriptBuilder b;
  b.compute(Time::hours(1)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/victim2", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/victim2");
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(50));
  ASSERT_TRUE(migrate_now(0, pid, 2).is_ok());

  ScriptBuilder killer;
  killer.step([pid](ScriptProgram::Ctx&) { return proc::SysKill{pid, 9}; })
      .act(proc::SysExit{0});
  SPRITE_CHECK(cluster_.install_program("/bin/killer3", killer.image()).is_ok());
  spawn_installed(3, "/bin/killer3");

  EXPECT_EQ(wait_exit(0, pid), 128 + 9);
  EXPECT_LT(cluster_.sim().now().s(), 10.0);
}

TEST_F(MigrationTest, WaitingParentMigratesAndStillGetsNotified) {
  // Parent forks, waits; while blocked in wait it is migrated (eviction
  // case); the child's exit must still wake it on its new host.
  ScriptBuilder b;
  b.act(proc::SysFork{})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["is_child"] = c.view->is_child ? 1 : 0;
        if (c.locals["is_child"]) return Action{proc::Compute{Time::sec(3)}};
        return Action{proc::SysWait{}};
      })
      .step([](ScriptProgram::Ctx& c) {
        if (c.locals["is_child"]) return Action{proc::SysExit{11}};
        return Action{proc::SysExit{c.view->aux == 11 ? 0 : 1}};
      });
  SPRITE_CHECK(cluster_.install_program("/bin/waitmig", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/waitmig");
  cluster_.sim().run_until(cluster_.sim().now() + Time::sec(1));
  // The parent is blocked in wait now; move it.
  ASSERT_TRUE(migrate_now(0, pid, 2).is_ok());
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(MigrationTest, VersionSkewRefusesMigration) {
  ScriptBuilder b;
  b.compute(Time::sec(5)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/skew", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/skew");
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(50));
  cluster_.host(ws(1)).mig().set_version(2);  // incompatible kernel
  EXPECT_EQ(migrate_now(0, pid, 1).err(), Err::kVersionSkew);
  // The process was never frozen and keeps running locally.
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(MigrationTest, SharedWritableMemoryIsNotMigratable) {
  ScriptBuilder b;
  b.compute(Time::sec(5)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/shmem", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/shmem");
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(50));
  cluster_.host(ws(0)).procs().find(pid)->space->shared_writable = true;
  EXPECT_EQ(migrate_now(0, pid, 1).err(), Err::kNotMigratable);
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(MigrationTest, MigrationToDownHostFailsAndProcessSurvives) {
  ScriptBuilder b;
  b.compute(Time::sec(20)).exit(0);
  SPRITE_CHECK(cluster_.install_program("/bin/survivor", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/survivor");
  cluster_.sim().run_until(cluster_.sim().now() + Time::msec(50));
  cluster_.net().set_host_up(ws(1), false);
  // The init RPC never reaches the target: retries exhaust, the process was
  // never frozen, and it simply keeps running where it was.
  EXPECT_EQ(migrate_now(0, pid, 1).err(), Err::kTimedOut);
  EXPECT_TRUE(cluster_.host(ws(0)).procs().find(pid) != nullptr);
  EXPECT_EQ(wait_exit(0, pid), 0);
}

TEST_F(MigrationTest, TargetCrashMidTransferThawsProcessLocally) {
  // The target accepts the init handshake, then dies while the (large)
  // dirty image is still being flushed. The transfer RPC times out, the
  // migration fails, and the process resumes where it was — the thesis's
  // position that a failed migration must never lose the process.
  ScriptBuilder b;
  b.act(proc::Touch{vm::Segment::kHeap, 0, 1024, true})  // 4 MB dirty
      .compute(Time::sec(30))
      .act(proc::SysExit{5});
  proc::ProgramImage img = b.image(16, 1024, 4);
  SPRITE_CHECK(cluster_.install_program("/bin/crashy", img).is_ok());
  const Pid pid = spawn_installed(0, "/bin/crashy");
  cluster_.sim().run_until(cluster_.sim().now() + Time::sec(5));

  util::Status st(Err::kAgain);
  bool done = false;
  auto pcb = cluster_.host(ws(0)).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  cluster_.host(ws(0)).mig().migrate(pcb, ws(1), [&](util::Status s) {
    st = s;
    done = true;
  });
  // Kill the target shortly after the handshake, mid-flush.
  cluster_.sim().after(Time::msec(300),
                       [&] { cluster_.net().set_host_up(ws(1), false); });
  cluster_.run_until_done([&] { return done; });
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(cluster_.host(ws(0)).mig().stats().failed, 1);

  // The process is still here and completes normally.
  EXPECT_EQ(wait_exit(0, pid), 5);
  EXPECT_EQ(cluster_.host(ws(0)).procs().home_record_location(pid),
            sim::kInvalidHost);  // exited
}

// ---- VM strategies (experiment E2 mechanics) ----

class StrategyTest : public MigrationTest {
 protected:
  // Spawns a process that dirties `pages` heap pages then sleeps forever;
  // returns its pid once the dirtying is done.
  Pid spawn_dirty(int wsi, std::int64_t pages, const std::string& name) {
    ScriptBuilder b;
    b.act(proc::Touch{vm::Segment::kHeap, 0, pages, true})
        .act(proc::Pause{Time::hours(2)})
        .act(proc::SysExit{0});
    proc::ProgramImage img = b.image(16, pages, 4);
    SPRITE_CHECK(cluster_.install_program("/bin/" + name, img).is_ok());
    const Pid pid = spawn_installed(wsi, "/bin/" + name);
    // Let it finish dirtying.
    cluster_.sim().run_until(cluster_.sim().now() + Time::sec(5));
    auto pcb = cluster_.host(ws(wsi)).procs().find(pid);
    SPRITE_CHECK(pcb && pcb->paused);
    return pid;
  }
};

TEST_F(StrategyTest, SpriteFlushWritesDirtyPagesToServerAndDemandPages) {
  cluster_.host(ws(0)).mig().set_strategy(VmStrategy::kSpriteFlush);
  const Pid pid = spawn_dirty(0, 256, "flushy");  // 1 MB dirty
  ASSERT_TRUE(migrate_now(0, pid, 1).is_ok());
  const auto& rec = cluster_.host(ws(0)).mig().last_record();
  EXPECT_EQ(rec.pages_flushed, 256);
  EXPECT_EQ(rec.pages_moved, 0);
  // ~480 ms per MB through the FS while frozen.
  EXPECT_GT(rec.freeze_time().ms(), 350.0);

  // Target demand-pages from the server when the process touches memory.
  auto pcb = cluster_.host(ws(1)).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  EXPECT_EQ(pcb->space->resident_pages(), 0);
  bool touched = false;
  cluster_.host(ws(1)).vm().touch(pcb->space, vm::Segment::kHeap, 0, 256,
                                  false, [&](util::Status s) {
                                    EXPECT_TRUE(s.is_ok());
                                    touched = true;
                                  });
  cluster_.run_until_done([&] { return touched; });
  EXPECT_EQ(cluster_.host(ws(1)).vm().stats().pages_in, 256);
}

TEST_F(StrategyTest, WholeCopyFreezesForTheFullImage) {
  cluster_.host(ws(0)).mig().set_strategy(VmStrategy::kWholeCopy);
  const Pid pid = spawn_dirty(0, 256, "wholey");
  ASSERT_TRUE(migrate_now(0, pid, 1).is_ok());
  const auto& rec = cluster_.host(ws(0)).mig().last_record();
  EXPECT_GE(rec.pages_moved, 256);  // resident image crossed the wire
  EXPECT_EQ(rec.pages_flushed, 0);
  // All transfer happened while frozen.
  EXPECT_GT(rec.freeze_time().ms(), 300.0);
  // Target has the pages resident immediately — no faults needed.
  auto pcb = cluster_.host(ws(1)).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  EXPECT_GE(pcb->space->resident_pages(), 256);
}

TEST_F(StrategyTest, CopyOnReferenceResumesFastWithResidualDependency) {
  cluster_.host(ws(0)).mig().set_strategy(VmStrategy::kCopyOnRef);
  const Pid pid = spawn_dirty(0, 256, "cory");
  ASSERT_TRUE(migrate_now(0, pid, 1).is_ok());
  const auto& rec = cluster_.host(ws(0)).mig().last_record();
  EXPECT_EQ(rec.pages_moved, 0);
  EXPECT_EQ(rec.pages_flushed, 0);
  // Freeze time is tiny: only tables moved.
  EXPECT_LT(rec.freeze_time().ms(), 120.0);
  // The source keeps the image: residual dependency.
  EXPECT_EQ(cluster_.host(ws(0)).mig().residual_spaces(), 1u);

  // Touching memory on the target pulls pages from the source.
  auto pcb = cluster_.host(ws(1)).procs().find(pid);
  ASSERT_TRUE(pcb != nullptr);
  bool touched = false;
  cluster_.host(ws(1)).vm().touch(pcb->space, vm::Segment::kHeap, 0, 256,
                                  false, [&](util::Status s) {
                                    EXPECT_TRUE(s.is_ok());
                                    touched = true;
                                  });
  cluster_.run_until_done([&] { return touched; });
  EXPECT_EQ(cluster_.host(ws(1)).vm().stats().pages_from_remote, 256);
  EXPECT_EQ(cluster_.host(ws(0)).mig().stats().cor_pages_served, 256);
}

TEST_F(StrategyTest, PreCopyShrinksFreezeTimeVersusWholeCopy) {
  // An actively-dirtying process: pre-copy's freeze covers only the final
  // dirty set, while whole-copy freezes for the entire image.
  auto install_writer = [&](const std::string& name) {
    ScriptBuilder b;
    // Loop: touch a small window, compute, repeat — keeps re-dirtying a
    // small working set within a large image.
    b.act(proc::Touch{vm::Segment::kHeap, 0, 512, true});
    const int loop_start = b.next_index();
    b.step([](ScriptProgram::Ctx& c) {
      c.jump(c.locals["i"] > 500 ? 1000000 : -1);  // fall off the end late
      ++c.locals["i"];
      return proc::Touch{vm::Segment::kHeap, 0, 16, true};
    });
    b.step([loop_start](ScriptProgram::Ctx& c) {
      c.jump(loop_start);
      return proc::Compute{Time::msec(20)};
    });
    proc::ProgramImage img = b.image(16, 512, 4);
    SPRITE_CHECK(cluster_.install_program("/bin/" + name, img).is_ok());
  };

  install_writer("precopy");
  cluster_.host(ws(0)).mig().set_strategy(VmStrategy::kPreCopy);
  const Pid p1 = spawn_installed(0, "/bin/precopy");
  cluster_.sim().run_until(cluster_.sim().now() + Time::sec(8));
  ASSERT_TRUE(migrate_now(0, p1, 1).is_ok());
  const MigrationRecord pre = cluster_.host(ws(0)).mig().last_record();

  install_writer("whole2");
  cluster_.host(ws(2)).mig().set_strategy(VmStrategy::kWholeCopy);
  const Pid p2 = spawn_installed(2, "/bin/whole2");
  cluster_.sim().run_until(cluster_.sim().now() + Time::sec(8));
  auto pcb2 = cluster_.host(ws(2)).procs().find(p2);
  ASSERT_TRUE(pcb2 != nullptr);
  util::Status st(Err::kAgain);
  bool done = false;
  cluster_.host(ws(2)).mig().migrate(pcb2, ws(3), [&](util::Status s) {
    st = s;
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  ASSERT_TRUE(st.is_ok());
  const MigrationRecord whole = cluster_.host(ws(2)).mig().last_record();

  EXPECT_GE(pre.precopy_rounds, 1);
  EXPECT_LT(pre.freeze_time().ms(), whole.freeze_time().ms() / 2.0)
      << "pre-copy freeze " << pre.freeze_time().ms() << "ms vs whole-copy "
      << whole.freeze_time().ms() << "ms";
  // But pre-copy may move more total pages than the image (re-sends).
  EXPECT_GE(pre.pages_moved, 512);
}

TEST_F(MigrationTest, EvictionOfSleepingProcessGoesHomeAndFinishes) {
  ScriptBuilder b;
  b.act(proc::Pause{Time::sec(30)}).act(proc::SysExit{3});
  SPRITE_CHECK(cluster_.install_program("/bin/sleeper", b.image()).is_ok());
  const Pid pid = spawn_installed(0, "/bin/sleeper");
  cluster_.sim().run_until(cluster_.sim().now() + Time::sec(1));
  ASSERT_TRUE(migrate_now(0, pid, 1).is_ok());
  // Evict it back while it sleeps.
  bool done = false;
  cluster_.host(ws(1)).mig().evict_all_foreign([&](int n) {
    EXPECT_EQ(n, 1);
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  EXPECT_EQ(wait_exit(0, pid), 3);
  // The 30 s sleep was honoured despite two migrations.
  EXPECT_GE(cluster_.sim().now().s(), 30.0);
  EXPECT_LT(cluster_.sim().now().s(), 40.0);
}

}  // namespace
}  // namespace sprite::mig
