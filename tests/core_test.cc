// Tests for the SpriteCluster facade.
#include <gtest/gtest.h>

#include "core/sprite.h"

namespace sprite::core {
namespace {

using proc::ScriptBuilder;
using sim::Time;

TEST(SpriteClusterTest, SpawnWaitRoundTrip) {
  SpriteCluster cluster({.workstations = 4});
  ScriptBuilder b;
  b.compute(Time::sec(1)).exit(42);
  cluster.install_program("/bin/w", b.image());
  auto pid = cluster.spawn(cluster.workstation(0), "/bin/w", {});
  EXPECT_EQ(cluster.wait(pid), 42);
}

TEST(SpriteClusterTest, MigrateAndLocate) {
  SpriteCluster cluster({.workstations = 4});
  ScriptBuilder b;
  b.compute(Time::sec(10)).exit(0);
  cluster.install_program("/bin/w", b.image());
  auto pid = cluster.spawn(cluster.workstation(0), "/bin/w", {});
  cluster.run_for(Time::msec(100));
  EXPECT_EQ(cluster.locate(pid), cluster.workstation(0));
  ASSERT_TRUE(cluster.migrate(pid, cluster.workstation(2)).is_ok());
  EXPECT_EQ(cluster.locate(pid), cluster.workstation(2));
  EXPECT_EQ(cluster.evict(cluster.workstation(2)), 1);
  EXPECT_EQ(cluster.locate(pid), cluster.workstation(0));
  EXPECT_EQ(cluster.wait(pid), 0);
}

TEST(SpriteClusterTest, RequestAndReleaseIdleHosts) {
  SpriteCluster cluster({.workstations = 5});
  cluster.warm_up();
  auto hosts = cluster.request_idle_hosts(cluster.workstation(0), 2);
  EXPECT_GE(hosts.size(), 1u);
  for (auto h : hosts) cluster.release_host(cluster.workstation(0), h);
}

TEST(SpriteClusterTest, LoadSharingCanBeDisabled) {
  SpriteCluster cluster({.workstations = 2, .enable_load_sharing = false});
  ScriptBuilder b;
  b.exit(0);
  cluster.install_program("/bin/w", b.image());
  EXPECT_EQ(cluster.wait(cluster.spawn(cluster.workstation(0), "/bin/w", {})),
            0);
}

TEST(SpriteClusterTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    SpriteCluster cluster({.workstations = 4, .seed = 1234});
    ScriptBuilder b;
    b.compute(Time::msec(700)).exit(0);
    cluster.install_program("/bin/w", b.image());
    auto pid = cluster.spawn(cluster.workstation(1), "/bin/w", {});
    cluster.wait(pid);
    return cluster.sim().now().us();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sprite::core
