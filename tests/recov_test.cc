// Host-monitor (src/recov/) unit tests: the up/suspect/down state machine
// driven purely by observable evidence — echo probes, exhausted RPC
// retransmissions, and boot-epoch jumps — plus call parking/resumption and
// the source-tree quarantine that keeps simulator ground truth out of the
// kernel subsystems.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "kern/cluster.h"
#include "loadshare/wire.h"
#include "recov/monitor.h"
#include "rpc/rpc.h"
#include "sim/network.h"
#include "trace/trace.h"

namespace sprite {
namespace {

using kern::Cluster;
using recov::PeerState;
using sim::HostId;
using sim::Time;
using util::Status;

// Cuts / restores both directions of the a<->b link (partition of one pair).
void set_pair_up(Cluster& cluster, HostId a, HostId b, bool up) {
  cluster.net().set_link_up(a, b, up);
  cluster.net().set_link_up(b, a, up);
}

double counter(Cluster& cluster, const char* name, HostId h) {
  return static_cast<double>(cluster.sim().trace().counter(name, h).value());
}

// Declares a standing dependency of `a` on `b`, the way a kernel subsystem
// would (reservation, residual image, ...): interest makes the monitor probe.
void add_interest(Cluster& cluster, HostId a, HostId b) {
  cluster.host(a).monitor().add_interest_provider(
      [b](std::vector<HostId>& out) { out.push_back(b); });
}

TEST(HostMonitorTest, QuietClusterSendsNoProbes) {
  Cluster cluster({.num_workstations = 3, .num_file_servers = 1, .seed = 1});
  cluster.sim().run_until(Time::sec(30));
  for (HostId h = 0; h < static_cast<HostId>(cluster.num_hosts()); ++h)
    EXPECT_EQ(counter(cluster, "recov.echo.sent", h), 0)
        << "host " << h << " probed with no interest registered";
}

TEST(HostMonitorTest, SilentPeerAgesThroughSuspectToDown) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 2});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];
  add_interest(cluster, a, b);

  // Establish contact (records b's epoch), then cut the link without any
  // reboot: b goes silent but is still the same incarnation.
  cluster.sim().run_until(Time::sec(5));
  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kUp);
  EXPECT_GE(counter(cluster, "recov.echo.sent", a), 1);

  set_pair_up(cluster, a, b, false);
  cluster.sim().run_until(Time::sec(30));
  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kDown);
  EXPECT_GE(counter(cluster, "recov.peer.suspect", a), 1);
  EXPECT_EQ(counter(cluster, "recov.peer.down", a), 1);
  // Down peers are not probed: the echo counter stops growing.
  const double echoes = counter(cluster, "recov.echo.sent", a);
  cluster.sim().run_until(Time::sec(60));
  EXPECT_EQ(counter(cluster, "recov.echo.sent", a), echoes);
}

TEST(HostMonitorTest, BriefSilenceIsAFalseSuspicionNotADeath) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 3});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];
  add_interest(cluster, a, b);
  cluster.sim().run_until(Time::sec(5));

  // Silence shorter than recov_down_after: suspicion must clear on the
  // next successful probe, and no down verdict may fire.
  set_pair_up(cluster, a, b, false);
  cluster.sim().run_until(Time::sec(9));
  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kSuspect);
  set_pair_up(cluster, a, b, true);
  cluster.sim().run_until(Time::sec(15));

  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kUp);
  EXPECT_GE(counter(cluster, "recov.suspect.false", a), 1);
  EXPECT_EQ(counter(cluster, "recov.peer.down", a), 0);
}

TEST(HostMonitorTest, EpochJumpFiresDownThenRebooted) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 4});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];
  add_interest(cluster, a, b);

  std::vector<std::string> order;
  cluster.host(a).monitor().add_peer_down_observer(
      [&](HostId p) { if (p == b) order.push_back("down"); });
  cluster.host(a).monitor().add_peer_rebooted_observer(
      [&](HostId p) { if (p == b) order.push_back("rebooted"); });

  cluster.sim().run_until(Time::sec(5));
  // Crash + fast reboot: a never reaches a down verdict on its own; the
  // first post-reboot echo reply carries the new epoch, which must run the
  // down-recovery path for the old incarnation before announcing the new.
  cluster.crash_host(b);
  cluster.sim().run_until(cluster.sim().now() + Time::sec(1));
  cluster.reboot_host(b);
  cluster.sim().run_until(cluster.sim().now() + Time::sec(10));

  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kUp);
  EXPECT_GE(counter(cluster, "recov.peer.rebooted", a), 1);
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], "down");
  EXPECT_EQ(order[1], "rebooted");
}

TEST(HostMonitorTest, HealedPartitionReintegratesWithoutReboot) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 5});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];
  add_interest(cluster, a, b);

  int reintegrated = 0;
  cluster.host(a).monitor().add_peer_reintegrated_observer(
      [&](HostId p) { reintegrated += (p == b); });

  cluster.sim().run_until(Time::sec(5));
  set_pair_up(cluster, a, b, false);
  // Long enough for the down verdict.
  cluster.sim().run_until(Time::sec(30));
  ASSERT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kDown);
  set_pair_up(cluster, a, b, true);

  // Down peers are not probed, so re-detection needs traffic. One call is
  // given a single doubtful attempt against a down peer — and its reply
  // (same epoch) reintegrates b.
  bool done = false;
  cluster.host(a).rpc().call(
      b, rpc::ServiceId::kRecov, 0, nullptr,
      [&](util::Result<rpc::Reply> r) { done = true; });
  cluster.run_until_done([&] { return done; });

  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kUp);
  EXPECT_EQ(reintegrated, 1);
  EXPECT_EQ(counter(cluster, "recov.peer.rebooted", a), 0);
}

TEST(HostMonitorTest, ExhaustedCallParksUnderSuspicionAndResumesOnHeal) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 6});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];

  int handler_runs = 0;
  cluster.host(b).rpc().register_service(
      rpc::ServiceId::kLoadShare,
      [&](HostId, const rpc::Request&,
          std::function<void(rpc::Reply)> respond) {
        ++handler_runs;
        respond(rpc::Reply{Status::ok(), nullptr});
      });

  cluster.sim().run_until(Time::sec(2));
  set_pair_up(cluster, a, b, false);

  Status out(util::Err::kAgain);
  bool done = false;
  cluster.host(a).rpc().call(
      b, rpc::ServiceId::kLoadShare, 0, std::make_shared<ls::GossipReq>(),
      [&](util::Result<rpc::Reply> r) {
        out = r.is_ok() ? r->status : r.status();
        done = true;
      },
      rpc::CallOpts{.max_retries = 1});

  // Retries exhaust quickly; the monitor is only suspicious (no verdict
  // yet), so the call parks instead of failing.
  cluster.sim().run_until(Time::sec(7));
  EXPECT_FALSE(done);
  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kSuspect);
  EXPECT_GE(counter(cluster, "rpc.call.parked", a), 1);

  // Heal before the down deadline: the next echo clears the suspicion and
  // the parked call retransmits and completes.
  set_pair_up(cluster, a, b, true);
  cluster.run_until_done([&] { return done; });
  EXPECT_TRUE(out.is_ok()) << out.to_string();
  EXPECT_EQ(handler_runs, 1);
  EXPECT_GE(counter(cluster, "rpc.call.unparked", a), 1);
}

TEST(HostMonitorTest, ParkedCallKeepsCausalContextAcrossResume) {
  // Same scenario as above, but traced: the call parks under suspicion,
  // resumes on heal, and the eventual server-side span must still be a
  // child of the original client call span in the original trace — parking
  // must not sever or re-root the causal chain.
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 6});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];
  trace::Registry& tr = cluster.sim().trace();
  tr.set_tracing(true);

  cluster.host(b).rpc().register_service(
      rpc::ServiceId::kLoadShare,
      [&](HostId, const rpc::Request&,
          std::function<void(rpc::Reply)> respond) {
        respond(rpc::Reply{Status::ok(), nullptr});
      });

  cluster.sim().run_until(Time::sec(2));
  set_pair_up(cluster, a, b, false);

  const trace::Context ctx = tr.new_trace();
  bool done = false;
  {
    trace::ScopedContext scope(tr, ctx);
    cluster.host(a).rpc().call(
        b, rpc::ServiceId::kLoadShare, 0, std::make_shared<ls::GossipReq>(),
        [&](util::Result<rpc::Reply> r) {
          EXPECT_TRUE(r.is_ok());
          done = true;
        },
        rpc::CallOpts{.max_retries = 1});
  }

  cluster.sim().run_until(Time::sec(7));
  EXPECT_FALSE(done);
  EXPECT_GE(counter(cluster, "rpc.call.parked", a), 1);

  set_pair_up(cluster, a, b, true);
  cluster.run_until_done([&] { return done; });
  EXPECT_GE(counter(cluster, "rpc.call.unparked", a), 1);

  trace::SpanId call_span = 0;
  std::uint64_t call_trace = 0;
  int serve_count = 0;
  trace::SpanId serve_parent = 0;
  std::uint64_t serve_trace = 0;
  for (const trace::Event& e : tr.events()) {
    if (e.phase != 'b' || e.cat != "rpc") continue;
    if (e.name == "call loadshare" && e.host == a) {
      call_span = e.id;
      call_trace = e.trace_id;
    }
    if (e.name == "serve loadshare" && e.host == b) {
      ++serve_count;
      serve_parent = e.parent;
      serve_trace = e.trace_id;
    }
  }
  ASSERT_NE(call_span, 0u);
  EXPECT_EQ(call_trace, ctx.trace_id);
  EXPECT_EQ(serve_count, 1);  // unpark retransmits; dedup still applies
  EXPECT_EQ(serve_parent, call_span);
  EXPECT_EQ(serve_trace, ctx.trace_id);
}

TEST(HostMonitorTest, DownVerdictFailsParkedCalls) {
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 7});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];

  cluster.sim().run_until(Time::sec(2));
  set_pair_up(cluster, a, b, false);

  Status out(util::Err::kAgain);
  bool done = false;
  cluster.host(a).rpc().call(
      b, rpc::ServiceId::kRecov, 0, nullptr,
      [&](util::Result<rpc::Reply> r) {
        out = r.is_ok() ? r->status : r.status();
        done = true;
      },
      rpc::CallOpts{.max_retries = 1});

  // Never heals: suspicion ages into a down verdict, which fails the
  // parked call rather than leaving it stalled forever.
  cluster.run_until_done([&] { return done; });
  EXPECT_EQ(out.err(), util::Err::kTimedOut);
  EXPECT_EQ(counter(cluster, "recov.peer.down", a), 1);
  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kDown);
}

TEST(HostMonitorTest, OneWayLinkLossStillFeedsEvidence) {
  // Replies lost (b->a cut) looks exactly like a dead b to a — the monitor
  // must suspect and eventually declare b down even though a's requests
  // are arriving fine.
  Cluster cluster({.num_workstations = 2, .num_file_servers = 1, .seed = 8});
  const auto wss = cluster.workstations();
  const HostId a = wss[0], b = wss[1];
  add_interest(cluster, a, b);
  cluster.sim().run_until(Time::sec(5));

  cluster.net().set_link_up(b, a, false);
  cluster.sim().run_until(Time::sec(30));
  EXPECT_EQ(cluster.host(a).monitor().peer_state(b), PeerState::kDown);
  // b keeps hearing a's probes, so b never suspects a.
  EXPECT_EQ(cluster.host(b).monitor().peer_state(a), PeerState::kUp);
}

// ---------------------------------------------------------------------------
// Source-tree quarantine
// ---------------------------------------------------------------------------

// Simulator ground truth about liveness (Cluster::host_crashed,
// Network::set_host_up/host_up, Network::set_link_up/link_up) may only be
// consulted by the simulation substrate itself (src/sim/), the detection
// subsystem under test (src/recov/), and the Cluster/Host glue that
// implements crash_host (src/kern/cluster.*). Every other kernel subsystem
// must go through its host monitor.
TEST(GroundTruthQuarantineTest, NoLivenessQueriesOutsideQuarantine) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(SPRITE_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::exists(src)) << src;

  const std::vector<std::string> tokens = {
      "host_crashed", "set_host_up", "host_up", "set_link_up", "link_up"};
  std::vector<std::string> violations;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    const std::string rel = fs::relative(p, src).string();
    if (rel.rfind("sim/", 0) == 0) continue;    // substrate
    if (rel.rfind("recov/", 0) == 0) continue;  // the detector itself
    if (rel == "kern/cluster.cc" || rel == "kern/cluster.h") continue;
    const std::string ext = p.extension().string();
    if (ext != ".cc" && ext != ".h") continue;

    std::ifstream in(p);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      for (const auto& tok : tokens) {
        // Match call sites, not words in comments.
        const std::string call = tok + "(";
        if (line.find(call) != std::string::npos)
          violations.push_back(rel + ":" + std::to_string(lineno) + ": " +
                               line);
      }
    }
  }
  EXPECT_TRUE(violations.empty())
      << "ground-truth liveness consulted outside src/sim|recov|kern/cluster:"
      << [&] {
           std::ostringstream os;
           for (const auto& v : violations) os << "\n  " << v;
           return os.str();
         }();
}

}  // namespace
}  // namespace sprite
