// E5 — idle-host selection latency through migd (thesis §6.3 / [DO91]).
//
// Paper: selecting and releasing an idle host through the centralized migd
// daemon takes ~56 ms on DECstation 3100s (pseudo-device round trips plus
// daemon work).
#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"

using sprite::core::SpriteCluster;
using sprite::sim::Time;
using sprite::util::Table;

int main() {
  bench::header("E5: select + release an idle host (bench_host_selection)",
                "~56 ms per select/release pair through migd");

  SpriteCluster cluster({.workstations = 8, .seed = 17});
  cluster.warm_up();
  const auto requester = cluster.workstation(0);

  // Warm the pseudo-device stream (the one-time open is not steady state).
  auto first = cluster.request_idle_hosts(requester, 1);
  for (auto h : first) cluster.release_host(requester, h);
  cluster.run_for(Time::sec(2));

  sprite::util::Distribution select_ms, pair_ms;
  for (int i = 0; i < 200; ++i) {
    const Time t0 = cluster.sim().now();
    auto hosts = cluster.request_idle_hosts(requester, 1);
    const Time t1 = cluster.sim().now();
    SPRITE_CHECK(hosts.size() == 1);
    cluster.release_host(requester, hosts[0]);
    // release_host waits 100 ms of simulated time for the transaction;
    // measure the daemon transaction itself via the select leg and double
    // it (select and release are symmetric migd transactions).
    select_ms.add((t1 - t0).ms());
    pair_ms.add(2.0 * (t1 - t0).ms());
    cluster.run_for(Time::sec(1));  // let announcements settle
  }

  Table t({"metric", "paper", "measured"});
  t.add_row({"select one idle host (median)", "~28 ms",
             Table::num(select_ms.median(), 1) + " ms"});
  t.add_row({"select + release (median)", "56 ms",
             Table::num(pair_ms.median(), 1) + " ms"});
  t.add_row({"select p95", "-", Table::num(select_ms.quantile(0.95), 1) + " ms"});
  t.print();

  std::printf("\nper-transaction breakdown: 2 RPC legs + %0.0f ms pseudo-device"
              " wakeup + %0.0f ms daemon CPU\n",
              sprite::sim::Costs{}.pdev_wakeup.ms(),
              sprite::sim::Costs{}.migd_request_cpu.ms());
  return 0;
}
