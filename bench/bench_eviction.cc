// E8 — eviction when the owner returns (thesis §8.3).
//
// Paper: eviction latency is dominated by flushing the foreign process's
// dirty pages; small jobs leave in well under a second, large dirty images
// take seconds. The owner's workstation is reclaimed promptly and the
// evicted process continues (at home) with its results intact.
#include <cstdio>

#include "bench_util.h"
#include "migration/manager.h"
#include "proc/table.h"

using sprite::core::SpriteCluster;
using sprite::proc::ScriptBuilder;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

struct EvictionSample {
  double eviction_ms;    // note_user_input -> host free of foreign procs
  bool finished_home;    // the evicted process completed at home
};

EvictionSample evict_with_dirty(std::int64_t dirty_mb) {
  SpriteCluster cluster({.workstations = 4, .seed = 23});
  cluster.warm_up();
  const std::int64_t pages = std::max<std::int64_t>(dirty_mb * 256, 4);

  // The guest keeps its working set dirty (as a real simulation would):
  // alternate between writing the whole set and computing.
  ScriptBuilder b;
  for (int i = 0; i < 200; ++i) {
    if (dirty_mb > 0)
      b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, pages, true});
    b.compute(Time::sec(3));
  }
  b.exit(0);
  cluster.install_program("/bin/guest" + std::to_string(dirty_mb),
                          b.image(16, pages, 4));

  const auto owner = cluster.workstation(0);
  const auto victim = cluster.workstation(1);
  const auto pid = cluster.spawn(
      owner, "/bin/guest" + std::to_string(dirty_mb), {});
  cluster.run_for(Time::sec(5));
  SPRITE_CHECK(cluster.migrate(pid, victim).is_ok());
  cluster.run_for(Time::sec(5));  // it is computing remotely, dirty VM there

  // The user comes back.
  const Time t0 = cluster.sim().now();
  cluster.host(victim).note_user_input();
  cluster.kernel().run_until_done([&] {
    return cluster.host(victim).procs().foreign_processes().empty();
  });
  const double eviction_ms = (cluster.sim().now() - t0).ms();

  const int status = cluster.wait(pid);
  EvictionSample s;
  s.eviction_ms = eviction_ms;
  s.finished_home = status == 0 && sprite::proc::pid_home(pid) == owner;
  return s;
}

}  // namespace

int main() {
  bench::header("E8: eviction on owner return (bench_eviction)",
                "sub-second reclaim for small jobs; seconds when megabytes "
                "of dirty VM must be flushed; evicted work still completes");

  Table t({"foreign dirty MB", "reclaim ms", "paper expectation",
           "finished at home"});
  for (std::int64_t mb : {0, 1, 2, 4, 8}) {
    auto s = evict_with_dirty(mb);
    const std::string expect =
        mb == 0 ? "~0.1-0.3 s" : Table::num(0.48 * mb, 1) + " s + base";
    t.add_row({std::to_string(mb), Table::num(s.eviction_ms, 1), expect,
               s.finished_home ? "yes" : "NO"});
  }
  t.print();

  bench::footnote(
      "Shape check: reclaim latency = small fixed cost plus ~480 ms per\n"
      "dirty megabyte (the flush strategy's per-MB figure from E1), and\n"
      "every evicted process finishes correctly on its home machine.");
  return 0;
}
