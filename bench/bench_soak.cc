// bench_soak: long-horizon multi-user soak (workload engine over faults,
// partitions, and autocheckpoint).
//
// The headline run drives a simulated week of diurnal multi-user load
// (>= 1000 user sessions) through a 24-workstation cluster while a rotating
// fault plan crashes workstations, partitions trios off the network, and
// autocheckpoint keeps batch work restartable. It reports the paper's
// summary numbers — utilization recovered by migration, owner-return
// eviction-latency percentiles, foreign-process residency — and ends with
// the incarnation audit: the bench exits nonzero if a single process
// incarnation was lost or duplicated.
//
// Flags:
//   --days N           simulated horizon in days (default 7)
//   --users N          concurrent user population (default 72)
//   --hosts N          workstations (default 24)
//   --seed N           master seed (default 1)
//   --quick            CI smoke shape: 6 hours, 24 users, 8 hosts
//   --no-faults        disable the crash/partition schedule
//   --replay-check     record the run, replay it, and require the replayed
//                      re-recording to be byte-identical
//   --metrics-out F    write the final metrics snapshot as JSON

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "workload/soak.h"

using sprite::sim::Time;
using sprite::wl::SoakHarness;
using sprite::wl::SoakOptions;
using sprite::wl::SoakReport;

namespace {

long flag_long(int argc, char** argv, const std::string& flag, long dflt) {
  const std::string v = bench::flag_arg(argc, argv, flag);
  return v.empty() ? dflt : std::strtol(v.c_str(), nullptr, 10);
}

bool flag_set(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i)
    if (argv[i] == flag) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = flag_set(argc, argv, "--quick");
  SoakOptions opts;
  opts.workstations =
      static_cast<int>(flag_long(argc, argv, "--hosts", quick ? 8 : 24));
  opts.seed = static_cast<std::uint64_t>(flag_long(argc, argv, "--seed", 1));
  opts.sessions.users =
      static_cast<int>(flag_long(argc, argv, "--users", quick ? 24 : 72));
  opts.sessions.horizon =
      quick ? Time::hours(6)
            : Time::hours(24 * flag_long(argc, argv, "--days", 7));
  opts.faults = !flag_set(argc, argv, "--no-faults");
  if (quick) {
    opts.crash_period = Time::hours(1);
    opts.partition_period = Time::hours(2);
    // The long-batch tail tops out at 10 simulated minutes; a 10-minute
    // autockpt interval would never fire inside a 6-hour smoke.
    opts.ckpt_interval = Time::minutes(2);
  }
  opts.engine.record = flag_set(argc, argv, "--replay-check");

  bench::header(
      "E16: long-horizon multi-user soak",
      "migration recovers idle-workstation CPU for weeks at a stretch while "
      "owners reclaim their machines in about a second");

  std::printf("horizon %.0f h, %d users on %d workstations, seed %llu, "
              "faults %s\n\n",
              opts.sessions.horizon.h(), opts.sessions.users,
              opts.workstations, static_cast<unsigned long long>(opts.seed),
              opts.faults ? "on" : "off");

  SoakHarness harness(opts);
  const SoakReport report = harness.run();
  std::printf("%s\n", report.to_string().c_str());

  const std::string metrics = bench::metrics_out_arg(argc, argv);
  if (!metrics.empty()) {
    const sprite::util::Status s =
        harness.cluster().sim().trace().write_metrics_json(metrics);
    if (s.is_ok())
      std::printf("\nmetrics: -> %s\n", metrics.c_str());
    else
      std::printf("\nmetrics: write failed: %s\n", s.to_string().c_str());
  }

  int rc = 0;
  if (!report.audit.ok()) {
    std::printf("\nAUDIT FAILED: %lld lost, %lld duplicated\n",
                static_cast<long long>(report.audit.lost),
                static_cast<long long>(report.audit.duplicated));
    for (const auto& p : report.audit.problems)
      std::printf("  %s\n", p.c_str());
    rc = 1;
  }
  if (report.workload.sessions_begun < (quick ? 50 : 1000)) {
    std::printf("\nFAILED: only %lld sessions over the horizon\n",
                static_cast<long long>(report.workload.sessions_begun));
    rc = 1;
  }

  if (opts.engine.record) {
    auto bytes = harness.take_recorded_trace();
    auto parsed = sprite::wl::decode_trace(bytes);
    if (!parsed.is_ok()) {
      std::printf("\nREPLAY-CHECK FAILED: recorded trace does not decode\n");
      return 1;
    }
    SoakOptions ropts = opts;
    ropts.engine.record = true;
    SoakHarness replay(ropts);
    const SoakReport rr = replay.run_replay(std::move(*parsed));
    const auto rebytes = replay.take_recorded_trace();
    if (rebytes != bytes) {
      std::printf("\nREPLAY-CHECK FAILED: re-recorded trace differs "
                  "(%zu vs %zu bytes)\n",
                  rebytes.size(), bytes.size());
      rc = 1;
    } else if (!rr.audit.ok()) {
      std::printf("\nREPLAY-CHECK FAILED: replay audit failed\n");
      rc = 1;
    } else {
      std::printf("\nreplay-check: %zu-byte trace round-tripped "
                  "byte-identically\n",
                  bytes.size());
    }
  }

  bench::footnote(
      "The audit sweeps every host's process table at the end of the run: a "
      "batch job that never reached a terminal state counts as lost, a pid "
      "resident on two hosts (or running below its home's incarnation epoch) "
      "counts as duplicated. Both must be zero.");
  return rc;
}
