// E11 — file I/O across migration (thesis chapter 5).
//
// Paper: open streams keep working after migration at native speed (the I/O
// server re-attributes them); access positions shared across hosts move to
// the I/O server and cost a round trip per operation; concurrent write
// sharing disables caching and every access becomes server traffic.
#include <cstdio>

#include "bench_util.h"
#include "fs/client.h"
#include "util/stats.h"

using sprite::core::SpriteCluster;
using sprite::fs::OpenFlags;
using sprite::fs::StreamPtr;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

// Mean latency of `reps` sequential 4 KB reads on stream `s` at host `h`.
double read_latency_ms(SpriteCluster& cluster, sprite::sim::HostId h,
                       const StreamPtr& s, int reps) {
  sprite::util::Accumulator acc;
  for (int i = 0; i < reps; ++i) {
    cluster.host(h).fs().seek(s, (i % 16) * 4096);
    const Time t0 = cluster.sim().now();
    bool done = false;
    cluster.host(h).fs().read(s, 4096, [&](sprite::util::Result<sprite::fs::Bytes> r) {
      SPRITE_CHECK(r.is_ok());
      done = true;
    });
    cluster.kernel().run_until_done([&] { return done; });
    acc.add((cluster.sim().now() - t0).ms());
  }
  return acc.mean();
}

StreamPtr open_blocking(SpriteCluster& cluster, sprite::sim::HostId h,
                        const std::string& path, OpenFlags flags) {
  StreamPtr out;
  bool done = false;
  cluster.host(h).fs().open(path, flags,
                            [&](sprite::util::Result<StreamPtr> r) {
                              SPRITE_CHECK(r.is_ok());
                              out = *r;
                              done = true;
                            });
  cluster.kernel().run_until_done([&] { return done; });
  return out;
}

}  // namespace

int main() {
  bench::header(
      "E11: file I/O across migration (bench_file_io)",
      "migrated streams run at native speed; server-managed shared offsets "
      "cost a round trip per op; write sharing disables caching");

  SpriteCluster cluster({.workstations = 4, .seed = 53});
  auto* server = cluster.kernel().file_server().fs_server();
  server->create_file("/iodata", 64 * 1024);

  const auto src = cluster.workstation(0);
  const auto dst = cluster.workstation(1);

  Table t({"scenario", "mean 4KB read ms", "note"});

  // 1. Plain cached reads before migration (warm the cache first).
  auto s = open_blocking(cluster, src, "/iodata", OpenFlags::read_only());
  read_latency_ms(cluster, src, s, 16);  // warm
  const double local_ms = read_latency_ms(cluster, src, s, 64);
  t.add_row({"cached reads at home", Table::num(local_ms, 3),
             "client cache hits"});

  // 2. The stream migrates (sole owner): native speed on the new host once
  //    its cache warms.
  sprite::fs::ExportedStream exported;
  {
    bool done = false;
    cluster.host(src).fs().export_stream(
        s, dst, false, [&](sprite::util::Result<sprite::fs::ExportedStream> r) {
          SPRITE_CHECK(r.is_ok());
          exported = *r;
          done = true;
        });
    cluster.kernel().run_until_done([&] { return done; });
  }
  auto s_dst = cluster.host(dst).fs().import_stream(exported);
  const double first_ms = read_latency_ms(cluster, dst, s_dst, 16);
  const double warm_ms = read_latency_ms(cluster, dst, s_dst, 64);
  t.add_row({"after migration, cold cache", Table::num(first_ms, 3),
             "server fetches once"});
  t.add_row({"after migration, warm cache", Table::num(warm_ms, 3),
             "back to native speed"});

  // 3. Fork-shared offset split across hosts: server-managed position.
  auto shared = open_blocking(cluster, src, "/iodata", OpenFlags::read_only());
  shared->local_refs = 2;  // another local process shares it (as after fork)
  sprite::fs::ExportedStream shared_exp;
  {
    bool done = false;
    cluster.host(src).fs().export_stream(
        shared, dst, true,
        [&](sprite::util::Result<sprite::fs::ExportedStream> r) {
          SPRITE_CHECK(r.is_ok());
          shared_exp = *r;
          done = true;
        });
    cluster.kernel().run_until_done([&] { return done; });
  }
  auto shared_dst = cluster.host(dst).fs().import_stream(shared_exp);
  sprite::util::Accumulator shared_acc;
  for (int i = 0; i < 64; ++i) {
    const Time t0 = cluster.sim().now();
    bool done = false;
    cluster.host(dst).fs().read(shared_dst, 4096,
                                [&](sprite::util::Result<sprite::fs::Bytes> r) {
                                  SPRITE_CHECK(r.is_ok());
                                  done = true;
                                });
    cluster.kernel().run_until_done([&] { return done; });
    shared_acc.add((cluster.sim().now() - t0).ms());
    if (shared_dst->server_offset && (i % 8) == 7) {
      // rewind via the source's half of the group to keep reading
      bool d2 = false;
      cluster.host(dst).fs().read(shared_dst, 0,
                                  [&](sprite::util::Result<sprite::fs::Bytes>) {
                                    d2 = true;
                                  });
      cluster.kernel().run_until_done([&] { return d2; });
    }
  }
  t.add_row({"shared offset (server-managed)", Table::num(shared_acc.mean(), 3),
             "one RPC per operation"});

  // 4. Concurrent write sharing: caching disabled, all ops go through.
  auto w0 = open_blocking(cluster, src, "/iodata", OpenFlags::read_write());
  auto w1 = open_blocking(cluster, dst, "/iodata", OpenFlags::read_write());
  cluster.run_for(Time::msec(100));  // disable callbacks settle
  const double uncached_ms = read_latency_ms(cluster, dst, w1, 64);
  t.add_row({"write-shared (uncacheable)", Table::num(uncached_ms, 3),
             "every read is server traffic"});

  t.print();

  bench::footnote(
      "Shape checks: warm post-migration reads match pre-migration reads\n"
      "(transferred state, not forwarding); server-managed offsets and\n"
      "uncacheable write-shared files each pay ~an RPC per operation.");
  return 0;
}
