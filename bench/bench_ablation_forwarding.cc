// Ablation — transferred-state vs forward-everything file calls
// (thesis §4.3.1).
//
// Paper: "it would be possible to implement forwarding in a kernel-call-
// based system by leaving all of the kernel state on the home machine and
// using remote procedure calls to forward home every kernel call, as Remote
// UNIX does ... our initial plan was to use an approach like this for
// Sprite. Unfortunately, an approach based entirely on forwarding ... will
// not work in practice": every file operation pays a home round trip, and
// the home machine — whose user the facility is supposed to protect — does
// the I/O work for all its migrated processes.
//
// This benchmark runs the same remote I/O workload under both designs.
#include <cstdio>

#include "bench_util.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"

using sprite::core::SpriteCluster;
using sprite::mig::FileCallMode;
using sprite::proc::Action;
using sprite::proc::ScriptBuilder;
using sprite::proc::ScriptProgram;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

namespace fs = sprite::fs;

fs::Bytes bytes(const std::string& s) { return fs::Bytes(s.begin(), s.end()); }

struct ModeResult {
  double workload_s = 0;      // remote process's elapsed time
  double home_cpu_s = 0;      // kernel CPU burned on the home machine
  std::int64_t home_rpcs = 0; // requests the home machine served
};

// `workers` processes from the same home, each migrated to its own host,
// each doing 200 reads + 100 writes of 4 KB.
ModeResult run_mode(FileCallMode mode, int workers) {
  SpriteCluster cluster({.workstations = workers + 1, .seed = 111});
  for (int i = 0; i <= workers; ++i)
    cluster.host(cluster.workstation(i)).mig().set_file_call_mode(mode);
  auto* server = cluster.kernel().file_server().fs_server();
  server->create_file("/shared_src", 1 << 20);

  ScriptBuilder b;
  b.act(sprite::proc::SysOpen{"/shared_src", fs::OpenFlags::read_only()});
  b.step([](ScriptProgram::Ctx& c) {
    c.locals["in"] = c.view->rv;
    return sprite::proc::SysOpen{"/out" + std::to_string(c.view->pid),
                                 fs::OpenFlags::create_rw()};
  });
  b.step([](ScriptProgram::Ctx& c) {
    c.locals["out"] = c.view->rv;
    return sprite::proc::Pause{Time::msec(500)};  // migration point
  });
  const int head = b.next_index();
  b.step([head](ScriptProgram::Ctx& c) {
    const auto i = c.locals["i"]++;
    if (i >= 300) return Action{sprite::proc::SysExit{0}};
    c.jump(head);
    if (i % 3 == 2) {
      return Action{sprite::proc::SysWrite{static_cast<int>(c.locals["out"]),
                                           bytes(std::string(4096, 'x')), 0}};
    }
    return Action{sprite::proc::SysRead{static_cast<int>(c.locals["in"]),
                                        4096}};
  });
  cluster.install_program("/bin/io", b.image());

  const auto home = cluster.workstation(0);
  std::vector<sprite::proc::Pid> pids;
  for (int w = 0; w < workers; ++w)
    pids.push_back(cluster.spawn(home, "/bin/io", {}));
  cluster.run_for(Time::msec(200));
  for (int w = 0; w < workers; ++w) {
    auto st = cluster.migrate(pids[static_cast<std::size_t>(w)],
                              cluster.workstation(w + 1));
    SPRITE_CHECK(st.is_ok());
  }

  const Time t0 = cluster.sim().now();
  const auto rpcs0 = cluster.host(home).rpc().requests_served();
  const Time cpu0 = cluster.host(home).cpu().busy_time(sprite::sim::JobClass::kKernel);
  for (auto pid : pids) SPRITE_CHECK(cluster.wait(pid) == 0);

  ModeResult r;
  r.workload_s = (cluster.sim().now() - t0).s();
  r.home_cpu_s =
      (cluster.host(home).cpu().busy_time(sprite::sim::JobClass::kKernel) -
       cpu0)
          .s();
  r.home_rpcs = cluster.host(home).rpc().requests_served() - rpcs0;
  return r;
}

}  // namespace

int main() {
  bench::header(
      "Ablation: transferred state vs forward-everything (bench_ablation_forwarding)",
      "forwarding every file call home 'will not work in practice': per-op "
      "round trips plus home-machine load defeat the facility's purpose");

  Table t({"mode", "remote workers", "workload s", "home kernel CPU s",
           "RPCs served at home"});
  for (int workers : {1, 4}) {
    auto fwd = run_mode(FileCallMode::kForwardHome, workers);
    auto xfer = run_mode(FileCallMode::kTransferStreams, workers);
    t.add_row({"forward home (Remote UNIX)", std::to_string(workers),
               Table::num(fwd.workload_s, 2), Table::num(fwd.home_cpu_s, 2),
               std::to_string(fwd.home_rpcs)});
    t.add_row({"transferred state (Sprite)", std::to_string(workers),
               Table::num(xfer.workload_s, 2), Table::num(xfer.home_cpu_s, 2),
               std::to_string(xfer.home_rpcs)});
  }
  t.print();

  bench::footnote(
      "Shape checks: forwarding pays one home round trip per file call, so\n"
      "the remote workload runs several times slower and the home machine —\n"
      "the one the user is sitting at — serves hundreds of RPCs and burns\n"
      "CPU on its guests' I/O. Transferred state leaves the home machine\n"
      "untouched. This is why Sprite migrates kernel state and forwards\n"
      "only the calls that truly belong at home (Appendix A).");
  return 0;
}
