// E7 — idle-host availability over a week (thesis §8.2, figure).
//
// Paper: 65–70% of Sprite hosts idle on average during the day, up to ~80%
// at night and on weekends; long-idle hosts tend to stay idle [ML87].
#include <cstdio>

#include "apps/workload.h"
#include "bench_util.h"
#include <map>

#include "util/stats.h"

using sprite::apps::UserActivityModel;
using sprite::core::SpriteCluster;
using sprite::sim::Time;
using sprite::util::Table;

int main() {
  bench::header("E7: idle hosts over a simulated week (bench_idle_hosts)",
                "65-70% idle during the day, ~80% at night/weekends");

  const int kHosts = 40;
  SpriteCluster cluster({.workstations = kHosts,
                         .seed = 31,
                         .horizon = Time::hours(24 * 7 + 1)});
  UserActivityModel activity(cluster.kernel(),
                             UserActivityModel::Profile::office());
  activity.start();

  // Sample the idle fraction every 15 simulated minutes for 7 days, and
  // track per-host idle-period durations for the persistence analysis.
  sprite::util::Accumulator weekday_day, weekday_night, weekend_all;
  std::array<sprite::util::Accumulator, 24> by_hour;
  std::map<sprite::sim::HostId, double> idle_since;  // hours; <0 = busy
  std::vector<double> idle_periods_h;                // completed periods
  for (auto w : cluster.kernel().workstations()) idle_since[w] = -1;

  for (double h = 1.0; h < 24.0 * 7; h += 0.25) {
    cluster.run_for(Time::minutes(15));
    const double idle =
        static_cast<double>(cluster.load_sharing().idle_count()) / kHosts;
    const int hour = static_cast<int>(h) % 24;
    const int day = static_cast<int>(h) / 24;
    by_hour[static_cast<std::size_t>(hour)].add(idle);
    if (day >= 5) {
      weekend_all.add(idle);
    } else if (hour >= 9 && hour < 18) {
      weekday_day.add(idle);
    } else {
      weekday_night.add(idle);
    }
    for (auto w : cluster.kernel().workstations()) {
      const bool is_idle = cluster.load_sharing().actually_idle(w);
      double& since = idle_since[w];
      if (is_idle && since < 0) {
        since = h;
      } else if (!is_idle && since >= 0) {
        idle_periods_h.push_back(h - since);
        since = -1;
      }
    }
  }

  Table t({"period", "paper", "measured idle fraction"});
  t.add_row({"weekday 9:00-18:00", "65-70%",
             Table::num(100 * weekday_day.mean(), 0) + "%"});
  t.add_row({"weekday nights", "~80%",
             Table::num(100 * weekday_night.mean(), 0) + "%"});
  t.add_row({"weekend", "~80%",
             Table::num(100 * weekend_all.mean(), 0) + "%"});
  t.print();

  std::printf("\nidle fraction by hour of day (weekly average):\n");
  Table hours({"hour", "idle %"});
  for (int h = 0; h < 24; h += 2) {
    hours.add_row({std::to_string(h) + ":00",
                   Table::num(100 * by_hour[static_cast<std::size_t>(h)].mean(),
                              0)});
  }
  hours.print();

  // Mutka & Livny's persistence claim [ML87], which the thesis's §8.5
  // measurements support: hosts idle for a long time tend to stay idle.
  std::printf("\nidle-period persistence (Mutka & Livny):\n");
  Table pt({"already idle for", "mean remaining idle time (h)", "periods"});
  for (double threshold_h : {0.0, 0.25, 1.0, 4.0}) {
    sprite::util::Accumulator remaining;
    for (double p : idle_periods_h) {
      if (p >= threshold_h) remaining.add(p - threshold_h);
    }
    char label[32];
    std::snprintf(label, sizeof label, ">= %.2f h", threshold_h);
    pt.add_row({label, Table::num(remaining.mean(), 2),
                std::to_string(remaining.count())});
  }
  pt.print();

  bench::footnote(
      "Shape checks: a diurnal availability curve — a daytime trough in the\n"
      "60-70% band and nights/weekends near 80% — matching the thesis's\n"
      "month of production measurements; and the expected remaining idle\n"
      "time GROWS with elapsed idle time (short office absences mix with\n"
      "long nights), confirming Mutka & Livny's heuristic that long-idle\n"
      "hosts are the best migration targets.");
  return 0;
}
