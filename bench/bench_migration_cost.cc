// E1 — migration cost breakdown (thesis §7.2 / [DO91] Table 1).
//
// Paper (DECstation 3100, 10 Mb/s Ethernet):
//   exec-time migration of a trivial process   ~76 ms
//   each open file transferred                 +9.4 ms
//   each megabyte of dirty data flushed        +480 ms
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "migration/manager.h"
#include "trace/analysis.h"

using sprite::core::SpriteCluster;
using sprite::mig::MigrationRecord;
using sprite::proc::Action;
using sprite::proc::ScriptBuilder;
using sprite::proc::ScriptProgram;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

// Exec-time migration of a trivial program.
double null_migration_ms() {
  SpriteCluster cluster({.workstations = 3, .seed = 42});
  ScriptBuilder work;
  work.compute(Time::msec(5)).exit(0);
  cluster.install_program("/bin/null", work.image(4, 4, 2));

  ScriptBuilder launcher;
  const auto target = cluster.workstation(1);
  launcher
      .act(sprite::proc::SysMigrateSelf{.target = target, .at_exec = true})
      .act(sprite::proc::SysExec{"/bin/null", {}});
  cluster.install_program("/bin/launch", launcher.image(4, 4, 2));

  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/launch", {});
  cluster.wait(pid);
  return cluster.host(cluster.workstation(0))
      .mig()
      .last_record()
      .total_time()
      .ms();
}

// Active migration of a process holding `files` open streams and `dirty_mb`
// megabytes of dirty heap, under the Sprite flush strategy. A non-empty
// `trace_path` records the run as Chrome trace JSON; `analyse` turns tracing
// on regardless so the causal span tree can be decomposed in-process.
struct StateRun {
  MigrationRecord rec;
  sprite::trace::analysis::MigrationBreakdown breakdown;
};

StateRun migrate_with_state(int files, int dirty_mb,
                            const std::string& trace_path = "",
                            const std::string& metrics_path = "",
                            bool analyse = false) {
  SpriteCluster cluster({.workstations = 3, .seed = 7});
  bench::arm_trace(cluster, trace_path, analyse);
  auto* server = cluster.kernel().file_server().fs_server();
  server->mkdir_p("/data");
  for (int f = 0; f < files; ++f)
    server->create_file("/data/f" + std::to_string(f), 4096);

  const std::int64_t pages = dirty_mb * 256;
  ScriptBuilder b;
  for (int f = 0; f < files; ++f) {
    b.act(sprite::proc::SysOpen{"/data/f" + std::to_string(f),
                                sprite::fs::OpenFlags::read_only()});
  }
  if (pages > 0)
    b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, pages, true});
  // Sleep across the migration window, then touch a little memory on the
  // target: under the flush strategy those are the deferred demand-page
  // faults the breakdown's first-N row accounts for.
  b.act(sprite::proc::Pause{Time::sec(15)});
  b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, 4, false});
  b.act(sprite::proc::Pause{Time::hours(1)}).exit(0);
  cluster.install_program("/bin/holder",
                          b.image(8, std::max<std::int64_t>(pages, 4), 2));

  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/holder", {});
  cluster.run_for(Time::sec(10));  // state established, now sleeping
  auto st = cluster.migrate(pid, cluster.workstation(1));
  SPRITE_CHECK(st.is_ok());
  StateRun out;
  out.rec = cluster.host(cluster.workstation(0)).mig().last_record();
  if (analyse || !trace_path.empty()) {
    // Let the migrated process wake and fault a few pages in on the target
    // so the breakdown's deferred demand-paging row has data.
    cluster.run_for(Time::sec(10));
    const auto& ev = cluster.sim().trace().events();
    for (std::uint64_t id : sprite::trace::analysis::trace_ids(ev)) {
      auto b = sprite::trace::analysis::migration_breakdown(ev, id);
      if (b.valid) out.breakdown = b;
    }
  }
  if (!trace_path.empty()) bench::finish_trace(cluster, trace_path);
  bench::write_metrics(cluster, metrics_path);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_out_arg(argc, argv);
  const std::string metrics_path = bench::metrics_out_arg(argc, argv);
  bench::header("E1: migration cost breakdown (bench_migration_cost)",
                "null exec-time migration ~76 ms; +9.4 ms per open file; "
                "+480 ms per dirty MB flushed");

  const double null_ms = null_migration_ms();

  // Per-file slope.
  const double base_files = migrate_with_state(0, 0).rec.total_time().ms();
  const double eight_files = migrate_with_state(8, 0).rec.total_time().ms();
  const double per_file = (eight_files - base_files) / 8.0;

  // Per-MB slope (flush strategy).
  const double base_vm = migrate_with_state(0, 0).rec.total_time().ms();
  const double four_mb = migrate_with_state(0, 4).rec.total_time().ms();
  const double per_mb = (four_mb - base_vm) / 4.0;

  Table t({"component", "paper", "measured"});
  t.add_row({"exec-time migration, trivial process", "76 ms",
             Table::num(null_ms, 1) + " ms"});
  t.add_row({"per open file", "9.4 ms", Table::num(per_file, 1) + " ms"});
  t.add_row({"per dirty megabyte (flush)", "480 ms",
             Table::num(per_mb, 0) + " ms"});
  t.print();

  std::printf("\nraw points:\n");
  Table t2({"open files", "dirty MB", "total ms", "freeze ms", "streams"});
  for (int f : {0, 2, 4, 8}) {
    auto r = migrate_with_state(f, 0).rec;
    t2.add_row({std::to_string(f), "0", Table::num(r.total_time().ms(), 1),
                Table::num(r.freeze_time().ms(), 1),
                std::to_string(r.streams_moved)});
  }
  for (int mb : {1, 2, 4, 8}) {
    auto r = migrate_with_state(0, mb).rec;
    t2.add_row({"0", std::to_string(mb), Table::num(r.total_time().ms(), 1),
                Table::num(r.freeze_time().ms(), 1),
                std::to_string(r.streams_moved)});
  }
  t2.print();

  // Component breakdown of one representative migration (4 open files,
  // 2 MB dirty), mirroring the thesis's cost-breakdown table. This run is
  // the one recorded by --trace-out; it is always traced so the causal span
  // tree can be decomposed regardless of the flag.
  {
    auto run = migrate_with_state(4, 2, trace_path, metrics_path,
                                  /*analyse=*/true);
    const auto& rec = run.rec;
    Table t3({"phase", "ms"});
    t3.add_row({"init handshake (version check, slot)",
                Table::num((rec.init_done_at - rec.started).ms(), 1)});
    t3.add_row({"freeze + VM transfer (flush 2 MB)",
                Table::num((rec.vm_done_at - rec.init_done_at).ms(), 1)});
    t3.add_row({"stream re-attribution (4 files)",
                Table::num((rec.streams_done_at - rec.vm_done_at).ms(), 1)});
    t3.add_row({"PCB encapsulation + transfer + resume",
                Table::num((rec.resumed_at - rec.streams_done_at).ms(), 1)});
    t3.add_row({"TOTAL", Table::num(rec.total_time().ms(), 1)});
    std::printf("\ncomponent breakdown (4 open files, 2 MB dirty):\n");
    t3.print();

    // The same breakdown, reconstructed purely from the causal trace. The
    // in-total components must tile the end-to-end span: a >5% mismatch
    // means the span data lies about where the time went.
    const auto& bd = run.breakdown;
    SPRITE_CHECK_MSG(bd.valid, "no migration trace in the representative run");
    std::printf("\ncritical-path breakdown (from the causal span tree):\n%s",
                bd.table().c_str());
    const auto sum = static_cast<double>(bd.sum_in_total_us());
    const auto total = static_cast<double>(bd.total_us);
    SPRITE_CHECK_MSG(total > 0 && std::abs(sum - total) <= 0.05 * total,
                     "breakdown components do not sum to the migration time");
    std::printf("component sum %.3f ms vs end-to-end %.3f ms (%.2f%%)\n",
                sum / 1000.0, total / 1000.0, 100.0 * sum / total);
  }

  bench::footnote(
      "Shape check: cost is linear in open files and in dirty megabytes,\n"
      "with a fixed base near the paper's null-migration figure.");
  return 0;
}
