// E4 — effective processor utilization (thesis §7.4).
//
// Paper: a set of 100 independent simulations achieved >800% effective
// utilization, versus ~300% for the 12-way parallel compilation — because
// simulations are pure CPU while compiles hammer the file server's name
// lookups.
#include <cstdio>

#include "bench_util.h"

using sprite::apps::Target;
using sprite::apps::make_compile_graph;
using sprite::core::SpriteCluster;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

// Effective utilization = total job CPU / makespan (in percent of one CPU).
double run_workload(std::vector<Target> targets, int hosts, double* makespan) {
  SpriteCluster cluster({.workstations = hosts + 1, .seed = 13});
  cluster.warm_up();
  auto r = bench::run_pmake(cluster, std::move(targets), hosts + 1, true);
  *makespan = r.makespan.s();
  return 100.0 * r.total_job_cpu.s() / r.makespan.s();
}

}  // namespace

int main() {
  bench::header("E4: effective processor utilization (bench_utilization)",
                "100 independent simulations >800% vs ~300% for the 12-way "
                "parallel compile");

  // 100 independent CPU-bound simulations (no deps, no includes, tiny I/O).
  std::vector<Target> sims;
  for (int i = 0; i < 100; ++i) {
    Target t;
    t.name = "/src/simout" + std::to_string(i);
    t.cpu = Time::sec(30);
    t.read_bytes = 2048;
    t.write_bytes = 2048;
    sims.push_back(t);
  }

  // The 12-way compile from E3.
  auto compile = make_compile_graph(48, 28, Time::sec(4), Time::sec(6));

  double sim_makespan = 0, cc_makespan = 0;
  const double sim_util = run_workload(sims, 12, &sim_makespan);
  const double cc_util = run_workload(compile, 12, &cc_makespan);

  Table t({"workload", "hosts", "makespan s", "effective util (paper)",
           "effective util (measured)"});
  t.add_row({"100 independent simulations", "12", Table::num(sim_makespan, 1),
             ">800%", Table::num(sim_util, 0) + "%"});
  t.add_row({"48-file parallel compile", "12", Table::num(cc_makespan, 1),
             "~300%", Table::num(cc_util, 0) + "%"});
  t.print();

  bench::footnote(
      "Shape check: CPU-bound simulations use most of the granted hosts;\n"
      "compilations are capped by the file server, at a small multiple of\n"
      "one processor regardless of how many hosts migd hands out.");
  return 0;
}
