// E9 — kernel-call handling for remote processes (thesis §4.3, Appendix A).
//
// Paper: transferred-state calls (file I/O, getpid) run at local speed on
// the current host after migration; forwarded calls (gethostname, wait,
// process-family operations) each pay a kernel-to-kernel RPC to the home
// machine (~1-2 ms) — which is why Sprite migrates state instead of
// forwarding everything, unlike Remote UNIX.
#include <cstdio>

#include "bench_util.h"
#include "proc/syscalls.h"
#include "proc/table.h"
#include "trace/analysis.h"
#include "util/stats.h"

using sprite::core::SpriteCluster;
using sprite::proc::Action;
using sprite::proc::ScriptBuilder;
using sprite::proc::ScriptProgram;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

// Runs a program that repeats `action` `reps` times with timestamps, either
// at home or migrated to another host; returns mean per-call latency in ms.
// With `traced`, event tracing is on for the run and `post` sees the cluster
// (and its span data) before teardown.
double measure_call(
    bool remote, const std::function<Action()>& make_action, int reps,
    bool traced = false,
    const std::function<void(SpriteCluster&)>& post = {}) {
  SpriteCluster cluster({.workstations = 3, .seed = 41});
  if (traced) bench::arm_trace(cluster, "", /*force=*/true);
  auto* server = cluster.kernel().file_server().fs_server();
  server->create_file("/calldata", 64 * 1024);

  std::vector<ScriptProgram::Step> steps;
  // 0: open a file (for the I/O calls) and note the start time.
  steps.push_back([](ScriptProgram::Ctx&) -> Action {
    return sprite::proc::SysOpen{"/calldata",
                                 sprite::fs::OpenFlags::read_write()};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    c.locals["fd"] = c.view->rv;
    return sprite::proc::Pause{Time::sec(1)};  // migration happens here
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    (void)c;
    return sprite::proc::SysGetTime{};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    c.locals["t0"] = c.view->rv;
    return sprite::proc::Compute{Time::zero()};
  });
  // 4: the measured loop.
  const int loop_head = 4;
  steps.push_back([make_action, reps](ScriptProgram::Ctx& c) -> Action {
    if (c.locals["i"]++ < reps) {
      c.jump(loop_head);
      return make_action();
    }
    return sprite::proc::SysGetTime{};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    c.locals["t1"] = c.view->rv;
    return sprite::proc::SysOpen{"/times", sprite::fs::OpenFlags::create_rw()};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    c.locals["tfd"] = c.view->rv;
    const std::string line = std::to_string(c.locals["t0"]) + " " +
                             std::to_string(c.locals["t1"]);
    return sprite::proc::SysWrite{static_cast<int>(c.locals["tfd"]),
                                  sprite::fs::Bytes(line.begin(), line.end()),
                                  0};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    return sprite::proc::SysFsync{static_cast<int>(c.locals["tfd"])};
  });
  steps.push_back([](ScriptProgram::Ctx&) -> Action {
    return sprite::proc::SysExit{0};
  });
  auto program = std::make_shared<std::vector<ScriptProgram::Step>>(steps);

  sprite::proc::ProgramImage image;
  image.code_pages = 8;
  image.heap_pages = 8;
  image.stack_pages = 2;
  image.factory = [program](const std::vector<std::string>&) {
    return std::make_unique<ScriptProgram>(
        std::vector<ScriptProgram::Step>(*program));
  };
  cluster.install_program("/bin/caller", image);

  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/caller", {});
  cluster.run_for(Time::msec(300));
  if (remote) SPRITE_CHECK(cluster.migrate(pid, cluster.workstation(1)).is_ok());

  cluster.wait(pid);
  // The program wrote "t0 t1" (microseconds) to /times.
  auto st = server->stat_path("/times");
  SPRITE_CHECK(st.is_ok());
  auto data = server->read_direct(st->id, 0, st->size);
  SPRITE_CHECK(data.is_ok());
  std::int64_t t0 = 0, t1 = 0;
  std::sscanf(std::string(data->begin(), data->end()).c_str(),
              "%lld %lld", reinterpret_cast<long long*>(&t0),
              reinterpret_cast<long long*>(&t1));
  if (post) post(cluster);
  return static_cast<double>(t1 - t0) / 1000.0 / reps;
}

// Decomposes one forwarded kernel call (the last "call proc" RPC the
// migrated process issued from its current host) via the causal span tree:
// client-side self-time is wire + stub overhead, the serve span is the home
// machine's handler, anything deeper is the handler's own dependencies.
void print_forwarded_breakdown(SpriteCluster& cluster,
                               const std::string& trace_path,
                               const std::string& metrics_path) {
  namespace an = sprite::trace::analysis;
  const auto& ev = cluster.sim().trace().events();
  // The forwarded call inherits the migration's trace when ambient context
  // survived the resume; otherwise its spans carry trace id 0 but are still
  // parent-linked through the RPC wire context. Search both.
  std::vector<std::uint64_t> ids = an::trace_ids(ev);
  ids.push_back(0);
  for (std::uint64_t id : ids) {
    const an::SpanTree t = an::build_tree(ev, id);
    const an::Span* call = nullptr;
    for (const an::Span& s : t.spans)
      if (s.cat == "rpc" && s.name == "call proc" &&
          s.host == cluster.workstation(1))
        call = &s;
    if (call == nullptr) continue;

    const auto path = an::critical_path(t, call->id);
    std::printf(
        "\nforwarded call critical path (gethostname from the remote "
        "host):\n");
    Table bt({"where time went (cat/name)", "ms", "% of call"});
    const auto total = static_cast<double>(call->duration_us());
    for (const an::LabelTime& lt : an::self_time_by_label(t, path)) {
      bt.add_row({lt.label, Table::num(static_cast<double>(lt.us) / 1000.0, 3),
                  Table::num(total > 0 ? 100.0 * lt.us / total : 0.0, 1)});
    }
    bt.add_row({"total (client call span)", Table::num(total / 1000.0, 3),
                "100.0"});
    bt.print();
    // The home machine's handler is a child serve span; when it rounds to
    // zero the whole cost is wire + stub overhead, worth saying out loud.
    for (std::size_t c : call->children) {
      const an::Span& ch = t.spans[c];
      if (ch.cat != "rpc" || ch.name.rfind("serve ", 0) != 0) continue;
      std::printf("  home-machine handler (%s): %.3f ms — the remainder is "
                  "kernel-to-kernel RPC wire + stub time\n",
                  ch.name.c_str(),
                  static_cast<double>(ch.duration_us()) / 1000.0);
      break;
    }
    break;
  }
  if (!trace_path.empty()) bench::finish_trace(cluster, trace_path);
  bench::write_metrics(cluster, metrics_path);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_out_arg(argc, argv);
  const std::string metrics_path = bench::metrics_out_arg(argc, argv);
  bench::header(
      "E9: kernel-call handling after migration (bench_forwarding)",
      "transferred-state calls stay fast; forwarded-home calls each pay an "
      "RPC to the home machine");

  struct Case {
    const char* name;
    const char* handling;
    std::function<Action()> make;
  };
  const std::vector<Case> cases = {
      {"getpid", "transferred-state",
       [] { return Action{sprite::proc::SysGetPid{}}; }},
      {"gettimeofday", "local",
       [] { return Action{sprite::proc::SysGetTime{}}; }},
      {"read 4KB (cached)", "transferred-state",
       [] {
         return Action{sprite::proc::SysSeek{3, 0}};
       }},
      {"gethostname", "FORWARDED HOME",
       [] { return Action{sprite::proc::SysGetHostName{}}; }},
  };

  Table t({"kernel call", "Appendix-A class", "at home (ms)",
           "migrated (ms)", "remote/home ratio"});
  for (const auto& c : cases) {
    const double home_ms = measure_call(false, c.make, 200);
    const double away_ms = measure_call(true, c.make, 200);
    t.add_row({c.name, c.handling, Table::num(home_ms, 3),
               Table::num(away_ms, 3),
               Table::num(home_ms > 0 ? away_ms / home_ms : 0, 1) + "x"});
  }
  t.print();

  std::printf("\nAppendix A reproduction — the full 4.3BSD call list and how "
              "each call is handled for a remote process:\n");
  Table dt({"call", "handling", "in sim", "why"});
  for (const auto& e : sprite::proc::appendix_a()) {
    dt.add_row({e.name, sprite::proc::handling_name(e.handling),
                e.implemented ? "yes" : "-", e.note});
  }
  dt.print();

  // Where a forwarded call's milliseconds actually go, from the causal
  // trace: one traced run, decomposed by critical path.
  measure_call(true,
               [] { return Action{sprite::proc::SysGetHostName{}}; }, 50,
               /*traced=*/true, [&](SpriteCluster& cluster) {
                 print_forwarded_breakdown(cluster, trace_path, metrics_path);
               });

  bench::footnote(
      "Shape check: only the forwarded call pays a multi-millisecond RPC\n"
      "penalty when remote; everything executed from transferred state runs\n"
      "at the same speed on either host.");
  return 0;
}
