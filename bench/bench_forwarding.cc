// E9 — kernel-call handling for remote processes (thesis §4.3, Appendix A).
//
// Paper: transferred-state calls (file I/O, getpid) run at local speed on
// the current host after migration; forwarded calls (gethostname, wait,
// process-family operations) each pay a kernel-to-kernel RPC to the home
// machine (~1-2 ms) — which is why Sprite migrates state instead of
// forwarding everything, unlike Remote UNIX.
#include <cstdio>

#include "bench_util.h"
#include "proc/syscalls.h"
#include "proc/table.h"
#include "util/stats.h"

using sprite::core::SpriteCluster;
using sprite::proc::Action;
using sprite::proc::ScriptBuilder;
using sprite::proc::ScriptProgram;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

// Runs a program that repeats `action` `reps` times with timestamps, either
// at home or migrated to another host; returns mean per-call latency in ms.
double measure_call(bool remote, const std::function<Action()>& make_action,
                    int reps) {
  SpriteCluster cluster({.workstations = 3, .seed = 41});
  auto* server = cluster.kernel().file_server().fs_server();
  server->create_file("/calldata", 64 * 1024);

  std::vector<ScriptProgram::Step> steps;
  // 0: open a file (for the I/O calls) and note the start time.
  steps.push_back([](ScriptProgram::Ctx&) -> Action {
    return sprite::proc::SysOpen{"/calldata",
                                 sprite::fs::OpenFlags::read_write()};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    c.locals["fd"] = c.view->rv;
    return sprite::proc::Pause{Time::sec(1)};  // migration happens here
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    (void)c;
    return sprite::proc::SysGetTime{};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    c.locals["t0"] = c.view->rv;
    return sprite::proc::Compute{Time::zero()};
  });
  // 4: the measured loop.
  const int loop_head = 4;
  steps.push_back([make_action, reps](ScriptProgram::Ctx& c) -> Action {
    if (c.locals["i"]++ < reps) {
      c.jump(loop_head);
      return make_action();
    }
    return sprite::proc::SysGetTime{};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    c.locals["t1"] = c.view->rv;
    return sprite::proc::SysOpen{"/times", sprite::fs::OpenFlags::create_rw()};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    c.locals["tfd"] = c.view->rv;
    const std::string line = std::to_string(c.locals["t0"]) + " " +
                             std::to_string(c.locals["t1"]);
    return sprite::proc::SysWrite{static_cast<int>(c.locals["tfd"]),
                                  sprite::fs::Bytes(line.begin(), line.end()),
                                  0};
  });
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    return sprite::proc::SysFsync{static_cast<int>(c.locals["tfd"])};
  });
  steps.push_back([](ScriptProgram::Ctx&) -> Action {
    return sprite::proc::SysExit{0};
  });
  auto program = std::make_shared<std::vector<ScriptProgram::Step>>(steps);

  sprite::proc::ProgramImage image;
  image.code_pages = 8;
  image.heap_pages = 8;
  image.stack_pages = 2;
  image.factory = [program](const std::vector<std::string>&) {
    return std::make_unique<ScriptProgram>(
        std::vector<ScriptProgram::Step>(*program));
  };
  cluster.install_program("/bin/caller", image);

  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/caller", {});
  cluster.run_for(Time::msec(300));
  if (remote) SPRITE_CHECK(cluster.migrate(pid, cluster.workstation(1)).is_ok());

  cluster.wait(pid);
  // The program wrote "t0 t1" (microseconds) to /times.
  auto st = server->stat_path("/times");
  SPRITE_CHECK(st.is_ok());
  auto data = server->read_direct(st->id, 0, st->size);
  SPRITE_CHECK(data.is_ok());
  std::int64_t t0 = 0, t1 = 0;
  std::sscanf(std::string(data->begin(), data->end()).c_str(),
              "%lld %lld", reinterpret_cast<long long*>(&t0),
              reinterpret_cast<long long*>(&t1));
  return static_cast<double>(t1 - t0) / 1000.0 / reps;
}

}  // namespace

int main() {
  bench::header(
      "E9: kernel-call handling after migration (bench_forwarding)",
      "transferred-state calls stay fast; forwarded-home calls each pay an "
      "RPC to the home machine");

  struct Case {
    const char* name;
    const char* handling;
    std::function<Action()> make;
  };
  const std::vector<Case> cases = {
      {"getpid", "transferred-state",
       [] { return Action{sprite::proc::SysGetPid{}}; }},
      {"gettimeofday", "local",
       [] { return Action{sprite::proc::SysGetTime{}}; }},
      {"read 4KB (cached)", "transferred-state",
       [] {
         return Action{sprite::proc::SysSeek{3, 0}};
       }},
      {"gethostname", "FORWARDED HOME",
       [] { return Action{sprite::proc::SysGetHostName{}}; }},
  };

  Table t({"kernel call", "Appendix-A class", "at home (ms)",
           "migrated (ms)", "remote/home ratio"});
  for (const auto& c : cases) {
    const double home_ms = measure_call(false, c.make, 200);
    const double away_ms = measure_call(true, c.make, 200);
    t.add_row({c.name, c.handling, Table::num(home_ms, 3),
               Table::num(away_ms, 3),
               Table::num(home_ms > 0 ? away_ms / home_ms : 0, 1) + "x"});
  }
  t.print();

  std::printf("\nAppendix A reproduction — the full 4.3BSD call list and how "
              "each call is handled for a remote process:\n");
  Table dt({"call", "handling", "in sim", "why"});
  for (const auto& e : sprite::proc::appendix_a()) {
    dt.add_row({e.name, sprite::proc::handling_name(e.handling),
                e.implemented ? "yes" : "-", e.note});
  }
  dt.print();

  bench::footnote(
      "Shape check: only the forwarded call pays a multi-millisecond RPC\n"
      "penalty when remote; everything executed from transferred state runs\n"
      "at the same speed on either host.");
  return 0;
}
