// Ablation — splitting the namespace across two file servers
// (thesis ch. 9: "It would be edifying to expand Sprite ... and to evaluate
// how the file system ... [is] stressed"; Welch's thesis discusses servers
// handling many more clients).
//
// The E3 compile workload reruns with the shared headers exported by a
// second file server: per-open name lookups split across two CPUs, so the
// single-server saturation point moves out — an alternative cure to client
// name caching (E12) for the same bottleneck.
#include <cstdio>

#include "bench_util.h"

using sprite::apps::make_compile_graph_at;
using sprite::core::SpriteCluster;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

struct Point {
  double speedup;
  double s0_util;
  double s1_util;
};

Point run(int hosts, int servers, double serial_s) {
  SpriteCluster cluster({.workstations = hosts + 1,
                         .file_servers = servers,
                         .seed = 33});
  const std::string header_root = servers > 1 ? "/s1" : "";
  if (servers > 1)
    SPRITE_CHECK(cluster.kernel().file_server(1).fs_server()->mkdir_p("/s1").is_ok());
  auto graph =
      make_compile_graph_at(48, 28, Time::sec(4), Time::sec(6), header_root);
  cluster.warm_up();
  const Time t0 = cluster.sim().now();
  auto r = bench::run_pmake(cluster, graph, hosts + 1, true);
  const Time t1 = cluster.sim().now();
  Point p;
  p.speedup = serial_s / r.makespan.s();
  p.s0_util = cluster.kernel().file_server(0).cpu().busy_time(
                  sprite::sim::JobClass::kKernel) /
              (t1 - t0 + Time::usec(1));
  p.s1_util = servers > 1
                  ? cluster.kernel().file_server(1).cpu().busy_time(
                        sprite::sim::JobClass::kKernel) /
                        (t1 - t0 + Time::usec(1))
                  : 0.0;
  return p;
}

}  // namespace

int main() {
  bench::header(
      "Ablation: one vs two file servers (bench_two_servers)",
      "splitting name-lookup load across servers moves the pmake saturation "
      "point out (thesis ch. 9 scaling direction)");

  // Serial baseline (single server, single host).
  double serial_s;
  {
    SpriteCluster cluster({.workstations = 2, .seed = 33});
    serial_s = bench::run_pmake(
                   cluster,
                   make_compile_graph_at(48, 28, Time::sec(4), Time::sec(6),
                                         ""),
                   1, false)
                   .makespan.s();
  }

  Table t({"hosts", "servers", "speedup", "server0 util", "server1 util"});
  for (int hosts : {8, 12, 16}) {
    auto one = run(hosts, 1, serial_s);
    auto two = run(hosts, 2, serial_s);
    t.add_row({std::to_string(hosts), "1", Table::num(one.speedup, 2),
               Table::num(one.s0_util, 2), "-"});
    t.add_row({std::to_string(hosts), "2", Table::num(two.speedup, 2),
               Table::num(two.s0_util, 2), Table::num(two.s1_util, 2)});
  }
  t.print();

  bench::footnote(
      "Shape check: source/output traffic moves off the header server and\n"
      "the speedup curve climbs higher before bending — but only as far as\n"
      "the namespace split balances the load: the header server becomes the\n"
      "next bottleneck (its utilization matches the old single server's).\n"
      "Client name caching (E12) attacks the same bottleneck from the other\n"
      "side and composes with this.");
  return 0;
}
