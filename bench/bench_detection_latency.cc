// Detection latency of the in-protocol host monitor (src/recov/).
//
// Sprite's recovery module trades background echo traffic for detection
// speed: a shorter echo interval notices a dead or partitioned peer sooner
// but costs more probes per second cluster-wide. This harness measures, as
// a function of the echo interval: (a) time from a silent partition to the
// observer's down verdict (suspicion must age recov_down_after before the
// verdict — detection is never free), (b) time from a crash+fast-reboot to
// the epoch-jump reboot notification, and (c) time from a heal to
// reintegration of a peer previously declared down.
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "recov/monitor.h"
#include "sim/network.h"

using sprite::core::SpriteCluster;
using sprite::recov::PeerState;
using sprite::sim::HostId;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

struct Sample {
  double down_ms = -1;         // partition start -> down verdict
  double reboot_detect_ms = -1;  // crash -> rebooted observer fired
  double reintegrate_ms = -1;  // heal -> reintegrated observer fired
  double echoes_per_min = 0;   // observer-side probe cost while watching
};

void cut_pair(SpriteCluster& c, HostId a, HostId b, bool up) {
  c.kernel().net().set_link_up(a, b, up);
  c.kernel().net().set_link_up(b, a, up);
}

// Advances until `pred` or the deadline; returns elapsed ms or -1.
double advance_until(SpriteCluster& c, Time deadline,
                     const std::function<bool()>& pred) {
  const Time t0 = c.sim().now();
  while (c.sim().now() < deadline) {
    if (pred()) return (c.sim().now() - t0).ms();
    c.run_for(Time::msec(100));
  }
  return pred() ? (c.sim().now() - t0).ms() : -1;
}

Sample measure(Time echo_interval) {
  SpriteCluster::Options opts;
  opts.workstations = 2;
  opts.enable_load_sharing = false;
  opts.seed = 31;
  opts.costs.recov_echo_interval = echo_interval;
  SpriteCluster cluster(opts);
  const HostId a = cluster.workstation(0);
  const HostId b = cluster.workstation(1);
  auto& mon = cluster.host(a).monitor();

  // A standing dependency of a on b, as a subsystem would register it.
  mon.add_interest_provider(
      [b](std::vector<HostId>& out) { out.push_back(b); });
  bool rebooted = false, reintegrated = false;
  mon.add_peer_rebooted_observer([&](HostId p) { rebooted |= (p == b); });
  mon.add_peer_reintegrated_observer(
      [&](HostId p) { reintegrated |= (p == b); });

  Sample s;

  // Probe cost while simply watching a healthy peer.
  cluster.run_for(Time::sec(10));  // settle: first contact, epoch learned
  const auto echoes0 =
      cluster.sim().trace().counter("recov.echo.sent", a).value();
  cluster.run_for(Time::sec(60));
  s.echoes_per_min = static_cast<double>(
      cluster.sim().trace().counter("recov.echo.sent", a).value() - echoes0);

  // (a) Silent partition -> down verdict.
  cut_pair(cluster, a, b, false);
  s.down_ms = advance_until(
      cluster, cluster.sim().now() + Time::sec(120),
      [&] { return mon.peer_state(b) == PeerState::kDown; });

  // (c) Heal -> reintegration. Down peers are not probed, so re-detection
  // rides on traffic: issue one call (single doubtful attempt) to the peer.
  cut_pair(cluster, a, b, true);
  cluster.host(a).rpc().call(b, sprite::rpc::ServiceId::kRecov, 0, nullptr,
                             [](sprite::util::Result<sprite::rpc::Reply>) {});
  s.reintegrate_ms = advance_until(
      cluster, cluster.sim().now() + Time::sec(60),
      [&] { return reintegrated; });

  // (b) Crash + fast reboot -> epoch-jump detection.
  cluster.run_for(Time::sec(5));
  cluster.kernel().crash_host(b);
  const Time crashed_at = cluster.sim().now();
  cluster.sim().after(Time::sec(1),
                      [&] { cluster.kernel().reboot_host(b); });
  const double d = advance_until(cluster, crashed_at + Time::sec(120),
                                 [&] { return rebooted; });
  s.reboot_detect_ms = d;
  return s;
}

}  // namespace

int main() {
  bench::header(
      "Detection latency vs. echo interval (bench_detection_latency)",
      "shorter echo intervals buy faster down/reboot verdicts at the cost "
      "of background probe traffic; suspicion always ages recov_down_after "
      "before a down verdict");

  Table t({"echo interval s", "down verdict s", "reboot detect s",
           "reintegrate s", "echoes/min watching"});
  for (double sec : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const Sample s = measure(Time::sec(sec));
    t.add_row({Table::num(sec, 1), Table::num(s.down_ms / 1000.0, 2),
               Table::num(s.reboot_detect_ms / 1000.0, 2),
               Table::num(s.reintegrate_ms / 1000.0, 2),
               Table::num(s.echoes_per_min, 0)});
  }
  t.print();

  bench::footnote(
      "down verdict ~= first missed echo + recov_down_after; reboot detect "
      "~= reboot delay (1 s) + one echo interval; reintegration is driven "
      "by the first post-heal message, not by probing (down peers are not "
      "echoed).");
  return 0;
}
