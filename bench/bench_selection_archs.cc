// E6 — host-selection architecture comparison (thesis Table 6.2, §6.3).
//
// Paper conclusions:
//   central server — fast, authoritative (no double grants), scales to
//                    thousands of hosts when updates come only from idle
//                    hosts [TL88]; single point of failure.
//   shared file    — simple but slow (uncacheable file traffic on every
//                    request) and racy; Sprite abandoned it.
//   probabilistic  — no central state, but stale vectors grant busy hosts.
//   multicast      — stateless and cheap per request, but every host pays
//                    for every query; scales to a few hundred hosts at most.
#include <cstdio>

#include "bench_util.h"
#include "loadshare/facility.h"
#include "util/stats.h"

using sprite::core::SpriteCluster;
using sprite::ls::Arch;
using sprite::sim::HostId;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

struct ArchResult {
  double median_ms = 0;
  double grants_per_req = 0;
  std::int64_t bad_grants = 0;
  double msgs_per_request = 0;
  double net_util = 0;
};

ArchResult run_arch(Arch arch, int workstations, int requesters,
                    int requests_each) {
  SpriteCluster cluster({.workstations = workstations,
                         .seed = 29,
                         .selection = arch,
                         .horizon = Time::hours(4)});
  cluster.warm_up();

  sprite::util::Distribution latency;
  std::int64_t total_grants = 0;
  cluster.kernel().net().reset_stats();
  const std::int64_t msgs_before = cluster.kernel().net().messages_sent();

  int total_requests = 0;
  for (int round = 0; round < requests_each; ++round) {
    // Churn: a user sits down at one previously-idle workstation right
    // before the requests go out. Architectures with distributed state may
    // still believe it is idle (stale information -> bad grants).
    const int churn_idx =
        requesters + (round % (workstations - requesters));
    cluster.host(cluster.workstation(churn_idx)).note_user_input();
    for (int rq = 0; rq < requesters; ++rq) {
      const HostId who = cluster.workstation(rq);
      const Time t0 = cluster.sim().now();
      // Ask for a batch (as pmake would); wanting many hosts makes the
      // requester walk deep into its candidate list, where stale entries
      // lurk.
      auto hosts = cluster.request_idle_hosts(who, 6);
      latency.add((cluster.sim().now() - t0).ms());
      ++total_requests;
      total_grants += static_cast<std::int64_t>(hosts.size());
      cluster.run_for(Time::msec(500));
      for (auto h : hosts) cluster.release_host(who, h);
      cluster.run_for(Time::msec(500));
    }
  }

  ArchResult r;
  r.median_ms = latency.median();
  r.grants_per_req = static_cast<double>(total_grants) / total_requests;
  r.bad_grants = cluster.load_sharing().aggregate_stats().bad_grants;
  r.msgs_per_request =
      static_cast<double>(cluster.kernel().net().messages_sent() -
                          msgs_before) /
      total_requests;
  r.net_util = cluster.kernel().net().utilization();
  return r;
}

}  // namespace

int main() {
  bench::header(
      "E6: host-selection architectures (bench_selection_archs)",
      "central: fast + authoritative; shared file: slow, racy; "
      "probabilistic: stale grants; multicast: every host pays per query");

  for (int workstations : {12, 40}) {
    std::printf("--- %d workstations, 4 requesters, 5 rounds ---\n",
                workstations);
    // msgs/req counts ALL traffic in the window divided by requests — for
    // the distributed architectures that includes their continuous
    // background cost (gossip, load-file updates), which is exactly the
    // overhead Theimer & Lantz charge them with.
    Table t({"architecture", "median ms", "grants/req", "bad grants",
             "msgs/req (incl. background)"});
    for (Arch arch : {Arch::kCentral, Arch::kSharedFile, Arch::kProbabilistic,
                      Arch::kMulticast}) {
      auto r = run_arch(arch, workstations, 4, 5);
      t.add_row({sprite::ls::arch_name(arch), Table::num(r.median_ms, 1),
                 Table::num(r.grants_per_req, 2), std::to_string(r.bad_grants),
                 Table::num(r.msgs_per_request, 1)});
    }
    t.print();
    std::printf("\n");
  }

  bench::footnote(
      "Shape checks: the central server's latency and message bill stay\n"
      "flat as the cluster grows and it never issues bad grants (its state\n"
      "is authoritative, and hosts announce busy the instant their user\n"
      "returns). The shared file's latency and traffic grow with the file\n"
      "(every request re-reads one uncacheable record per host). The\n"
      "probabilistic architecture decides fastest but pays a continuous\n"
      "gossip bill that dwarfs everything at scale and hands out stale\n"
      "(refused) grants under churn. Multicast pays the responders' backoff\n"
      "window on every request, and every host in the cluster receives\n"
      "every query.");
  return 0;
}
