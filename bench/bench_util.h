// Shared helpers for the experiment harnesses.
//
// Each bench binary reproduces one table or figure from the thesis (see
// DESIGN.md's experiment index): it runs the mechanisms in simulation and
// prints the measured rows next to the values the paper reports. Absolute
// numbers depend on the calibration in sim/costs.h; the claims under test
// are the *shapes* (who wins, by what factor, where curves bend).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/sprite.h"
#include "util/table.h"

namespace bench {

inline void header(const char* experiment, const char* paper_claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==================================================================\n\n");
}

inline void footnote(const char* text) { std::printf("\n%s\n", text); }

// ---- Tracing & metrics export (trace/trace.h) ----
//
// Every bench binary accepts `--trace-out <file>.json`. When given, event
// tracing is enabled on the cluster's simulator, the run's events are written
// as Chrome trace_event JSON (open in Perfetto / chrome://tracing — causal
// cross-host edges render as flow arrows), and the metrics table is printed
// at exit. Without the flag, only the always-on counters run.
//
// `--metrics-out <file>.json` independently writes the final metrics
// snapshot (counters/gauges/histograms, deterministic key order) as JSON for
// scripted comparison across runs. Suggested suffixes `*.trace.json` /
// `*.metrics.json` are gitignored.

inline std::string flag_arg(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == flag && i + 1 < argc) return argv[i + 1];
    if (a.rfind(flag + "=", 0) == 0) return a.substr(flag.size() + 1);
  }
  return "";
}

// Returns the --trace-out argument, or "" when absent.
inline std::string trace_out_arg(int argc, char** argv) {
  return flag_arg(argc, argv, "--trace-out");
}

// Returns the --metrics-out argument, or "" when absent.
inline std::string metrics_out_arg(int argc, char** argv) {
  return flag_arg(argc, argv, "--metrics-out");
}

// Call after constructing the cluster, before running the workload. `force`
// enables tracing even without an output path — for benches that analyse
// the span tree in-process (critical-path breakdowns).
inline void arm_trace(sprite::core::SpriteCluster& cluster,
                      const std::string& path, bool force = false) {
  if (path.empty() && !force) return;
  sprite::trace::Registry& tr = cluster.sim().trace();
  tr.set_tracing(true);
  for (std::size_t h = 0; h < cluster.kernel().num_hosts(); ++h) {
    auto id = static_cast<sprite::sim::HostId>(h);
    tr.set_host_name(id, cluster.kernel().host(id).name());
  }
}

// Writes the metrics snapshot as JSON when a --metrics-out path was given.
inline void write_metrics(sprite::core::SpriteCluster& cluster,
                          const std::string& path) {
  if (path.empty()) return;
  const sprite::util::Status s =
      cluster.sim().trace().write_metrics_json(path);
  if (s.is_ok())
    std::printf("\nmetrics: -> %s\n", path.c_str());
  else
    std::printf("\nmetrics: write failed: %s\n", s.to_string().c_str());
}

// Call after the workload finishes: writes the trace JSON (when a path was
// given) and prints the metrics table.
inline void finish_trace(sprite::core::SpriteCluster& cluster,
                         const std::string& path) {
  sprite::trace::Registry& tr = cluster.sim().trace();
  if (!path.empty()) {
    const sprite::util::Status s = tr.write_chrome_json(path);
    if (s.is_ok()) {
      std::printf("\ntrace: %zu events -> %s\n", tr.events().size(),
                  path.c_str());
    } else {
      std::printf("\ntrace: write failed: %s\n", s.to_string().c_str());
    }
  }
  std::printf("\n-- metrics --\n%s", tr.metrics_report().c_str());
}

// Blocking pmake run.
inline sprite::apps::Pmake::Result run_pmake(
    sprite::core::SpriteCluster& cluster,
    std::vector<sprite::apps::Target> targets, int max_jobs, bool parallel) {
  sprite::apps::Pmake::Options opt;
  opt.controller = cluster.workstation(0);
  opt.max_jobs = max_jobs;
  opt.facility = parallel ? &cluster.load_sharing() : nullptr;
  sprite::apps::Pmake pmake(cluster.kernel(), opt, std::move(targets));
  pmake.prepare();
  bool done = false;
  sprite::apps::Pmake::Result result;
  pmake.run([&](sprite::apps::Pmake::Result r) {
    result = r;
    done = true;
  });
  cluster.kernel().run_until_done([&] { return done; });
  return result;
}

}  // namespace bench
