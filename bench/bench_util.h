// Shared helpers for the experiment harnesses.
//
// Each bench binary reproduces one table or figure from the thesis (see
// DESIGN.md's experiment index): it runs the mechanisms in simulation and
// prints the measured rows next to the values the paper reports. Absolute
// numbers depend on the calibration in sim/costs.h; the claims under test
// are the *shapes* (who wins, by what factor, where curves bend).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/sprite.h"
#include "util/table.h"

namespace bench {

inline void header(const char* experiment, const char* paper_claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==================================================================\n\n");
}

inline void footnote(const char* text) { std::printf("\n%s\n", text); }

// Blocking pmake run.
inline sprite::apps::Pmake::Result run_pmake(
    sprite::core::SpriteCluster& cluster,
    std::vector<sprite::apps::Target> targets, int max_jobs, bool parallel) {
  sprite::apps::Pmake::Options opt;
  opt.controller = cluster.workstation(0);
  opt.max_jobs = max_jobs;
  opt.facility = parallel ? &cluster.load_sharing() : nullptr;
  sprite::apps::Pmake pmake(cluster.kernel(), opt, std::move(targets));
  pmake.prepare();
  bool done = false;
  sprite::apps::Pmake::Result result;
  pmake.run([&](sprite::apps::Pmake::Result r) {
    result = r;
    done = true;
  });
  cluster.kernel().run_until_done([&] { return done; });
  return result;
}

}  // namespace bench
