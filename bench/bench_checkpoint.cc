// E15 — checkpoint/restart cost scaling and the checkpoint-vs-migration
// tradeoff (extends the thesis beyond [DO91]: Sprite itself had no
// checkpointing; the image format reuses the migration encapsulation and
// the shared-FS recovery machinery).
//
// Claims under test:
//   1. A full base checkpoint costs O(resident pages); an *incremental*
//      checkpoint costs O(pages dirtied since the last capture), not
//      O(address-space size). Scaling the dirty set scales the increment;
//      scaling the address space does not.
//   2. Eviction by checkpoint-and-depart frees the workstation without
//      consuming cycles on any other host immediately, at the price of a
//      restart later; eviction by migration pays the transfer up front.
//   3. After a host crash, a checkpointed process restarts elsewhere in
//      detection time (~recov_down_after) plus a restore that costs
//      O(chain pages) — an outcome migration alone cannot provide at all.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "ckpt/manager.h"
#include "proc/table.h"

using sprite::core::SpriteCluster;
using sprite::proc::Pid;
using sprite::proc::ScriptBuilder;
using sprite::sim::HostId;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

// Blocks until a checkpoint of `pid` (resident on `h`) commits; returns the
// simulated capture latency in milliseconds.
double checkpoint_ms(SpriteCluster& cluster, HostId h, Pid pid) {
  auto pcb = cluster.host(h).procs().find(pid);
  if (!pcb) return -1.0;
  const Time t0 = cluster.sim().now();
  bool done = false;
  sprite::util::Status st(sprite::util::Err::kAgain);
  cluster.host(h).ckpt().checkpoint(pcb, [&](sprite::util::Status s) {
    st = s;
    done = true;
  });
  cluster.kernel().run_until_done([&] { return done; });
  if (!st.is_ok()) return -1.0;
  return (cluster.sim().now() - t0).ms();
}

// One capture-scaling run: a process touches `total` heap pages, takes a
// full base, dirties `dirty` pages, takes an increment. Returns both
// latencies.
struct CaptureCost {
  double full_ms = 0;
  double incr_ms = 0;
};

CaptureCost capture_cost(std::int64_t total, std::int64_t dirty) {
  SpriteCluster cluster({.workstations = 2, .seed = 11,
                         .enable_load_sharing = false});
  ScriptBuilder b;
  b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, total, true})
      .compute(Time::sec(5))
      .act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, dirty, true})
      .compute(Time::minutes(10))
      .exit(0);
  cluster.install_program("/bin/w", b.image(8, total, 2));

  const HostId ws = cluster.workstation(0);
  const Pid pid = cluster.spawn(ws, "/bin/w", {});
  cluster.run_for(Time::sec(2));  // first touch done, second not yet

  CaptureCost out;
  out.full_ms = checkpoint_ms(cluster, ws, pid);
  cluster.run_for(Time::sec(6));  // past the dirtying touch
  out.incr_ms = checkpoint_ms(cluster, ws, pid);
  return out;
}

// Eviction comparison: a foreign process with `dirty_pages` of dirty heap is
// evicted either by migration home or by checkpoint-and-depart. Returns the
// simulated time the eviction took on the evicting host.
double evict_ms(std::int64_t dirty_pages, bool via_checkpoint) {
  SpriteCluster cluster({.workstations = 3, .seed = 23,
                         .enable_load_sharing = false});
  ScriptBuilder b;
  b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, dirty_pages, true})
      .compute(Time::minutes(10))
      .exit(0);
  cluster.install_program("/bin/w", b.image(8, dirty_pages, 2));

  const HostId home = cluster.workstation(0);
  const HostId runner = cluster.workstation(1);
  const Pid pid = cluster.spawn(home, "/bin/w", {});
  cluster.run_for(Time::msec(200));
  if (!cluster.migrate(pid, runner).is_ok()) return -1.0;
  cluster.run_for(Time::sec(3));  // the touch lands on the runner

  cluster.host(runner).ckpt().set_evict_via_checkpoint(via_checkpoint);
  const Time t0 = cluster.sim().now();
  cluster.evict(runner);
  return (cluster.sim().now() - t0).ms();
}

// Crash recovery: checkpoint on the runner, crash it, measure from the crash
// to the process resuming on another host.
struct RecoveryCost {
  double detect_and_restart_ms = 0;
  std::int64_t pages_restored = 0;
  bool recovered = false;
};

RecoveryCost crash_recovery(std::int64_t pages) {
  SpriteCluster cluster({.workstations = 3, .seed = 31,
                         .enable_load_sharing = false});
  ScriptBuilder b;
  b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, pages, true})
      .compute(Time::minutes(10))
      .exit(0);
  cluster.install_program("/bin/w", b.image(8, pages, 2));

  const HostId home = cluster.workstation(0);
  const HostId runner = cluster.workstation(1);
  const Pid pid = cluster.spawn(home, "/bin/w", {});
  cluster.run_for(Time::msec(200));
  if (!cluster.migrate(pid, runner).is_ok()) return {};
  cluster.run_for(Time::sec(3));
  if (checkpoint_ms(cluster, runner, pid) < 0) return {};
  // Registration with the home's restart table is asynchronous and
  // best-effort; give it a beat before pulling the plug.
  cluster.run_for(Time::msec(500));

  const Time t0 = cluster.sim().now();
  cluster.kernel().crash_host(runner);
  RecoveryCost out;
  auto restarted = [&] {
    for (int i = 0; i < cluster.num_workstations(); ++i) {
      const HostId h = cluster.workstation(i);
      if (h == runner) continue;
      if (cluster.host(h).ckpt().stats().restarts > 0) return true;
    }
    return false;
  };
  for (int tick = 0; tick < 600 && !restarted(); ++tick)
    cluster.run_for(Time::msec(100));
  out.recovered = restarted();
  out.detect_and_restart_ms = (cluster.sim().now() - t0).ms();
  for (int i = 0; i < cluster.num_workstations(); ++i)
    out.pages_restored +=
        cluster.host(cluster.workstation(i)).ckpt().stats().pages_restored;
  cluster.kernel().reboot_host(runner);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header(
      "E15: checkpoint/restart — incremental cost scaling, eviction and "
      "crash recovery vs migration",
      "incremental checkpoints cost O(dirty pages); checkpoint gives "
      "crash recovery migration cannot");

  std::printf("-- capture cost vs dirty set (total = 1024 pages / 4 MB) --\n");
  {
    Table t({"dirty pages", "full base (ms)", "increment (ms)"});
    for (std::int64_t dirty : {8LL, 32LL, 128LL, 512LL}) {
      const auto c = capture_cost(1024, dirty);
      t.add_row({std::to_string(dirty), Table::num(c.full_ms, 1),
             Table::num(c.incr_ms, 1)});
    }
    t.print();
  }

  std::printf(
      "\n-- capture cost vs address-space size (dirty set fixed at 32) --\n");
  {
    Table t({"total pages", "full base (ms)", "increment (ms)"});
    for (std::int64_t total : {256LL, 512LL, 1024LL, 2048LL}) {
      const auto c = capture_cost(total, 32);
      t.add_row({std::to_string(total), Table::num(c.full_ms, 1),
             Table::num(c.incr_ms, 1)});
    }
    t.print();
  }

  std::printf("\n-- eviction: migrate home vs checkpoint-and-depart --\n");
  {
    Table t({"dirty pages", "migrate (ms)", "ckpt+depart (ms)"});
    for (std::int64_t dirty : {256LL, 1024LL}) {
      t.add_row({std::to_string(dirty), Table::num(evict_ms(dirty, false), 1),
             Table::num(evict_ms(dirty, true), 1)});
    }
    t.print();
  }

  std::printf("\n-- crash recovery from checkpoint --\n");
  {
    Table t({"image pages", "crash->resumed (ms)", "pages restored",
             "recovered"});
    for (std::int64_t pages : {256LL, 1024LL}) {
      const auto r = crash_recovery(pages);
      t.add_row({std::to_string(pages), Table::num(r.detect_and_restart_ms, 0),
             std::to_string(r.pages_restored), r.recovered ? "yes" : "NO"});
    }
    t.print();
  }

  bench::footnote(
      "Increment latency tracks the dirty set, not the address space; the\n"
      "full-base column tracks total resident pages. Eviction by checkpoint\n"
      "pays image-write time instead of transfer time and leaves nothing\n"
      "behind. Crash->resumed includes the failure-detection window\n"
      "(recov_down_after) before the restore begins.");
  (void)argc;
  (void)argv;
  return 0;
}
