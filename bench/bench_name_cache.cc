// Ablation — client name caching (thesis chapter 9 future work; [Nel88]).
//
// Paper: "In his thesis, Nelson estimated that adding client name caching
// would reduce file server utilization by as much as a factor of two ...
// name caching is imperative if the full benefits of migration are to be
// exploited." This repository implements that future-work optimization; the
// ablation reruns the E3 speedup sweep with it on and off.
#include <cstdio>

#include "bench_util.h"

using sprite::apps::make_compile_graph;
using sprite::core::SpriteCluster;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

struct Point {
  double makespan_s;
  double server_util;
  std::int64_t lookups;
  std::int64_t hinted;
};

Point run(int hosts, bool name_cache, double* serial_out) {
  const auto graph =
      make_compile_graph(48, 28, Time::sec(4), Time::sec(6));
  if (serial_out != nullptr && *serial_out == 0) {
    SpriteCluster serial({.workstations = 2, .seed = 33});
    *serial_out = bench::run_pmake(serial, graph, 1, false).makespan.s();
  }
  SpriteCluster cluster({.workstations = hosts + 1, .seed = 33});
  if (name_cache) {
    for (int i = 0; i < static_cast<int>(cluster.kernel().num_hosts()); ++i)
      cluster.kernel().host(i).fs().enable_name_cache(true);
  }
  cluster.warm_up();
  auto* server = cluster.kernel().file_server().fs_server();
  server->reset_stats();
  const Time t0 = cluster.sim().now();
  auto r = bench::run_pmake(cluster, graph, hosts + 1, true);
  const Time t1 = cluster.sim().now();
  Point p;
  p.makespan_s = r.makespan.s();
  p.server_util = cluster.kernel().file_server().cpu().busy_time(
                      sprite::sim::JobClass::kKernel) /
                  (t1 - t0 + Time::usec(1));
  p.lookups = server->stats().lookup_components;
  p.hinted = server->stats().hinted_opens;
  return p;
}

}  // namespace

int main() {
  bench::header(
      "Ablation: client name caching (bench_name_cache)",
      "Nelson: name caching would cut server utilization up to 2x and is "
      "imperative for migration's full benefit (thesis ch. 9)");

  double serial = 0;
  Table t({"hosts", "name cache", "speedup", "server cpu util",
           "lookup components", "hinted opens"});
  for (int hosts : {4, 8, 12, 16}) {
    auto off = run(hosts, false, &serial);
    auto on = run(hosts, true, &serial);
    t.add_row({std::to_string(hosts), "off",
               Table::num(serial / off.makespan_s, 2),
               Table::num(off.server_util, 2), std::to_string(off.lookups),
               std::to_string(off.hinted)});
    t.add_row({std::to_string(hosts), "ON",
               Table::num(serial / on.makespan_s, 2),
               Table::num(on.server_util, 2), std::to_string(on.lookups),
               std::to_string(on.hinted)});
  }
  t.print();

  bench::footnote(
      "Shape check: with the cache on, repeat opens resolve by inode hint,\n"
      "server lookup work collapses, utilization drops ~2x or more, and the\n"
      "speedup curve keeps climbing where the uncached system saturates —\n"
      "exactly the benefit the thesis predicted for this future work.");
  return 0;
}
