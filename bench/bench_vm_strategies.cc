// E2 — virtual-memory transfer strategies (thesis §4.2.1 / §2.3.3).
//
// Paper claims (qualitative, from the V / Accent / LOCUS / Sprite
// comparison):
//   whole-copy      — freeze time grows linearly with image size (seconds)
//   pre-copy (V)    — freeze shrinks to the final dirty set; total work can
//                     exceed one image (pages re-sent)
//   copy-on-ref     — near-instant resume; residual dependency on the
//                     source for the process's lifetime
//   Sprite flush    — freeze bound by dirty data written to the file
//                     server; no residual dependency; trivial at exec time
#include <cstdio>

#include "bench_util.h"
#include "migration/manager.h"

using sprite::core::SpriteCluster;
using sprite::mig::MigrationRecord;
using sprite::mig::VmStrategy;
using sprite::proc::ScriptBuilder;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

struct Sample {
  MigrationRecord rec;
  std::int64_t remote_faults = 0;  // post-migration copy-on-ref pulls
};

Sample migrate_once(VmStrategy strategy, std::int64_t mb, bool active_writer) {
  SpriteCluster cluster({.workstations = 3, .seed = 9});
  const std::int64_t pages = mb * 256;

  ScriptBuilder b;
  b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, pages, true});
  if (active_writer) {
    // Keep re-dirtying a 10% working set so pre-copy has a moving target.
    for (int i = 0; i < 2000; ++i) {
      b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0,
                                std::max<std::int64_t>(pages / 10, 1), true})
          .compute(Time::msec(50));
    }
  } else {
    b.act(sprite::proc::Pause{Time::hours(1)});
  }
  b.exit(0);
  cluster.install_program("/bin/image", b.image(16, pages, 4));

  cluster.host(cluster.workstation(0)).mig().set_strategy(strategy);
  const auto pid = cluster.spawn(cluster.workstation(0), "/bin/image", {});
  cluster.run_for(Time::sec(10 + mb));  // image dirtied
  auto st = cluster.migrate(pid, cluster.workstation(1));
  SPRITE_CHECK(st.is_ok());

  Sample s;
  s.rec = cluster.host(cluster.workstation(0)).mig().last_record();
  // Touch the whole image on the target to expose demand-paging costs.
  auto pcb = cluster.host(cluster.workstation(1)).procs().find(pid);
  if (pcb && pcb->space) {
    bool done = false;
    cluster.host(cluster.workstation(1))
        .vm()
        .touch(pcb->space, sprite::vm::Segment::kHeap, 0, pages, false,
               [&](sprite::util::Status) { done = true; });
    cluster.kernel().run_until_done([&] { return done; });
    s.remote_faults =
        cluster.host(cluster.workstation(1)).vm().stats().pages_from_remote;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3) {
    // Bisection helper: run a single (strategy, mb) cell.
    const auto strategy = static_cast<VmStrategy>(std::atoi(argv[1]));
    const std::int64_t mb = std::atoll(argv[2]);
    const bool active = strategy == VmStrategy::kPreCopy;
    auto s = migrate_once(strategy, mb, active);
    std::printf("ok freeze=%.1fms total=%.1fms\n", s.rec.freeze_time().ms(),
                s.rec.total_time().ms());
    return 0;
  }
  bench::header(
      "E2: VM transfer strategies vs image size (bench_vm_strategies)",
      "whole-copy freeze grows with the image; pre-copy/C-o-R freeze stays "
      "small; C-o-R leaves residual dependencies; flush pays the server");

  Table t({"strategy", "dirty MB", "freeze ms", "total ms", "pages wired",
           "flushed", "precopy rounds", "CoR pulls"});
  for (VmStrategy strategy :
       {VmStrategy::kWholeCopy, VmStrategy::kPreCopy, VmStrategy::kCopyOnRef,
        VmStrategy::kSpriteFlush}) {
    for (std::int64_t mb : {1, 4, 8, 16}) {
      const bool active = strategy == VmStrategy::kPreCopy;
      auto s = migrate_once(strategy, mb, active);
      t.add_row({sprite::mig::strategy_name(strategy), std::to_string(mb),
                 Table::num(s.rec.freeze_time().ms(), 1),
                 Table::num(s.rec.total_time().ms(), 1),
                 std::to_string(s.rec.pages_moved),
                 std::to_string(s.rec.pages_flushed),
                 std::to_string(s.rec.precopy_rounds),
                 std::to_string(s.remote_faults)});
    }
  }
  t.print();

  bench::footnote(
      "Shape checks: whole-copy and flush freeze times scale ~linearly with\n"
      "the image; pre-copy and copy-on-reference freeze times stay flat.\n"
      "Copy-on-reference defers the cost to CoR pulls from the source\n"
      "(residual dependency); flush defers it to the file server but leaves\n"
      "the source free to forget the process.");
  return 0;
}
