// E3 — pmake speedup vs number of hosts (thesis §7.4.1 figure).
//
// Paper: near-linear speedup for the first few hosts, saturating around
// 4–6x by ~12 hosts for compilations — limited by file-server name lookups
// (no client name caching) plus the serial link step (Amdahl). Roberts &
// Ellis [RE87] saw 6–12x on 15 hosts with the controller's disk as the
// limit; Baalbergen [Baa86] 3.5x on 4 hosts.
#include <cstdio>

#include "bench_util.h"

using sprite::apps::make_compile_graph;
using sprite::core::SpriteCluster;
using sprite::sim::Time;
using sprite::util::Table;

int main() {
  bench::header("E3: pmake speedup vs hosts (bench_pmake_speedup)",
                "speedup climbs near-linearly then saturates around 4-6x by "
                "12 hosts (server name-lookup bound + serial link)");

  // Real compiles opened dozens of headers through deep shared paths; the
  // per-open server lookups are what the thesis blames for the saturation.
  const int kObjects = 48;
  const auto graph = make_compile_graph(kObjects, /*shared_headers=*/28,
                                        /*compile_cpu=*/Time::sec(4),
                                        /*link_cpu=*/Time::sec(6));

  // Serial baseline.
  double serial_s = 0;
  {
    SpriteCluster cluster({.workstations = 2, .seed = 33});
    serial_s = bench::run_pmake(cluster, graph, 1, false).makespan.s();
  }

  Table t({"hosts", "makespan s", "speedup", "remote jobs", "server cpu util",
           "lookups"});
  t.add_row({"1 (serial make)", Table::num(serial_s, 1), "1.00", "0", "-",
             "-"});

  for (int hosts : {2, 4, 6, 8, 12, 16}) {
    SpriteCluster cluster({.workstations = hosts + 1, .seed = 33});
    cluster.warm_up();
    auto* server = cluster.kernel().file_server().fs_server();
    server->reset_stats();
    const Time t0 = cluster.sim().now();
    auto r = bench::run_pmake(cluster, graph, hosts + 1, true);
    const Time t1 = cluster.sim().now();
    const double server_util =
        cluster.kernel().file_server().cpu().busy_time(
            sprite::sim::JobClass::kKernel) /
        (t1 - t0 + Time::usec(1));
    t.add_row({std::to_string(hosts), Table::num(r.makespan.s(), 1),
               Table::num(serial_s / r.makespan.s(), 2),
               std::to_string(r.remote_jobs), Table::num(server_util, 2),
               std::to_string(server->stats().lookup_components)});
  }
  t.print();

  bench::footnote(
      "Shape checks: speedup within ~80% of linear through 4-6 hosts, then\n"
      "bends as the file server's per-open name-lookup CPU saturates and\n"
      "the serial link step dominates (Amdahl). The server-cpu column shows\n"
      "the bottleneck forming.");
  return 0;
}
