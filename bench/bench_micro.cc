// Engine micro-benchmarks (wall-clock, via google-benchmark).
//
// Not a paper reproduction: these measure the simulator substrate itself so
// regressions in the event loop, RPC path, or FS path are visible. All other
// bench binaries report *simulated* time.
#include <benchmark/benchmark.h>

#include "core/sprite.h"
#include "kern/cluster.h"
#include "rpc/rpc.h"
#include "sim/simulator.h"

namespace {

using sprite::sim::Time;

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sprite::sim::Simulator sim;
    for (int i = 0; i < 1000; ++i)
      sim.after(Time::usec(i), [] {});
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_RpcRoundTrips(benchmark::State& state) {
  for (auto _ : state) {
    sprite::kern::Cluster cluster(
        {.num_workstations = 2, .num_file_servers = 1});
    int done = 0;
    for (int i = 0; i < 100; ++i) {
      cluster.host(1).rpc().call(
          2, sprite::rpc::ServiceId::kProc,
          static_cast<int>(sprite::proc::ProcOp::kGetHostName), nullptr,
          [&](sprite::util::Result<sprite::rpc::Reply>) { ++done; });
    }
    cluster.run_until_done([&] { return done == 100; });
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RpcRoundTrips);

void BM_FsCachedReads(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sprite::kern::Cluster cluster(
        {.num_workstations = 1, .num_file_servers = 1});
    cluster.file_server().fs_server()->create_file("/f", 64 * 1024);
    sprite::fs::StreamPtr s;
    bool opened = false;
    cluster.host(1).fs().open("/f", sprite::fs::OpenFlags::read_only(),
                              [&](sprite::util::Result<sprite::fs::StreamPtr> r) {
                                s = *r;
                                opened = true;
                              });
    cluster.run_until_done([&] { return opened; });
    state.ResumeTiming();

    int reads = 0;
    for (int i = 0; i < 200; ++i) {
      cluster.host(1).fs().seek(s, (i % 16) * 4096);
      cluster.host(1).fs().read(s, 4096,
                                [&](sprite::util::Result<sprite::fs::Bytes>) {
                                  ++reads;
                                });
    }
    cluster.run_until_done([&] { return reads == 200; });
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_FsCachedReads);

void BM_ExecTimeMigration(benchmark::State& state) {
  for (auto _ : state) {
    sprite::core::SpriteCluster cluster(
        {.workstations = 3, .enable_load_sharing = false});
    sprite::proc::ScriptBuilder work;
    work.exit(0);
    cluster.install_program("/bin/n", work.image(4, 4, 2));
    sprite::proc::ScriptBuilder launch;
    launch
        .act(sprite::proc::SysMigrateSelf{.target = cluster.workstation(1),
                                          .at_exec = true})
        .act(sprite::proc::SysExec{"/bin/n", {}});
    cluster.install_program("/bin/l", launch.image(4, 4, 2));
    const auto pid = cluster.spawn(cluster.workstation(0), "/bin/l", {});
    cluster.wait(pid);
  }
}
BENCHMARK(BM_ExecTimeMigration);

// ---- Tracing overhead ----
//
// The same RPC workload with event tracing off (the default: every
// instrumentation site is one predictable branch, counters still count) and
// on (spans/instants are recorded). The off/on pair bounds what the
// instrumentation costs a production run: off must track BM_RpcRoundTrips.

void rpc_workload(sprite::kern::Cluster& cluster) {
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    cluster.host(1).rpc().call(
        2, sprite::rpc::ServiceId::kProc,
        static_cast<int>(sprite::proc::ProcOp::kGetHostName), nullptr,
        [&](sprite::util::Result<sprite::rpc::Reply>) { ++done; });
  }
  cluster.run_until_done([&] { return done == 100; });
}

void BM_RpcRoundTripsTracingOff(benchmark::State& state) {
  for (auto _ : state) {
    sprite::kern::Cluster cluster(
        {.num_workstations = 2, .num_file_servers = 1});
    rpc_workload(cluster);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RpcRoundTripsTracingOff);

void BM_RpcRoundTripsTracingOn(benchmark::State& state) {
  for (auto _ : state) {
    sprite::kern::Cluster cluster(
        {.num_workstations = 2, .num_file_servers = 1});
    cluster.sim().trace().set_tracing(true);
    rpc_workload(cluster);
    benchmark::DoNotOptimize(cluster.sim().trace().events().size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RpcRoundTripsTracingOn);

}  // namespace

BENCHMARK_MAIN();
