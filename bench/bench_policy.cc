// E10 — placement vs migration policy (thesis §2.2/§8; [ELZ88] vs [KL88]
// debate, Zhou lifetimes [Zho87]).
//
// Paper positions:
//   Eager/Lazowska/Zahorjan — initial placement captures most of the
//     benefit; migrating active processes adds little.
//   Krueger/Livny — migration helps meaningfully beyond placement.
//   Douglis — with heavy-tailed lifetimes (mean 1.5 s, sd ~19 s), migrating
//     active processes pays only when restricted to long-running processes
//     and when migration overhead is low; exec-time placement is the
//     workhorse; eviction (autonomy), not load balance, is the strongest
//     reason to move active processes.
#include <cstdio>

#include "apps/workload.h"
#include "bench_util.h"

using sprite::apps::PolicyWorkload;
using sprite::core::SpriteCluster;
using sprite::sim::Time;
using sprite::util::Table;

namespace {

PolicyWorkload::Result run_policy(PolicyWorkload::Policy policy,
                                  double rate_hz) {
  SpriteCluster cluster({.workstations = 10,
                         .seed = 47,
                         .horizon = Time::hours(6)});
  cluster.warm_up();
  PolicyWorkload::Options opt;
  opt.policy = policy;
  opt.arrivals_per_host_hz = rate_hz;
  opt.duration = Time::minutes(15);
  PolicyWorkload wl(cluster.kernel(), cluster.load_sharing(), opt);
  return wl.run();
}

}  // namespace

int main() {
  bench::header(
      "E10: placement vs active migration (bench_policy)",
      "exec-time placement captures most of the benefit; migration of "
      "long-running processes adds a further, smaller improvement");

  for (double rate : {0.2, 0.4}) {
    std::printf("--- arrivals: %.1f jobs/s per host, Zhou lifetimes "
                "(mean 1.5 s, sd ~20 s) ---\n",
                rate);
    Table t({"policy", "jobs", "mean resp s", "p95 resp s", "mean slowdown",
             "remote placements", "active migrations"});
    for (auto policy : {PolicyWorkload::Policy::kNone,
                        PolicyWorkload::Policy::kPlacement,
                        PolicyWorkload::Policy::kPlacementPlusMigration}) {
      auto r = run_policy(policy, rate);
      t.add_row({PolicyWorkload::policy_name(policy),
                 std::to_string(r.jobs_finished),
                 Table::num(r.response_s.mean(), 2),
                 Table::num(r.response_s.quantile(0.95), 2),
                 Table::num(r.slowdown.mean(), 2),
                 std::to_string(r.placed_remotely),
                 std::to_string(r.active_migrations)});
    }
    t.print();
    std::printf("\n");
  }

  bench::footnote(
      "Shape checks: local-only suffers badly from heavy-tailed queueing;\n"
      "placement recovers most of the loss; adding active migration of\n"
      "known-long-running processes gives a further, smaller improvement —\n"
      "the resolution the thesis offers to the ELZ/KL debate.");
  return 0;
}
