#include "vm/vm.h"

#include <algorithm>

#include "util/assert.h"
#include "util/log.h"

namespace sprite::vm {

using fs::OpenFlags;
using sim::JobClass;
using sim::Time;
using util::Err;
using util::Status;

const char* segment_name(Segment s) {
  switch (s) {
    case Segment::kCode: return "code";
    case Segment::kHeap: return "heap";
    case Segment::kStack: return "stack";
  }
  return "?";
}

std::int64_t SegmentState::resident_pages() const {
  return std::count(resident.begin(), resident.end(), true);
}

std::int64_t SegmentState::remote_pages() const {
  return std::count(in_remote.begin(), in_remote.end(), true);
}

std::int64_t SegmentState::dirty_pages() const {
  return std::count(dirty.begin(), dirty.end(), true);
}

std::int64_t SegmentState::ckpt_dirty_pages() const {
  return std::count(ckpt_dirty.begin(), ckpt_dirty.end(), true);
}

std::int64_t SpaceDescriptor::total_pages() const {
  std::int64_t n = 0;
  for (const auto& s : segments) n += s.pages;
  return n;
}

std::int64_t SpaceDescriptor::resident_pages() const {
  std::int64_t n = 0;
  for (const auto& s : segments)
    n += std::count(s.resident.begin(), s.resident.end(), true);
  return n;
}

std::int64_t SpaceDescriptor::wire_bytes() const {
  // ids + per-page bits (3 bitmaps), rounded up.
  return 64 + total_pages() * 3 / 8 + 3 * 16;
}

std::int64_t AddressSpace::total_pages() const {
  std::int64_t n = 0;
  for (const auto& s : segments_) n += s.pages;
  return n;
}

std::int64_t AddressSpace::resident_pages() const {
  std::int64_t n = 0;
  for (const auto& s : segments_) n += s.resident_pages();
  return n;
}

std::int64_t AddressSpace::dirty_pages() const {
  std::int64_t n = 0;
  for (const auto& s : segments_) n += s.dirty_pages();
  return n;
}

VmManager::VmManager(sim::Simulator& sim, sim::Cpu& cpu, fs::FsClient& fs,
                     const sim::Costs& costs, sim::HostId self)
    : sim_(sim), cpu_(cpu), fs_(fs), costs_(costs), self_(self) {
  trace::Registry& tr = sim_.trace();
  c_faults_ = &tr.counter("vm.page.faulted", self_);
  c_pages_in_ = &tr.counter("vm.page.paged_in", self_);
  c_zero_fill_ = &tr.counter("vm.page.zero_filled", self_);
  c_flushed_ = &tr.counter("vm.page.flushed", self_);
  c_from_remote_ = &tr.counter("vm.page.remote_pulled", self_);
}

std::string VmManager::swap_path(std::int64_t asid, Segment seg) const {
  return "/swap/as" + std::to_string(asid) + "." + segment_name(seg);
}

void VmManager::create_space(const std::string& exe_path,
                             std::int64_t code_pages, std::int64_t heap_pages,
                             std::int64_t stack_pages, SpaceCb cb) {
  auto space = std::make_shared<AddressSpace>();
  space->asid_ = ((static_cast<std::int64_t>(self_) + 1) << 32) | next_asid_++;
  const std::int64_t sizes[3] = {code_pages, heap_pages, stack_pages};
  for (auto seg : kAllSegments) {
    SegmentState& st = space->segment(seg);
    st.seg = seg;
    st.pages = sizes[static_cast<int>(seg)];
    st.backing_path = seg == Segment::kCode ? exe_path
                                            : swap_path(space->asid_, seg);
    st.resident.assign(static_cast<std::size_t>(st.pages), false);
    st.dirty.assign(static_cast<std::size_t>(st.pages), false);
    // Code lives in the executable; heap/stack start zero-fill.
    st.in_backing.assign(static_cast<std::size_t>(st.pages),
                         seg == Segment::kCode);
    st.in_remote.assign(static_cast<std::size_t>(st.pages), false);
    st.ckpt_dirty.assign(static_cast<std::size_t>(st.pages), false);
  }
  open_backings(space, /*create_swap=*/true, std::move(cb));
}

void VmManager::adopt_space(const SpaceDescriptor& desc, SpaceCb cb) {
  auto space = std::make_shared<AddressSpace>();
  space->asid_ = desc.asid;
  for (auto seg : kAllSegments) {
    const auto& d = desc.segments[static_cast<std::size_t>(seg)];
    SegmentState& st = space->segment(seg);
    st.seg = seg;
    st.pages = d.pages;
    st.backing_path = d.backing_path;
    st.resident = d.resident;
    st.dirty = d.dirty;
    st.in_backing = d.in_backing;
    st.in_remote = d.in_remote.empty()
                       ? std::vector<bool>(static_cast<std::size_t>(d.pages),
                                           false)
                       : d.in_remote;
    st.ckpt_dirty = d.ckpt_dirty.empty()
                        ? std::vector<bool>(static_cast<std::size_t>(d.pages),
                                            false)
                        : d.ckpt_dirty;
  }
  open_backings(space, /*create_swap=*/false, std::move(cb));
}

void VmManager::open_backings(SpacePtr space, bool create_swap, SpaceCb cb) {
  // Open code read-only, heap/stack read-write, all bypassing the block
  // cache (VM traffic does not pollute the FS cache).
  // Weak self-capture: a strong one would cycle and leak (see
  // fs/client.cc cached_read for the idiom).
  auto open_seg = std::make_shared<std::function<void(std::size_t)>>();
  *open_seg = [this, space, create_swap,
               wself = std::weak_ptr<std::function<void(std::size_t)>>(
                   open_seg),
               cb = std::move(cb)](std::size_t i) mutable {
    auto open_seg = wself.lock();
    SPRITE_CHECK(open_seg != nullptr);
    if (i >= kAllSegments.size()) {
      cb(space);
      return;
    }
    const Segment seg = kAllSegments[i];
    SegmentState& st = space->segment(seg);
    if (st.pages == 0) {
      (*open_seg)(i + 1);
      return;
    }
    OpenFlags flags;
    if (seg == Segment::kCode) {
      flags = OpenFlags::read_only();
    } else {
      flags = create_swap ? OpenFlags::create_rw() : OpenFlags::read_write();
      flags.create = true;  // robust to re-adoption after server cleanup
    }
    flags.no_cache = true;
    fs_.open(st.backing_path, flags,
             [space, &st, open_seg, i, cb](util::Result<fs::StreamPtr> r) mutable {
               if (!r.is_ok()) return cb(r.status());
               st.backing = *r;
               (*open_seg)(i + 1);
             });
  };
  (*open_seg)(0);
}

void VmManager::touch(const SpacePtr& space, Segment seg, std::int64_t first,
                      std::int64_t count, bool write, StatusCb cb) {
  SegmentState& st = space->segment(seg);
  if (first < 0 || count < 0 || first + count > st.pages)
    return cb(Status(Err::kInval, "touch out of segment bounds"));
  if (write && seg == Segment::kCode)
    return cb(Status(Err::kAccess, "write to code segment"));

  // Dirty marking applies to the whole range on writes. The checkpoint
  // plane is set in lockstep but only a capture clears it (see vm.h).
  if (write) {
    for (std::int64_t p = first; p < first + count; ++p) {
      st.dirty[static_cast<std::size_t>(p)] = true;
      st.ckpt_dirty[static_cast<std::size_t>(p)] = true;
    }
  }

  // Group non-resident pages into runs with the same page source
  // (remote > backing > zero-fill).
  auto source_of = [&st](std::int64_t p) {
    if (st.in_remote[static_cast<std::size_t>(p)]) return 2;
    if (st.in_backing[static_cast<std::size_t>(p)]) return 1;
    return 0;
  };
  std::vector<std::pair<std::int64_t, std::int64_t>> runs;  // (first, count)
  for (std::int64_t p = first; p < first + count; ++p) {
    if (st.resident[static_cast<std::size_t>(p)]) continue;
    if (!runs.empty() && runs.back().first + runs.back().second == p &&
        source_of(runs.back().first) == source_of(p)) {
      ++runs.back().second;
    } else {
      runs.emplace_back(p, 1);
    }
  }
  if (runs.empty()) {
    sim_.after(Time::zero(), [cb = std::move(cb)] { cb(Status::ok()); });
    return;
  }
  // Span over the whole fault service for this touch (all runs, including
  // the backing-store reads or copy-on-reference pulls they trigger), so a
  // migrated process's demand-paging cost is measurable from the trace.
  if (trace::Registry& tr = sim_.trace(); tr.tracing()) {
    std::int64_t npages = 0;
    for (const auto& r : runs) npages += r.second;
    const trace::SpanId sp =
        tr.begin_span("vm", "demand-page", self_, -1,
                      {{"seg", segment_name(seg)},
                       {"pages", std::to_string(npages)}});
    cb = [&tr, sp, inner = std::move(cb)](Status s) {
      tr.end_span(sp, {{"ok", s.is_ok() ? "1" : "0"}});
      inner(s);
    };
  }
  sim_.trace().flight_note("vm.fault", segment_name(seg), self_, -1,
                           static_cast<std::int64_t>(runs.size()));
  fault_runs(space, seg, std::move(runs), 0, std::move(cb));
}

void VmManager::fault_runs(
    SpacePtr space, Segment seg,
    std::vector<std::pair<std::int64_t, std::int64_t>> runs, std::size_t i,
    StatusCb cb) {
  if (i >= runs.size()) return cb(Status::ok());
  SegmentState& st = space->segment(seg);
  const auto [first, count] = runs[i];
  const bool remote = st.in_remote[static_cast<std::size_t>(first)];
  const bool backed = !remote && st.in_backing[static_cast<std::size_t>(first)];
  c_faults_->inc(count);
  if (trace::Registry& tr = sim_.trace(); tr.tracing())
    tr.instant("vm", "page-in run", self_, -1,
               {{"seg", segment_name(seg)},
                {"first", std::to_string(first)},
                {"count", std::to_string(count)},
                {"source", remote ? "remote" : backed ? "backing" : "zero"}});

  auto mark_resident = [this, space, seg, first = first, count = count, backed,
                        remote] {
    SegmentState& st = space->segment(seg);
    for (std::int64_t p = first; p < first + count; ++p) {
      st.resident[static_cast<std::size_t>(p)] = true;
      st.in_remote[static_cast<std::size_t>(p)] = false;
    }
    if (remote) {
      c_from_remote_->inc(count);
    } else if (backed) {
      c_pages_in_->inc(count);
    } else {
      c_zero_fill_->inc(count);
    }
  };

  cpu_.submit(
      JobClass::kKernel, costs_.vm_fault_cpu * count,
      [this, space, seg, runs = std::move(runs), i, backed, remote,
       first = first, count = count, mark_resident,
       cb = std::move(cb)]() mutable {
        SegmentState& st = space->segment(seg);
        if (remote) {
          // Copy-on-reference: pull the pages from the migration source.
          auto pit = remote_pagers_.find(space->asid());
          if (pit == remote_pagers_.end())
            return cb(Status(Err::kInval, "remote pages without a pager"));
          pit->second(seg, first, count,
                      [this, space, seg, runs = std::move(runs), i,
                       mark_resident, cb = std::move(cb)](Status s) mutable {
                        if (!s.is_ok()) return cb(s);
                        mark_resident();
                        fault_runs(space, seg, std::move(runs), i + 1,
                                   std::move(cb));
                      });
          return;
        }
        if (!backed) {
          // Zero-fill: no I/O.
          mark_resident();
          fault_runs(space, seg, std::move(runs), i + 1, std::move(cb));
          return;
        }
        const Status se = fs_.seek(st.backing, first * costs_.page_size);
        SPRITE_CHECK(se.is_ok());
        fs_.read(st.backing, count * costs_.page_size,
                 [this, space, seg, runs = std::move(runs), i, mark_resident,
                  cb = std::move(cb)](util::Result<fs::Bytes> r) mutable {
                   if (!r.is_ok()) return cb(r.status());
                   mark_resident();
                   fault_runs(space, seg, std::move(runs), i + 1,
                              std::move(cb));
                 });
      });
}

void VmManager::set_remote_pager(const SpacePtr& space, RemotePager pager) {
  remote_pagers_[space->asid()] = std::move(pager);
}

void VmManager::clear_remote_pager(std::int64_t asid) {
  remote_pagers_.erase(asid);
}

void VmManager::flush_dirty(const SpacePtr& space, StatusCb cb) {
  // Span over the whole dirty-page flush (every segment's runs and their
  // file-server writes); nested under whatever operation — typically a
  // Sprite-flush migration — is ambient.
  if (trace::Registry& tr = sim_.trace(); tr.tracing()) {
    const trace::SpanId sp =
        tr.begin_span("vm", "flush-dirty", self_, -1,
                      {{"asid", std::to_string(space->asid())}});
    cb = [&tr, sp, inner = std::move(cb)](Status s) {
      tr.end_span(sp, {{"ok", s.is_ok() ? "1" : "0"}});
      inner(s);
    };
  }
  sim_.trace().flight_note("vm.flush", "dirty", self_, -1, space->asid());
  // Flush heap then stack (code is never dirty).
  auto flush_seg = std::make_shared<std::function<void(std::size_t)>>();
  *flush_seg = [this, space,
                wself = std::weak_ptr<std::function<void(std::size_t)>>(
                    flush_seg),
                cb = std::move(cb)](std::size_t si) mutable {
    auto flush_seg = wself.lock();  // weak self: see open_backings
    SPRITE_CHECK(flush_seg != nullptr);
    if (si >= kAllSegments.size()) {
      cb(Status::ok());
      return;
    }
    const Segment seg = kAllSegments[si];
    SegmentState& st = space->segment(seg);
    std::vector<std::pair<std::int64_t, std::int64_t>> runs;
    for (std::int64_t p = 0; p < st.pages; ++p) {
      if (!st.dirty[static_cast<std::size_t>(p)]) continue;
      if (!runs.empty() && runs.back().first + runs.back().second == p) {
        ++runs.back().second;
      } else {
        runs.emplace_back(p, 1);
      }
    }
    if (runs.empty()) {
      (*flush_seg)(si + 1);
      return;
    }
    flush_segment_runs(space, seg, std::move(runs), 0,
                       [flush_seg, si, cb](Status s) mutable {
                         if (!s.is_ok()) return cb(s);
                         (*flush_seg)(si + 1);
                       });
  };
  (*flush_seg)(0);
}

void VmManager::flush_segment_runs(
    SpacePtr space, Segment seg,
    std::vector<std::pair<std::int64_t, std::int64_t>> runs, std::size_t i,
    StatusCb cb) {
  if (i >= runs.size()) return cb(Status::ok());
  SegmentState& st = space->segment(seg);
  const auto [first, count] = runs[i];
  const Status se = fs_.seek(st.backing, first * costs_.page_size);
  SPRITE_CHECK(se.is_ok());
  fs::Bytes zeros(static_cast<std::size_t>(count * costs_.page_size), 0);
  fs_.write(st.backing, std::move(zeros),
            [this, space, seg, runs = std::move(runs), i, first = first,
             count = count, cb = std::move(cb)](
                util::Result<std::int64_t> r) mutable {
              if (!r.is_ok()) return cb(r.status());
              SegmentState& st = space->segment(seg);
              for (std::int64_t p = first; p < first + count; ++p) {
                st.dirty[static_cast<std::size_t>(p)] = false;
                st.in_backing[static_cast<std::size_t>(p)] = true;
              }
              c_flushed_->inc(count);
              if (trace::Registry& tr = sim_.trace(); tr.tracing())
                tr.instant("vm", "page flush", self_, -1,
                           {{"seg", segment_name(seg)},
                            {"first", std::to_string(first)},
                            {"count", std::to_string(count)}});
              flush_segment_runs(space, seg, std::move(runs), i + 1,
                                 std::move(cb));
            });
}

void VmManager::invalidate(const SpacePtr& space) {
  for (auto seg : kAllSegments) {
    SegmentState& st = space->segment(seg);
    st.resident.assign(static_cast<std::size_t>(st.pages), false);
    st.dirty.assign(static_cast<std::size_t>(st.pages), false);
  }
}

SpaceDescriptor VmManager::describe(const SpacePtr& space) const {
  SpaceDescriptor d;
  d.asid = space->asid();
  for (auto seg : kAllSegments) {
    const SegmentState& st = space->segment(seg);
    auto& out = d.segments[static_cast<std::size_t>(seg)];
    out.seg = seg;
    out.pages = st.pages;
    out.backing_path = st.backing_path;
    out.resident = st.resident;
    out.dirty = st.dirty;
    out.in_backing = st.in_backing;
    out.in_remote = st.in_remote;
    out.ckpt_dirty = st.ckpt_dirty;
  }
  return d;
}

std::int64_t VmManager::ckpt_dirty_pages(const SpacePtr& space) const {
  std::int64_t n = 0;
  for (auto seg : kAllSegments) n += space->segment(seg).ckpt_dirty_pages();
  return n;
}

void VmManager::clear_ckpt_dirty(const SpacePtr& space) {
  for (auto seg : kAllSegments) {
    SegmentState& st = space->segment(seg);
    st.ckpt_dirty.assign(static_cast<std::size_t>(st.pages), false);
  }
}

void VmManager::note_staged(const SpacePtr& space, Segment seg,
                            std::int64_t first, std::int64_t count) {
  SegmentState& st = space->segment(seg);
  SPRITE_CHECK(first >= 0 && count >= 0 && first + count <= st.pages);
  for (std::int64_t p = first; p < first + count; ++p)
    st.in_backing[static_cast<std::size_t>(p)] = true;
}

void VmManager::release_space(SpacePtr space, StatusCb cb) {
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [this, space,
           wself = std::weak_ptr<std::function<void(std::size_t)>>(step),
           cb = std::move(cb)](std::size_t i) mutable {
    auto step = wself.lock();  // weak self: see open_backings
    SPRITE_CHECK(step != nullptr);
    if (i >= kAllSegments.size()) {
      cb(Status::ok());
      return;
    }
    SegmentState& st = space->segment(kAllSegments[i]);
    if (!st.backing) {
      (*step)(i + 1);
      return;
    }
    fs_.close(st.backing, [space, step, i, &st](Status) {
      st.backing = nullptr;
      (*step)(i + 1);
    });
  };
  (*step)(0);
}

void VmManager::destroy_space(SpacePtr space, StatusCb cb) {
  // Close all paging streams, then unlink the swap files.
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [this, space,
           wself = std::weak_ptr<std::function<void(std::size_t)>>(step),
           cb = std::move(cb)](std::size_t i) mutable {
    auto step = wself.lock();  // weak self: see open_backings
    SPRITE_CHECK(step != nullptr);
    if (i >= kAllSegments.size()) {
      // Unlink swap files (heap, stack).
      auto unlink_next =
          std::make_shared<std::function<void(std::size_t)>>();
      *unlink_next = [this, space,
                      wuself = std::weak_ptr<std::function<void(std::size_t)>>(
                          unlink_next),
                      cb = std::move(cb)](std::size_t j) mutable {
        auto unlink_next = wuself.lock();
        SPRITE_CHECK(unlink_next != nullptr);
        if (j >= kAllSegments.size()) {
          cb(Status::ok());
          return;
        }
        const Segment seg = kAllSegments[j];
        if (seg == Segment::kCode || space->segment(seg).pages == 0) {
          (*unlink_next)(j + 1);
          return;
        }
        fs_.unlink(space->segment(seg).backing_path,
                   [unlink_next, j](Status) { (*unlink_next)(j + 1); });
      };
      (*unlink_next)(0);
      return;
    }
    const Segment seg = kAllSegments[i];
    SegmentState& st = space->segment(seg);
    if (!st.backing) {
      (*step)(i + 1);
      return;
    }
    fs_.close(st.backing, [space, step, i, &st](Status) {
      st.backing = nullptr;
      (*step)(i + 1);
    });
  };
  (*step)(0);
}

}  // namespace sprite::vm
