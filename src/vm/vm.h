// Virtual memory substrate: address spaces demand-paged through the shared
// file system, exactly the arrangement Sprite's migration design exploits —
// because backing store lives on the file server, migrating a process's
// memory reduces to flushing dirty pages and letting the target demand-page
// them from the server.
//
// Each address space has three segments:
//   code  — backed by the executable file, never dirty, demand-loaded;
//   heap  — backed by a per-space swap file on the server;
//   stack — likewise.
// Heap/stack pages that were never flushed are zero-fill (no I/O on first
// touch). Page contents are not materialized — only sizes move through the
// simulated file system — because no experiment depends on memory bytes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fs/client.h"
#include "sim/costs.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace sprite::vm {

enum class Segment : int { kCode = 0, kHeap = 1, kStack = 2 };
inline constexpr std::array<Segment, 3> kAllSegments = {
    Segment::kCode, Segment::kHeap, Segment::kStack};
const char* segment_name(Segment s);

// Per-segment page state.
struct SegmentState {
  Segment seg = Segment::kCode;
  std::int64_t pages = 0;
  std::string backing_path;        // executable or swap file
  fs::StreamPtr backing;           // no-cache stream used for paging I/O
  std::vector<bool> resident;
  std::vector<bool> dirty;
  std::vector<bool> in_backing;    // page exists in the backing file
  // Copy-on-reference: page must be pulled from the migration source host
  // rather than from backing store (Accent-style residual dependency).
  std::vector<bool> in_remote;
  // Checkpoint dirty tracking (src/ckpt/): set on every write alongside
  // `dirty`, but cleared only when a checkpoint captures the page — flushes
  // clear `dirty` without clearing this, so an incremental checkpoint sees
  // exactly the pages written since the previous capture.
  std::vector<bool> ckpt_dirty;

  std::int64_t resident_pages() const;
  std::int64_t remote_pages() const;
  std::int64_t dirty_pages() const;
  std::int64_t ckpt_dirty_pages() const;
};

// Serializable description of an address space, shipped by migration.
struct SpaceDescriptor {
  std::int64_t asid = 0;
  struct Seg {
    Segment seg = Segment::kCode;
    std::int64_t pages = 0;
    std::string backing_path;
    std::vector<bool> resident;
    std::vector<bool> dirty;
    std::vector<bool> in_backing;
    std::vector<bool> in_remote;
    // Carried across migration so an incremental-checkpoint chain stays
    // valid when the process moves between captures.
    std::vector<bool> ckpt_dirty;
  };
  std::array<Seg, 3> segments;

  std::int64_t total_pages() const;
  std::int64_t resident_pages() const;
  // Wire size of the page tables + ids when encapsulated for transfer.
  std::int64_t wire_bytes() const;
};

class AddressSpace {
 public:
  std::int64_t asid() const { return asid_; }
  SegmentState& segment(Segment s) {
    return segments_[static_cast<std::size_t>(s)];
  }
  const SegmentState& segment(Segment s) const {
    return segments_[static_cast<std::size_t>(s)];
  }

  std::int64_t total_pages() const;
  std::int64_t resident_pages() const;
  std::int64_t dirty_pages() const;

  // Processes sharing writable memory cannot migrate in Sprite; tests and
  // experiments set this flag to exercise that rule.
  bool shared_writable = false;

 private:
  friend class VmManager;
  std::int64_t asid_ = 0;
  std::array<SegmentState, 3> segments_;
};

using SpacePtr = std::shared_ptr<AddressSpace>;

class VmManager {
 public:
  using SpaceCb = std::function<void(util::Result<SpacePtr>)>;
  using StatusCb = std::function<void(util::Status)>;

  VmManager(sim::Simulator& sim, sim::Cpu& cpu, fs::FsClient& fs,
            const sim::Costs& costs, sim::HostId self);

  // Creates a fresh address space for exec: code demand-loaded from
  // `exe_path` (must exist), heap/stack backed by new swap files under
  // /swap. Nothing is resident initially.
  void create_space(const std::string& exe_path, std::int64_t code_pages,
                    std::int64_t heap_pages, std::int64_t stack_pages,
                    SpaceCb cb);

  // Reconstructs an address space shipped from another host. Residency in
  // the descriptor is honoured (whole-copy migration marks pages resident;
  // Sprite's flush strategy ships an all-non-resident table).
  void adopt_space(const SpaceDescriptor& desc, SpaceCb cb);

  // Ensures pages [first, first+count) of `seg` are resident, faulting as
  // needed; marks them dirty when `write` (code segments reject writes).
  void touch(const SpacePtr& space, Segment seg, std::int64_t first,
             std::int64_t count, bool write, StatusCb cb);

  // Writes every dirty page to backing store (migration's flush step and
  // eviction's reclaim step); pages stay resident but become clean.
  void flush_dirty(const SpacePtr& space, StatusCb cb);

  // Drops all residency (the source's final act under the flush strategy).
  void invalidate(const SpacePtr& space);

  // Snapshot for migration.
  SpaceDescriptor describe(const SpacePtr& space) const;

  // Copy-on-reference support: pages flagged in_remote are fetched through
  // this pager (installed by the migration module) instead of from backing
  // store; each fetched page clears its flag.
  using RemotePager = std::function<void(Segment seg, std::int64_t first,
                                         std::int64_t count, StatusCb cb)>;
  void set_remote_pager(const SpacePtr& space, RemotePager pager);
  void clear_remote_pager(std::int64_t asid);

  // ---- Checkpoint support (src/ckpt/) ----
  // Pages written since the last checkpoint capture, across all segments.
  std::int64_t ckpt_dirty_pages(const SpacePtr& space) const;
  // A checkpoint captured the space: resets the checkpoint-dirty plane.
  void clear_ckpt_dirty(const SpacePtr& space);
  // Checkpoint restart staged page contents into the swap backing files;
  // marks them present so demand-paging reads them instead of zero-filling.
  void note_staged(const SpacePtr& space, Segment seg, std::int64_t first,
                   std::int64_t count);

  // Crash support: address spaces die with their PCBs (proc/table.cc owns
  // those); the manager's only volatile state is the pager table.
  void crash_reset() { remote_pagers_.clear(); }

  // Closes paging streams and unlinks this space's swap files (process exit
  // on the host where it lives).
  void destroy_space(SpacePtr space, StatusCb cb);

  // Closes paging streams but keeps the swap files: the source side of a
  // migration, where the destination adopts the same backing files.
  void release_space(SpacePtr space, StatusCb cb);

  // ---- Statistics (registry-backed; the struct is a refreshed view) ----
  struct Stats {
    std::int64_t faults = 0;
    std::int64_t pages_in = 0;        // pages read from backing
    std::int64_t pages_zero_fill = 0;
    std::int64_t pages_flushed = 0;
    std::int64_t pages_from_remote = 0;  // copy-on-reference pulls
  };
  const Stats& stats() const {
    stats_view_.faults = c_faults_->value();
    stats_view_.pages_in = c_pages_in_->value();
    stats_view_.pages_zero_fill = c_zero_fill_->value();
    stats_view_.pages_flushed = c_flushed_->value();
    stats_view_.pages_from_remote = c_from_remote_->value();
    return stats_view_;
  }
  void reset_stats() {
    c_faults_->reset();
    c_pages_in_->reset();
    c_zero_fill_->reset();
    c_flushed_->reset();
    c_from_remote_->reset();
  }

 private:
  // Pages in the missing pages of one run, then continues.
  void fault_runs(SpacePtr space, Segment seg,
                  std::vector<std::pair<std::int64_t, std::int64_t>> runs,
                  std::size_t i, StatusCb cb);
  void flush_segment_runs(SpacePtr space, Segment seg,
                          std::vector<std::pair<std::int64_t, std::int64_t>> runs,
                          std::size_t i, StatusCb cb);
  std::string swap_path(std::int64_t asid, Segment seg) const;
  void open_backings(SpacePtr space, bool create_swap, SpaceCb cb);

  sim::Simulator& sim_;
  sim::Cpu& cpu_;
  fs::FsClient& fs_;
  const sim::Costs& costs_;
  sim::HostId self_;
  std::int64_t next_asid_ = 1;
  std::map<std::int64_t, RemotePager> remote_pagers_;  // by asid

  // Registry-backed metrics (trace/trace.h) and the legacy struct view.
  trace::Counter* c_faults_;
  trace::Counter* c_pages_in_;
  trace::Counter* c_zero_fill_;
  trace::Counter* c_flushed_;
  trace::Counter* c_from_remote_;
  mutable Stats stats_view_;
};

}  // namespace sprite::vm
