#include "rpc/rpc.h"

#include <algorithm>
#include <string>

#include "util/assert.h"
#include "util/log.h"

namespace sprite::rpc {

using sim::HostId;
using sim::JobClass;
using sim::Time;

const char* service_name(ServiceId id) {
  switch (id) {
    case ServiceId::kEcho: return "echo";
    case ServiceId::kFsName: return "fs-name";
    case ServiceId::kFsIo: return "fs-io";
    case ServiceId::kFsCallback: return "fs-callback";
    case ServiceId::kProc: return "proc";
    case ServiceId::kMigration: return "migration";
    case ServiceId::kLoadShare: return "loadshare";
    case ServiceId::kPdev: return "pdev";
    case ServiceId::kRecov: return "recov";
    case ServiceId::kCkpt: return "ckpt";
  }
  return "?";
}

RpcNode::RpcNode(sim::Simulator& sim, sim::Network& net, sim::Cpu& cpu,
                 HostId self, const sim::Costs& costs)
    : sim_(sim), net_(net), cpu_(cpu), self_(self), costs_(costs),
      rng_(sim.fork_rng()) {
  trace::Registry& tr = sim_.trace();
  c_started_ = &tr.counter("rpc.call.started", self_);
  c_retrans_ = &tr.counter("rpc.call.retransmitted", self_);
  c_timeouts_ = &tr.counter("rpc.call.timedout", self_);
  c_served_ = &tr.counter("rpc.request.served", self_);
  c_reincarnations_ = &tr.counter("rpc.peer.reincarnated", self_);
  c_parked_ = &tr.counter("rpc.call.parked", self_);
  c_unparked_ = &tr.counter("rpc.call.unparked", self_);
  c_dedup_evicted_ = &tr.counter("rpc.dedup.evicted", self_);
  g_dedup_size_ = &tr.gauge("rpc.dedup.size", self_);
  h_backoff_us_ = &tr.histogram(
      "rpc.call.backoff_us",
      {1e3, 1e4, 1e5, 2.5e5, 5e5, 1e6, 2e6, 4e6, 8e6}, self_);
}

void RpcNode::crash_reset() {
  for (auto& [id, pc] : pending_) pc.timeout.cancel();
  pending_.clear();  // callbacks died with the host: never invoked
  served_.clear();
  dedup_lru_.clear();
  g_dedup_size_->set(0.0);
  peer_epochs_.clear();  // knowledge of peers was in volatile memory too
  ++epoch_;
}

void RpcNode::note_peer_epoch(HostId peer, std::uint32_t epoch) {
  auto [it, inserted] = peer_epochs_.emplace(peer, epoch);
  if (inserted || epoch <= it->second) {
    if (!inserted) it->second = std::max(it->second, epoch);
    if (liveness_ != nullptr) liveness_->note_alive(peer, epoch);
    return;
  }
  it->second = epoch;
  // The peer rebooted: dedup slots from its previous incarnation can never
  // be legitimately retransmitted (call ids restart), so drop them.
  for (auto sit = served_.lower_bound({peer, 0});
       sit != served_.end() && sit->first.first == peer;) {
    dedup_lru_.erase(sit->second.lru_it);
    sit = served_.erase(sit);
  }
  g_dedup_size_->set(static_cast<double>(served_.size()));
  c_reincarnations_->inc();
  sim_.trace().flight_note("rpc.epoch", "reincarnated", self_, -1, peer,
                           epoch);
  if (trace::Registry& tr = sim_.trace(); tr.tracing())
    tr.instant("rpc", "peer_reincarnated", self_, -1,
               {{"peer", std::to_string(peer)}});
  if (reincarnation_observer_) reincarnation_observer_(peer);
  // The monitor sees the same evidence: the epoch jump makes it run the
  // down-recovery path for the old incarnation, then mark the peer up.
  if (liveness_ != nullptr) liveness_->note_alive(peer, epoch);
}

void RpcNode::fail_calls_to(HostId peer) {
  // Two passes: callbacks may start new calls (e.g. an abort RPC to the very
  // host that was declared down), which must not be swept up mid-iteration.
  std::vector<std::uint64_t> ids;
  for (const auto& [id, pc] : pending_)
    if (pc.dst == peer && !pc.opts.probe) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    it->second.timeout.cancel();
    c_timeouts_->inc();
    sim_.trace().flight_note("rpc.fail", service_name(it->second.req.service),
                             self_, -1, peer, it->second.req.op);
    auto cb = std::move(it->second.on_reply);
    pending_.erase(it);
    cb(util::Status(util::Err::kTimedOut, "peer declared down"));
  }
}

void RpcNode::resume_calls_to(HostId peer) {
  std::vector<std::uint64_t> ids;
  for (const auto& [id, pc] : pending_)
    if (pc.dst == peer && pc.parked) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    auto it = pending_.find(id);
    if (it == pending_.end() || !it->second.parked) continue;
    it->second.parked = false;
    it->second.attempts = 0;
    it->second.backoff = costs_.rpc_timeout;
    c_unparked_->inc();
    sim_.trace().flight_note("rpc.unpark",
                             service_name(it->second.req.service), self_, -1,
                             peer, it->second.req.op);
    transmit(id);
  }
}

std::vector<RpcNode::PendingCallInfo> RpcNode::pending_calls() const {
  std::vector<PendingCallInfo> out;
  out.reserve(pending_.size());
  for (const auto& [id, pc] : pending_)
    out.push_back(PendingCallInfo{id, pc.dst, pc.req.service, pc.req.op,
                                  pc.attempts, pc.parked, pc.opts.probe});
  return out;
}

std::function<bool(const sim::Packet&)> RpcNode::match_request(
    ServiceId service, int op, sim::HostId dst) {
  return [service, op, dst](const sim::Packet& pkt) {
    if (dst != sim::kInvalidHost && pkt.dst != dst) return false;
    const auto* w = std::any_cast<WireRequest>(&pkt.payload);
    if (w == nullptr) return false;
    if (w->req.service != service) return false;
    return op < 0 || w->req.op == op;
  };
}

std::function<bool(const sim::Packet&)> RpcNode::match_reply(
    sim::HostId dst) {
  return [dst](const sim::Packet& pkt) {
    if (dst != sim::kInvalidHost && pkt.dst != dst) return false;
    return std::any_cast<WireReply>(&pkt.payload) != nullptr;
  };
}

void RpcNode::register_service(ServiceId id, Handler handler) {
  SPRITE_CHECK_MSG(services_.find(id) == services_.end(),
                   "service registered twice");
  services_[id] = std::move(handler);
}

void RpcNode::call(HostId dst, ServiceId service, int op, MessagePtr body,
                   ReplyCallback on_reply) {
  call(dst, service, op, std::move(body), std::move(on_reply), CallOpts{});
}

void RpcNode::call(HostId dst, ServiceId service, int op, MessagePtr body,
                   ReplyCallback on_reply, CallOpts opts) {
  c_started_->inc();
  sim_.trace().flight_note("rpc.call", service_name(service), self_, -1, dst,
                           op);

  // Span covering the whole client-side call, local or remote, until the
  // reply callback fires. One branch when tracing is disabled. The span is
  // a child of whatever operation is ambient, and its own context travels
  // with the request so the server-side span becomes its child.
  trace::Context call_ctx;
  if (trace::Registry & tr = sim_.trace(); tr.tracing()) {
    const trace::SpanId sp = tr.begin_span(
        "rpc", std::string("call ") + service_name(service), self_, -1,
        {{"dst", std::to_string(dst)}, {"op", std::to_string(op)}});
    call_ctx = tr.span_context(sp);
    on_reply = [&tr, sp, cb = std::move(on_reply)](util::Result<Reply> r) {
      const bool ok = r.is_ok() && r->status.is_ok();
      tr.end_span(sp, {{"ok", ok ? "1" : "0"}});
      cb(std::move(r));
    };
  }

  if (dst == self_) {
    // Local fast path: dispatch through the same table, no network, no
    // marshalling CPU (Sprite short-circuits local RPCs the same way).
    // The dispatch runs under the call span's context so the handler's
    // work is attributed as its child.
    trace::ScopedContext scope(sim_.trace(), call_ctx);
    auto it = services_.find(service);
    if (it == services_.end()) {
      sim_.after(Time::zero(), [cb = std::move(on_reply)] {
        cb(util::Status(util::Err::kNotSupported, "no such service"));
      });
      return;
    }
    Request req{service, op, std::move(body)};
    sim_.after(Time::zero(),
               [this, it, req = std::move(req),
                cb = std::move(on_reply)]() mutable {
                 it->second(self_, req,
                            [cb = std::move(cb)](Reply rep) { cb(rep); });
               });
    return;
  }

  // A peer the monitor already declared down gets one doubtful attempt, not
  // a full retry budget: if it healed meanwhile the attempt succeeds (and
  // reintegrates it); otherwise the caller learns quickly instead of
  // stalling on a verdict that is already in.
  if (liveness_ != nullptr && !opts.probe &&
      liveness_->state(dst) == PeerLiveness::State::kDown) {
    opts.max_retries = 0;
    opts.no_park = true;
  }

  const std::uint64_t id = next_call_id_++;
  PendingCall pc;
  pc.dst = dst;
  pc.req = Request{service, op, std::move(body)};
  pc.on_reply = std::move(on_reply);
  pc.opts = opts;
  pc.backoff = costs_.rpc_timeout;
  pc.ctx = call_ctx;
  pending_.emplace(id, std::move(pc));
  transmit(id);
}

void RpcNode::transmit(std::uint64_t call_id) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  ++it->second.attempts;
  // Marshalling and everything downstream (wire, timeout) run under the
  // call span's context; retransmissions re-enter here and reuse the same
  // stored context, so the wire always carries the original span.
  trace::ScopedContext scope(sim_.trace(), it->second.ctx);
  // Marshalling consumes client kernel CPU before the packet hits the wire.
  cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg, [this, call_id] {
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;  // completed or failed meanwhile
    WireRequest w{call_id, epoch_, it->second.req, it->second.ctx};
    net_.send(self_, it->second.dst, it->second.req.wire_bytes(),
              std::any(std::move(w)));
    arm_timeout(call_id);
  });
}

void RpcNode::arm_timeout(std::uint64_t call_id) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  // Current backoff interval plus twice the request's own wire time, so bulk
  // payloads on a contended medium are not spuriously retransmitted.
  const Time deadline =
      it->second.backoff + costs_.wire_time(it->second.req.wire_bytes()) * 2.0;
  it->second.timeout = sim_.after(deadline, [this, call_id] {
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    const int max_retries = it->second.opts.max_retries >= 0
                                ? it->second.opts.max_retries
                                : costs_.rpc_max_retries;
    if (it->second.attempts > max_retries) {
      const HostId dst = it->second.dst;
      if (liveness_ != nullptr) liveness_->note_unreachable(dst);
      // The verdict may have resolved this call reentrantly (a suspect aged
      // to down fails every pending call to it); revalidate.
      it = pending_.find(call_id);
      if (it == pending_.end()) return;
      if (liveness_ != nullptr && !it->second.opts.no_park &&
          liveness_->state(dst) == PeerLiveness::State::kSuspect) {
        // Stall, don't abort: the peer may be partitioned, not dead. The
        // monitor either clears the suspicion (resume_calls_to restarts us)
        // or declares the peer down (fail_calls_to aborts us).
        it->second.parked = true;
        c_parked_->inc();
        sim_.trace().flight_note("rpc.park",
                                 service_name(it->second.req.service), self_,
                                 -1, dst, it->second.req.op);
        if (trace::Registry& tr = sim_.trace(); tr.tracing())
          tr.instant("rpc", "call_parked", self_, -1,
                     {{"dst", std::to_string(dst)}});
        return;
      }
      c_timeouts_->inc();
      sim_.trace().flight_note("rpc.timeout",
                               service_name(it->second.req.service), self_,
                               -1, dst, it->second.req.op);
      auto cb = std::move(it->second.on_reply);
      pending_.erase(it);
      cb(util::Status(util::Err::kTimedOut, "rpc retries exhausted"));
      return;
    }
    // Decorrelated jitter: next interval uniform in [base, 3 * previous],
    // capped. Drawn from this node's forked sim RNG stream, so a seed
    // replays the exact same schedule.
    const double base_us = static_cast<double>(costs_.rpc_timeout.us());
    const double prev_us = static_cast<double>(it->second.backoff.us());
    const double cap_us = static_cast<double>(costs_.rpc_backoff_cap.us());
    const double next_us =
        std::min(cap_us, rng_.uniform(base_us, 3.0 * prev_us));
    it->second.backoff = Time::usec(static_cast<std::int64_t>(next_us));
    h_backoff_us_->record(next_us);
    c_retrans_->inc();
    sim_.trace().flight_note("rpc.retransmit",
                             service_name(it->second.req.service), self_, -1,
                             it->second.dst, it->second.attempts);
    if (trace::Registry& tr = sim_.trace(); tr.tracing())
      tr.instant("rpc", "retransmit", self_, -1,
                 {{"dst", std::to_string(it->second.dst)},
                  {"backoff_us", std::to_string(it->second.backoff.us())}});
    transmit(call_id);
  });
}

void RpcNode::handle_packet(const sim::Packet& pkt) {
  if (const auto* wreq = std::any_cast<WireRequest>(&pkt.payload)) {
    // Interrupt + dispatch consumes server kernel CPU.
    cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg,
                [this, src = pkt.src, w = *wreq] { handle_request(src, w); });
    return;
  }
  if (const auto* wrep = std::any_cast<WireReply>(&pkt.payload)) {
    cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg,
                [this, src = pkt.src, w = *wrep] { handle_reply(src, w); });
    return;
  }
  SPRITE_UNREACHABLE("unknown packet payload type");
}

void RpcNode::multicast(ServiceId service, int op, MessagePtr body) {
  Request req{service, op, std::move(body)};
  const std::int64_t bytes = req.wire_bytes();
  // call_id 0 marks a one-way request: no dedup, no reply.
  cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg,
              [this, req = std::move(req), bytes]() mutable {
                WireRequest w{0, epoch_, std::move(req),
                              sim_.trace().current()};
                net_.multicast(self_, bytes, std::any(std::move(w)));
              });
}

void RpcNode::handle_request(HostId src, const WireRequest& wreq) {
  note_peer_epoch(src, wreq.epoch);
  if (wreq.call_id == 0) {
    // One-way multicast: dispatch with a reply sink that goes nowhere,
    // under the sender's context (there is no per-call server span).
    auto svc_it = services_.find(wreq.req.service);
    if (svc_it == services_.end()) return;
    c_served_->inc();
    trace::ScopedContext scope(sim_.trace(), wreq.ctx);
    svc_it->second(src, wreq.req, [](Reply) {});
    return;
  }
  const auto key = std::make_pair(src, wreq.call_id);
  auto slot_it = served_.find(key);
  if (slot_it != served_.end()) {
    // Duplicate: no new server span — the retransmitted request carries the
    // same client context, and at-most-once execution means at most one
    // child. The cached-reply replay still runs under that context.
    sim_.trace().flight_note("rpc.dedup", service_name(wreq.req.service),
                             self_, -1, src, wreq.req.op);
    touch_dedup(slot_it->second);
    if (slot_it->second.completed) {
      // Duplicate of a completed call: replay the cached reply.
      trace::ScopedContext scope(sim_.trace(), wreq.ctx);
      WireReply w{wreq.call_id, epoch_, slot_it->second.cached, wreq.ctx};
      net_.send(self_, src, slot_it->second.cached.wire_bytes(),
                std::any(std::move(w)));
    }
    // Duplicate of an in-progress call: drop; the pending respond() answers.
    return;
  }

  auto [new_it, inserted] = served_.emplace(key, ServerSlot{});
  SPRITE_CHECK(inserted);
  new_it->second.lru_it = dedup_lru_.insert(dedup_lru_.end(), key);
  prune_dedup();
  c_served_->inc();
  sim_.trace().flight_note("rpc.serve", service_name(wreq.req.service), self_,
                           -1, src, wreq.req.op);

  std::function<void(Reply)> respond = [this, src, call_id = wreq.call_id,
                                        key](Reply rep) {
    auto it = served_.find(key);
    if (it != served_.end()) {
      it->second.completed = true;
      it->second.cached = rep;
      touch_dedup(it->second);
    }
    // Reply marshalling consumes server CPU, then the wire. The reply
    // carries the responder's context back, so the client-side continuation
    // is attributed as causally following the server's work.
    cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg,
                [this, src, call_id, rep = std::move(rep)] {
                  WireReply w{call_id, epoch_, rep, sim_.trace().current()};
                  net_.send(self_, src, rep.wire_bytes(),
                            std::any(std::move(w)));
                });
  };

  // Span covering the server-side dispatch until the handler responds; a
  // child of the client-side call span via the wire-carried context.
  trace::Context serve_ctx = wreq.ctx;
  if (trace::Registry & tr = sim_.trace(); tr.tracing()) {
    trace::ScopedContext link(tr, wreq.ctx);
    const trace::SpanId sp = tr.begin_span(
        "rpc", std::string("serve ") + service_name(wreq.req.service), self_,
        -1, {{"src", std::to_string(src)}, {"op", std::to_string(wreq.req.op)}});
    serve_ctx = tr.span_context(sp);
    respond = [&tr, sp, inner = std::move(respond)](Reply rep) {
      tr.end_span(sp, {{"ok", rep.status.is_ok() ? "1" : "0"}});
      inner(std::move(rep));
    };
  }

  // The handler (and any asynchronous work it schedules before responding)
  // runs under the serve span's context.
  trace::ScopedContext scope(sim_.trace(), serve_ctx);
  auto svc_it = services_.find(wreq.req.service);
  if (svc_it == services_.end()) {
    respond(Reply{util::Status(util::Err::kNotSupported, "no such service"),
                  nullptr});
    return;
  }
  svc_it->second(src, wreq.req, std::move(respond));
}

void RpcNode::touch_dedup(ServerSlot& slot) {
  dedup_lru_.splice(dedup_lru_.end(), dedup_lru_, slot.lru_it);
}

void RpcNode::prune_dedup() {
  // Evict least-recently-used *completed* slots past the cap; in-progress
  // slots are skipped (their respond() will complete them soon enough).
  const auto cap = static_cast<std::size_t>(costs_.rpc_dedup_cap);
  auto it = dedup_lru_.begin();
  while (served_.size() > cap && it != dedup_lru_.end()) {
    auto sit = served_.find(*it);
    SPRITE_CHECK(sit != served_.end());
    if (!sit->second.completed) {
      ++it;
      continue;
    }
    it = dedup_lru_.erase(it);
    served_.erase(sit);
    c_dedup_evicted_->inc();
  }
  g_dedup_size_->set(static_cast<double>(served_.size()));
}

void RpcNode::handle_reply(HostId src, const WireReply& wrep) {
  note_peer_epoch(src, wrep.epoch);
  auto it = pending_.find(wrep.call_id);
  if (it == pending_.end()) return;  // late reply after timeout: ignore
  it->second.timeout.cancel();
  auto cb = std::move(it->second.on_reply);
  pending_.erase(it);
  // The continuation causally follows the server's reply: run it under the
  // reply-carried context so work it starts nests below the serve span.
  trace::ScopedContext scope(sim_.trace(), wrep.ctx);
  cb(wrep.rep);
}

}  // namespace sprite::rpc
