#include "rpc/rpc.h"

#include <algorithm>
#include <string>

#include "util/assert.h"
#include "util/log.h"

namespace sprite::rpc {

using sim::HostId;
using sim::JobClass;
using sim::Time;

const char* service_name(ServiceId id) {
  switch (id) {
    case ServiceId::kEcho: return "echo";
    case ServiceId::kFsName: return "fs-name";
    case ServiceId::kFsIo: return "fs-io";
    case ServiceId::kFsCallback: return "fs-callback";
    case ServiceId::kProc: return "proc";
    case ServiceId::kMigration: return "migration";
    case ServiceId::kLoadShare: return "loadshare";
    case ServiceId::kPdev: return "pdev";
  }
  return "?";
}

RpcNode::RpcNode(sim::Simulator& sim, sim::Network& net, sim::Cpu& cpu,
                 HostId self, const sim::Costs& costs)
    : sim_(sim), net_(net), cpu_(cpu), self_(self), costs_(costs) {
  trace::Registry& tr = sim_.trace();
  c_started_ = &tr.counter("rpc.call.started", self_);
  c_retrans_ = &tr.counter("rpc.call.retransmitted", self_);
  c_timeouts_ = &tr.counter("rpc.call.timedout", self_);
  c_served_ = &tr.counter("rpc.request.served", self_);
  c_reincarnations_ = &tr.counter("rpc.peer.reincarnated", self_);
}

void RpcNode::crash_reset() {
  for (auto& [id, pc] : pending_) pc.timeout.cancel();
  pending_.clear();  // callbacks died with the host: never invoked
  served_.clear();
  served_order_.clear();
  peer_epochs_.clear();  // knowledge of peers was in volatile memory too
  ++epoch_;
}

void RpcNode::note_peer_epoch(HostId peer, std::uint32_t epoch) {
  auto [it, inserted] = peer_epochs_.emplace(peer, epoch);
  if (inserted || epoch <= it->second) {
    if (!inserted) it->second = std::max(it->second, epoch);
    return;
  }
  it->second = epoch;
  // The peer rebooted: dedup slots from its previous incarnation can never
  // be legitimately retransmitted (call ids restart), so drop them.
  for (auto sit = served_.lower_bound({peer, 0});
       sit != served_.end() && sit->first.first == peer;)
    sit = served_.erase(sit);
  c_reincarnations_->inc();
  if (trace::Registry& tr = sim_.trace(); tr.tracing())
    tr.instant("rpc", "peer_reincarnated", self_, -1,
               {{"peer", std::to_string(peer)}});
  if (reincarnation_observer_) reincarnation_observer_(peer);
}

std::vector<RpcNode::PendingCallInfo> RpcNode::pending_calls() const {
  std::vector<PendingCallInfo> out;
  out.reserve(pending_.size());
  for (const auto& [id, pc] : pending_)
    out.push_back(
        PendingCallInfo{id, pc.dst, pc.req.service, pc.req.op, pc.attempts});
  return out;
}

std::function<bool(const sim::Packet&)> RpcNode::match_request(
    ServiceId service, int op, sim::HostId dst) {
  return [service, op, dst](const sim::Packet& pkt) {
    if (dst != sim::kInvalidHost && pkt.dst != dst) return false;
    const auto* w = std::any_cast<WireRequest>(&pkt.payload);
    if (w == nullptr) return false;
    if (w->req.service != service) return false;
    return op < 0 || w->req.op == op;
  };
}

std::function<bool(const sim::Packet&)> RpcNode::match_reply(
    sim::HostId dst) {
  return [dst](const sim::Packet& pkt) {
    if (dst != sim::kInvalidHost && pkt.dst != dst) return false;
    return std::any_cast<WireReply>(&pkt.payload) != nullptr;
  };
}

void RpcNode::register_service(ServiceId id, Handler handler) {
  SPRITE_CHECK_MSG(services_.find(id) == services_.end(),
                   "service registered twice");
  services_[id] = std::move(handler);
}

void RpcNode::call(HostId dst, ServiceId service, int op, MessagePtr body,
                   ReplyCallback on_reply) {
  c_started_->inc();

  // Span covering the whole client-side call, local or remote, until the
  // reply callback fires. One branch when tracing is disabled.
  if (trace::Registry & tr = sim_.trace(); tr.tracing()) {
    const trace::SpanId sp = tr.begin_span(
        "rpc", std::string("call ") + service_name(service), self_, -1,
        {{"dst", std::to_string(dst)}, {"op", std::to_string(op)}});
    on_reply = [&tr, sp, cb = std::move(on_reply)](util::Result<Reply> r) {
      const bool ok = r.is_ok() && r->status.is_ok();
      tr.end_span(sp, {{"ok", ok ? "1" : "0"}});
      cb(std::move(r));
    };
  }

  if (dst == self_) {
    // Local fast path: dispatch through the same table, no network, no
    // marshalling CPU (Sprite short-circuits local RPCs the same way).
    auto it = services_.find(service);
    if (it == services_.end()) {
      sim_.after(Time::zero(), [cb = std::move(on_reply)] {
        cb(util::Status(util::Err::kNotSupported, "no such service"));
      });
      return;
    }
    Request req{service, op, std::move(body)};
    sim_.after(Time::zero(),
               [this, it, req = std::move(req),
                cb = std::move(on_reply)]() mutable {
                 it->second(self_, req,
                            [cb = std::move(cb)](Reply rep) { cb(rep); });
               });
    return;
  }

  const std::uint64_t id = next_call_id_++;
  PendingCall pc;
  pc.dst = dst;
  pc.req = Request{service, op, std::move(body)};
  pc.on_reply = std::move(on_reply);
  pending_.emplace(id, std::move(pc));
  transmit(id);
}

void RpcNode::transmit(std::uint64_t call_id) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  ++it->second.attempts;
  // Marshalling consumes client kernel CPU before the packet hits the wire.
  cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg, [this, call_id] {
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;  // completed or failed meanwhile
    WireRequest w{call_id, epoch_, it->second.req};
    net_.send(self_, it->second.dst, it->second.req.wire_bytes(),
              std::any(std::move(w)));
    arm_timeout(call_id);
  });
}

void RpcNode::arm_timeout(std::uint64_t call_id) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  // Base timeout plus twice the request's own wire time, so bulk payloads on
  // a contended medium are not spuriously retransmitted.
  const Time deadline =
      costs_.rpc_timeout + costs_.wire_time(it->second.req.wire_bytes()) * 2.0;
  it->second.timeout = sim_.after(deadline, [this, call_id] {
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    if (it->second.attempts > costs_.rpc_max_retries) {
      c_timeouts_->inc();
      auto cb = std::move(it->second.on_reply);
      pending_.erase(it);
      cb(util::Status(util::Err::kTimedOut, "rpc retries exhausted"));
      return;
    }
    c_retrans_->inc();
    if (trace::Registry& tr = sim_.trace(); tr.tracing())
      tr.instant("rpc", "retransmit", self_, -1,
                 {{"dst", std::to_string(it->second.dst)}});
    transmit(call_id);
  });
}

void RpcNode::handle_packet(const sim::Packet& pkt) {
  if (const auto* wreq = std::any_cast<WireRequest>(&pkt.payload)) {
    // Interrupt + dispatch consumes server kernel CPU.
    cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg,
                [this, src = pkt.src, w = *wreq] { handle_request(src, w); });
    return;
  }
  if (const auto* wrep = std::any_cast<WireReply>(&pkt.payload)) {
    cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg,
                [this, src = pkt.src, w = *wrep] { handle_reply(src, w); });
    return;
  }
  SPRITE_UNREACHABLE("unknown packet payload type");
}

void RpcNode::multicast(ServiceId service, int op, MessagePtr body) {
  Request req{service, op, std::move(body)};
  const std::int64_t bytes = req.wire_bytes();
  // call_id 0 marks a one-way request: no dedup, no reply.
  cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg,
              [this, req = std::move(req), bytes]() mutable {
                WireRequest w{0, epoch_, std::move(req)};
                net_.multicast(self_, bytes, std::any(std::move(w)));
              });
}

void RpcNode::handle_request(HostId src, const WireRequest& wreq) {
  note_peer_epoch(src, wreq.epoch);
  if (wreq.call_id == 0) {
    // One-way multicast: dispatch with a reply sink that goes nowhere.
    auto svc_it = services_.find(wreq.req.service);
    if (svc_it == services_.end()) return;
    c_served_->inc();
    svc_it->second(src, wreq.req, [](Reply) {});
    return;
  }
  const auto key = std::make_pair(src, wreq.call_id);
  auto slot_it = served_.find(key);
  if (slot_it != served_.end()) {
    if (slot_it->second.completed) {
      // Duplicate of a completed call: replay the cached reply.
      WireReply w{wreq.call_id, epoch_, slot_it->second.cached};
      net_.send(self_, src, slot_it->second.cached.wire_bytes(),
                std::any(std::move(w)));
    }
    // Duplicate of an in-progress call: drop; the pending respond() answers.
    return;
  }

  // Bound the dedup cache by pruning *completed* slots in insertion order.
  // In-progress slots are never evicted: losing one would let a
  // retransmission re-execute its handler, breaking at-most-once. (The old
  // code erased served_.begin() — the lowest (host, call_id) key — which
  // under load evicted live in-progress slots for low-numbered hosts while
  // retaining stale completed ones.)
  std::size_t scanned = served_order_.size();
  while (served_.size() > 4096 && scanned-- > 0) {
    const auto victim = served_order_.front();
    served_order_.pop_front();
    auto vit = served_.find(victim);
    if (vit == served_.end()) continue;  // purged by an epoch jump
    if (vit->second.completed) {
      served_.erase(vit);
    } else {
      served_order_.push_back(victim);  // in-progress: keep, re-queue
    }
  }
  served_.emplace(key, ServerSlot{});
  served_order_.push_back(key);
  c_served_->inc();

  std::function<void(Reply)> respond = [this, src, call_id = wreq.call_id,
                                        key](Reply rep) {
    auto it = served_.find(key);
    if (it != served_.end()) {
      it->second.completed = true;
      it->second.cached = rep;
    }
    // Reply marshalling consumes server CPU, then the wire.
    cpu_.submit(JobClass::kKernel, costs_.rpc_cpu_per_msg,
                [this, src, call_id, rep = std::move(rep)] {
                  WireReply w{call_id, epoch_, rep};
                  net_.send(self_, src, rep.wire_bytes(),
                            std::any(std::move(w)));
                });
  };

  // Span covering the server-side dispatch until the handler responds.
  if (trace::Registry & tr = sim_.trace(); tr.tracing()) {
    const trace::SpanId sp = tr.begin_span(
        "rpc", std::string("serve ") + service_name(wreq.req.service), self_,
        -1, {{"src", std::to_string(src)}, {"op", std::to_string(wreq.req.op)}});
    respond = [&tr, sp, inner = std::move(respond)](Reply rep) {
      tr.end_span(sp, {{"ok", rep.status.is_ok() ? "1" : "0"}});
      inner(std::move(rep));
    };
  }

  auto svc_it = services_.find(wreq.req.service);
  if (svc_it == services_.end()) {
    respond(Reply{util::Status(util::Err::kNotSupported, "no such service"),
                  nullptr});
    return;
  }
  svc_it->second(src, wreq.req, std::move(respond));
}

void RpcNode::handle_reply(HostId src, const WireReply& wrep) {
  note_peer_epoch(src, wrep.epoch);
  auto it = pending_.find(wrep.call_id);
  if (it == pending_.end()) return;  // late reply after timeout: ignore
  it->second.timeout.cancel();
  auto cb = std::move(it->second.on_reply);
  pending_.erase(it);
  cb(wrep.rep);
}

}  // namespace sprite::rpc
