// Kernel-to-kernel RPC in the style of Sprite's RPC system [Wel86], itself
// modelled on Birrell-Nelson [BN84].
//
// Each host owns one RpcNode. Services (file system, process control,
// migration, load sharing, pseudo-devices) register handlers; remote kernels
// call them. Semantics are at-most-once: the server deduplicates retransmitted
// requests and replays the cached reply. A call that cannot be completed
// (server down) fails with Err::kTimedOut after bounded retransmissions.
//
// Costs: every message consumes rpc_cpu_per_msg of kernel CPU on each end and
// occupies the shared network medium for its wire time, so RPC-heavy
// activities (pmake open storms, migration) contend for the server CPU and
// the Ethernet exactly the way the thesis describes.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/costs.h"
#include "sim/cpu.h"
#include "sim/ids.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/status.h"

namespace sprite::rpc {

// Base class for RPC payload bodies. Payloads live in one address space (the
// simulation), so "serialization" is notional: each type declares its wire
// size and is shared immutably.
struct Message {
  virtual ~Message() = default;
  virtual std::int64_t wire_bytes() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

// Convenience for bodies that are plain structs.
template <typename T>
std::shared_ptr<const T> body_cast(const MessagePtr& m) {
  return std::dynamic_pointer_cast<const T>(m);
}

// Services a kernel exports. One dispatch table per host.
enum class ServiceId : int {
  kEcho = 0,     // diagnostics
  kFsName,       // name operations: open/close/lookup/remove
  kFsIo,         // block I/O, shared offsets, stream migration
  kFsCallback,   // server-to-client cache consistency callbacks
  kProc,         // remote process ops: signals, wait, home-call forwarding
  kMigration,    // migration protocol
  kLoadShare,    // host-selection protocols
  kPdev,         // pseudo-device request forwarding
  kRecov,        // failure-detection echoes (src/recov/monitor.h)
  kCkpt,         // checkpoint/restart coordination (src/ckpt/)
};
const char* service_name(ServiceId id);

// Liveness oracle, implemented by recov::HostMonitor. The RPC layer feeds it
// evidence — every message received carries proof of life (and the sender's
// boot epoch); every retry-exhausted call is proof of unreachability — and
// consults it when retries run out: a call to a merely *suspect* peer parks
// (stalls) until the monitor reaches a verdict, while a call to a *down*
// peer fails. No RPC consumer sees simulator ground truth.
class PeerLiveness {
 public:
  enum class State { kUp, kSuspect, kDown };
  virtual ~PeerLiveness() = default;
  virtual void note_alive(sim::HostId peer, std::uint32_t epoch) = 0;
  virtual void note_unreachable(sim::HostId peer) = 0;
  virtual State state(sim::HostId peer) const = 0;
};

// Per-call overrides, used by the host monitor's probes (which must never
// stall on the very machinery they feed).
struct CallOpts {
  int max_retries = -1;  // < 0: use Costs::rpc_max_retries
  bool no_park = false;  // on exhaustion fail even while the peer is suspect
  // Liveness probe: transmit even to a peer already marked down, never park.
  bool probe = false;
};

struct Request {
  ServiceId service{};
  int op = 0;
  MessagePtr body;  // may be null for argument-less ops

  std::int64_t wire_bytes() const {
    return 32 + (body ? body->wire_bytes() : 0);
  }
};

struct Reply {
  util::Status status;
  MessagePtr body;

  std::int64_t wire_bytes() const {
    return 32 + (body ? body->wire_bytes() : 0);
  }
};

class RpcNode {
 public:
  // `respond` must be invoked exactly once, possibly asynchronously (a file
  // server may need disk events before it can answer).
  using Handler = std::function<void(sim::HostId src, const Request& req,
                                     std::function<void(Reply)> respond)>;
  using ReplyCallback = std::function<void(util::Result<Reply>)>;

  RpcNode(sim::Simulator& sim, sim::Network& net, sim::Cpu& cpu,
          sim::HostId self, const sim::Costs& costs);

  sim::HostId host() const { return self_; }

  void register_service(ServiceId id, Handler handler);

  // Calls `service.op` on `dst`. `on_reply` fires exactly once with the
  // reply or with Err::kTimedOut. Calls to the local host are served through
  // the same dispatch path without touching the network (Sprite kernels
  // special-case local RPCs the same way).
  void call(sim::HostId dst, ServiceId service, int op, MessagePtr body,
            ReplyCallback on_reply);
  void call(sim::HostId dst, ServiceId service, int op, MessagePtr body,
            ReplyCallback on_reply, CallOpts opts);

  // One-way multicast: a single transmission delivered to every up host's
  // matching service handler. No reply, no retransmission (used by the
  // multicast host-selection architecture; responders answer with separate
  // unicast calls).
  void multicast(ServiceId service, int op, MessagePtr body);

  // Entry point for packets addressed to this host. The host glue registers
  // this with the Network (the RpcNode cannot attach itself because HostIds
  // are assigned by Network::attach).
  void handle_packet(const sim::Packet& pkt);

  // ---- crash / reboot support ----
  // Tears down all soft state as a crash would: pending calls are abandoned
  // (their callbacks are *not* invoked — the caller's state died with the
  // host), the dedup cache is dropped, and the reboot epoch is bumped so
  // peers can detect the reincarnation. Service registrations survive: the
  // subsystem objects stay alive and a reboot reuses them.
  void crash_reset();
  std::uint32_t epoch() const { return epoch_; }
  // Fires when a message from `peer` carries a higher epoch than previously
  // seen, i.e. the peer crashed and rebooted since we last spoke.
  void set_reincarnation_observer(std::function<void(sim::HostId)> obs) {
    reincarnation_observer_ = std::move(obs);
  }

  // ---- failure detection (src/recov/monitor.h) ----
  // Installs the liveness oracle. Without one (bare RpcNodes in unit tests)
  // calls simply fail after their retry budget, as before.
  void set_liveness(PeerLiveness* liveness) { liveness_ = liveness; }
  // Monitor verdicts for stalled calls. `fail_calls_to` aborts every
  // non-probe pending call to `peer` (it was declared down);
  // `resume_calls_to` restarts parked calls with a fresh retry budget (the
  // suspicion was false, or the peer rebooted and the new incarnation will
  // re-execute them — the documented retry-across-reboot semantics).
  void fail_calls_to(sim::HostId peer);
  void resume_calls_to(sim::HostId peer);

  // ---- fault-injection filters (sim/fault.h) ----
  // Packet predicates for FaultPlan rules; defined here because the wire
  // framing is private to RpcNode. `op` / `dst` of -1 / kInvalidHost match
  // anything.
  static std::function<bool(const sim::Packet&)> match_request(
      ServiceId service, int op = -1, sim::HostId dst = sim::kInvalidHost);
  static std::function<bool(const sim::Packet&)> match_reply(
      sim::HostId dst = sim::kInvalidHost);

  // ---- diagnostics ----
  struct PendingCallInfo {
    std::uint64_t call_id = 0;
    sim::HostId dst = sim::kInvalidHost;
    ServiceId service{};
    int op = 0;
    int attempts = 0;
    bool parked = false;  // stalled awaiting a monitor verdict
    bool probe = false;   // a monitor echo, not real work
  };
  std::vector<PendingCallInfo> pending_calls() const;

  // ---- statistics (registry-backed; see trace/trace.h) ----
  std::int64_t calls_started() const { return c_started_->value(); }
  std::int64_t retransmissions() const { return c_retrans_->value(); }
  std::int64_t timeouts() const { return c_timeouts_->value(); }
  std::int64_t requests_served() const { return c_served_->value(); }

 private:
  struct WireRequest {
    std::uint64_t call_id;
    std::uint32_t epoch;  // sender's reboot epoch
    Request req;
    // Causal context of the client-side call span. Stored in the pending
    // call and stamped onto every (re)transmission, so a retransmitted
    // request carries the same context and the dedup cache guarantees it
    // spawns at most one server-side child span.
    trace::Context ctx;
  };
  struct WireReply {
    std::uint64_t call_id;
    std::uint32_t epoch;
    Reply rep;
    trace::Context ctx;  // server-side serve-span context
  };

  struct PendingCall {
    sim::HostId dst;
    Request req;
    ReplyCallback on_reply;
    int attempts = 0;
    sim::EventHandle timeout;
    CallOpts opts;
    sim::Time backoff;    // current retransmission interval
    bool parked = false;  // retries exhausted, peer suspect: stalled
    trace::Context ctx;   // client call-span context, stable across retries
  };

  void handle_request(sim::HostId src, const WireRequest& wreq);
  void handle_reply(sim::HostId src, const WireReply& wrep);
  void transmit(std::uint64_t call_id);
  void arm_timeout(std::uint64_t call_id);
  // Records `epoch` for `peer`; a jump means the peer rebooted, so its old
  // incarnation's dedup slots are purged and the observer fires.
  void note_peer_epoch(sim::HostId peer, std::uint32_t epoch);

  sim::Simulator& sim_;
  sim::Network& net_;
  sim::Cpu& cpu_;
  sim::HostId self_;
  const sim::Costs& costs_;

  std::map<ServiceId, Handler> services_;
  std::map<std::uint64_t, PendingCall> pending_;
  std::uint64_t next_call_id_ = 1;
  std::uint32_t epoch_ = 1;  // bumped on every crash
  std::map<sim::HostId, std::uint32_t> peer_epochs_;
  std::function<void(sim::HostId)> reincarnation_observer_;

  // At-most-once duplicate suppression: (client, call_id) -> cached reply.
  // In-progress entries hold no reply yet; retransmissions of those are
  // dropped (the eventual reply answers them). Bounded at
  // Costs::rpc_dedup_cap by LRU eviction of *completed* slots (a duplicate
  // hit refreshes its slot); in-progress slots are never evicted — losing
  // one would let a retransmission re-execute its handler.
  using DedupKey = std::pair<sim::HostId, std::uint64_t>;
  struct ServerSlot {
    bool completed = false;
    Reply cached;
    std::list<DedupKey>::iterator lru_it;
  };
  void touch_dedup(ServerSlot& slot);
  void prune_dedup();
  std::map<DedupKey, ServerSlot> served_;
  std::list<DedupKey> dedup_lru_;  // front = least recently used

  PeerLiveness* liveness_ = nullptr;
  util::Rng rng_;  // decorrelated-jitter draws (forked from the sim root)

  // Per-host counters in the simulator's trace registry (stable addresses,
  // cached once at construction).
  trace::Counter* c_started_;
  trace::Counter* c_retrans_;
  trace::Counter* c_timeouts_;
  trace::Counter* c_served_;
  trace::Counter* c_reincarnations_;
  trace::Counter* c_parked_;
  trace::Counter* c_unparked_;
  trace::Counter* c_dedup_evicted_;
  trace::Gauge* g_dedup_size_;
  trace::LatencyHistogram* h_backoff_us_;
};

}  // namespace sprite::rpc
