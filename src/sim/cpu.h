// Per-host CPU model: a single processor shared by kernel work and user
// processes.
//
// Kernel jobs (RPC service, file-server request handling, migration
// bookkeeping) run ahead of user jobs and preempt them — this is what turns
// the file server's per-open name-lookup cost into the pmake saturation the
// thesis measures. User jobs are scheduled round-robin with a fixed quantum.
//
// The CPU also maintains the UNIX-style load average that Sprite's idle-host
// detection reads, including the externally settable bias MOSIX-style flood
// prevention uses ("anticipated load").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "sim/costs.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sprite::sim {

enum class JobClass { kKernel, kUser };

using CpuJobId = std::uint64_t;
inline constexpr CpuJobId kInvalidCpuJob = 0;

class Cpu {
 public:
  Cpu(Simulator& sim, const Costs& costs);

  // Begins periodic load-average sampling (idempotent).
  void start_load_sampling();

  // Submits a job needing `demand` of CPU time; `on_done` fires when it has
  // received that much service. Kernel jobs run FIFO ahead of all user jobs.
  CpuJobId submit(JobClass cls, Time demand, std::function<void()> on_done);

  // Cancels a queued or running job (no-op if already completed). Returns
  // the unserved CPU demand, so a preempted compute burst can be resumed
  // elsewhere (migration carries the remainder to the target host).
  Time cancel(CpuJobId id);

  // Number of runnable user jobs (running + queued).
  int runnable_users() const;

  // UNIX-style exponentially damped load average over runnable user jobs.
  double load_average() const { return load_avg_ + load_bias_; }

  // Extra anticipated load added by the load-sharing facility (flood
  // prevention: a host that has just been handed out reports itself busier
  // than its sampled load).
  void set_load_bias(double bias) { load_bias_ = bias; }
  double load_bias() const { return load_bias_; }

  // Total CPU time delivered to each class, for utilization reporting.
  Time busy_time(JobClass cls) const;
  double utilization() const;  // all classes, over time since construction

  // Crash support: discards all queued and running work without invoking
  // completion callbacks (the continuations died with the host) and zeroes
  // the load state. Service-time accounting survives — the host really did
  // burn those cycles before it died.
  void crash_reset();

 private:
  struct Job {
    CpuJobId id;
    JobClass cls;
    Time remaining;
    std::function<void()> on_done;
    bool alive = true;
    // Captured at submit(): jobs wait in this object's own queues, outside
    // the simulator's event-capture path, so the causal context must ride
    // along explicitly to reach on_done.
    trace::Context ctx;
  };

  struct Running {
    Job job;
    Time started;
    Time slice_end;  // when the scheduled slice event fires
    EventHandle event;
  };

  void maybe_start();
  void start(Job job);
  // Accounts service received by the running job up to now; returns it.
  Job preempt_running();
  void on_slice_end();
  void sample_load();
  std::deque<Job>& queue_for(JobClass cls);

  Simulator& sim_;
  const Costs& costs_;
  std::deque<Job> kernel_q_;
  std::deque<Job> user_q_;
  std::optional<Running> running_;
  CpuJobId next_id_ = 1;
  double load_avg_ = 0.0;
  double load_bias_ = 0.0;
  bool sampling_ = false;
  Time busy_kernel_;
  Time busy_user_;
};

}  // namespace sprite::sim
