#include "sim/cpu.h"

#include <algorithm>

#include "util/assert.h"

namespace sprite::sim {

Cpu::Cpu(Simulator& sim, const Costs& costs) : sim_(sim), costs_(costs) {}

void Cpu::start_load_sampling() {
  if (sampling_) return;
  sampling_ = true;
  sim_.every(costs_.load_sample_period, [this] { sample_load(); });
}

void Cpu::sample_load() {
  const double d = costs_.load_decay_per_sample;
  load_avg_ = d * load_avg_ + (1.0 - d) * static_cast<double>(runnable_users());
}

std::deque<Cpu::Job>& Cpu::queue_for(JobClass cls) {
  return cls == JobClass::kKernel ? kernel_q_ : user_q_;
}

CpuJobId Cpu::submit(JobClass cls, Time demand, std::function<void()> on_done) {
  SPRITE_CHECK_MSG(demand >= Time::zero(), "negative CPU demand");
  const CpuJobId id = next_id_++;
  Job job{id, cls, demand, std::move(on_done), true, sim_.trace().current()};

  if (demand == Time::zero()) {
    // Zero-demand jobs complete on the spot (but asynchronously, to keep
    // callback reentrancy simple).
    sim_.after(Time::zero(), [fn = std::move(job.on_done)] { fn(); });
    return id;
  }

  if (cls == JobClass::kKernel && running_ && running_->job.cls == JobClass::kUser) {
    // Kernel work preempts user work immediately.
    Job user = preempt_running();
    user_q_.push_front(std::move(user));  // resumes where it left off
  }

  queue_for(cls).push_back(std::move(job));
  maybe_start();
  return id;
}

Time Cpu::cancel(CpuJobId id) {
  if (running_ && running_->job.id == id) {
    running_->event.cancel();
    // Account the service it received so utilization stats stay truthful.
    const Time served = sim_.now() - running_->started;
    (running_->job.cls == JobClass::kKernel ? busy_kernel_ : busy_user_) +=
        served;
    Time remaining = running_->job.remaining - served;
    if (remaining < Time::zero()) remaining = Time::zero();
    running_.reset();
    maybe_start();
    return remaining;
  }
  for (auto* q : {&kernel_q_, &user_q_}) {
    for (auto& j : *q) {
      if (j.id == id && j.alive) {
        j.alive = false;  // skipped when it reaches the front
        return j.remaining;
      }
    }
  }
  return Time::zero();
}

int Cpu::runnable_users() const {
  int n = 0;
  for (const auto& j : user_q_)
    if (j.alive) ++n;
  if (running_ && running_->job.cls == JobClass::kUser) ++n;
  return n;
}

Time Cpu::busy_time(JobClass cls) const {
  Time t = cls == JobClass::kKernel ? busy_kernel_ : busy_user_;
  if (running_ && running_->job.cls == cls) t += sim_.now() - running_->started;
  return t;
}

double Cpu::utilization() const {
  const Time now = sim_.now();
  if (now <= Time::zero()) return 0.0;
  return (busy_time(JobClass::kKernel) + busy_time(JobClass::kUser)) / now;
}

void Cpu::crash_reset() {
  if (running_) {
    running_->event.cancel();
    const Time served = sim_.now() - running_->started;
    (running_->job.cls == JobClass::kKernel ? busy_kernel_ : busy_user_) +=
        served;
    running_.reset();
  }
  kernel_q_.clear();
  user_q_.clear();
  load_avg_ = 0.0;
  load_bias_ = 0.0;
}

Cpu::Job Cpu::preempt_running() {
  SPRITE_CHECK(running_);
  running_->event.cancel();
  const Time served = sim_.now() - running_->started;
  Job job = std::move(running_->job);
  (job.cls == JobClass::kKernel ? busy_kernel_ : busy_user_) += served;
  job.remaining -= served;
  if (job.remaining < Time::zero()) job.remaining = Time::zero();
  running_.reset();
  return job;
}

void Cpu::maybe_start() {
  if (running_) return;
  while (!kernel_q_.empty() && !kernel_q_.front().alive) kernel_q_.pop_front();
  while (!user_q_.empty() && !user_q_.front().alive) user_q_.pop_front();
  if (!kernel_q_.empty()) {
    Job j = std::move(kernel_q_.front());
    kernel_q_.pop_front();
    start(std::move(j));
  } else if (!user_q_.empty()) {
    Job j = std::move(user_q_.front());
    user_q_.pop_front();
    start(std::move(j));
  }
}

void Cpu::start(Job job) {
  const Time slice = job.cls == JobClass::kKernel
                         ? job.remaining
                         : std::min(job.remaining, costs_.quantum);
  Running r;
  r.started = sim_.now();
  r.slice_end = sim_.now() + slice;
  r.job = std::move(job);
  r.event = sim_.at(r.slice_end, [this] { on_slice_end(); });
  running_.emplace(std::move(r));
}

void Cpu::on_slice_end() {
  SPRITE_CHECK(running_);
  const Time served = sim_.now() - running_->started;
  Job job = std::move(running_->job);
  (job.cls == JobClass::kKernel ? busy_kernel_ : busy_user_) += served;
  job.remaining -= served;
  running_.reset();

  if (job.remaining <= Time::zero()) {
    auto on_done = std::move(job.on_done);
    const trace::Context ctx = job.ctx;
    maybe_start();
    if (on_done) {
      trace::ScopedContext scope(sim_.trace(), ctx);
      on_done();
    }
    return;
  }

  // Quantum expired with work left: round-robin to the back of the queue.
  user_q_.push_back(std::move(job));
  maybe_start();
}

}  // namespace sprite::sim
