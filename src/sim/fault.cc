#include "sim/fault.h"

#include <string>
#include <utility>

#include "util/assert.h"
#include "util/log.h"

namespace sprite::sim {

FaultPlan::FaultPlan(Simulator& sim, Network& net) : sim_(sim), net_(net) {
  auto& tr = sim_.trace();
  c_crashes_ = &tr.counter("fault.crash.injected");
  c_reboots_ = &tr.counter("fault.reboot.injected");
  c_dropped_ = &tr.counter("fault.message.dropped");
  c_delayed_ = &tr.counter("fault.message.delayed");
  c_links_cut_ = &tr.counter("fault.link.cut");
  c_links_healed_ = &tr.counter("fault.link.healed");
}

FaultPlan::~FaultPlan() { disarm(); }

void FaultPlan::crash_host(HostId h, Time at) {
  SPRITE_CHECK_MSG(!armed_, "FaultPlan script entries must precede arm()");
  crashes_.push_back(CrashEntry{h, at, false, Time::zero()});
}

void FaultPlan::crash_host(HostId h, Time at, Time reboot_after) {
  SPRITE_CHECK_MSG(!armed_, "FaultPlan script entries must precede arm()");
  crashes_.push_back(CrashEntry{h, at, true, reboot_after});
}

void FaultPlan::drop_message(Filter f, int nth) {
  SPRITE_CHECK_MSG(!armed_, "FaultPlan script entries must precede arm()");
  SPRITE_CHECK(nth >= 1);
  MessageRule r;
  r.filter = std::move(f);
  r.nth = nth;
  r.drop = true;
  rules_.push_back(std::move(r));
}

void FaultPlan::delay_message(Filter f, int nth, Time delay) {
  SPRITE_CHECK_MSG(!armed_, "FaultPlan script entries must precede arm()");
  SPRITE_CHECK(nth >= 1);
  MessageRule r;
  r.filter = std::move(f);
  r.nth = nth;
  r.drop = false;
  r.delay = delay;
  rules_.push_back(std::move(r));
}

void FaultPlan::cut_link(HostId src, HostId dst, Time from, Time until) {
  SPRITE_CHECK_MSG(!armed_, "FaultPlan script entries must precede arm()");
  links_.push_back(LinkEntry{src, dst, from, until});
}

void FaultPlan::partition(std::vector<HostId> a, std::vector<HostId> b,
                          Time from, Time until) {
  SPRITE_CHECK_MSG(!armed_, "FaultPlan script entries must precede arm()");
  for (HostId ha : a)
    for (HostId hb : b) {
      links_.push_back(LinkEntry{ha, hb, from, until});
      links_.push_back(LinkEntry{hb, ha, from, until});
    }
}

void FaultPlan::arm(Hooks hooks) {
  SPRITE_CHECK_MSG(!armed_, "FaultPlan armed twice");
  armed_ = true;
  hooks_ = std::move(hooks);

  for (const CrashEntry& e : crashes_) {
    events_.push_back(sim_.at(e.at, [this, e] {
      c_crashes_->inc();
      auto& tr = sim_.trace();
      if (tr.tracing())
        tr.instant("fault", "crash", e.host, -1,
                   {{"host", std::to_string(e.host)}});
      if (hooks_.crash) hooks_.crash(e.host);
    }));
    if (e.reboot) {
      events_.push_back(sim_.at(e.at + e.reboot_after, [this, e] {
        c_reboots_->inc();
        auto& tr = sim_.trace();
        if (tr.tracing())
          tr.instant("fault", "reboot", e.host, -1,
                     {{"host", std::to_string(e.host)}});
        if (hooks_.reboot) hooks_.reboot(e.host);
      }));
    }
  }

  for (const LinkEntry& e : links_) {
    events_.push_back(sim_.at(e.from, [this, e] {
      c_links_cut_->inc();
      auto& tr = sim_.trace();
      if (tr.tracing())
        tr.instant("fault", "link_cut", e.src, -1,
                   {{"dst", std::to_string(e.dst)}});
      net_.set_link_up(e.src, e.dst, false);
    }));
    if (e.until < Time::max()) {
      events_.push_back(sim_.at(e.until, [this, e] {
        c_links_healed_->inc();
        auto& tr = sim_.trace();
        if (tr.tracing())
          tr.instant("fault", "link_healed", e.src, -1,
                     {{"dst", std::to_string(e.dst)}});
        net_.set_link_up(e.src, e.dst, true);
      }));
    }
  }

  // Install the network hook only when message rules exist: a crash-only
  // (or empty) plan leaves the delivery path untouched.
  if (!rules_.empty())
    net_.set_fault_hook([this](const Packet& pkt) { return on_packet(pkt); });
}

void FaultPlan::disarm() {
  if (!armed_) return;
  armed_ = false;
  for (EventHandle& e : events_) e.cancel();
  events_.clear();
  // Heal anything the plan may have cut so a disarmed plan leaves the
  // network whole (idempotent for links that never went down).
  for (const LinkEntry& e : links_) net_.set_link_up(e.src, e.dst, true);
  if (!rules_.empty()) net_.set_fault_hook(nullptr);
}

FaultDecision FaultPlan::on_packet(const Packet& pkt) {
  FaultDecision d;
  auto& tr = sim_.trace();
  for (MessageRule& r : rules_) {
    if (r.fired || !r.filter(pkt)) continue;
    if (++r.seen < r.nth) continue;
    r.fired = true;
    if (r.drop) {
      d.drop = true;
      c_dropped_->inc();
      if (tr.tracing())
        tr.instant("fault", "message_dropped", pkt.src, -1,
                   {{"dst", std::to_string(pkt.dst)},
                    {"bytes", std::to_string(pkt.bytes)}});
      return d;  // dropped messages cannot also be delayed
    }
    d.delay += r.delay;
    c_delayed_->inc();
    if (tr.tracing())
      tr.instant("fault", "message_delayed", pkt.src, -1,
                 {{"dst", std::to_string(pkt.dst)},
                  {"delay_ms", std::to_string(r.delay.ms())}});
  }
  return d;
}

}  // namespace sprite::sim
