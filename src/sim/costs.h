// Calibration constants for the simulated Sprite cluster.
//
// These are the only places where "hardware speed" enters the simulation;
// every experiment's *shape* is produced by the mechanisms, while the scale
// comes from constants calibrated against the numbers the thesis and the
// companion journal paper [DO91] report for DECstation 3100 workstations on
// a 10 Mbit/s Ethernet:
//
//   - small kernel-to-kernel RPC round trip        ~1.6 ms
//   - exec-time migration of a null process        ~76 ms
//   - per open file transferred at migration       ~9.4 ms
//   - flushing dirty VM/file data through the FS   ~480 ms per megabyte
//   - select + release an idle host via migd       ~56 ms
//
// All constants can be overridden per experiment (e.g. to model a faster
// network for ablations).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace sprite::sim {

struct Costs {
  // ---- Network (shared-medium Ethernet model) ----
  // Propagation + interrupt handling per message.
  Time net_latency = Time::usec(200);
  // Effective payload bandwidth of the shared medium. The raw 10 Mbit/s
  // Ethernet moves ~1.25 MB/s; kernel networking on a DS3100 sustained
  // somewhat more than half of that on the bulk path, and the thesis's
  // 480 ms/MB flush figure folds in per-block FS overheads which we model
  // separately, so the medium itself is calibrated at 3.1 MB/s.
  double net_bytes_per_sec = 3.1e6;
  // Fixed wire+driver bytes per message (headers, trailers).
  std::int64_t net_msg_overhead_bytes = 64;

  // ---- RPC ----
  // CPU consumed on each side per RPC message (marshalling, dispatch).
  Time rpc_cpu_per_msg = Time::usec(300);
  // Initial retransmission timeout and retry limit. Subsequent
  // retransmission intervals use decorrelated jitter — uniform in
  // [rpc_timeout, 3 * previous] capped at rpc_backoff_cap — so a cluster of
  // clients hammering a silent server desynchronises instead of
  // retransmitting in lockstep.
  Time rpc_timeout = Time::msec(500);
  int rpc_max_retries = 4;
  Time rpc_backoff_cap = Time::sec(4);
  // At-most-once dedup cache capacity per server (completed slots are
  // evicted LRU beyond this; in-progress slots are never evicted).
  std::int64_t rpc_dedup_cap = 4096;

  // ---- Failure detection (src/recov/monitor.h) ----
  // Period of the monitor tick: watched peers not heard from within one
  // interval are sent a low-cost echo.
  Time recov_echo_interval = Time::sec(2);
  // A suspect peer still silent this long after suspicion began is declared
  // down.
  Time recov_down_after = Time::sec(6);

  // ---- File system ----
  std::int64_t block_size = 4096;
  // Server CPU per pathname component during lookup (directory search,
  // block touches). Sprite had no client name caching, so EVERY open pays
  // this on the server — Nelson measured name lookups as the dominant
  // server load and estimated client caching would halve it. This constant
  // drives the pmake saturation in experiment E3.
  Time fs_lookup_cpu_per_component = Time::msec(4.0);
  // Server CPU per open/close beyond lookup.
  Time fs_open_cpu = Time::usec(500);
  // Server CPU per block read/write request it serves.
  Time fs_block_cpu = Time::usec(150);
  // Disk access for a block missing from the server cache.
  Time fs_disk_access = Time::msec(15);
  // Client cache writeback delay (dirty blocks are flushed this long after
  // being written, as in Sprite's 30-second delayed writes).
  Time fs_writeback_delay = Time::sec(30);
  // Server block cache capacity, in blocks (per server).
  std::int64_t fs_server_cache_blocks = 16384;   // 64 MB
  // Client block cache capacity, in blocks (per workstation).
  std::int64_t fs_client_cache_blocks = 4096;    // 16 MB
  // Pipe buffer capacity at the server (4.3BSD used 4 KB; Sprite's
  // pseudo-device buffers were larger).
  std::int64_t pipe_capacity = 16 * 1024;

  // ---- Virtual memory ----
  std::int64_t page_size = 4096;
  // CPU to service a page fault excluding the transfer itself.
  Time vm_fault_cpu = Time::usec(400);

  // ---- Process management ----
  Time quantum = Time::msec(100);         // user-process timeslice
  Time fork_cpu = Time::msec(2);          // PCB + table setup
  Time exec_cpu = Time::msec(8);          // image setup, argument copying
  Time syscall_cpu = Time::usec(50);      // local kernel-call overhead
  Time load_sample_period = Time::sec(1); // load-average sampling
  double load_decay_per_sample = 0.92;    // ~1-minute EWMA at 1 Hz

  // ---- Migration ----
  // CPU to encapsulate / deencapsulate the process control block and
  // machine-dependent state on each side.
  Time mig_encapsulate_cpu = Time::msec(18);
  Time mig_deencapsulate_cpu = Time::msec(16);
  // Per-stream CPU beyond the I/O-server RPCs (matches the 9.4 ms/file
  // figure once the RPC is added).
  Time mig_stream_cpu = Time::msec(7);
  // Process-table update on the home machine when a process arrives/leaves.
  Time mig_host_update_cpu = Time::msec(3);
  // Wire size of an encapsulated PCB (registers, ids, signal state, ...).
  std::int64_t mig_pcb_bytes = 4096;
  std::int64_t mig_per_stream_bytes = 256;

  // ---- Checkpoint/restart (src/ckpt/) ----
  // CPU to serialize / deserialize the PCB record and page maps on capture
  // and restart (sibling of the migration encapsulation costs).
  Time ckpt_capture_cpu = Time::msec(18);
  Time ckpt_restore_cpu = Time::msec(16);
  // Autocheckpoint policy defaults: scan period, capture when this much
  // time passed since the last capture or this many pages were dirtied.
  Time ckpt_auto_interval = Time::sec(30);
  std::int64_t ckpt_dirty_threshold_pages = 256;
  // Incremental checkpoints chained to one full base; after this many
  // increments the next capture writes a fresh base and compacts the old
  // chain away.
  int ckpt_chain_max = 4;

  // ---- Load sharing ----
  // migd's CPU per request it serves (queue management, fairness checks,
  // logging). Calibrated with pdev_wakeup so one migd transaction lands
  // near 28 ms and select+release near the thesis's 56 ms.
  Time migd_request_cpu = Time::msec(8);
  // Pseudo-device wakeup latency: time from request arrival to the
  // user-level daemon running (scheduling + context switch).
  Time pdev_wakeup = Time::msec(18);
  // A host is idle when it has seen no user input for this long and its
  // load average is below the threshold.
  Time idle_input_threshold = Time::sec(30);
  double idle_load_threshold = 0.30;
  // Period between a host's availability updates to the selection facility.
  Time ls_update_period = Time::sec(5);
  // MOSIX-style probabilistic exchange: send own vector to this many random
  // hosts each period, and age out entries older than this.
  int ls_gossip_fanout = 2;
  Time ls_gossip_period = Time::sec(1);
  Time ls_entry_max_age = Time::sec(10);
  // Multicast responders wait uniform [0, this] before answering, so the
  // requester is not flooded by simultaneous replies.
  Time ls_multicast_backoff = Time::msec(20);

  // Derived helpers -------------------------------------------------------

  Time wire_time(std::int64_t payload_bytes) const {
    const double bytes =
        static_cast<double>(payload_bytes + net_msg_overhead_bytes);
    return Time::sec(bytes / net_bytes_per_sec);
  }

  std::int64_t pages_to_bytes(std::int64_t pages) const {
    return pages * page_size;
  }
};

// A reasonable default cluster calibration (see header comment).
inline const Costs& default_costs() {
  static const Costs c{};
  return c;
}

}  // namespace sprite::sim
