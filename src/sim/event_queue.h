// Discrete-event queue: the heart of the simulator.
//
// Events fire in (time, insertion-sequence) order, so same-time events run in
// the order they were scheduled — this plus per-component RNG streams makes
// every run bit-for-bit deterministic.
//
// Cancellation is lazy: a cancelled event's tombstone flag is flipped and the
// entry is discarded when it reaches the front of the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace sprite::sim {

// Handle that can cancel a pending event. Default-constructed handles are
// inert. Cancelling an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`. The Simulator enforces that `at` is
  // never earlier than the current simulated time.
  EventHandle schedule(Time at, std::function<void()> fn);

  // True when no live (uncancelled) events remain.
  bool empty() const;

  // Time of the earliest live event. Precondition: !empty().
  Time next_time() const;

  // Removes and returns the earliest live event (its time and callback).
  // Precondition: !empty().
  std::pair<Time, std::function<void()>> pop();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    // shared_ptr so EventHandle can outlive the queue safely.
    std::shared_ptr<bool> alive;
    mutable std::function<void()> fn;  // moved out on pop
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  // Discards cancelled entries at the front.
  void drop_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sprite::sim
