#include "sim/time.h"

#include <cstdio>

namespace sprite::sim {

std::string Time::to_string() const {
  char buf[48];
  if (us_ < 1000) {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  } else if (us_ < 1000 * 1000) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms());
  } else if (us_ < 3600LL * 1000 * 1000) {
    std::snprintf(buf, sizeof buf, "%.3fs", s());
  } else {
    std::snprintf(buf, sizeof buf, "%.2fh", h());
  }
  return buf;
}

}  // namespace sprite::sim
