#include "sim/event_queue.h"

#include "util/assert.h"

namespace sprite::sim {

EventHandle EventQueue::schedule(Time at, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  pq_.push(Entry{at, next_seq_++, alive, std::move(fn)});
  return EventHandle(alive);
}

void EventQueue::drop_dead() const {
  while (!pq_.empty() && !*pq_.top().alive) pq_.pop();
}

bool EventQueue::empty() const {
  drop_dead();
  return pq_.empty();
}

Time EventQueue::next_time() const {
  drop_dead();
  SPRITE_CHECK_MSG(!pq_.empty(), "next_time on empty queue");
  return pq_.top().at;
}

std::pair<Time, std::function<void()>> EventQueue::pop() {
  drop_dead();
  SPRITE_CHECK_MSG(!pq_.empty(), "pop on empty queue");
  const Entry& top = pq_.top();
  *top.alive = false;  // fired events are no longer pending
  std::pair<Time, std::function<void()>> out{top.at, std::move(top.fn)};
  pq_.pop();
  return out;
}

}  // namespace sprite::sim
