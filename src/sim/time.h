// Simulated time.
//
// One strong type is used for both instants and durations (the simulation
// epoch is 0, so the distinction carries no information here, and a single
// type keeps arithmetic in kernel code light). Resolution is one microsecond,
// which is finer than any cost constant in the calibration model.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace sprite::sim {

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time usec(std::int64_t v) { return Time(v); }
  static constexpr Time msec(double v) {
    return Time(static_cast<std::int64_t>(v * 1e3));
  }
  static constexpr Time sec(double v) {
    return Time(static_cast<std::int64_t>(v * 1e6));
  }
  static constexpr Time minutes(double v) { return sec(v * 60.0); }
  static constexpr Time hours(double v) { return sec(v * 3600.0); }
  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() { return Time(INT64_MAX); }

  constexpr std::int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  constexpr double s() const { return static_cast<double>(us_) / 1e6; }
  constexpr double h() const { return s() / 3600.0; }

  constexpr Time operator+(Time o) const { return Time(us_ + o.us_); }
  constexpr Time operator-(Time o) const { return Time(us_ - o.us_); }
  constexpr Time& operator+=(Time o) { us_ += o.us_; return *this; }
  constexpr Time& operator-=(Time o) { us_ -= o.us_; return *this; }
  constexpr Time operator*(double k) const {
    return Time(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }
  constexpr Time operator/(std::int64_t k) const { return Time(us_ / k); }
  constexpr double operator/(Time o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }

  constexpr auto operator<=>(const Time&) const = default;

  std::string to_string() const;  // e.g. "12.345ms", "3.2s"

 private:
  constexpr explicit Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace sprite::sim
