#include "sim/network.h"

#include "util/assert.h"
#include "util/log.h"

namespace sprite::sim {

Network::Network(Simulator& sim, const Costs& costs)
    : sim_(sim), costs_(costs) {}

HostId Network::attach(Handler handler) {
  hosts_.push_back(HostSlot{std::move(handler), true});
  return static_cast<HostId>(hosts_.size() - 1);
}

void Network::set_host_up(HostId h, bool up) {
  SPRITE_CHECK(h >= 0 && static_cast<std::size_t>(h) < hosts_.size());
  hosts_[static_cast<std::size_t>(h)].up = up;
}

bool Network::host_up(HostId h) const {
  SPRITE_CHECK(h >= 0 && static_cast<std::size_t>(h) < hosts_.size());
  return hosts_[static_cast<std::size_t>(h)].up;
}

void Network::set_link_up(HostId src, HostId dst, bool up) {
  SPRITE_CHECK(src >= 0 && static_cast<std::size_t>(src) < hosts_.size());
  SPRITE_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < hosts_.size());
  if (up)
    cut_links_.erase({src, dst});
  else
    cut_links_.insert({src, dst});
}

bool Network::link_up(HostId src, HostId dst) const {
  return cut_links_.empty() || cut_links_.count({src, dst}) == 0;
}

Time Network::reserve_medium(std::int64_t bytes) {
  const Time tx = costs_.wire_time(bytes);
  const Time start = std::max(sim_.now(), medium_free_at_);
  medium_free_at_ = start + tx;
  busy_ += tx;
  ++messages_;
  bytes_ += bytes;
  return medium_free_at_ + costs_.net_latency;
}

void Network::send(HostId src, HostId dst, std::int64_t bytes,
                   std::any payload) {
  SPRITE_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < hosts_.size());
  if (!host_up(src)) return;  // a down host cannot transmit
  // A down destination still lets the sender occupy the wire; the message is
  // simply never received (the RPC layer's timeout handles it).
  Time deliver_at = reserve_medium(bytes);
  // A cut link behaves like a down destination: the sender held the medium,
  // the bits went nowhere. Checked after medium reservation so timing is
  // identical whether the loss was a partition or a dead host.
  if (!link_up(src, dst)) return;
  Packet out{src, dst, bytes, std::move(payload)};
  if (fault_hook_) {
    const FaultDecision d = fault_hook_(out);
    if (d.drop) return;  // transmitted but lost; the medium was still held
    deliver_at += d.delay;
  }
  sim_.at(deliver_at,
          [this, pkt = std::move(out)]() {
            auto& slot = hosts_[static_cast<std::size_t>(pkt.dst)];
            if (slot.up && slot.handler) slot.handler(pkt);
          });
}

void Network::multicast(HostId src, std::int64_t bytes, std::any payload) {
  if (!host_up(src)) return;
  const Time deliver_at = reserve_medium(bytes);
  sim_.at(deliver_at,
          [this, pkt = Packet{src, kInvalidHost, bytes, std::move(payload)}]() {
            for (std::size_t h = 0; h < hosts_.size(); ++h) {
              const HostId dst = static_cast<HostId>(h);
              if (dst == pkt.src) continue;
              if (!link_up(pkt.src, dst)) continue;
              auto& slot = hosts_[h];
              if (slot.up && slot.handler) slot.handler(pkt);
            }
          });
}

double Network::utilization() const {
  const Time window = sim_.now() - stats_epoch_;
  if (window <= Time::zero()) return 0.0;
  return busy_ / window;
}

void Network::reset_stats() {
  messages_ = 0;
  bytes_ = 0;
  busy_ = Time::zero();
  stats_epoch_ = sim_.now();
}

}  // namespace sprite::sim
