// The Simulator: simulated clock + event loop + root RNG + trace registry.
//
// All kernel mechanisms in this repository are event-driven objects hanging
// off one Simulator. A run is deterministic given the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace sprite::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` at absolute simulated time `t` (>= now).
  EventHandle at(Time t, std::function<void()> fn);

  // Schedules `fn` after a delay (>= 0).
  EventHandle after(Time delay, std::function<void()> fn);

  // Recurring background activity (load sampling, cache writeback, user
  // activity). Re-arms itself after each firing until `until` (defaults to
  // the simulator horizon at each re-arm, so extending the horizon extends
  // recurring activity).
  void every(Time period, std::function<void()> fn,
             Time until = Time::max());

  // The horizon bounds recurring events so the event queue drains once real
  // work completes. Experiments set it once, generously.
  void set_horizon(Time t) { horizon_ = t; }
  Time horizon() const { return horizon_; }

  // Fires the next event if any; returns false when the queue is empty.
  bool step();

  // Runs every event scheduled at or before `t`, then advances the clock
  // to `t` even if the queue drained earlier.
  void run_until(Time t);

  // Runs until `done` returns true or the queue empties. Returns the value
  // of `done()` at exit (false means the simulation starved first).
  bool run_while_pending(const std::function<bool()>& done);

  // Drains the queue completely (recurring events stop at the horizon).
  void run();

  // Independent RNG stream for a component.
  util::Rng fork_rng() { return rng_.fork(); }
  util::Rng& rng() { return rng_; }

  // Unified metrics + tracing registry for everything attached to this
  // simulator. Metrics are always collected; event tracing is off until
  // trace().set_tracing(true).
  trace::Registry& trace() { return *trace_; }
  const trace::Registry& trace() const { return *trace_; }

 private:
  Time now_;
  Time horizon_ = Time::hours(24);
  EventQueue queue_;
  util::Rng rng_;
  std::unique_ptr<trace::Registry> trace_;
};

}  // namespace sprite::sim
