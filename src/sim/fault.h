// Deterministic fault injection.
//
// A FaultPlan is a scripted schedule of failures — crash host H at time T,
// reboot it D later, drop or delay the N-th network message matching a
// filter — driven entirely off the simulated clock and the shared-medium
// network, so the same seed plus the same plan replays bit-for-bit.
//
// The plan itself is policy-free: it does not know what "crash" means to a
// kernel. The caller arms it with Hooks (normally Cluster::crash_host /
// reboot_host) and the plan fires them at the scripted instants. Message
// faults install Network::set_fault_hook; filters are composed by the
// caller, typically from rpc::RpcNode::match_request / match_reply so a
// plan can say "drop the 2nd kMigration transfer request to host 3".
//
// Everything a plan does is mirrored into the trace registry: `fault.*`
// counters always, instant events when tracing is enabled. An armed plan
// with no entries is observationally identical to no plan at all.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/ids.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sprite::sim {

class FaultPlan {
 public:
  using Filter = std::function<bool(const Packet&)>;
  struct Hooks {
    std::function<void(HostId)> crash;
    std::function<void(HostId)> reboot;
  };

  FaultPlan(Simulator& sim, Network& net);
  ~FaultPlan();  // disarms

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // ---- Script entries (call before arm()) ----
  // Crash `h` at absolute time `at`; optionally reboot it `reboot_after`
  // later.
  void crash_host(HostId h, Time at);
  void crash_host(HostId h, Time at, Time reboot_after);
  // Drop the nth (1-based) message matching `f` seen after arming.
  void drop_message(Filter f, int nth = 1);
  // Delay the nth matching message by `delay` instead of dropping it.
  void delay_message(Filter f, int nth, Time delay);
  // Symmetric partition: every link between side `a` and side `b` is cut at
  // `from` and healed at `until` (pass Time::max() — the default — for a
  // partition that never heals). Hosts on both sides stay alive; only their
  // mutual traffic is lost.
  void partition(std::vector<HostId> a, std::vector<HostId> b, Time from,
                 Time until = Time::max());
  // One-way link loss: messages src->dst vanish during [from, until);
  // dst->src traffic still flows (the asymmetric case RPC must survive).
  void cut_link(HostId src, HostId dst, Time from, Time until = Time::max());

  // Schedules the crash/reboot events and installs the network fault hook
  // (only when the plan contains message rules). Call at most once.
  void arm(Hooks hooks);
  // Removes the network hook; scheduled crash/reboot events are cancelled.
  void disarm();

  bool armed() const { return armed_; }

 private:
  struct CrashEntry {
    HostId host = kInvalidHost;
    Time at;
    bool reboot = false;
    Time reboot_after;
  };
  struct MessageRule {
    Filter filter;
    std::int64_t seen = 0;  // matching messages observed so far
    std::int64_t nth = 1;
    bool drop = true;
    Time delay;
    bool fired = false;
  };
  struct LinkEntry {
    HostId src = kInvalidHost;
    HostId dst = kInvalidHost;
    Time from;
    Time until;  // Time::max() = never heals
  };

  FaultDecision on_packet(const Packet& pkt);

  Simulator& sim_;
  Network& net_;
  bool armed_ = false;
  Hooks hooks_;
  std::vector<CrashEntry> crashes_;
  std::vector<MessageRule> rules_;
  std::vector<LinkEntry> links_;
  std::vector<EventHandle> events_;

  trace::Counter* c_crashes_;
  trace::Counter* c_reboots_;
  trace::Counter* c_dropped_;
  trace::Counter* c_delayed_;
  trace::Counter* c_links_cut_;
  trace::Counter* c_links_healed_;
};

}  // namespace sprite::sim
