// Shared-medium network model (10 Mbit/s Ethernet flavour).
//
// All hosts share one transmission medium: a message occupies the medium for
// its transmission time, so concurrent senders queue — this is what makes
// bulk VM transfers and multicast host-selection storms contend realistically.
// Delivery is reliable and ordered per medium (Ethernet loss is folded into
// the RPC timeout/retransmission machinery, which is exercised by explicitly
// downing hosts).
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "sim/costs.h"
#include "sim/ids.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sprite::sim {

// A delivered message. `payload` is opaque to the network; the RPC layer
// stores its own message types inside.
struct Packet {
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;  // kInvalidHost for multicast
  std::int64_t bytes = 0;
  std::any payload;
};

// Verdict of the fault hook for one message. A dropped message still
// occupies the medium (the sender transmitted; the bits were lost), so
// timing downstream of a drop stays deterministic.
struct FaultDecision {
  bool drop = false;
  Time delay;  // extra delivery latency (zero = none)
};

class Network {
 public:
  using Handler = std::function<void(const Packet&)>;
  using FaultHook = std::function<FaultDecision(const Packet&)>;

  Network(Simulator& sim, const Costs& costs);

  // Registers the receive handler for a host; returns its HostId.
  HostId attach(Handler handler);

  std::size_t num_hosts() const { return hosts_.size(); }

  // A down host silently drops incoming and outgoing messages.
  void set_host_up(HostId h, bool up);
  bool host_up(HostId h) const;

  // Directed link control (partitions). A cut link src->dst loses every
  // unicast after the sender has occupied the medium — exactly like a down
  // destination, except both ends stay alive and neither can tell the
  // difference from a crash without an epoch handshake. Multicasts are
  // delivered only over up links. Links default to up and are independent
  // per direction; cut both to model a symmetric partition.
  void set_link_up(HostId src, HostId dst, bool up);
  bool link_up(HostId src, HostId dst) const;

  // Sends `bytes` of payload from src to dst. Delivery time reflects medium
  // queuing + transmission + latency.
  void send(HostId src, HostId dst, std::int64_t bytes, std::any payload);

  // One transmission delivered to every up host except the sender.
  void multicast(HostId src, std::int64_t bytes, std::any payload);

  // Fault injection (sim/fault.h): consulted for every unicast send while
  // installed. No hook means zero behavioural difference — not even an
  // extra branch in the delivery path's timing.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // ---- Statistics ----
  std::int64_t messages_sent() const { return messages_; }
  std::int64_t bytes_sent() const { return bytes_; }
  // Fraction of [0, now] the medium spent transmitting.
  double utilization() const;
  void reset_stats();

 private:
  // Returns the delivery time for a message of `bytes`, advancing the
  // medium's busy horizon.
  Time reserve_medium(std::int64_t bytes);

  Simulator& sim_;
  const Costs& costs_;
  struct HostSlot {
    Handler handler;
    bool up = true;
  };
  std::vector<HostSlot> hosts_;
  // Cut directed links; empty in the fault-free case so the delivery path
  // pays one set lookup only while a partition is actually in effect.
  std::set<std::pair<HostId, HostId>> cut_links_;
  FaultHook fault_hook_;
  Time medium_free_at_;
  std::int64_t messages_ = 0;
  std::int64_t bytes_ = 0;
  Time busy_;
  Time stats_epoch_;
};

}  // namespace sprite::sim
