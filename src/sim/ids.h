// Small identifier types shared across modules.
#pragma once

#include <cstdint>

namespace sprite::sim {

// Index of a host on the simulated network. Host 0..N-1; kInvalidHost marks
// "no host".
using HostId = std::int32_t;
inline constexpr HostId kInvalidHost = -1;

}  // namespace sprite::sim
