#include "sim/simulator.h"

#include "util/assert.h"
#include "util/log.h"

namespace sprite::sim {

Simulator::Simulator(std::uint64_t seed)
    : rng_(seed),
      trace_(std::make_unique<trace::Registry>([this] { return now_.us(); })) {
  util::set_log_time_source([this] { return now_.us(); });
}

Simulator::~Simulator() { util::set_log_time_source(nullptr); }

EventHandle Simulator::at(Time t, std::function<void()> fn) {
  SPRITE_CHECK_MSG(t >= now_, "scheduling into the past");
  // Causal context follows the work: an event scheduled while a traced
  // operation is ambient runs under that same context, so continuation
  // chains (RPC handling, network delivery, timer callbacks) inherit their
  // trace without any per-subsystem plumbing. Free when no trace is active.
  if (const trace::Context ctx = trace_->current(); ctx.valid()) {
    return queue_.schedule(t, [this, ctx, fn = std::move(fn)] {
      trace::ScopedContext scope(*trace_, ctx);
      fn();
    });
  }
  return queue_.schedule(t, std::move(fn));
}

EventHandle Simulator::after(Time delay, std::function<void()> fn) {
  SPRITE_CHECK_MSG(delay >= Time::zero(), "negative delay");
  return at(now_ + delay, std::move(fn));
}

void Simulator::every(Time period, std::function<void()> fn, Time until) {
  SPRITE_CHECK_MSG(period > Time::zero(), "non-positive period");
  const Time next = now_ + period;
  if (next > until || next > horizon_) return;
  at(next, [this, period, fn = std::move(fn), until]() mutable {
    fn();
    every(period, std::move(fn), until);
  });
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [t, fn] = queue_.pop();
  SPRITE_CHECK_MSG(t >= now_, "event queue time went backwards");
  now_ = t;
  fn();
  return true;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  if (now_ < t) now_ = t;
}

bool Simulator::run_while_pending(const std::function<bool()>& done) {
  while (!done()) {
    if (!step()) return false;
  }
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace sprite::sim
