// RPC wire messages for the file system protocol.
//
// Three services:
//   kFsName     (client -> server): open/close/unlink/mkdir/stat/truncate
//   kFsIo       (client -> server): block reads/writes, server-managed stream
//                                   offsets, stream migration
//   kFsCallback (server -> client): cache consistency callbacks (recall dirty
//                                   blocks, disable caching)
#pragma once

#include <cstdint>
#include <string>

#include "fs/types.h"
#include "rpc/rpc.h"

namespace sprite::fs {

// ---- kFsName ops ----
enum class NameOp : int {
  kOpen = 1,
  kClose,
  kUnlink,
  kMkdir,
  kStat,
  kRegisterPdev,
  kCreatePipe,
};

struct OpenReq : rpc::Message {
  std::string path;
  OpenFlags flags;
  // Client name-cache hint: when set, the server resolves by inode and
  // skips the per-component pathname lookup (the thesis's future-work
  // optimization; Nelson estimated it would halve server load). The server
  // falls back to a full lookup if the hint is stale.
  Ino hint = kInvalidIno;
  std::int64_t wire_bytes() const override {
    return 24 + static_cast<std::int64_t>(path.size());
  }
};

struct OpenRep : rpc::Message {
  OpenResult result;
  std::int64_t wire_bytes() const override { return 64; }
};

struct CloseReq : rpc::Message {
  FileId id;
  OpenFlags flags;  // the flags the file was opened with
  std::int64_t gen = 0;  // server boot generation from the open
  std::int64_t wire_bytes() const override { return 40; }
};

struct PathReq : rpc::Message {  // unlink / mkdir / stat
  std::string path;
  std::int64_t wire_bytes() const override {
    return 8 + static_cast<std::int64_t>(path.size());
  }
};

struct StatRep : rpc::Message {
  StatResult st;
  std::int64_t wire_bytes() const override { return 48; }
};

struct RegisterPdevReq : rpc::Message {
  std::string path;
  sim::HostId owner_host = sim::kInvalidHost;
  int tag = 0;
  std::int64_t wire_bytes() const override {
    return 16 + static_cast<std::int64_t>(path.size());
  }
};

// ---- kFsIo ops ----
enum class IoOp : int {
  kRead = 1,        // byte-range read (server side handles blocks/disk)
  kWrite,           // byte-range write
  kGroupRead,       // read via server-managed shared access position
  kGroupWrite,      // write via server-managed shared access position
  kShareOffset,     // promote a stream group's offset to server management
  kMigrateStream,   // move a stream's open attribution between client hosts
  kTruncate,
  kPipeRead,        // consume from a pipe buffer (kWouldBlock when empty)
  kPipeWrite,       // append to a pipe buffer (kWouldBlock when full)
};

struct ReadReq : rpc::Message {
  FileId id;
  std::int64_t offset = 0;
  std::int64_t len = 0;
  std::int64_t gen = 0;  // server boot generation from the open
  std::int64_t wire_bytes() const override { return 48; }
};

struct ReadRep : rpc::Message {
  Bytes data;
  std::int64_t wire_bytes() const override {
    return 16 + static_cast<std::int64_t>(data.size());
  }
};

struct WriteReq : rpc::Message {
  FileId id;
  std::int64_t offset = 0;
  Bytes data;
  std::int64_t gen = 0;
  std::int64_t wire_bytes() const override {
    return 32 + static_cast<std::int64_t>(data.size());
  }
};

struct WriteRep : rpc::Message {
  std::int64_t written = 0;
  std::int64_t new_size = 0;
  std::int64_t wire_bytes() const override { return 16; }
};

// Shared (server-managed) access positions, keyed by stream group.
struct GroupIoReq : rpc::Message {
  FileId id;
  std::int64_t group = 0;
  std::int64_t len = 0;   // for kGroupRead
  Bytes data;             // for kGroupWrite
  std::int64_t gen = 0;
  std::int64_t wire_bytes() const override {
    return 48 + static_cast<std::int64_t>(data.size());
  }
};

struct GroupIoRep : rpc::Message {
  Bytes data;                 // for reads
  std::int64_t written = 0;   // for writes
  std::int64_t new_offset = 0;
  std::int64_t wire_bytes() const override {
    return 24 + static_cast<std::int64_t>(data.size());
  }
};

struct ShareOffsetReq : rpc::Message {
  FileId id;
  std::int64_t group = 0;
  std::int64_t offset = 0;  // current offset, transferred to the server
  std::int64_t gen = 0;
  std::int64_t wire_bytes() const override { return 48; }
};

struct MigrateStreamReq : rpc::Message {
  FileId id;
  OpenFlags flags;
  sim::HostId from = sim::kInvalidHost;
  sim::HostId to = sim::kInvalidHost;
  // True when other processes remaining on the source still share this
  // stream (a fork-shared descriptor migrated): the destination gains a
  // reference without the source losing its own.
  bool retain_source = false;
  std::int64_t gen = 0;
  std::int64_t wire_bytes() const override { return 56; }
};

struct MigrateStreamRep : rpc::Message {
  // Cacheability of the file as seen from the destination host after the
  // move (migration may create write sharing and disable caching).
  bool cacheable = true;
  std::int64_t version = 0;
  std::int64_t size = 0;
  std::int64_t generation = 0;  // destination stamps its streams with this
  std::int64_t wire_bytes() const override { return 32; }
};

struct TruncateReq : rpc::Message {
  FileId id;
  std::int64_t size = 0;
  std::int64_t gen = 0;
  std::int64_t wire_bytes() const override { return 40; }
};

struct CreatePipeRep : rpc::Message {
  FileId id;
  std::int64_t generation = 0;
  std::int64_t wire_bytes() const override { return 32; }
};

struct PipeIoReq : rpc::Message {
  FileId id;
  std::int64_t len = 0;  // read
  Bytes data;            // write
  std::int64_t gen = 0;
  std::int64_t wire_bytes() const override {
    return 40 + static_cast<std::int64_t>(data.size());
  }
};

struct PipeIoRep : rpc::Message {
  Bytes data;               // read results
  std::int64_t written = 0; // write results
  bool eof = false;         // read: no writers remain and buffer drained
  std::int64_t wire_bytes() const override {
    return 24 + static_cast<std::int64_t>(data.size());
  }
};

// ---- kFsCallback ops (server -> client) ----
enum class CallbackOp : int {
  kRecallDirty = 1,  // flush dirty blocks of `id` back to the server
  kDisableCache,     // stop caching `id`; flush dirty blocks first
  kPipeReady,        // a parked pipe operation may be retried
};

struct CallbackReq : rpc::Message {
  FileId id;
  std::int64_t wire_bytes() const override { return 24; }
};

}  // namespace sprite::fs
