// Shared types for the Sprite network file system substrate.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/ids.h"

namespace sprite::fs {

// Inode number, unique per server.
using Ino = std::int64_t;
inline constexpr Ino kInvalidIno = -1;

// Globally unique file identity: (I/O server, inode).
struct FileId {
  sim::HostId server = sim::kInvalidHost;
  Ino ino = kInvalidIno;

  bool valid() const { return server != sim::kInvalidHost; }
  auto operator<=>(const FileId&) const = default;
};

enum class FileType : std::uint8_t {
  kRegular,
  kDirectory,
  kPseudoDevice,
  // An IPC pipe: a kernel buffer resident at the file server. Reader and
  // writer ends are ordinary streams, so migration re-attributes them with
  // the same machinery as files — the buffer itself never moves, and
  // neither endpoint can tell where the other runs.
  kPipe,
};

// Open flags, 4.3BSD-flavoured.
struct OpenFlags {
  bool read = false;
  bool write = false;
  bool create = false;
  bool truncate = false;
  // Bypass the client block cache (used for VM backing files: Sprite's
  // virtual memory pages through the FS but does not pollute the block
  // cache with page traffic).
  bool no_cache = false;

  static OpenFlags read_only() { return {.read = true}; }
  static OpenFlags write_only() { return {.write = true}; }
  static OpenFlags read_write() { return {.read = true, .write = true}; }
  static OpenFlags create_rw() {
    return {.read = true, .write = true, .create = true};
  }
};

using Bytes = std::vector<std::uint8_t>;

// What the name server returns from a successful open.
struct OpenResult {
  FileId id;
  FileType type = FileType::kRegular;
  std::int64_t size = 0;
  // Incremented each time a client opens the file for writing; clients use
  // it to validate cached blocks across opens.
  std::int64_t version = 0;
  // False when concurrent write sharing forces all clients to bypass their
  // caches for this file.
  bool cacheable = true;
  // For pseudo-devices: host running the user-level server, and its tag.
  sim::HostId pdev_host = sim::kInvalidHost;
  int pdev_tag = 0;
  // Server boot generation at open time. I/O requests carry it back; after
  // a server crash the generation moves and old streams get Err::kStale,
  // forcing the client through reopen-recovery (handles do not survive a
  // server reboot — Sprite's stateful-server recovery model).
  std::int64_t generation = 0;
};

struct StatResult {
  FileId id;
  FileType type = FileType::kRegular;
  std::int64_t size = 0;
  std::int64_t version = 0;
};

// Splits "/a/b/c" into {"a","b","c"}. Empty components are dropped.
std::vector<std::string> split_path(const std::string& path);

// Number of pathname components (lookup cost driver).
int path_components(const std::string& path);

}  // namespace sprite::fs
