#include "fs/client.h"

#include <algorithm>

#include "fs/pdev.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::fs {

using rpc::Reply;
using rpc::Request;
using rpc::ServiceId;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Status;

FsClient::FsClient(sim::Simulator& sim, sim::Cpu& cpu, rpc::RpcNode& rpc,
                   const sim::Costs& costs)
    : sim_(sim), cpu_(cpu), rpc_(rpc), costs_(costs) {
  trace::Registry& tr = sim_.trace();
  const sim::HostId self = rpc_.host();
  c_cache_hit_ = &tr.counter("fs.client.block.hit", self);
  c_cache_miss_ = &tr.counter("fs.client.block.miss", self);
  c_remote_reads_ = &tr.counter("fs.client.read.sent", self);
  c_remote_writes_ = &tr.counter("fs.client.write.sent", self);
  c_name_hits_ = &tr.counter("fs.client.name_cache.hit", self);
  c_name_stale_ = &tr.counter("fs.client.name_cache.stale", self);
  c_writeback_bytes_ = &tr.counter("fs.client.writeback.bytes", self);
  c_recalls_ = &tr.counter("fs.client.recall.served", self);
  c_cache_disables_ = &tr.counter("fs.client.cache.disabled", self);
  c_stale_reopens_ = &tr.counter("fs.client.stale.reopen", self);
}

const FsClient::Stats& FsClient::stats() const {
  stats_view_.cache_hit_blocks = c_cache_hit_->value();
  stats_view_.cache_miss_blocks = c_cache_miss_->value();
  stats_view_.remote_reads = c_remote_reads_->value();
  stats_view_.remote_writes = c_remote_writes_->value();
  stats_view_.name_cache_hits = c_name_hits_->value();
  stats_view_.name_cache_stale = c_name_stale_->value();
  stats_view_.writeback_bytes = c_writeback_bytes_->value();
  stats_view_.recalls_served = c_recalls_->value();
  stats_view_.cache_disables = c_cache_disables_->value();
  return stats_view_;
}

void FsClient::reset_stats() {
  c_cache_hit_->reset();
  c_cache_miss_->reset();
  c_remote_reads_->reset();
  c_remote_writes_->reset();
  c_name_hits_->reset();
  c_name_stale_->reset();
  c_writeback_bytes_->reset();
  c_recalls_->reset();
  c_cache_disables_->reset();
}

void FsClient::register_services() {
  rpc_.register_service(
      ServiceId::kFsCallback,
      [this](HostId, const Request& req, std::function<void(Reply)> respond) {
        handle_callback(req, std::move(respond));
      });
}

// ---------------------------------------------------------------------------
// Prefix table
// ---------------------------------------------------------------------------

void FsClient::add_prefix(const std::string& prefix, HostId server) {
  prefixes_.emplace_back(prefix, server);
}

util::Result<HostId> FsClient::route(const std::string& path) const {
  const HostId* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, server] : prefixes_) {
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    if (best == nullptr || prefix.size() > best_len) {
      best = &server;
      best_len = prefix.size();
    }
  }
  if (best == nullptr) return {Err::kNoEnt, "no prefix for " + path};
  return *best;
}

std::int64_t FsClient::new_group_id() {
  return ((static_cast<std::int64_t>(rpc_.host()) + 1) << 32) | next_group_++;
}

FsClient::FileState& FsClient::state_for(FileId id) { return files_[id]; }

std::int64_t FsClient::gen_for(FileId id) const {
  auto it = files_.find(id);
  return it == files_.end() ? 0 : it->second.gen;
}

// ---------------------------------------------------------------------------
// Name operations
// ---------------------------------------------------------------------------

void FsClient::open(const std::string& path, OpenFlags flags, OpenCb cb) {
  auto server = route(path);
  if (!server.is_ok()) return cb(server.status());
  auto body = std::make_shared<OpenReq>();
  body->path = path;
  body->flags = flags;
  if (name_cache_enabled_) {
    auto it = name_cache_.find(path);
    if (it != name_cache_.end()) {
      body->hint = it->second;
      c_name_hits_->inc();
    }
  }
  if (trace::Registry& tr = sim_.trace(); tr.tracing())
    tr.instant("fs", "open", rpc_.host(), -1,
               {{"path", path},
                {"hinted", body->hint != kInvalidIno ? "1" : "0"}});
  rpc_.call(
      *server, ServiceId::kFsName, static_cast<int>(NameOp::kOpen), body,
      [this, path, flags, body, cb = std::move(cb)](util::Result<Reply> r) {
        if (!r.is_ok()) return cb(r.status());
        if (!r->status.is_ok()) {
          if (body->hint != kInvalidIno) {
            // Stale hint (e.g. the file was replaced): drop the cached name
            // and retry with a full lookup.
            c_name_stale_->inc();
            name_cache_.erase(path);
            auto retry = std::make_shared<OpenReq>();
            retry->path = path;
            retry->flags = flags;
            auto cb2 = std::move(cb);
            rpc_.call(*route(path), ServiceId::kFsName,
                      static_cast<int>(NameOp::kOpen), retry,
                      [this, path, flags, cb2 = std::move(cb2)](
                          util::Result<Reply> r2) {
                        if (!r2.is_ok()) return cb2(r2.status());
                        if (!r2->status.is_ok()) return cb2(r2->status);
                        finish_open(path, flags, r2->body, std::move(cb2));
                      });
            return;
          }
          return cb(r->status);
        }
        finish_open(path, flags, r->body, std::move(cb));
      });
}

void FsClient::finish_open(const std::string& path, OpenFlags flags,
                           const rpc::MessagePtr& reply_body, OpenCb cb) {
  auto rep = rpc::body_cast<OpenRep>(reply_body);
  SPRITE_CHECK(rep != nullptr);
  const OpenResult& res = rep->result;

  auto s = std::make_shared<Stream>();
  s->group = new_group_id();
  s->file = res.id;
  s->type = res.type;
  s->flags = flags;
  s->cacheable = res.cacheable;
  s->size_hint = res.size;
  s->path = path;
  s->gen = res.generation;
  s->pdev_host = res.pdev_host;
  s->pdev_tag = res.pdev_tag;

  if (res.type == FileType::kRegular) {
    if (name_cache_enabled_) name_cache_[path] = res.id.ino;
    FileState& st = state_for(res.id);
    if (st.version != res.version) {
      // Our cached blocks predate the latest write-open elsewhere.
      // The consistency protocol guarantees dirty data was recalled
      // before the version moved, so everything left is safely
      // discardable.
      for (auto it = st.blocks.begin(); it != st.blocks.end();) {
        auto lit = lru_index_.find({res.id, it->first});
        if (lit != lru_index_.end()) {
          lru_.erase(lit->second);
          lru_index_.erase(lit);
        }
        it = st.blocks.erase(it);
      }
      st.version = res.version;
    }
    st.cacheable = res.cacheable;
    st.size = res.size;
    st.gen = res.generation;
    ++st.open_streams;
  }
  cb(s);
}

void FsClient::close(const StreamPtr& s, StatusCb cb) {
  if (s->type == FileType::kPseudoDevice) {
    sim_.after(Time::zero(), [cb = std::move(cb)] { cb(Status::ok()); });
    return;
  }
  auto it = files_.find(s->file);
  if (it != files_.end() && it->second.open_streams > 0)
    --it->second.open_streams;
  auto body = std::make_shared<CloseReq>();
  body->id = s->file;
  body->flags = s->flags;
  body->gen = s->gen;
  rpc_.call(s->file.server, ServiceId::kFsName,
            static_cast<int>(NameOp::kClose), body,
            [cb = std::move(cb)](util::Result<Reply> r) {
              cb(r.is_ok() ? r->status : r.status());
            });
}

void FsClient::unlink(const std::string& path, StatusCb cb) {
  name_cache_.erase(path);
  auto server = route(path);
  if (!server.is_ok()) return cb(server.status());
  auto body = std::make_shared<PathReq>();
  body->path = path;
  rpc_.call(*server, ServiceId::kFsName, static_cast<int>(NameOp::kUnlink),
            body, [cb = std::move(cb)](util::Result<Reply> r) {
              cb(r.is_ok() ? r->status : r.status());
            });
}

void FsClient::mkdir(const std::string& path, StatusCb cb) {
  auto server = route(path);
  if (!server.is_ok()) return cb(server.status());
  auto body = std::make_shared<PathReq>();
  body->path = path;
  rpc_.call(*server, ServiceId::kFsName, static_cast<int>(NameOp::kMkdir),
            body, [cb = std::move(cb)](util::Result<Reply> r) {
              cb(r.is_ok() ? r->status : r.status());
            });
}

void FsClient::stat(const std::string& path, StatCb cb) {
  auto server = route(path);
  if (!server.is_ok()) return cb(server.status());
  auto body = std::make_shared<PathReq>();
  body->path = path;
  rpc_.call(*server, ServiceId::kFsName, static_cast<int>(NameOp::kStat), body,
            [cb = std::move(cb)](util::Result<Reply> r) {
              if (!r.is_ok()) return cb(r.status());
              if (!r->status.is_ok()) return cb(r->status);
              auto rep = rpc::body_cast<StatRep>(r->body);
              SPRITE_CHECK(rep != nullptr);
              cb(rep->st);
            });
}

// ---------------------------------------------------------------------------
// I/O
// ---------------------------------------------------------------------------

util::Status FsClient::seek(const StreamPtr& s, std::int64_t offset) {
  if (s->server_offset)
    return Status(Err::kInval, "offset is server-managed");
  if (offset < 0) return Status(Err::kInval, "negative offset");
  s->offset = offset;
  return Status::ok();
}

void FsClient::read(const StreamPtr& s, std::int64_t len, ReadCb cb) {
  if (s->type == FileType::kPseudoDevice)
    return cb(Status(Err::kNotSupported, "use pdev_call"));
  if (!s->flags.read) return cb(Status(Err::kBadF, "not open for reading"));
  if (s->type == FileType::kPipe) return pipe_read(s, len, std::move(cb));

  if (s->server_offset) {
    auto body = std::make_shared<GroupIoReq>();
    body->id = s->file;
    body->group = s->group;
    body->len = len;
    body->gen = s->gen;
    rpc_.call(s->file.server, ServiceId::kFsIo,
              static_cast<int>(IoOp::kGroupRead), body,
              [cb = std::move(cb)](util::Result<Reply> r) {
                if (!r.is_ok()) return cb(r.status());
                if (!r->status.is_ok()) return cb(r->status);
                auto rep = rpc::body_cast<GroupIoRep>(r->body);
                SPRITE_CHECK(rep != nullptr);
                cb(rep->data);
              });
    return;
  }

  const std::int64_t offset = s->offset;
  auto done = [s, cb = std::move(cb)](util::Result<Bytes> r) {
    if (r.is_ok()) s->offset += static_cast<std::int64_t>(r->size());
    cb(std::move(r));
  };

  auto attempt = std::make_shared<std::function<void(ReadCb)>>(
      [this, s, offset, len](ReadCb k) {
        const auto it = files_.find(s->file);
        const bool use_cache = s->cacheable && !s->flags.no_cache &&
                               it != files_.end() && it->second.cacheable;
        if (use_cache) {
          cached_read(s, offset, len, std::move(k));
        } else {
          remote_read(s->file, offset, len, std::move(k));
        }
      });
  retry_once_on_stale<Bytes>(s, std::move(attempt), std::move(done));
}

void FsClient::cached_read(const StreamPtr& s, std::int64_t offset,
                           std::int64_t len, ReadCb cb) {
  FileState& st = state_for(s->file);
  len = std::min(len, st.size - offset);
  if (len <= 0) return cb(Bytes{});

  const std::int64_t first = offset / costs_.block_size;
  const std::int64_t last = (offset + len - 1) / costs_.block_size;

  // Collect missing block runs.
  std::vector<std::pair<std::int64_t, std::int64_t>> runs;
  for (std::int64_t blk = first; blk <= last; ++blk) {
    if (st.blocks.count(blk)) {
      c_cache_hit_->inc();
      touch_lru(s->file, blk);
      continue;
    }
    c_cache_miss_->inc();
    if (!runs.empty() && runs.back().second == blk - 1) {
      runs.back().second = blk;
    } else {
      runs.emplace_back(blk, blk);
    }
  }

  auto assemble = [this, s, offset, len, cb = std::move(cb)]() {
    FileState& st = state_for(s->file);
    Bytes out;
    out.reserve(static_cast<std::size_t>(len));
    bool missing = false;
    for (std::int64_t pos = offset; pos < offset + len;) {
      const std::int64_t blk = pos / costs_.block_size;
      const std::int64_t boff = pos % costs_.block_size;
      const std::int64_t n =
          std::min(costs_.block_size - boff, offset + len - pos);
      auto bit = st.blocks.find(blk);
      if (bit == st.blocks.end()) {
        missing = true;  // evicted under memory pressure mid-operation
        break;
      }
      const Bytes& data = bit->second.data;
      for (std::int64_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(boff + i);
        out.push_back(idx < data.size() ? data[idx] : 0);
      }
      pos += n;
    }
    if (missing) {
      // Rare fallback: bypass the cache for this read.
      remote_read(s->file, offset, len, std::move(cb));
      return;
    }
    cb(std::move(out));
  };

  if (runs.empty()) {
    // Pure cache hit: costs only local CPU, charged by the syscall layer.
    sim_.after(Time::zero(), std::move(assemble));
    return;
  }

  // Fetch runs sequentially, then assemble.
  // Self-referential step function: the lambda captures only a WEAK ref to
  // itself (a strong self-capture would be a shared_ptr cycle and leak the
  // captured state); every caller — the kick-off below and each pending
  // continuation — holds a strong ref for the duration of the call.
  auto fetch_next = std::make_shared<std::function<void(std::size_t)>>();
  *fetch_next = [this, s, runs, assemble = std::move(assemble),
                 wself = std::weak_ptr<std::function<void(std::size_t)>>(
                     fetch_next)](std::size_t i) mutable {
    auto fetch_next = wself.lock();
    SPRITE_CHECK(fetch_next != nullptr);
    if (i >= runs.size()) {
      assemble();
      return;
    }
    fetch_blocks(s->file, runs[i].first, runs[i].second,
                 [fetch_next, i](Status) { (*fetch_next)(i + 1); });
  };
  (*fetch_next)(0);
}

void FsClient::fetch_blocks(FileId id, std::int64_t first, std::int64_t last,
                            std::function<void(util::Status)> fn) {
  // Fetch in <=16 KB chunks.
  const std::int64_t blocks_per_rpc = kMaxTransferUnit / costs_.block_size;
  const std::int64_t chunk_last = std::min(last, first + blocks_per_rpc - 1);

  auto body = std::make_shared<ReadReq>();
  body->id = id;
  body->offset = first * costs_.block_size;
  body->len = (chunk_last - first + 1) * costs_.block_size;
  body->gen = gen_for(id);
  c_remote_reads_->inc();
  rpc_.call(
      id.server, ServiceId::kFsIo, static_cast<int>(IoOp::kRead), body,
      [this, id, first, chunk_last, last, fn = std::move(fn)](
          util::Result<Reply> r) mutable {
        if (!r.is_ok()) return fn(r.status());
        if (!r->status.is_ok()) return fn(r->status);
        auto rep = rpc::body_cast<ReadRep>(r->body);
        SPRITE_CHECK(rep != nullptr);
        FileState& st = state_for(id);
        // Slice the returned range into cache blocks.
        std::size_t pos = 0;
        for (std::int64_t blk = first;
             blk <= chunk_last && pos < rep->data.size(); ++blk) {
          const std::size_t n =
              std::min(static_cast<std::size_t>(costs_.block_size),
                       rep->data.size() - pos);
          CacheBlock cblk;
          cblk.data.assign(
              rep->data.begin() + static_cast<std::ptrdiff_t>(pos),
              rep->data.begin() + static_cast<std::ptrdiff_t>(pos + n));
          st.blocks[blk] = std::move(cblk);
          touch_lru(id, blk);
          pos += n;
        }
        enforce_capacity();
        if (chunk_last < last) {
          fetch_blocks(id, chunk_last + 1, last, std::move(fn));
        } else {
          fn(Status::ok());
        }
      });
}

void FsClient::write(const StreamPtr& s, Bytes data, WriteCb cb) {
  if (s->type == FileType::kPseudoDevice)
    return cb(Status(Err::kNotSupported, "use pdev_call"));
  if (!s->flags.write) return cb(Status(Err::kBadF, "not open for writing"));
  if (s->type == FileType::kPipe)
    return pipe_write(s, std::move(data), std::move(cb));

  if (s->server_offset) {
    auto body = std::make_shared<GroupIoReq>();
    body->id = s->file;
    body->group = s->group;
    body->data = std::move(data);
    body->gen = s->gen;
    rpc_.call(s->file.server, ServiceId::kFsIo,
              static_cast<int>(IoOp::kGroupWrite), body,
              [cb = std::move(cb)](util::Result<Reply> r) {
                if (!r.is_ok()) return cb(r.status());
                if (!r->status.is_ok()) return cb(r->status);
                auto rep = rpc::body_cast<GroupIoRep>(r->body);
                SPRITE_CHECK(rep != nullptr);
                cb(rep->written);
              });
    return;
  }

  const std::int64_t offset = s->offset;
  auto done = [s, cb = std::move(cb)](util::Result<std::int64_t> r) {
    if (r.is_ok()) {
      s->offset += *r;
      s->size_hint = std::max(s->size_hint, s->offset);
    }
    cb(std::move(r));
  };

  auto payload = std::make_shared<Bytes>(std::move(data));
  auto attempt = std::make_shared<std::function<void(WriteCb)>>(
      [this, s, offset, payload](WriteCb k) {
        const auto it = files_.find(s->file);
        const bool use_cache = s->cacheable && !s->flags.no_cache &&
                               it != files_.end() && it->second.cacheable;
        if (use_cache) {
          cached_write(s, offset, *payload, std::move(k));
        } else {
          remote_write(s->file, offset, *payload, std::move(k));
        }
      });
  retry_once_on_stale<std::int64_t>(s, std::move(attempt), std::move(done));
}

void FsClient::cached_write(const StreamPtr& s, std::int64_t offset,
                            Bytes data, WriteCb cb) {
  FileState& st = state_for(s->file);
  const auto len = static_cast<std::int64_t>(data.size());
  if (len == 0) return cb(std::int64_t{0});

  const std::int64_t first = offset / costs_.block_size;
  const std::int64_t last = (offset + len - 1) / costs_.block_size;

  // Partially-covered blocks that already exist at the server need a
  // read-modify-write: fetch them before applying the write.
  std::vector<std::pair<std::int64_t, std::int64_t>> fetches;
  auto needs_fetch = [&](std::int64_t blk, bool partial) {
    return partial && !st.blocks.count(blk) &&
           blk * costs_.block_size < st.size;
  };
  if (needs_fetch(first, offset % costs_.block_size != 0))
    fetches.emplace_back(first, first);
  if (last != first && needs_fetch(last, (offset + len) % costs_.block_size != 0))
    fetches.emplace_back(last, last);

  auto apply = [this, s, offset, data = std::move(data), cb = std::move(cb)]() {
    FileState& st = state_for(s->file);
    const auto len = static_cast<std::int64_t>(data.size());
    std::int64_t pos = offset;
    std::size_t src = 0;
    while (src < data.size()) {
      const std::int64_t blk = pos / costs_.block_size;
      const std::int64_t boff = pos % costs_.block_size;
      const std::int64_t n = std::min<std::int64_t>(
          costs_.block_size - boff,
          static_cast<std::int64_t>(data.size() - src));
      CacheBlock& cblk = st.blocks[blk];
      if (static_cast<std::int64_t>(cblk.data.size()) < boff + n)
        cblk.data.resize(static_cast<std::size_t>(boff + n), 0);
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(src),
                data.begin() + static_cast<std::ptrdiff_t>(src + n),
                cblk.data.begin() + static_cast<std::ptrdiff_t>(boff));
      cblk.dirty = true;
      touch_lru(s->file, blk);
      pos += n;
      src += static_cast<std::size_t>(n);
    }
    st.size = std::max(st.size, offset + len);
    enforce_capacity();
    schedule_writeback(s->file);
    cb(len);
  };

  if (fetches.empty()) {
    sim_.after(Time::zero(), std::move(apply));
    return;
  }
  auto fetch_next = std::make_shared<std::function<void(std::size_t)>>();
  *fetch_next = [this, s, fetches, apply = std::move(apply),
                 wself = std::weak_ptr<std::function<void(std::size_t)>>(
                     fetch_next)](std::size_t i) mutable {
    auto fetch_next = wself.lock();  // weak self: see cached_read
    SPRITE_CHECK(fetch_next != nullptr);
    if (i >= fetches.size()) {
      apply();
      return;
    }
    fetch_blocks(s->file, fetches[i].first, fetches[i].second,
                 [fetch_next, i](Status) { (*fetch_next)(i + 1); });
  };
  (*fetch_next)(0);
}

void FsClient::remote_read(FileId id, std::int64_t offset, std::int64_t len,
                           ReadCb cb) {
  struct State {
    Bytes out;
    std::int64_t pos;
    std::int64_t remaining;
  };
  auto st = std::make_shared<State>(State{{}, offset, len});
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, id, st,
           wself = std::weak_ptr<std::function<void()>>(step),
           cb = std::move(cb)]() mutable {
    auto step = wself.lock();  // weak self: see cached_read
    SPRITE_CHECK(step != nullptr);
    if (st->remaining <= 0) return cb(std::move(st->out));
    const std::int64_t n = std::min(st->remaining, kMaxTransferUnit);
    auto body = std::make_shared<ReadReq>();
    body->id = id;
    body->offset = st->pos;
    body->len = n;
    body->gen = gen_for(id);
    c_remote_reads_->inc();
    rpc_.call(id.server, ServiceId::kFsIo, static_cast<int>(IoOp::kRead),
              body, [st, step, n, cb](util::Result<Reply> r) mutable {
                if (!r.is_ok()) return cb(r.status());
                if (!r->status.is_ok()) return cb(r->status);
                auto rep = rpc::body_cast<ReadRep>(r->body);
                SPRITE_CHECK(rep != nullptr);
                st->out.insert(st->out.end(), rep->data.begin(),
                               rep->data.end());
                st->pos += static_cast<std::int64_t>(rep->data.size());
                st->remaining -= n;
                if (static_cast<std::int64_t>(rep->data.size()) < n)
                  st->remaining = 0;  // EOF
                (*step)();
              });
  };
  (*step)();
}

void FsClient::remote_write(FileId id, std::int64_t offset, Bytes data,
                            WriteCb cb) {
  struct State {
    Bytes data;
    std::int64_t pos;
    std::size_t written = 0;
  };
  auto st = std::make_shared<State>(State{std::move(data), offset, 0});
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, id, st,
           wself = std::weak_ptr<std::function<void()>>(step),
           cb = std::move(cb)]() mutable {
    auto step = wself.lock();  // weak self: see cached_read
    SPRITE_CHECK(step != nullptr);
    if (st->written >= st->data.size()) {
      auto fit = files_.find(id);
      if (fit != files_.end())
        fit->second.size = std::max(fit->second.size, st->pos);
      return cb(static_cast<std::int64_t>(st->written));
    }
    const std::size_t n =
        std::min(st->data.size() - st->written,
                 static_cast<std::size_t>(kMaxTransferUnit));
    auto body = std::make_shared<WriteReq>();
    body->id = id;
    body->offset = st->pos;
    body->data.assign(
        st->data.begin() + static_cast<std::ptrdiff_t>(st->written),
        st->data.begin() + static_cast<std::ptrdiff_t>(st->written + n));
    body->gen = gen_for(id);
    c_remote_writes_->inc();
    rpc_.call(id.server, ServiceId::kFsIo, static_cast<int>(IoOp::kWrite),
              body, [st, step, n, cb](util::Result<Reply> r) mutable {
                if (!r.is_ok()) return cb(r.status());
                if (!r->status.is_ok()) return cb(r->status);
                st->written += n;
                st->pos += static_cast<std::int64_t>(n);
                (*step)();
              });
  };
  (*step)();
}

// ---------------------------------------------------------------------------
// Delayed writes / flushing
// ---------------------------------------------------------------------------

void FsClient::schedule_writeback(FileId id) {
  FileState& st = state_for(id);
  if (st.writeback_scheduled) return;
  st.writeback_scheduled = true;
  sim_.after(costs_.fs_writeback_delay, [this, id] {
    auto it = files_.find(id);
    if (it == files_.end()) return;
    it->second.writeback_scheduled = false;
    flush_file(id, [](Status) {});
  });
}

void FsClient::flush_file(FileId id, StatusCb cb) {
  auto it = files_.find(id);
  if (it == files_.end()) {
    sim_.after(Time::zero(), [cb = std::move(cb)] { cb(Status::ok()); });
    return;
  }
  FileState& st = it->second;

  // Coalesce dirty blocks into contiguous runs.
  struct Run {
    std::int64_t first_blk;
    Bytes data;
  };
  auto runs = std::make_shared<std::vector<Run>>();
  for (auto& [blk, cblk] : st.blocks) {
    if (!cblk.dirty) continue;
    cblk.dirty = false;  // the write below carries the data
    c_writeback_bytes_->inc(static_cast<std::int64_t>(cblk.data.size()));
    const bool contiguous =
        !runs->empty() &&
        runs->back().first_blk +
                static_cast<std::int64_t>((runs->back().data.size() +
                                           costs_.block_size - 1) /
                                          costs_.block_size) ==
            blk &&
        static_cast<std::int64_t>(runs->back().data.size()) +
                static_cast<std::int64_t>(cblk.data.size()) <=
            kMaxTransferUnit &&
        runs->back().data.size() %
                static_cast<std::size_t>(costs_.block_size) ==
            0;
    if (contiguous) {
      runs->back().data.insert(runs->back().data.end(), cblk.data.begin(),
                               cblk.data.end());
    } else {
      runs->push_back(Run{blk, cblk.data});
    }
  }
  if (runs->empty()) {
    sim_.after(Time::zero(), [cb = std::move(cb)] { cb(Status::ok()); });
    return;
  }

  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [this, id, runs,
           wself = std::weak_ptr<std::function<void(std::size_t)>>(step),
           cb = std::move(cb)](std::size_t i) mutable {
    auto step = wself.lock();  // weak self: see cached_read
    SPRITE_CHECK(step != nullptr);
    if (i >= runs->size()) return cb(Status::ok());
    auto body = std::make_shared<WriteReq>();
    body->id = id;
    body->offset = (*runs)[i].first_blk * costs_.block_size;
    body->data = (*runs)[i].data;
    body->gen = gen_for(id);
    c_remote_writes_->inc();
    rpc_.call(id.server, ServiceId::kFsIo, static_cast<int>(IoOp::kWrite),
              body, [step, i, cb](util::Result<Reply> r) mutable {
                if (!r.is_ok()) return cb(r.status());
                if (!r->status.is_ok()) return cb(r->status);
                (*step)(i + 1);
              });
  };
  (*step)(0);
}

void FsClient::fsync(const StreamPtr& s, StatusCb cb) {
  flush_file(s->file, std::move(cb));
}

void FsClient::ftruncate(const StreamPtr& s, std::int64_t size, StatusCb cb) {
  if (s->type != FileType::kRegular)
    return cb(Status(Err::kInval, "ftruncate on non-regular stream"));
  if (!s->flags.write)
    return cb(Status(Err::kBadF, "not open for writing"));
  auto body = std::make_shared<TruncateReq>();
  body->id = s->file;
  body->size = size;
  body->gen = s->gen;
  rpc_.call(s->file.server, ServiceId::kFsIo,
            static_cast<int>(IoOp::kTruncate), body,
            [this, s, size, cb = std::move(cb)](util::Result<Reply> r) {
              if (!r.is_ok()) return cb(r.status());
              if (!r->status.is_ok()) return cb(r->status);
              auto it = files_.find(s->file);
              if (it != files_.end()) {
                it->second.size = std::min(it->second.size, size);
                // Drop cached blocks past the new end (and the partial one
                // straddling it — simplest correct choice).
                const std::int64_t keep = size / costs_.block_size;
                for (auto bit = it->second.blocks.begin();
                     bit != it->second.blocks.end();) {
                  if (bit->first >= keep) {
                    auto lit = lru_index_.find({s->file, bit->first});
                    if (lit != lru_index_.end()) {
                      lru_.erase(lit->second);
                      lru_index_.erase(lit);
                    }
                    bit = it->second.blocks.erase(bit);
                  } else {
                    ++bit;
                  }
                }
              }
              s->size_hint = std::min(s->size_hint, size);
              cb(Status::ok());
            });
}

std::int64_t FsClient::dirty_bytes(FileId id) const {
  auto it = files_.find(id);
  if (it == files_.end()) return 0;
  std::int64_t total = 0;
  for (const auto& [blk, cblk] : it->second.blocks)
    if (cblk.dirty) total += static_cast<std::int64_t>(cblk.data.size());
  return total;
}

std::int64_t FsClient::total_dirty_bytes() const {
  std::int64_t total = 0;
  for (const auto& [id, st] : files_)
    for (const auto& [blk, cblk] : st.blocks)
      if (cblk.dirty) total += static_cast<std::int64_t>(cblk.data.size());
  return total;
}

// ---------------------------------------------------------------------------
// Consistency callbacks (server -> client)
// ---------------------------------------------------------------------------

void FsClient::handle_callback(const Request& req,
                               std::function<void(Reply)> respond) {
  auto body = rpc::body_cast<CallbackReq>(req.body);
  SPRITE_CHECK(body != nullptr);
  switch (static_cast<CallbackOp>(req.op)) {
    case CallbackOp::kRecallDirty: {
      c_recalls_->inc();
      flush_file(body->id, [respond = std::move(respond)](Status s) {
        respond(Reply{s, nullptr});
      });
      return;
    }
    case CallbackOp::kPipeReady: {
      auto it = pipe_parked_.find(body->id);
      if (it != pipe_parked_.end()) {
        auto retries = std::move(it->second);
        pipe_parked_.erase(it);
        for (auto& retry : retries) retry();
      }
      respond(Reply{Status::ok(), nullptr});
      return;
    }
    case CallbackOp::kDisableCache: {
      c_cache_disables_->inc();
      const FileId id = body->id;
      flush_file(id, [this, id, respond = std::move(respond)](Status s) {
        auto it = files_.find(id);
        if (it != files_.end()) {
          it->second.cacheable = false;
          for (auto bit = it->second.blocks.begin();
               bit != it->second.blocks.end();) {
            auto lit = lru_index_.find({id, bit->first});
            if (lit != lru_index_.end()) {
              lru_.erase(lit->second);
              lru_index_.erase(lit);
            }
            bit = it->second.blocks.erase(bit);
          }
        }
        respond(Reply{s, nullptr});
      });
      return;
    }
  }
  respond(Reply{Status(Err::kNotSupported, "bad callback op"), nullptr});
}

// ---------------------------------------------------------------------------
// Pipes
// ---------------------------------------------------------------------------

void FsClient::create_pipe(PipeCb cb) {
  auto server = route("/");
  if (!server.is_ok()) return cb(server.status());
  rpc_.call(*server, ServiceId::kFsName,
            static_cast<int>(NameOp::kCreatePipe), nullptr,
            [this, cb = std::move(cb)](util::Result<Reply> r) {
              if (!r.is_ok()) return cb(r.status());
              if (!r->status.is_ok()) return cb(r->status);
              auto rep = rpc::body_cast<CreatePipeRep>(r->body);
              SPRITE_CHECK(rep != nullptr);
              auto make_end = [this, rep](bool read_end) {
                auto s = std::make_shared<Stream>();
                s->group = new_group_id();
                s->file = rep->id;
                s->type = FileType::kPipe;
                s->flags = read_end ? OpenFlags::read_only()
                                    : OpenFlags::write_only();
                s->cacheable = false;
                s->gen = rep->generation;
                return s;
              };
              cb(std::make_pair(make_end(true), make_end(false)));
            });
}

void FsClient::pipe_read(const StreamPtr& s, std::int64_t len, ReadCb cb) {
  auto body = std::make_shared<PipeIoReq>();
  body->id = s->file;
  body->len = len;
  body->gen = s->gen;
  rpc_.call(
      s->file.server, ServiceId::kFsIo, static_cast<int>(IoOp::kPipeRead),
      body, [this, s, len, cb = std::move(cb)](util::Result<Reply> r) mutable {
        if (!r.is_ok()) return cb(r.status());
        if (r->status.err() == Err::kWouldBlock) {
          // Park until the server's kPipeReady wakeup, then retry.
          pipe_parked_[s->file].push_back(
              [this, s, len, cb = std::move(cb)]() mutable {
                pipe_read(s, len, std::move(cb));
              });
          return;
        }
        if (!r->status.is_ok()) return cb(r->status);
        auto rep = rpc::body_cast<PipeIoRep>(r->body);
        SPRITE_CHECK(rep != nullptr);
        cb(std::move(rep->data));  // empty + eof => end of file
      });
}

void FsClient::pipe_write(const StreamPtr& s, Bytes data, WriteCb cb) {
  auto body = std::make_shared<PipeIoReq>();
  body->id = s->file;
  body->data = std::move(data);
  body->gen = s->gen;
  rpc_.call(
      s->file.server, ServiceId::kFsIo, static_cast<int>(IoOp::kPipeWrite),
      body, [this, s, body, cb = std::move(cb)](util::Result<Reply> r) mutable {
        if (!r.is_ok()) return cb(r.status());
        if (r->status.err() == Err::kWouldBlock) {
          pipe_parked_[s->file].push_back(
              [this, s, body, cb = std::move(cb)]() mutable {
                pipe_write(s, body->data, std::move(cb));
              });
          return;
        }
        if (!r->status.is_ok()) return cb(r->status);
        auto rep = rpc::body_cast<PipeIoRep>(r->body);
        SPRITE_CHECK(rep != nullptr);
        cb(rep->written);
      });
}

// ---------------------------------------------------------------------------
// Pseudo-devices
// ---------------------------------------------------------------------------

void FsClient::pdev_call(const StreamPtr& s, Bytes request, PdevCb cb) {
  if (s->type != FileType::kPseudoDevice)
    return cb(Status(Err::kInval, "not a pseudo-device"));
  auto body = std::make_shared<PdevReq>();
  body->tag = s->pdev_tag;
  body->data = std::move(request);
  rpc_.call(s->pdev_host, ServiceId::kPdev, 0, body,
            [cb = std::move(cb)](util::Result<Reply> r) {
              if (!r.is_ok()) return cb(r.status());
              if (!r->status.is_ok()) return cb(r->status);
              auto rep = rpc::body_cast<PdevRep>(r->body);
              SPRITE_CHECK(rep != nullptr);
              cb(rep->data);
            });
}

// ---------------------------------------------------------------------------
// Migration support
// ---------------------------------------------------------------------------

void FsClient::export_stream(const StreamPtr& s, HostId dst,
                             bool shared_on_source, ExportCb cb) {
  auto finish = [this, s, dst, shared_on_source, cb = std::move(cb)]() {
    if (s->type == FileType::kPseudoDevice) {
      // Pseudo-device streams carry no cache or server open state; package
      // them directly.
      ExportedStream e;
      e.group = s->group;
      e.file = s->file;
      e.type = s->type;
      e.flags = s->flags;
      e.pdev_host = s->pdev_host;
      e.pdev_tag = s->pdev_tag;
      e.cacheable = false;
      e.path = s->path;
      e.gen = s->gen;
      sim_.after(Time::zero(), [cb = std::move(cb), e] { cb(e); });
      return;
    }
    auto body = std::make_shared<MigrateStreamReq>();
    body->id = s->file;
    body->flags = s->flags;
    body->from = rpc_.host();
    body->to = dst;
    body->retain_source = shared_on_source;
    body->gen = s->gen;
    rpc_.call(s->file.server, ServiceId::kFsIo,
              static_cast<int>(IoOp::kMigrateStream), body,
              [this, s, cb = std::move(cb)](util::Result<Reply> r) {
                if (!r.is_ok()) return cb(r.status());
                if (!r->status.is_ok()) return cb(r->status);
                auto rep = rpc::body_cast<MigrateStreamRep>(r->body);
                SPRITE_CHECK(rep != nullptr);

                ExportedStream e;
                e.group = s->group;
                e.file = s->file;
                e.type = s->type;
                e.flags = s->flags;
                e.offset = s->offset;
                e.server_offset = s->server_offset;
                e.cacheable = rep->cacheable;
                e.version = rep->version;
                e.size = rep->size;
                e.path = s->path;
                e.gen = rep->generation;

                // The stream leaves this host.
                auto it = files_.find(s->file);
                if (it != files_.end() && it->second.open_streams > 0)
                  --it->second.open_streams;
                cb(e);
              });
  };

  if (s->type == FileType::kPseudoDevice || s->type == FileType::kPipe) {
    // No cache to flush and no byte offsets: re-attribute at the server
    // directly (pdevs skip even that; see finish()).
    finish();
    return;
  }

  // Dirty data must reach the server before the destination can read it.
  flush_file(s->file, [this, s, shared_on_source,
                       finish = std::move(finish)](Status) mutable {
    if (shared_on_source && !s->server_offset) {
      // The access position is about to be shared across hosts: promote it
      // to the I/O server (shadow stream).
      auto body = std::make_shared<ShareOffsetReq>();
      body->id = s->file;
      body->group = s->group;
      body->offset = s->offset;
      body->gen = s->gen;
      rpc_.call(s->file.server, ServiceId::kFsIo,
                static_cast<int>(IoOp::kShareOffset), body,
                [s, finish = std::move(finish)](util::Result<Reply> r) {
                  if (r.is_ok() && r->status.is_ok()) s->server_offset = true;
                  finish();
                });
      return;
    }
    finish();
  });
}

StreamPtr FsClient::import_stream(const ExportedStream& e) {
  auto s = std::make_shared<Stream>();
  s->group = e.group;
  s->file = e.file;
  s->type = e.type;
  s->flags = e.flags;
  s->offset = e.offset;
  s->server_offset = e.server_offset;
  s->cacheable = e.cacheable;
  s->size_hint = e.size;
  s->path = e.path;
  s->gen = e.gen;
  s->pdev_host = e.pdev_host;
  s->pdev_tag = e.pdev_tag;
  if (e.type == FileType::kRegular) {
    FileState& st = state_for(e.file);
    if (st.version != e.version) {
      st.blocks.clear();
      st.version = e.version;
    }
    st.cacheable = e.cacheable;
    st.size = std::max(st.size, e.size);
    st.gen = e.gen;
    ++st.open_streams;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Crash support / reopen-recovery
// ---------------------------------------------------------------------------

void FsClient::recover_stale(const StreamPtr& s, StatusCb cb) {
  if (recoverable_by_path(*s)) {
    c_stale_reopens_->inc();
    sim_.trace().flight_note("fs.reopen", "stale", rpc_.host(), -1,
                             s->file.server, s->file.ino);
    if (trace::Registry& tr = sim_.trace(); tr.tracing())
      tr.instant("fs", "stale reopen", rpc_.host(), -1, {{"path", s->path}});
  }
  reopen_by_path(s, std::move(cb));
}

void FsClient::reopen_by_path(const StreamPtr& s, StatusCb cb) {
  if (!recoverable_by_path(*s)) {
    // Pipes and pdevs are volatile kernel objects — the crash destroyed
    // them. A shadow (server-managed) offset was likewise memory-only; its
    // position is unrecoverable, so pretending to reopen would silently
    // reposition the stream.
    sim_.after(Time::zero(), [cb = std::move(cb)] {
      cb(Status(Err::kStale, "stream is unrecoverable after server crash"));
    });
    return;
  }
  // Dirty blocks cached here survive and stay dirty: they are flushed under
  // the new generation once the reopen installs it.
  auto it = files_.find(s->file);
  if (it != files_.end() && it->second.open_streams > 0)
    --it->second.open_streams;  // the reopen below re-registers this stream
  OpenFlags flags = s->flags;
  flags.truncate = false;  // never destroy data during recovery
  flags.create = false;
  open(s->path, flags, [s, cb = std::move(cb)](util::Result<StreamPtr> r) {
    if (!r.is_ok()) return cb(r.status());
    const StreamPtr& fresh = *r;
    s->file = fresh->file;
    s->gen = fresh->gen;
    s->cacheable = fresh->cacheable;
    s->size_hint = std::max(s->size_hint, fresh->size_hint);
    cb(Status::ok());
  });
}

void FsClient::open_recorded(const std::string& path, OpenFlags flags,
                             std::int64_t offset, OpenCb cb) {
  flags.truncate = false;  // never destroy data during recovery
  flags.create = false;
  open(path, flags, [offset, cb = std::move(cb)](util::Result<StreamPtr> r) {
    if (!r.is_ok()) return cb(std::move(r));
    (*r)->offset = offset;
    cb(std::move(r));
  });
}

void FsClient::crash_reset() {
  files_.clear();
  lru_.clear();
  lru_index_.clear();
  name_cache_.clear();
  pipe_parked_.clear();
  // prefixes_ survive: they are boot-time configuration, re-read at reboot.
}

void FsClient::peer_crashed(HostId peer) {
  // Parked pipe retries against the dead server would hang forever (the
  // kPipeReady wakeup will never come). Re-issue them now: each retry runs
  // into the down host or its post-reboot generation and fails with
  // kTimedOut / kStale, unblocking the parked process with an error.
  for (auto it = pipe_parked_.begin(); it != pipe_parked_.end();) {
    if (it->first.server != peer) {
      ++it;
      continue;
    }
    auto retries = std::move(it->second);
    it = pipe_parked_.erase(it);
    for (auto& retry : retries) retry();
  }
}

void FsClient::collect_peer_interest(std::vector<sim::HostId>& out) const {
  for (const auto& [id, v] : pipe_parked_)
    if (!v.empty()) out.push_back(id.server);
}

std::size_t FsClient::parked_pipe_retries() const {
  std::size_t n = 0;
  for (const auto& [id, v] : pipe_parked_) n += v.size();
  return n;
}

// ---------------------------------------------------------------------------
// Cache capacity
// ---------------------------------------------------------------------------

void FsClient::touch_lru(FileId id, std::int64_t blk) {
  const auto key = std::make_pair(id, blk);
  auto it = lru_index_.find(key);
  if (it != lru_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  lru_index_[key] = lru_.begin();
}

void FsClient::enforce_capacity() {
  while (static_cast<std::int64_t>(lru_.size()) >
         costs_.fs_client_cache_blocks) {
    const auto [id, blk] = lru_.back();
    lru_.pop_back();
    lru_index_.erase({id, blk});
    auto fit = files_.find(id);
    if (fit == files_.end()) continue;
    auto bit = fit->second.blocks.find(blk);
    if (bit == fit->second.blocks.end()) continue;
    if (bit->second.dirty) {
      // Write the block back before discarding it.
      auto body = std::make_shared<WriteReq>();
      body->id = id;
      body->offset = blk * costs_.block_size;
      body->data = std::move(bit->second.data);
      body->gen = gen_for(id);
      c_remote_writes_->inc();
      rpc_.call(id.server, ServiceId::kFsIo, static_cast<int>(IoOp::kWrite),
                body, [](util::Result<Reply>) {});
    }
    fit->second.blocks.erase(bit);
  }
}

}  // namespace sprite::fs
