// Sprite file system client: prefix-table routing, block caching with
// 30-second delayed writes, consistency callbacks, and the stream state that
// process migration moves between hosts.
//
// All operations are asynchronous continuation-passing, because each may take
// simulated time (RPCs, disk, CPU). The process layer wraps these in blocking
// kernel calls.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fs/types.h"
#include "fs/wire.h"
#include "rpc/rpc.h"
#include "sim/costs.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace sprite::fs {

// An open stream (Sprite's descriptor-level object). Shared within a host:
// fork makes parent and child share the same Stream, hence the same access
// position. When migration splits a stream group across hosts, the offset
// moves to the I/O server ("shadow stream") and `server_offset` becomes true.
struct Stream {
  std::int64_t group = 0;  // globally unique stream-group id
  FileId file;
  FileType type = FileType::kRegular;
  OpenFlags flags;
  std::int64_t offset = 0;     // local access position (!server_offset)
  bool server_offset = false;  // offset lives at the I/O server
  bool cacheable = true;
  std::int64_t size_hint = 0;  // size at open; updated by local writes
  // Pathname the stream was opened by, kept for reopen-recovery after a
  // server crash invalidates the handle (Err::kStale).
  std::string path;
  // Server boot generation at open; carried on every I/O request.
  std::int64_t gen = 0;
  // Pseudo-device plumbing.
  sim::HostId pdev_host = sim::kInvalidHost;
  int pdev_tag = 0;
  // Number of descriptor-table references on this host (fork shares the
  // stream object; the server's open reference is released only when the
  // last local reference closes).
  int local_refs = 1;
};

using StreamPtr = std::shared_ptr<Stream>;

// Everything needed to reconstruct a stream on another host at migration.
struct ExportedStream {
  std::int64_t group = 0;
  FileId file;
  FileType type = FileType::kRegular;
  OpenFlags flags;
  std::int64_t offset = 0;
  bool server_offset = false;
  bool cacheable = true;
  std::int64_t version = 0;
  std::int64_t size = 0;
  std::string path;       // for reopen-recovery on the destination
  std::int64_t gen = 0;   // server boot generation
  sim::HostId pdev_host = sim::kInvalidHost;
  int pdev_tag = 0;
};

class FsClient {
 public:
  using OpenCb = std::function<void(util::Result<StreamPtr>)>;
  using ReadCb = std::function<void(util::Result<Bytes>)>;
  using WriteCb = std::function<void(util::Result<std::int64_t>)>;
  using StatusCb = std::function<void(util::Status)>;
  using StatCb = std::function<void(util::Result<StatResult>)>;
  using ExportCb = std::function<void(util::Result<ExportedStream>)>;
  using PdevCb = std::function<void(util::Result<Bytes>)>;

  FsClient(sim::Simulator& sim, sim::Cpu& cpu, rpc::RpcNode& rpc,
           const sim::Costs& costs);

  // Registers the kFsCallback consistency-callback handler.
  void register_services();

  // ---- Prefix table ----
  void add_prefix(const std::string& prefix, sim::HostId server);
  util::Result<sim::HostId> route(const std::string& path) const;

  // ---- Client name caching (the thesis's future-work optimization) ----
  // When enabled, successful opens remember path -> inode and later opens
  // send the inode as a hint, letting the server skip the per-component
  // lookup. Stale hints fall back to a full lookup transparently.
  void enable_name_cache(bool on) { name_cache_enabled_ = on; }
  bool name_cache_enabled() const { return name_cache_enabled_; }
  std::size_t name_cache_size() const { return name_cache_.size(); }

  // ---- Name operations ----
  void open(const std::string& path, OpenFlags flags, OpenCb cb);
  void close(const StreamPtr& s, StatusCb cb);
  void unlink(const std::string& path, StatusCb cb);
  void mkdir(const std::string& path, StatusCb cb);
  void stat(const std::string& path, StatCb cb);

  // ---- I/O ----
  // Reads up to `len` bytes at the stream's access position (short at EOF).
  void read(const StreamPtr& s, std::int64_t len, ReadCb cb);
  // Writes all of `data` at the stream's access position.
  void write(const StreamPtr& s, Bytes data, WriteCb cb);
  // Repositions a local access position (kInval for server-managed offsets).
  util::Status seek(const StreamPtr& s, std::int64_t offset);
  // Flushes this file's dirty blocks to the server.
  void fsync(const StreamPtr& s, StatusCb cb);
  // Truncates the file to `size` bytes (drops affected cached blocks).
  void ftruncate(const StreamPtr& s, std::int64_t size, StatusCb cb);

  // Request/response transaction on a pseudo-device stream (how user-level
  // services such as migd are reached).
  void pdev_call(const StreamPtr& s, Bytes request, PdevCb cb);

  // ---- Pipes ----
  // Creates an anonymous pipe; returns {read end, write end}. The buffer
  // lives at the file server, so either end can migrate freely.
  using PipeCb =
      std::function<void(util::Result<std::pair<StreamPtr, StreamPtr>>)>;
  void create_pipe(PipeCb cb);

  // ---- Reopen-by-path recovery ----
  // Shared by staleness recovery (Err::kStale after a server reboot) and
  // checkpoint restart (src/ckpt/), which rebuilds streams on a host where
  // the original open attribution never existed.

  // Whether a stream's identity (pathname) is enough to rebuild it. Pipes
  // and pdevs are volatile kernel objects, and a shadow (server-managed)
  // offset was memory-only: none can be recovered by path.
  static bool recoverable_by_path(const Stream& s) {
    return s.type == FileType::kRegular && !s.path.empty() && !s.server_offset;
  }

  // Reopens `s` by its recorded pathname with destructive flags stripped and
  // adopts the fresh handle/generation into the existing Stream object. The
  // access position is untouched. Fails kStale when unrecoverable.
  void reopen_by_path(const StreamPtr& s, StatusCb cb);

  // Builds a stream from recorded identity (checkpoint restart): opens
  // `path` with truncate/create stripped and restores the access position.
  void open_recorded(const std::string& path, OpenFlags flags,
                     std::int64_t offset, OpenCb cb);

  // ---- Migration support ----
  // Moves one stream's open attribution to `dst` and packages its state.
  // `shared_on_source` must be true when another process remaining on this
  // host shares the stream's access position: the offset is then promoted to
  // the I/O server before the move. Dirty cached data for the file is always
  // flushed first, so the destination and server see current bytes.
  void export_stream(const StreamPtr& s, sim::HostId dst,
                     bool shared_on_source, ExportCb cb);
  // Reconstructs a stream exported from another host.
  StreamPtr import_stream(const ExportedStream& e);

  // Flush all dirty blocks for one file / for every file (host shutdown,
  // eviction sweeps).
  void flush_file(FileId id, StatusCb cb);
  std::int64_t dirty_bytes(FileId id) const;
  std::int64_t total_dirty_bytes() const;

  // ---- Crash support ----
  // This host crashed: every stream, cached block, and parked retry dies.
  // The prefix table survives (boot-time configuration).
  void crash_reset();
  // A peer crashed. Parked pipe retries against its (now vanished) pipes
  // are re-issued so the callers get an error instead of hanging forever.
  void peer_crashed(sim::HostId peer);
  // Peers whose death this host must detect (host-monitor interest): the
  // servers whose pipes hold parked retries here.
  void collect_peer_interest(std::vector<sim::HostId>& out) const;
  // Number of parked pipe retry closures (starvation diagnosis).
  std::size_t parked_pipe_retries() const;

  // ---- Statistics (registry-backed; the struct is a refreshed view) ----
  struct Stats {
    std::int64_t cache_hit_blocks = 0;
    std::int64_t cache_miss_blocks = 0;
    std::int64_t remote_reads = 0;   // read RPCs issued
    std::int64_t remote_writes = 0;  // write RPCs issued
    std::int64_t name_cache_hits = 0;
    std::int64_t name_cache_stale = 0;
    std::int64_t writeback_bytes = 0;
    std::int64_t recalls_served = 0;
    std::int64_t cache_disables = 0;
  };
  const Stats& stats() const;
  void reset_stats();

 private:
  struct CacheBlock {
    Bytes data;  // up to block_size bytes
    bool dirty = false;
  };

  struct FileState {
    std::int64_t version = 0;
    bool cacheable = true;
    std::int64_t size = 0;
    int open_streams = 0;
    std::map<std::int64_t, CacheBlock> blocks;
    bool writeback_scheduled = false;
    std::int64_t gen = 0;  // server boot generation, stamped on I/O
  };

  // Builds the Stream and client state from a successful open reply.
  void finish_open(const std::string& path, OpenFlags flags,
                   const rpc::MessagePtr& reply_body, OpenCb cb);
  // Reads [offset, offset+len) through the cache; assumes cacheable.
  void cached_read(const StreamPtr& s, std::int64_t offset, std::int64_t len,
                   ReadCb cb);
  // Fetches the aligned block range [first, last] into the cache, then `fn`.
  void fetch_blocks(FileId id, std::int64_t first, std::int64_t last,
                    std::function<void(util::Status)> fn);
  void cached_write(const StreamPtr& s, std::int64_t offset, Bytes data,
                    WriteCb cb);
  // Uncached byte-range I/O in <=16 KB runs (Sprite's RPC transfer limit).
  void remote_read(FileId id, std::int64_t offset, std::int64_t len,
                   ReadCb cb);
  void remote_write(FileId id, std::int64_t offset, Bytes data, WriteCb cb);

  void schedule_writeback(FileId id);
  // Blocking pipe semantics: kWouldBlock replies park a retry closure that
  // the server's kPipeReady callback re-runs.
  void pipe_read(const StreamPtr& s, std::int64_t len, ReadCb cb);
  void pipe_write(const StreamPtr& s, Bytes data, WriteCb cb);
  void handle_callback(const rpc::Request& req,
                       std::function<void(rpc::Reply)> respond);
  FileState& state_for(FileId id);
  std::int64_t gen_for(FileId id) const;
  // Reopen-recovery: a regular stream hit Err::kStale (the server rebooted
  // since the open). Reopens by path, adopts the fresh handle + generation
  // into `s`, and reports success so the caller can retry once. Pipes,
  // pdevs, and shadow-offset streams are unrecoverable.
  void recover_stale(const StreamPtr& s, StatusCb cb);
  // Runs `(*attempt)(k)`; if it fails kStale, recovers the stream by path
  // and retries once. A second failure propagates. Shared by read()/write()
  // so the stale-retry policy lives in one place.
  template <typename T>
  void retry_once_on_stale(
      const StreamPtr& s,
      std::shared_ptr<std::function<void(std::function<void(util::Result<T>)>)>>
          attempt,
      std::function<void(util::Result<T>)> done) {
    (*attempt)([this, s, attempt, done = std::move(done)](
                   util::Result<T> r) mutable {
      if (r.is_ok() || r.status().err() != util::Err::kStale)
        return done(std::move(r));
      // The server rebooted since this stream was opened: reopen by path
      // and retry once. A second failure propagates to the caller.
      recover_stale(s, [attempt,
                        done = std::move(done)](util::Status rs) mutable {
        if (!rs.is_ok()) return done(rs);
        (*attempt)(std::move(done));
      });
    });
  }
  std::int64_t new_group_id();
  void touch_lru(FileId id, std::int64_t blk);
  void enforce_capacity();

  sim::Simulator& sim_;
  sim::Cpu& cpu_;
  rpc::RpcNode& rpc_;
  const sim::Costs& costs_;

  std::vector<std::pair<std::string, sim::HostId>> prefixes_;
  std::map<FileId, FileState> files_;
  bool name_cache_enabled_ = false;
  std::map<std::string, Ino> name_cache_;
  std::map<FileId, std::vector<std::function<void()>>> pipe_parked_;
  std::int64_t next_group_ = 1;

  // LRU over (file, block) for cache capacity enforcement.
  std::list<std::pair<FileId, std::int64_t>> lru_;
  std::map<std::pair<FileId, std::int64_t>,
           std::list<std::pair<FileId, std::int64_t>>::iterator>
      lru_index_;

  // Registry-backed metrics (trace/trace.h) and the legacy struct view.
  trace::Counter* c_cache_hit_;
  trace::Counter* c_cache_miss_;
  trace::Counter* c_remote_reads_;
  trace::Counter* c_remote_writes_;
  trace::Counter* c_name_hits_;
  trace::Counter* c_name_stale_;
  trace::Counter* c_writeback_bytes_;
  trace::Counter* c_recalls_;
  trace::Counter* c_cache_disables_;
  trace::Counter* c_stale_reopens_;
  mutable Stats stats_view_;
};

// Maximum bytes moved per FS data RPC (Sprite's fragmented RPC limit).
inline constexpr std::int64_t kMaxTransferUnit = 16 * 1024;

}  // namespace sprite::fs
