#include "fs/types.h"

namespace sprite::fs {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

int path_components(const std::string& path) {
  return static_cast<int>(split_path(path).size());
}

}  // namespace sprite::fs
