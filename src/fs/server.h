// Sprite file server: namespace, block storage, and cache consistency.
//
// The server is the authority for
//   * name lookup (every pathname component costs server CPU — Sprite has no
//     client name caching, which is exactly why parallel pmake saturates the
//     server in experiment E3),
//   * cache consistency [NWO88]: it tracks which hosts have each file open
//     in which modes, recalls dirty blocks from the last writer when another
//     host opens the file (sequential write sharing), and disables client
//     caching entirely under concurrent write sharing,
//   * shared stream access positions: when process migration causes a
//     stream's offset to be shared across hosts, the server manages the
//     offset ("shadow streams", [Wel90]),
//   * stream migration: moving a client host's open attribution when a
//     process migrates (the per-file cost in experiment E1).
//
// Block data is stored sparsely per inode and is authoritative ("disk").
// A block cache of configurable capacity determines whether an access pays
// the disk latency; contents are always served correctly.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>

#include "fs/types.h"
#include "fs/wire.h"
#include "rpc/rpc.h"
#include "sim/costs.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace sprite::fs {

class FsServer {
 public:
  FsServer(sim::Simulator& sim, sim::Cpu& cpu, rpc::RpcNode& rpc,
           const sim::Costs& costs);

  // Registers kFsName and kFsIo handlers on this host's RpcNode.
  void register_services();

  sim::HostId host() const { return rpc_.host(); }

  // ---- Direct namespace setup (experiment builders; no simulated cost) ----
  util::Status mkdir_p(const std::string& path);
  // Creates a regular file of `logical_size` bytes (contents read as zeros).
  util::Result<FileId> create_file(const std::string& path,
                                   std::int64_t logical_size = 0);
  util::Result<FileId> create_pdev(const std::string& path,
                                   sim::HostId owner_host, int tag);
  // Creates an anonymous pipe whose two ends are attributed to `creator`
  // (one reader, one writer). Reaped when the last end closes.
  FileId create_pipe_inode(sim::HostId creator);
  // Direct inspection helpers for tests.
  util::Result<StatResult> stat_path(const std::string& path) const;
  util::Result<Bytes> read_direct(FileId id, std::int64_t offset,
                                  std::int64_t len) const;
  bool is_cacheable(FileId id) const;
  std::int64_t group_offset(FileId id, std::int64_t group) const;

  // ---- Crash / recovery ----
  // Boot generation: stamped into every OpenResult and checked against the
  // `gen` carried by I/O requests. A mismatch (stream opened before the
  // server's last crash) yields Err::kStale, driving the client's
  // reopen-recovery path.
  std::int64_t generation() const { return boot_generation_; }
  // Crash: disk state (namespace + blocks) survives; everything the server
  // only held in memory is lost — open attributions, sharing state, shadow
  // offsets, pipe buffers, the block cache — and the generation moves.
  void crash_reset();
  // A client host died: drop its open attributions and sharing influence,
  // wake pipes it was a party to, reap what only it kept alive.
  void peer_crashed(sim::HostId h);

  // ---- Statistics (registry-backed; the struct is a refreshed view) ----
  struct Stats {
    std::int64_t opens = 0;
    std::int64_t hinted_opens = 0;  // resolved via a client name-cache hint
    std::int64_t closes = 0;
    std::int64_t lookup_components = 0;
    std::int64_t reads = 0;
    std::int64_t writes = 0;
    std::int64_t bytes_read = 0;
    std::int64_t bytes_written = 0;
    std::int64_t recalls = 0;
    std::int64_t cache_disables = 0;
    std::int64_t disk_accesses = 0;
    std::int64_t stream_migrations = 0;
    std::int64_t pipe_reads = 0;
    std::int64_t pipe_writes = 0;
    std::int64_t pipe_wakeups = 0;
  };
  const Stats& stats() const;
  void reset_stats();

 private:
  struct HostUse {
    int readers = 0;
    int writers = 0;
    bool any() const { return readers > 0 || writers > 0; }
  };

  struct Inode {
    Ino ino = kInvalidIno;
    FileType type = FileType::kRegular;
    std::map<std::string, Ino> children;  // directories
    std::int64_t size = 0;
    std::int64_t version = 0;
    std::map<std::int64_t, Bytes> blocks;  // sparse authoritative data
    bool unlinked = false;

    // Consistency state.
    std::map<sim::HostId, HostUse> users;
    bool write_shared = false;            // caching disabled while true
    sim::HostId last_writer = sim::kInvalidHost;

    // Server-managed shared access positions: stream group -> offset.
    std::map<std::int64_t, std::int64_t> group_offsets;

    // Pseudo-device registration.
    sim::HostId pdev_host = sim::kInvalidHost;
    int pdev_tag = 0;

    // Pipe state: the buffer lives here; hosts whose read/write parked are
    // woken with a kPipeReady callback on any state change.
    Bytes pipe_buffer;
    std::vector<sim::HostId> pipe_waiters;
  };

  using Respond = std::function<void(rpc::Reply)>;

  // RPC dispatch.
  void handle_name(sim::HostId src, const rpc::Request& req, Respond respond);
  void handle_io(sim::HostId src, const rpc::Request& req, Respond respond);

  // Individual operations (invoked after the CPU cost has been charged).
  void do_open(sim::HostId src, const OpenReq& req, bool hint_ok,
               Respond respond);
  void finish_open(sim::HostId src, const OpenReq& req, Ino ino,
                   Respond respond);
  void do_close(sim::HostId src, const CloseReq& req, Respond respond);
  void do_read(sim::HostId src, const ReadReq& req, Respond respond);
  void do_write(sim::HostId src, const WriteReq& req, Respond respond);
  void do_group_io(sim::HostId src, IoOp op, const GroupIoReq& req,
                   Respond respond);
  void do_migrate_stream(const MigrateStreamReq& req, Respond respond);
  void do_pipe_read(sim::HostId src, const PipeIoReq& req, Respond respond);
  void do_pipe_write(sim::HostId src, const PipeIoReq& req, Respond respond);
  // Wakes every host parked on this pipe.
  void notify_pipe_waiters(Inode& node);

  // Namespace helpers.
  util::Result<Ino> lookup(const std::string& path) const;
  util::Result<Ino> create_at(const std::string& path, FileType type);
  Inode& inode(Ino i);
  const Inode* find_inode(Ino i) const;
  void maybe_reap(Ino i);

  // Data helpers (authoritative storage).
  Bytes pread(Inode& node, std::int64_t offset, std::int64_t len);
  std::int64_t pwrite(Inode& node, std::int64_t offset, const Bytes& data);

  // Consistency helpers.
  // Re-derives write_shared from current users; returns callbacks to send.
  void update_sharing(Inode& node, std::vector<sim::HostId>* to_disable);
  // Counts server-cache misses for the touched block range and updates LRU.
  int cache_misses(Ino ino, std::int64_t offset, std::int64_t len);

  // Charges `cpu` then runs `fn` (+ `disk_blocks` of disk latency after CPU).
  void charge(sim::Time cpu, int disk_blocks, std::function<void()> fn);

  sim::Simulator& sim_;
  sim::Cpu& cpu_;
  rpc::RpcNode& rpc_;
  const sim::Costs& costs_;

  std::map<Ino, Inode> inodes_;
  Ino root_ = kInvalidIno;
  Ino next_ino_ = 1;
  std::int64_t boot_generation_ = 0;  // bumped by crash_reset()

  // Server block cache (timing only): LRU over (ino, block).
  std::list<std::pair<Ino, std::int64_t>> lru_;
  std::map<std::pair<Ino, std::int64_t>,
           std::list<std::pair<Ino, std::int64_t>>::iterator>
      cached_;

  // Registry-backed metrics (trace/trace.h) and the legacy struct view.
  trace::Counter* c_opens_;
  trace::Counter* c_hinted_opens_;
  trace::Counter* c_closes_;
  trace::Counter* c_lookup_components_;
  trace::Counter* c_reads_;
  trace::Counter* c_writes_;
  trace::Counter* c_bytes_read_;
  trace::Counter* c_bytes_written_;
  trace::Counter* c_recalls_;
  trace::Counter* c_cache_disables_;
  trace::Counter* c_disk_accesses_;
  trace::Counter* c_stream_migrations_;
  trace::Counter* c_pipe_reads_;
  trace::Counter* c_pipe_writes_;
  trace::Counter* c_pipe_wakeups_;
  mutable Stats stats_view_;
};

}  // namespace sprite::fs
