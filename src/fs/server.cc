#include "fs/server.h"

#include <algorithm>
#include <vector>

#include "util/assert.h"
#include "util/log.h"

namespace sprite::fs {

using rpc::Reply;
using rpc::Request;
using rpc::ServiceId;
using sim::HostId;
using sim::JobClass;
using sim::Time;
using util::Err;
using util::Status;

namespace {

Reply error_reply(Err e, std::string msg = "") {
  return Reply{Status(e, std::move(msg)), nullptr};
}

}  // namespace

FsServer::FsServer(sim::Simulator& sim, sim::Cpu& cpu, rpc::RpcNode& rpc,
                   const sim::Costs& costs)
    : sim_(sim), cpu_(cpu), rpc_(rpc), costs_(costs) {
  trace::Registry& tr = sim_.trace();
  const sim::HostId self = rpc_.host();
  c_opens_ = &tr.counter("fs.server.open.served", self);
  c_hinted_opens_ = &tr.counter("fs.server.open.hinted", self);
  c_closes_ = &tr.counter("fs.server.close.served", self);
  c_lookup_components_ = &tr.counter("fs.server.lookup.components", self);
  c_reads_ = &tr.counter("fs.server.read.served", self);
  c_writes_ = &tr.counter("fs.server.write.served", self);
  c_bytes_read_ = &tr.counter("fs.server.read.bytes", self);
  c_bytes_written_ = &tr.counter("fs.server.write.bytes", self);
  c_recalls_ = &tr.counter("fs.server.recall.sent", self);
  c_cache_disables_ = &tr.counter("fs.server.cache.disabled", self);
  c_disk_accesses_ = &tr.counter("fs.server.disk.accessed", self);
  c_stream_migrations_ = &tr.counter("fs.server.stream.migrated", self);
  c_pipe_reads_ = &tr.counter("fs.server.pipe.read", self);
  c_pipe_writes_ = &tr.counter("fs.server.pipe.written", self);
  c_pipe_wakeups_ = &tr.counter("fs.server.pipe.woken", self);
  root_ = next_ino_++;
  Inode root;
  root.ino = root_;
  root.type = FileType::kDirectory;
  inodes_.emplace(root_, std::move(root));
}

const FsServer::Stats& FsServer::stats() const {
  stats_view_.opens = c_opens_->value();
  stats_view_.hinted_opens = c_hinted_opens_->value();
  stats_view_.closes = c_closes_->value();
  stats_view_.lookup_components = c_lookup_components_->value();
  stats_view_.reads = c_reads_->value();
  stats_view_.writes = c_writes_->value();
  stats_view_.bytes_read = c_bytes_read_->value();
  stats_view_.bytes_written = c_bytes_written_->value();
  stats_view_.recalls = c_recalls_->value();
  stats_view_.cache_disables = c_cache_disables_->value();
  stats_view_.disk_accesses = c_disk_accesses_->value();
  stats_view_.stream_migrations = c_stream_migrations_->value();
  stats_view_.pipe_reads = c_pipe_reads_->value();
  stats_view_.pipe_writes = c_pipe_writes_->value();
  stats_view_.pipe_wakeups = c_pipe_wakeups_->value();
  return stats_view_;
}

void FsServer::reset_stats() {
  for (trace::Counter* c :
       {c_opens_, c_hinted_opens_, c_closes_, c_lookup_components_, c_reads_,
        c_writes_, c_bytes_read_, c_bytes_written_, c_recalls_,
        c_cache_disables_, c_disk_accesses_, c_stream_migrations_,
        c_pipe_reads_, c_pipe_writes_, c_pipe_wakeups_})
    c->reset();
}

void FsServer::register_services() {
  rpc_.register_service(
      ServiceId::kFsName,
      [this](HostId src, const Request& req, std::function<void(Reply)> r) {
        handle_name(src, req, std::move(r));
      });
  rpc_.register_service(
      ServiceId::kFsIo,
      [this](HostId src, const Request& req, std::function<void(Reply)> r) {
        handle_io(src, req, std::move(r));
      });
}

// ---------------------------------------------------------------------------
// Namespace helpers
// ---------------------------------------------------------------------------

FsServer::Inode& FsServer::inode(Ino i) {
  auto it = inodes_.find(i);
  SPRITE_CHECK_MSG(it != inodes_.end(), "dangling inode reference");
  return it->second;
}

const FsServer::Inode* FsServer::find_inode(Ino i) const {
  auto it = inodes_.find(i);
  return it == inodes_.end() ? nullptr : &it->second;
}

util::Result<Ino> FsServer::lookup(const std::string& path) const {
  Ino cur = root_;
  for (const auto& comp : split_path(path)) {
    const Inode* node = find_inode(cur);
    if (node == nullptr || node->type != FileType::kDirectory)
      return {Err::kNoEnt, path};
    auto it = node->children.find(comp);
    if (it == node->children.end()) return {Err::kNoEnt, path};
    cur = it->second;
  }
  return cur;
}

util::Result<Ino> FsServer::create_at(const std::string& path, FileType type) {
  const auto comps = split_path(path);
  if (comps.empty()) return {Err::kInval, "empty path"};
  Ino cur = root_;
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    Inode& node = inode(cur);
    if (node.type != FileType::kDirectory) return {Err::kNoEnt, path};
    auto it = node.children.find(comps[i]);
    if (it == node.children.end()) return {Err::kNoEnt, path};
    cur = it->second;
  }
  Inode& parent = inode(cur);
  if (parent.type != FileType::kDirectory) return {Err::kNoEnt, path};
  auto it = parent.children.find(comps.back());
  if (it != parent.children.end()) return {Err::kExist, path};

  const Ino ino = next_ino_++;
  Inode node;
  node.ino = ino;
  node.type = type;
  inodes_.emplace(ino, std::move(node));
  parent.children.emplace(comps.back(), ino);
  return ino;
}

void FsServer::maybe_reap(Ino i) {
  auto it = inodes_.find(i);
  if (it == inodes_.end()) return;
  Inode& node = it->second;
  if (!node.unlinked) return;
  for (const auto& [h, use] : node.users)
    if (use.any()) return;
  inodes_.erase(it);
}

util::Status FsServer::mkdir_p(const std::string& path) {
  const auto comps = split_path(path);
  Ino cur = root_;
  for (const auto& comp : comps) {
    Inode& node = inode(cur);
    if (node.type != FileType::kDirectory) return Status(Err::kNoEnt, path);
    auto it = node.children.find(comp);
    if (it != node.children.end()) {
      cur = it->second;
      continue;
    }
    const Ino ino = next_ino_++;
    Inode child;
    child.ino = ino;
    child.type = FileType::kDirectory;
    inodes_.emplace(ino, std::move(child));
    node.children.emplace(comp, ino);
    cur = ino;
  }
  return Status::ok();
}

util::Result<FileId> FsServer::create_file(const std::string& path,
                                           std::int64_t logical_size) {
  auto r = create_at(path, FileType::kRegular);
  if (!r.is_ok()) return r.status();
  inode(*r).size = logical_size;
  return FileId{host(), *r};
}

util::Result<FileId> FsServer::create_pdev(const std::string& path,
                                           sim::HostId owner_host, int tag) {
  auto r = create_at(path, FileType::kPseudoDevice);
  if (!r.is_ok()) {
    if (r.err() != Err::kExist) return r.status();
    // Re-registration after the owner rebooted: the path survives, the
    // user-level server behind it is new. Update the routing in place so
    // fresh opens reach the reincarnated server.
    auto existing = lookup(path);
    if (!existing.is_ok()) return existing.status();
    Inode& node = inode(*existing);
    if (node.type != FileType::kPseudoDevice)
      return util::Result<FileId>(Err::kExist, path);
    node.pdev_host = owner_host;
    node.pdev_tag = tag;
    return FileId{host(), *existing};
  }
  Inode& node = inode(*r);
  node.pdev_host = owner_host;
  node.pdev_tag = tag;
  return FileId{host(), *r};
}

FileId FsServer::create_pipe_inode(HostId creator) {
  const Ino ino = next_ino_++;
  Inode node;
  node.ino = ino;
  node.type = FileType::kPipe;
  node.unlinked = true;  // anonymous: reaped when the last end closes
  node.users[creator] = HostUse{1, 1};
  inodes_.emplace(ino, std::move(node));
  return FileId{host(), ino};
}

util::Result<StatResult> FsServer::stat_path(const std::string& path) const {
  auto r = lookup(path);
  if (!r.is_ok()) return r.status();
  const Inode* node = find_inode(*r);
  SPRITE_CHECK(node != nullptr);
  return StatResult{FileId{host(), node->ino}, node->type, node->size,
                    node->version};
}

util::Result<Bytes> FsServer::read_direct(FileId id, std::int64_t offset,
                                          std::int64_t len) const {
  const Inode* node = find_inode(id.ino);
  if (node == nullptr) return {Err::kNoEnt, "stale file id"};
  // const_cast is safe: pread only mutates nothing for const access pattern;
  // implemented via a copy of the lookup logic to keep pread non-const for
  // the caching path.
  Bytes out;
  const std::int64_t end = std::min(offset + len, node->size);
  for (std::int64_t pos = offset; pos < end; ++pos) {
    const std::int64_t blk = pos / costs_.block_size;
    const std::int64_t off = pos % costs_.block_size;
    auto it = node->blocks.find(blk);
    out.push_back(it == node->blocks.end() || off >= static_cast<std::int64_t>(
                                                         it->second.size())
                      ? 0
                      : it->second[static_cast<std::size_t>(off)]);
  }
  return out;
}

bool FsServer::is_cacheable(FileId id) const {
  const Inode* node = find_inode(id.ino);
  return node != nullptr && !node->write_shared;
}

std::int64_t FsServer::group_offset(FileId id, std::int64_t group) const {
  const Inode* node = find_inode(id.ino);
  if (node == nullptr) return -1;
  auto it = node->group_offsets.find(group);
  return it == node->group_offsets.end() ? -1 : it->second;
}

// ---------------------------------------------------------------------------
// Data helpers
// ---------------------------------------------------------------------------

Bytes FsServer::pread(Inode& node, std::int64_t offset, std::int64_t len) {
  Bytes out;
  if (offset >= node.size || len <= 0) return out;
  const std::int64_t end = std::min(offset + len, node.size);
  out.reserve(static_cast<std::size_t>(end - offset));
  std::int64_t pos = offset;
  while (pos < end) {
    const std::int64_t blk = pos / costs_.block_size;
    const std::int64_t boff = pos % costs_.block_size;
    const std::int64_t n =
        std::min(costs_.block_size - boff, end - pos);
    auto it = node.blocks.find(blk);
    if (it == node.blocks.end()) {
      out.insert(out.end(), static_cast<std::size_t>(n), 0);
    } else {
      const Bytes& b = it->second;
      for (std::int64_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(boff + i);
        out.push_back(idx < b.size() ? b[idx] : 0);
      }
    }
    pos += n;
  }
  return out;
}

std::int64_t FsServer::pwrite(Inode& node, std::int64_t offset,
                              const Bytes& data) {
  std::int64_t pos = offset;
  std::size_t src = 0;
  while (src < data.size()) {
    const std::int64_t blk = pos / costs_.block_size;
    const std::int64_t boff = pos % costs_.block_size;
    const std::int64_t n = std::min<std::int64_t>(
        costs_.block_size - boff,
        static_cast<std::int64_t>(data.size() - src));
    Bytes& b = node.blocks[blk];
    if (static_cast<std::int64_t>(b.size()) < boff + n)
      b.resize(static_cast<std::size_t>(boff + n), 0);
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(src),
              data.begin() + static_cast<std::ptrdiff_t>(src + n),
              b.begin() + static_cast<std::ptrdiff_t>(boff));
    pos += n;
    src += static_cast<std::size_t>(n);
  }
  node.size = std::max(node.size, pos);
  return static_cast<std::int64_t>(data.size());
}

// ---------------------------------------------------------------------------
// Consistency helpers
// ---------------------------------------------------------------------------

void FsServer::update_sharing(Inode& node,
                              std::vector<HostId>* to_disable) {
  int writer_hosts = 0;
  int user_hosts = 0;
  for (const auto& [h, use] : node.users) {
    if (!use.any()) continue;
    ++user_hosts;
    if (use.writers > 0) ++writer_hosts;
  }
  const bool shared =
      writer_hosts >= 2 || (writer_hosts == 1 && user_hosts >= 2);
  if (shared && !node.write_shared) {
    node.write_shared = true;
    c_cache_disables_->inc();
    if (trace::Registry& tr = sim_.trace(); tr.tracing())
      tr.instant("fs", "caching disabled (write sharing)", rpc_.host(), -1,
                 {{"ino", std::to_string(node.ino)}});
    for (const auto& [h, use] : node.users)
      if (use.any()) to_disable->push_back(h);
  } else if (!shared && node.write_shared) {
    // Sharing ended; new opens may cache again. Hosts already bypassing
    // their caches continue to do so until they reopen (as in Sprite).
    node.write_shared = false;
  }
}

int FsServer::cache_misses(Ino ino, std::int64_t offset, std::int64_t len) {
  if (len <= 0) return 0;
  int misses = 0;
  const std::int64_t first = offset / costs_.block_size;
  const std::int64_t last = (offset + len - 1) / costs_.block_size;
  for (std::int64_t blk = first; blk <= last; ++blk) {
    const auto key = std::make_pair(ino, blk);
    auto it = cached_.find(key);
    if (it != cached_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      continue;
    }
    ++misses;
    lru_.push_front(key);
    cached_[key] = lru_.begin();
    if (static_cast<std::int64_t>(cached_.size()) >
        costs_.fs_server_cache_blocks) {
      cached_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  c_disk_accesses_->inc(misses);
  return misses;
}

void FsServer::charge(Time cpu, int disk_blocks, std::function<void()> fn) {
  cpu_.submit(JobClass::kKernel, cpu,
              [this, disk_blocks, fn = std::move(fn)] {
                if (disk_blocks > 0) {
                  sim_.after(costs_.fs_disk_access * disk_blocks,
                             std::move(fn));
                } else {
                  fn();
                }
              });
}

// ---------------------------------------------------------------------------
// kFsName dispatch
// ---------------------------------------------------------------------------

void FsServer::handle_name(HostId src, const Request& req, Respond respond) {
  switch (static_cast<NameOp>(req.op)) {
    case NameOp::kOpen: {
      auto body = rpc::body_cast<OpenReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      // A valid name-cache hint resolves by inode: no per-component lookup
      // CPU. A stale hint falls back to the full path below (do_open).
      const bool hint_ok =
          body->hint != kInvalidIno && inodes_.count(body->hint) != 0 &&
          !inodes_.at(body->hint).unlinked;
      sim::Time cpu = costs_.fs_open_cpu;
      if (!hint_ok) {
        const int ncomp = path_components(body->path);
        c_lookup_components_->inc(ncomp);
        cpu += costs_.fs_lookup_cpu_per_component * ncomp;
      } else {
        c_hinted_opens_->inc();
      }
      charge(cpu, 0,
             [this, src, body, hint_ok, respond = std::move(respond)]() mutable {
               do_open(src, *body, hint_ok, std::move(respond));
             });
      return;
    }
    case NameOp::kClose: {
      auto body = rpc::body_cast<CloseReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      charge(costs_.fs_open_cpu, 0,
             [this, src, body, respond = std::move(respond)]() mutable {
               do_close(src, *body, std::move(respond));
             });
      return;
    }
    case NameOp::kUnlink: {
      auto body = rpc::body_cast<PathReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      const int ncomp = path_components(body->path);
      c_lookup_components_->inc(ncomp);
      charge(costs_.fs_lookup_cpu_per_component * ncomp, 0,
             [this, body, respond = std::move(respond)]() mutable {
               const auto comps = split_path(body->path);
               auto parent_path = body->path;
               auto r = lookup(body->path);
               if (!r.is_ok()) return respond(error_reply(r.err(), body->path));
               // Find the parent and remove the entry.
               Ino cur = root_;
               for (std::size_t i = 0; i + 1 < comps.size(); ++i)
                 cur = inode(cur).children.at(comps[i]);
               inode(cur).children.erase(comps.back());
               Inode& victim = inode(*r);
               victim.unlinked = true;
               maybe_reap(*r);
               respond(Reply{Status::ok(), nullptr});
             });
      return;
    }
    case NameOp::kMkdir: {
      auto body = rpc::body_cast<PathReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      const int ncomp = path_components(body->path);
      c_lookup_components_->inc(ncomp);
      charge(costs_.fs_lookup_cpu_per_component * ncomp, 0,
             [this, body, respond = std::move(respond)]() mutable {
               auto r = create_at(body->path, FileType::kDirectory);
               respond(r.is_ok() ? Reply{Status::ok(), nullptr}
                                 : error_reply(r.err(), body->path));
             });
      return;
    }
    case NameOp::kStat: {
      auto body = rpc::body_cast<PathReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      const int ncomp = path_components(body->path);
      c_lookup_components_->inc(ncomp);
      charge(costs_.fs_lookup_cpu_per_component * ncomp, 0,
             [this, body, respond = std::move(respond)]() mutable {
               auto r = stat_path(body->path);
               if (!r.is_ok()) return respond(error_reply(r.err(), body->path));
               auto rep = std::make_shared<StatRep>();
               rep->st = *r;
               respond(Reply{Status::ok(), rep});
             });
      return;
    }
    case NameOp::kCreatePipe: {
      charge(costs_.fs_open_cpu, 0,
             [this, src, respond = std::move(respond)]() mutable {
               auto rep = std::make_shared<CreatePipeRep>();
               rep->id = create_pipe_inode(src);
               rep->generation = boot_generation_;
               respond(Reply{Status::ok(), rep});
             });
      return;
    }
    case NameOp::kRegisterPdev: {
      auto body = rpc::body_cast<RegisterPdevReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      charge(costs_.fs_open_cpu, 0,
             [this, body, respond = std::move(respond)]() mutable {
               auto r = create_pdev(body->path, body->owner_host, body->tag);
               respond(r.is_ok() ? Reply{Status::ok(), nullptr}
                                 : error_reply(r.err(), body->path));
             });
      return;
    }
  }
  respond(error_reply(Err::kNotSupported, "bad name op"));
}

void FsServer::do_open(HostId src, const OpenReq& req, bool hint_ok,
                       Respond respond) {
  c_opens_->inc();
  Ino ino = kInvalidIno;
  if (hint_ok) {
    ino = req.hint;
  } else {
    auto r = lookup(req.path);
    if (!r.is_ok()) {
      if (!req.flags.create)
        return respond(error_reply(Err::kNoEnt, req.path));
      r = create_at(req.path, FileType::kRegular);
      if (!r.is_ok()) return respond(error_reply(r.err(), req.path));
    }
    ino = *r;
  }
  Inode& node = inode(ino);

  if (node.type == FileType::kDirectory && req.flags.write)
    return respond(error_reply(Err::kAccess, "directory write"));

  if (node.type == FileType::kPseudoDevice) {
    auto rep = std::make_shared<OpenRep>();
    rep->result.id = FileId{host(), ino};
    rep->result.type = node.type;
    rep->result.pdev_host = node.pdev_host;
    rep->result.pdev_tag = node.pdev_tag;
    rep->result.cacheable = false;
    rep->result.generation = boot_generation_;
    return respond(Reply{Status::ok(), rep});
  }

  // Sequential write sharing: the last writing host may hold dirty blocks in
  // its cache; recall them before this open completes [NWO88].
  if (node.last_writer != sim::kInvalidHost && node.last_writer != src) {
    c_recalls_->inc();
    if (trace::Registry& tr = sim_.trace(); tr.tracing())
      tr.instant("fs", "dirty recall", rpc_.host(), -1,
                 {{"ino", std::to_string(ino)},
                  {"writer", std::to_string(node.last_writer)}});
    const HostId writer = node.last_writer;
    node.last_writer = sim::kInvalidHost;
    auto cb = std::make_shared<CallbackReq>();
    cb->id = FileId{host(), ino};
    rpc_.call(writer, ServiceId::kFsCallback,
              static_cast<int>(CallbackOp::kRecallDirty), cb,
              [this, src, req, ino, respond = std::move(respond)](
                  util::Result<Reply>) mutable {
                // Even on timeout (writer crashed) the open proceeds; the
                // dirty data is simply lost, as in a real client crash.
                finish_open(src, req, ino, std::move(respond));
              });
    return;
  }
  finish_open(src, req, ino, std::move(respond));
}

void FsServer::finish_open(HostId src, const OpenReq& req, Ino ino,
                           Respond respond) {
  Inode& node = inode(ino);
  if (req.flags.truncate) {
    node.blocks.clear();
    node.size = 0;
  }

  HostUse& use = node.users[src];
  if (req.flags.read) ++use.readers;
  if (req.flags.write) ++use.writers;

  std::vector<HostId> to_disable;
  update_sharing(node, &to_disable);
  for (HostId h : to_disable) {
    if (h == src && !node.users[src].any()) continue;
    auto cb = std::make_shared<CallbackReq>();
    cb->id = FileId{host(), ino};
    rpc_.call(h, ServiceId::kFsCallback,
              static_cast<int>(CallbackOp::kDisableCache), cb,
              [](util::Result<Reply>) {});
  }

  if (req.flags.write) {
    ++node.version;
    // A cacheable writer may accumulate dirty blocks; remember it so the
    // next open from elsewhere recalls them.
    node.last_writer = node.write_shared ? sim::kInvalidHost : src;
  }

  auto rep = std::make_shared<OpenRep>();
  rep->result.id = FileId{host(), ino};
  rep->result.type = node.type;
  rep->result.size = node.size;
  rep->result.version = node.version;
  rep->result.cacheable = !node.write_shared && !req.flags.no_cache;
  rep->result.generation = boot_generation_;
  respond(Reply{Status::ok(), rep});
}

void FsServer::do_close(HostId src, const CloseReq& req, Respond respond) {
  c_closes_->inc();
  if (req.gen != boot_generation_)
    return respond(error_reply(Err::kStale, "close: pre-crash stream"));
  Inode* node = inodes_.count(req.id.ino) ? &inode(req.id.ino) : nullptr;
  if (node == nullptr) return respond(error_reply(Err::kStale, "close"));
  auto it = node->users.find(src);
  if (it != node->users.end()) {
    if (req.flags.read && it->second.readers > 0) --it->second.readers;
    if (req.flags.write && it->second.writers > 0) --it->second.writers;
    if (!it->second.any()) node->users.erase(it);
  }
  if (node->type == FileType::kPipe) {
    // An end closed: parked peers must re-evaluate (EOF / EPIPE).
    notify_pipe_waiters(*node);
  } else {
    std::vector<HostId> to_disable;
    update_sharing(*node, &to_disable);  // sharing may end; no callbacks
  }
  maybe_reap(req.id.ino);
  respond(Reply{Status::ok(), nullptr});
}

// ---------------------------------------------------------------------------
// kFsIo dispatch
// ---------------------------------------------------------------------------

void FsServer::handle_io(HostId src, const Request& req, Respond respond) {
  switch (static_cast<IoOp>(req.op)) {
    case IoOp::kRead: {
      auto body = rpc::body_cast<ReadReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      const int nblocks = static_cast<int>(
          (body->len + costs_.block_size - 1) / costs_.block_size);
      const int misses = cache_misses(body->id.ino, body->offset, body->len);
      charge(costs_.fs_block_cpu * std::max(1, nblocks), misses,
             [this, src, body, respond = std::move(respond)]() mutable {
               do_read(src, *body, std::move(respond));
             });
      return;
    }
    case IoOp::kWrite: {
      auto body = rpc::body_cast<WriteReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      const int nblocks = static_cast<int>(
          (static_cast<std::int64_t>(body->data.size()) + costs_.block_size -
           1) /
          costs_.block_size);
      // Writes allocate server cache blocks but need no disk read.
      cache_misses(body->id.ino, body->offset,
                   static_cast<std::int64_t>(body->data.size()));
      charge(costs_.fs_block_cpu * std::max(1, nblocks), 0,
             [this, src, body, respond = std::move(respond)]() mutable {
               do_write(src, *body, std::move(respond));
             });
      return;
    }
    case IoOp::kGroupRead:
    case IoOp::kGroupWrite: {
      auto body = rpc::body_cast<GroupIoReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      charge(costs_.fs_block_cpu, 0,
             [this, src, op = static_cast<IoOp>(req.op), body,
              respond = std::move(respond)]() mutable {
               do_group_io(src, op, *body, std::move(respond));
             });
      return;
    }
    case IoOp::kShareOffset: {
      auto body = rpc::body_cast<ShareOffsetReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      charge(costs_.fs_open_cpu, 0,
             [this, body, respond = std::move(respond)]() mutable {
               if (body->gen != boot_generation_)
                 return respond(error_reply(Err::kStale,
                                            "share offset: pre-crash stream"));
               auto* node = inodes_.count(body->id.ino) ? &inode(body->id.ino)
                                                        : nullptr;
               if (node == nullptr)
                 return respond(error_reply(Err::kStale, "share offset"));
               // First promotion wins; later calls for the same group keep
               // the server's (authoritative) offset.
               node->group_offsets.emplace(body->group, body->offset);
               respond(Reply{Status::ok(), nullptr});
             });
      return;
    }
    case IoOp::kMigrateStream: {
      auto body = rpc::body_cast<MigrateStreamReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      charge(costs_.fs_open_cpu, 0,
             [this, body, respond = std::move(respond)]() mutable {
               do_migrate_stream(*body, std::move(respond));
             });
      return;
    }
    case IoOp::kPipeRead: {
      auto body = rpc::body_cast<PipeIoReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      charge(costs_.fs_block_cpu, 0,
             [this, src, body, respond = std::move(respond)]() mutable {
               do_pipe_read(src, *body, std::move(respond));
             });
      return;
    }
    case IoOp::kPipeWrite: {
      auto body = rpc::body_cast<PipeIoReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      charge(costs_.fs_block_cpu, 0,
             [this, src, body, respond = std::move(respond)]() mutable {
               do_pipe_write(src, *body, std::move(respond));
             });
      return;
    }
    case IoOp::kTruncate: {
      auto body = rpc::body_cast<TruncateReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      charge(costs_.fs_block_cpu, 0,
             [this, body, respond = std::move(respond)]() mutable {
               if (body->gen != boot_generation_)
                 return respond(error_reply(Err::kStale,
                                            "truncate: pre-crash stream"));
               auto* node = inodes_.count(body->id.ino) ? &inode(body->id.ino)
                                                        : nullptr;
               if (node == nullptr)
                 return respond(error_reply(Err::kStale, "truncate"));
               node->size = body->size;
               const std::int64_t keep =
                   (body->size + costs_.block_size - 1) / costs_.block_size;
               for (auto it = node->blocks.begin();
                    it != node->blocks.end();) {
                 if (it->first >= keep)
                   it = node->blocks.erase(it);
                 else
                   ++it;
               }
               respond(Reply{Status::ok(), nullptr});
             });
      return;
    }
  }
  respond(error_reply(Err::kNotSupported, "bad io op"));
}

void FsServer::do_read(HostId, const ReadReq& req, Respond respond) {
  if (req.gen != boot_generation_)
    return respond(error_reply(Err::kStale, "read: pre-crash stream"));
  auto* node = inodes_.count(req.id.ino) ? &inode(req.id.ino) : nullptr;
  if (node == nullptr) return respond(error_reply(Err::kStale, "read"));
  c_reads_->inc();
  auto rep = std::make_shared<ReadRep>();
  rep->data = pread(*node, req.offset, req.len);
  c_bytes_read_->inc(static_cast<std::int64_t>(rep->data.size()));
  respond(Reply{Status::ok(), rep});
}

void FsServer::do_write(HostId, const WriteReq& req, Respond respond) {
  if (req.gen != boot_generation_)
    return respond(error_reply(Err::kStale, "write: pre-crash stream"));
  auto* node = inodes_.count(req.id.ino) ? &inode(req.id.ino) : nullptr;
  if (node == nullptr) return respond(error_reply(Err::kStale, "write"));
  c_writes_->inc();
  auto rep = std::make_shared<WriteRep>();
  rep->written = pwrite(*node, req.offset, req.data);
  rep->new_size = node->size;
  c_bytes_written_->inc(rep->written);
  respond(Reply{Status::ok(), rep});
}

void FsServer::do_group_io(HostId, IoOp op, const GroupIoReq& req,
                           Respond respond) {
  if (req.gen != boot_generation_)
    return respond(error_reply(Err::kStale, "group io: pre-crash stream"));
  auto* node = inodes_.count(req.id.ino) ? &inode(req.id.ino) : nullptr;
  if (node == nullptr) return respond(error_reply(Err::kStale, "group io"));
  auto it = node->group_offsets.find(req.group);
  if (it == node->group_offsets.end())
    return respond(error_reply(Err::kInval, "offset not server-managed"));

  auto rep = std::make_shared<GroupIoRep>();
  if (op == IoOp::kGroupRead) {
    c_reads_->inc();
    rep->data = pread(*node, it->second, req.len);
    c_bytes_read_->inc(static_cast<std::int64_t>(rep->data.size()));
    it->second += static_cast<std::int64_t>(rep->data.size());
  } else {
    c_writes_->inc();
    rep->written = pwrite(*node, it->second, req.data);
    c_bytes_written_->inc(rep->written);
    it->second += rep->written;
  }
  rep->new_offset = it->second;
  respond(Reply{Status::ok(), rep});
}

void FsServer::notify_pipe_waiters(Inode& node) {
  if (node.pipe_waiters.empty()) return;
  std::vector<HostId> waiters;
  std::swap(waiters, node.pipe_waiters);
  std::sort(waiters.begin(), waiters.end());
  waiters.erase(std::unique(waiters.begin(), waiters.end()), waiters.end());
  for (HostId h : waiters) {
    c_pipe_wakeups_->inc();
    auto cb = std::make_shared<CallbackReq>();
    cb->id = FileId{host(), node.ino};
    rpc_.call(h, ServiceId::kFsCallback,
              static_cast<int>(CallbackOp::kPipeReady), cb,
              [](util::Result<Reply>) {});
  }
}

void FsServer::do_pipe_read(HostId src, const PipeIoReq& req,
                            Respond respond) {
  if (req.gen != boot_generation_)
    return respond(error_reply(Err::kStale, "pipe read: pre-crash stream"));
  auto* node = inodes_.count(req.id.ino) ? &inode(req.id.ino) : nullptr;
  if (node == nullptr || node->type != FileType::kPipe)
    return respond(error_reply(Err::kStale, "pipe read"));
  c_pipe_reads_->inc();

  if (!node->pipe_buffer.empty()) {
    const auto n = std::min<std::size_t>(
        static_cast<std::size_t>(req.len), node->pipe_buffer.size());
    auto rep = std::make_shared<PipeIoRep>();
    rep->data.assign(node->pipe_buffer.begin(),
                     node->pipe_buffer.begin() + static_cast<std::ptrdiff_t>(n));
    node->pipe_buffer.erase(
        node->pipe_buffer.begin(),
        node->pipe_buffer.begin() + static_cast<std::ptrdiff_t>(n));
    notify_pipe_waiters(*node);  // writers may proceed
    return respond(Reply{Status::ok(), rep});
  }

  int writers = 0;
  for (const auto& [h, use] : node->users) writers += use.writers;
  if (writers == 0) {
    auto rep = std::make_shared<PipeIoRep>();
    rep->eof = true;
    return respond(Reply{Status::ok(), rep});
  }
  node->pipe_waiters.push_back(src);
  respond(error_reply(Err::kWouldBlock, "pipe empty"));
}

void FsServer::do_pipe_write(HostId src, const PipeIoReq& req,
                             Respond respond) {
  if (req.gen != boot_generation_)
    return respond(error_reply(Err::kStale, "pipe write: pre-crash stream"));
  auto* node = inodes_.count(req.id.ino) ? &inode(req.id.ino) : nullptr;
  if (node == nullptr || node->type != FileType::kPipe)
    return respond(error_reply(Err::kStale, "pipe write"));
  c_pipe_writes_->inc();

  int readers = 0;
  for (const auto& [h, use] : node->users) readers += use.readers;
  if (readers == 0)
    return respond(error_reply(Err::kPipe, "no readers"));

  if (static_cast<std::int64_t>(node->pipe_buffer.size()) >=
      costs_.pipe_capacity) {
    node->pipe_waiters.push_back(src);
    return respond(error_reply(Err::kWouldBlock, "pipe full"));
  }
  node->pipe_buffer.insert(node->pipe_buffer.end(), req.data.begin(),
                           req.data.end());
  notify_pipe_waiters(*node);  // readers may proceed
  auto rep = std::make_shared<PipeIoRep>();
  rep->written = static_cast<std::int64_t>(req.data.size());
  respond(Reply{Status::ok(), rep});
}

void FsServer::do_migrate_stream(const MigrateStreamReq& req,
                                 Respond respond) {
  if (req.gen != boot_generation_)
    return respond(
        error_reply(Err::kStale, "migrate stream: pre-crash stream"));
  auto* node = inodes_.count(req.id.ino) ? &inode(req.id.ino) : nullptr;
  if (node == nullptr)
    return respond(error_reply(Err::kStale, "migrate stream"));
  c_stream_migrations_->inc();
  if (trace::Registry& tr = sim_.trace(); tr.tracing())
    tr.instant("fs", "stream re-attributed", rpc_.host(), -1,
               {{"ino", std::to_string(req.id.ino)},
                {"from", std::to_string(req.from)},
                {"to", std::to_string(req.to)}});

  // Re-attributing a stream is semantically an open on the destination
  // host: any third host holding dirty cached data must be recalled first,
  // exactly as finish_open does (the source already flushed its own dirty
  // data before asking us to move the stream). Pipes have no caches.
  if (node->type != FileType::kPipe &&
      node->last_writer != sim::kInvalidHost &&
      node->last_writer != req.from && node->last_writer != req.to) {
    c_recalls_->inc();
    const HostId writer = node->last_writer;
    node->last_writer = sim::kInvalidHost;
    auto cb = std::make_shared<CallbackReq>();
    cb->id = req.id;
    rpc_.call(writer, ServiceId::kFsCallback,
              static_cast<int>(CallbackOp::kRecallDirty), cb,
              [this, req, respond = std::move(respond)](
                  util::Result<Reply>) mutable {
                do_migrate_stream(req, std::move(respond));
              });
    return;
  }

  // Move one open reference's attribution from the source host to the
  // destination host — unless the source keeps a fork-shared reference of
  // its own, in which case the destination simply gains one.
  if (!req.retain_source) {
    auto it = node->users.find(req.from);
    if (it != node->users.end()) {
      if (req.flags.read && it->second.readers > 0) --it->second.readers;
      if (req.flags.write && it->second.writers > 0) --it->second.writers;
      if (!it->second.any()) node->users.erase(it);
    }
  }
  HostUse& use = node->users[req.to];
  if (req.flags.read) ++use.readers;
  if (req.flags.write) ++use.writers;

  // The source flushed its dirty blocks before asking us to move the stream,
  // so it no longer holds dirty data.
  if (node->last_writer == req.from) node->last_writer = sim::kInvalidHost;
  if (req.flags.write && node->type != FileType::kPipe) {
    // The destination becomes a (potentially caching) writer: bump the
    // version exactly as a write-open would, so stale blocks cached on the
    // destination from an earlier visit are invalidated when the stream
    // arrives. (Without this, a process writing A -> B -> A loses B's
    // updates to A's stale cache.)
    ++node->version;
    node->last_writer = node->write_shared ? sim::kInvalidHost : req.to;
  }

  // Migration can create or destroy write sharing.
  std::vector<HostId> to_disable;
  update_sharing(*node, &to_disable);
  for (HostId h : to_disable) {
    auto cb = std::make_shared<CallbackReq>();
    cb->id = req.id;
    rpc_.call(h, ServiceId::kFsCallback,
              static_cast<int>(CallbackOp::kDisableCache), cb,
              [](util::Result<Reply>) {});
  }

  auto rep = std::make_shared<MigrateStreamRep>();
  rep->cacheable = !node->write_shared;
  rep->version = node->version;
  rep->size = node->size;
  rep->generation = boot_generation_;
  respond(Reply{Status::ok(), rep});
}

// ---------------------------------------------------------------------------
// Crash / recovery
// ---------------------------------------------------------------------------

void FsServer::crash_reset() {
  ++boot_generation_;
  for (auto it = inodes_.begin(); it != inodes_.end();) {
    Inode& node = it->second;
    // Pipes are kernel buffers, not disk objects: gone with the crash.
    // Unlinked-but-open files were kept alive only by open streams, and
    // every open attribution just evaporated — reap them too.
    if (node.type == FileType::kPipe ||
        (node.unlinked && node.ino != root_)) {
      it = inodes_.erase(it);
      continue;
    }
    // Memory-only consistency state is lost; disk contents survive.
    node.users.clear();
    node.write_shared = false;
    node.last_writer = sim::kInvalidHost;
    node.group_offsets.clear();
    node.pipe_waiters.clear();
    ++it;
  }
  lru_.clear();
  cached_.clear();
}

void FsServer::peer_crashed(HostId h) {
  std::vector<Ino> touched;
  for (auto& [ino, node] : inodes_) {
    const bool used = node.users.erase(h) > 0;
    // Any dirty blocks h cached are lost; nothing left to recall.
    if (node.last_writer == h) node.last_writer = sim::kInvalidHost;
    node.pipe_waiters.erase(
        std::remove(node.pipe_waiters.begin(), node.pipe_waiters.end(), h),
        node.pipe_waiters.end());
    if (!used) continue;
    touched.push_back(ino);
    std::vector<HostId> to_disable;
    update_sharing(node, &to_disable);  // sharing may end; no new callbacks
    // Pipe readers/writers died with h: parked peers must re-evaluate
    // (EOF when the writers are gone, EPIPE when the readers are).
    if (node.type == FileType::kPipe) notify_pipe_waiters(node);
  }
  for (Ino ino : touched) maybe_reap(ino);
}

}  // namespace sprite::fs
