// Pseudo-devices: Sprite's mechanism for user-level services reached through
// the file system [WO88].
//
// A server process registers a pseudo-device under a path; clients open it
// like a file and perform request/response transactions. The kernel forwards
// each transaction to the host running the server. Process migration is
// transparent to pseudo-device communication because only the kernel knows
// where the endpoints are — which is exactly how migd (the host-selection
// daemon) keeps working for migrated clients.
//
// The user-level nature of the server is modelled as a wakeup latency plus
// service CPU charged on the owner host before the handler runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "fs/types.h"
#include "rpc/rpc.h"
#include "sim/costs.h"
#include "sim/cpu.h"
#include "sim/simulator.h"

namespace sprite::fs {

struct PdevReq : rpc::Message {
  int tag = 0;
  Bytes data;
  std::int64_t wire_bytes() const override {
    return 16 + static_cast<std::int64_t>(data.size());
  }
};

struct PdevRep : rpc::Message {
  Bytes data;
  std::int64_t wire_bytes() const override {
    return 8 + static_cast<std::int64_t>(data.size());
  }
};

// Registry of pseudo-device servers on one host.
class PdevRegistry {
 public:
  // The handler plays the role of the user-level server's request loop.
  // It must call `reply` exactly once (possibly asynchronously).
  using Handler =
      std::function<void(const Bytes& request,
                         std::function<void(util::Result<Bytes>)> reply)>;

  PdevRegistry(sim::Simulator& sim, sim::Cpu& cpu, rpc::RpcNode& rpc,
               const sim::Costs& costs);

  // Registers the kPdev RPC service.
  void register_services();

  // Claims a tag for a server on this host.
  int register_server(Handler handler);
  void unregister_server(int tag);

  // Crash support: the user-level servers died with the host. Requests for
  // their tags fail until they re-register after reboot.
  void crash_reset() { servers_.clear(); }

 private:
  void handle(const rpc::Request& req,
              std::function<void(rpc::Reply)> respond);

  sim::Simulator& sim_;
  sim::Cpu& cpu_;
  rpc::RpcNode& rpc_;
  const sim::Costs& costs_;
  std::map<int, Handler> servers_;
  int next_tag_ = 1;
};

}  // namespace sprite::fs
