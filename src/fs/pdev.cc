#include "fs/pdev.h"

#include "util/assert.h"

namespace sprite::fs {

using rpc::Reply;
using rpc::Request;
using util::Err;
using util::Status;

PdevRegistry::PdevRegistry(sim::Simulator& sim, sim::Cpu& cpu,
                           rpc::RpcNode& rpc, const sim::Costs& costs)
    : sim_(sim), cpu_(cpu), rpc_(rpc), costs_(costs) {}

void PdevRegistry::register_services() {
  rpc_.register_service(
      rpc::ServiceId::kPdev,
      [this](sim::HostId, const Request& req,
             std::function<void(Reply)> respond) {
        handle(req, std::move(respond));
      });
}

int PdevRegistry::register_server(Handler handler) {
  const int tag = next_tag_++;
  servers_[tag] = std::move(handler);
  return tag;
}

void PdevRegistry::unregister_server(int tag) { servers_.erase(tag); }

void PdevRegistry::handle(const Request& req,
                          std::function<void(Reply)> respond) {
  auto body = rpc::body_cast<PdevReq>(req.body);
  SPRITE_CHECK(body != nullptr);
  auto it = servers_.find(body->tag);
  if (it == servers_.end()) {
    respond(Reply{Status(Err::kNoEnt, "no pdev server"), nullptr});
    return;
  }
  // Waking the user-level server costs scheduling latency, then its request
  // handling consumes CPU on this host.
  sim_.after(costs_.pdev_wakeup, [this, body, handler = it->second,
                                  respond = std::move(respond)]() mutable {
    cpu_.submit(sim::JobClass::kUser, costs_.migd_request_cpu,
                [body, handler = std::move(handler),
                 respond = std::move(respond)]() mutable {
                  handler(body->data,
                          [respond = std::move(respond)](
                              util::Result<Bytes> r) {
                            if (!r.is_ok())
                              return respond(Reply{r.status(), nullptr});
                            auto rep = std::make_shared<PdevRep>();
                            rep->data = std::move(*r);
                            respond(Reply{Status::ok(), rep});
                          });
                });
  });
}

}  // namespace sprite::fs
