#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "util/assert.h"
#include "util/log.h"
#include "util/table.h"

namespace sprite::trace {

namespace {

// Only one registry at a time may capture kTrace log lines (the same
// last-wins discipline the log time source uses across Simulators).
Registry* g_log_sink_owner = nullptr;

// Last-constructed registry owns the CHECK-failure flight dump (same
// last-wins discipline; tests that build several Simulators get the most
// recent one's forensics, which is the one that was running).
Registry* g_flight_owner = nullptr;

void flight_check_hook() {
  if (g_flight_owner != nullptr) g_flight_owner->dump_flight("CHECK failure");
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Chrome "pid" must be non-negative; unattributable events (global log
// lines, cluster-wide bookkeeping) render under one synthetic process.
constexpr int kGlobalPid = 999;

int chrome_pid(sim::HostId h) {
  return h == sim::kInvalidHost ? kGlobalPid : static_cast<int>(h);
}

void append_args(std::string& out, const Args& args, std::int64_t pid) {
  out += ",\"args\":{";
  bool first = true;
  if (pid >= 0) {
    out += "\"pid\":";
    out += std::to_string(pid);
    first = false;
  }
  for (const auto& [k, v] : args) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape_into(out, k);
    out += "\":\"";
    json_escape_into(out, v);
    out += '"';
  }
  out += '}';
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  SPRITE_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be sorted");
}

void LatencyHistogram::record(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v >= bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::note(std::int64_t ts_us, sim::HostId host,
                          std::int64_t pid, const char* cat, const char* name,
                          std::int64_t a0, std::int64_t a1) {
  ring_[next_] = Entry{ts_us, host, pid, cat, name, a0, a1};
  next_ = (next_ + 1) % ring_.size();
  ++recorded_;
}

std::vector<FlightRecorder::Entry> FlightRecorder::tail(std::size_t n) const {
  const std::size_t have =
      std::min<std::size_t>(static_cast<std::size_t>(recorded_), ring_.size());
  n = std::min(n, have);
  std::vector<Entry> out;
  out.reserve(n);
  // next_ points at the oldest entry once the ring has wrapped.
  std::size_t i = (next_ + ring_.size() - n) % ring_.size();
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(ring_[i]);
    i = (i + 1) % ring_.size();
  }
  return out;
}

std::string FlightRecorder::report(std::size_t n) const {
  std::string out;
  char buf[192];
  for (const Entry& e : tail(n)) {
    std::snprintf(buf, sizeof buf,
                  "  [%12.3fms] host=%-3d pid=%-5lld %-14s %-20s %lld %lld\n",
                  static_cast<double>(e.ts_us) / 1e3, e.host,
                  static_cast<long long>(e.pid), e.cat, e.name,
                  static_cast<long long>(e.a0), static_cast<long long>(e.a1));
    out += buf;
  }
  return out;
}

void FlightRecorder::clear() {
  std::fill(ring_.begin(), ring_.end(), Entry{});
  next_ = 0;
  recorded_ = 0;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Registry(std::function<std::int64_t()> now_us)
    : now_us_(std::move(now_us)) {
  SPRITE_CHECK(now_us_ != nullptr);
  g_flight_owner = this;
  util::set_check_failure_hook(&flight_check_hook);
  if (const char* env = std::getenv("SPRITE_FLIGHT_DUMP_ON_VERDICT"))
    dump_on_down_verdict_ = env[0] != '\0' && env[0] != '0';
}

Registry::~Registry() {
  if (g_log_sink_owner == this) {
    util::set_log_trace_sink(nullptr);
    g_log_sink_owner = nullptr;
  }
  if (g_flight_owner == this) {
    g_flight_owner = nullptr;
    util::set_check_failure_hook(nullptr);
  }
}

void Registry::dump_flight(const char* why, std::size_t n) const {
  const std::size_t shown = std::min<std::size_t>(
      n, std::min<std::size_t>(static_cast<std::size_t>(flight_.recorded()),
                               flight_.capacity()));
  std::fprintf(stderr,
               "--- flight recorder (%s): last %zu of %lld events ---\n", why,
               shown, static_cast<long long>(flight_.recorded()));
  const std::string tail = flight_.report(n);
  std::fwrite(tail.data(), 1, tail.size(), stderr);
  std::fputs("--- metrics snapshot ---\n", stderr);
  const std::string metrics = metrics_report();
  std::fwrite(metrics.data(), 1, metrics.size(), stderr);
  std::fflush(stderr);
}

void Registry::set_tracing(bool on) {
  tracing_ = on;
  if (on) {
    g_log_sink_owner = this;
    util::set_log_trace_sink([this](const char* tag, const char* body) {
      instant(tag, body, sim::kInvalidHost);
    });
  } else if (g_log_sink_owner == this) {
    util::set_log_trace_sink(nullptr);
    g_log_sink_owner = nullptr;
  }
}

void Registry::set_host_name(sim::HostId h, std::string name) {
  host_names_[h] = std::move(name);
}

Counter& Registry::counter(const std::string& name, sim::HostId host) {
  return counters_[{name, host}];
}

Gauge& Registry::gauge(const std::string& name, sim::HostId host) {
  return gauges_[{name, host}];
}

LatencyHistogram& Registry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      sim::HostId host) {
  auto it = histograms_.find({name, host});
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::make_pair(name, host),
                      LatencyHistogram(std::move(bounds)))
             .first;
  }
  return it->second;
}

std::int64_t Registry::counter_value(const std::string& name,
                                     sim::HostId host) const {
  auto it = counters_.find({name, host});
  return it == counters_.end() ? 0 : it->second.value();
}

int Registry::lane_for(const std::string& cat) {
  auto it = lanes_.find(cat);
  if (it == lanes_.end())
    it = lanes_.emplace(cat, static_cast<int>(lanes_.size()) + 1).first;
  return it->second;
}

bool Registry::record(Event e) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(e));
  return true;
}

Context Registry::new_trace() {
  if (!tracing_) return Context{};
  return Context{next_trace_++, 0};
}

SpanId Registry::reserve_span() {
  if (!tracing_) return 0;
  return next_span_++;
}

Context Registry::span_context(SpanId id) const {
  auto it = open_spans_.find(id);
  if (it == open_spans_.end()) return Context{};
  return Context{it->second.trace_id, id};
}

SpanId Registry::begin_span(std::string cat, std::string name,
                            sim::HostId host, std::int64_t pid, Args args) {
  if (!tracing_) return 0;
  const SpanId id = next_span_++;
  const int lane = lane_for(cat);
  if (!record(Event{'b', now_us_(), host, pid, id, current_.trace_id,
                    current_.parent_span, lane, cat, name, std::move(args)}))
    return 0;
  open_spans_.emplace(id, OpenSpan{std::move(cat), std::move(name), host,
                                   pid, lane, current_.trace_id});
  return id;
}

void Registry::end_span(SpanId id, Args args) {
  if (id == 0) return;
  auto it = open_spans_.find(id);
  if (it == open_spans_.end()) {
    // Stale id: its begin was discarded by clear_events() (or dropped at the
    // buffer cap); emitting a dangling 'e' would corrupt the span pairing.
    counter("trace.span.orphaned").inc();
    return;
  }
  OpenSpan sp = std::move(it->second);
  open_spans_.erase(it);
  if (!tracing_) return;
  record(Event{'e', now_us_(), sp.host, sp.pid, id, 0, 0, sp.lane,
               std::move(sp.cat), std::move(sp.name), std::move(args)});
}

void Registry::instant(std::string cat, std::string name, sim::HostId host,
                       std::int64_t pid, Args args) {
  if (!tracing_) return;
  const int lane = lane_for(cat);
  record(Event{'i', now_us_(), host, pid, 0, 0, 0, lane, std::move(cat),
               std::move(name), std::move(args)});
}

SpanId Registry::span_at(std::string cat, std::string name, sim::HostId host,
                         std::int64_t pid, sim::Time begin, sim::Time end,
                         Args args, Context parent, SpanId reuse_id) {
  if (!tracing_) return 0;
  const SpanId id = reuse_id != 0 ? reuse_id : next_span_++;
  const int lane = lane_for(cat);
  record(Event{'b', begin.us(), host, pid, id, parent.trace_id,
               parent.parent_span, lane, cat, name, std::move(args)});
  record(Event{'e', end.us(), host, pid, id, 0, 0, lane, std::move(cat),
               std::move(name), {}});
  return id;
}

void Registry::clear_events() {
  events_.clear();
  // Spans still open lose their begin event with the clear: drop the ids so
  // their eventual end_span() cannot emit a dangling 'e' (it lands in the
  // trace.span.orphaned counter instead).
  open_spans_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

std::string Registry::chrome_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: hosts as processes, categories as per-process threads.
  std::set<int> pids;
  std::set<std::pair<int, int>> threads;  // (pid, lane)
  for (const auto& e : events_) {
    pids.insert(chrome_pid(e.host));
    threads.insert({chrome_pid(e.host), e.lane});
  }
  // lane -> category name (lanes_ is cat -> lane).
  std::map<int, std::string> lane_names;
  for (const auto& [cat, lane] : lanes_) lane_names[lane] = cat;

  for (int pid : pids) {
    std::string name = pid == kGlobalPid ? "cluster" : "host";
    if (pid != kGlobalPid) {
      auto it = host_names_.find(static_cast<sim::HostId>(pid));
      name = it != host_names_.end() ? it->second
                                     : "host" + std::to_string(pid);
    }
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    json_escape_into(out, name);
    out += "\"}}";
  }
  for (const auto& [pid, lane] : threads) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(lane) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(out, lane_names.count(lane) ? lane_names[lane] : "?");
    out += "\"}}";
  }

  auto hex_id = [](std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };

  for (const auto& e : events_) {
    sep();
    out += "{\"ph\":\"";
    out += e.phase;
    out += "\",\"cat\":\"";
    json_escape_into(out, e.cat);
    out += "\",\"name\":\"";
    json_escape_into(out, e.name);
    out += "\",\"pid\":" + std::to_string(chrome_pid(e.host)) +
           ",\"tid\":" + std::to_string(e.lane) +
           ",\"ts\":" + std::to_string(e.ts_us);
    if (e.phase == 'b' || e.phase == 'e') {
      out += ",\"id\":\"" + hex_id(e.id) + '"';
    } else {
      out += ",\"s\":\"t\"";
    }
    if (e.phase == 'b' && (e.trace_id != 0 || e.parent != 0)) {
      Args annotated = e.args;
      if (e.trace_id != 0)
        annotated.emplace_back("trace", hex_id(e.trace_id));
      if (e.parent != 0) annotated.emplace_back("parent", hex_id(e.parent));
      append_args(out, annotated, e.pid);
    } else {
      append_args(out, e.args, e.pid);
    }
    out += '}';
  }

  // Causality arrows: each parent/child span edge that crosses hosts becomes
  // a flow-event pair — 's' anchored at the parent's begin on the parent's
  // track, 'f' (bp:"e") at the child's begin on the child's track. Emitted
  // in child-span-id order, so the export stays byte-identical per seed.
  std::map<SpanId, const Event*> begin_by_id;
  for (const auto& e : events_)
    if (e.phase == 'b') begin_by_id.emplace(e.id, &e);
  for (const auto& [id, child] : begin_by_id) {
    if (child->parent == 0) continue;
    auto pit = begin_by_id.find(child->parent);
    if (pit == begin_by_id.end()) continue;
    const Event* parent = pit->second;
    if (parent->host == child->host) continue;
    const std::string flow_id = hex_id(id);
    sep();
    out += "{\"ph\":\"s\",\"cat\":\"flow\",\"name\":\"causal\",\"id\":\"" +
           flow_id + "\",\"pid\":" + std::to_string(chrome_pid(parent->host)) +
           ",\"tid\":" + std::to_string(parent->lane) +
           ",\"ts\":" + std::to_string(parent->ts_us) + "}";
    sep();
    out += "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\",\"name\":\"causal\","
           "\"id\":\"" +
           flow_id + "\",\"pid\":" + std::to_string(chrome_pid(child->host)) +
           ",\"tid\":" + std::to_string(child->lane) +
           ",\"ts\":" + std::to_string(child->ts_us) + "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

util::Status Registry::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return util::Status(util::Err::kNoEnt, "cannot open " + path);
  const std::string json = chrome_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size())
    return util::Status(util::Err::kNoSpace, "short write to " + path);
  return util::Status::ok();
}

std::string Registry::metrics_report() const {
  util::Table t({"metric", "host", "value"});
  auto host_cell = [](sim::HostId h) {
    return h == sim::kInvalidHost ? std::string("-") : std::to_string(h);
  };
  for (const auto& [key, c] : counters_) {
    if (c.value() == 0) continue;  // keep the snapshot legible
    t.add_row({key.first, host_cell(key.second), std::to_string(c.value())});
  }
  for (const auto& [key, g] : gauges_)
    t.add_row({key.first, host_cell(key.second), util::Table::num(g.value())});
  for (const auto& [key, h] : histograms_) {
    if (h.count() == 0) continue;
    t.add_row({key.first, host_cell(key.second),
               "n=" + std::to_string(h.count()) +
                   " mean=" + util::Table::num(h.mean()) +
                   " sum=" + util::Table::num(h.sum())});
  }
  return t.to_string();
}

std::string Registry::metrics_json() const {
  std::string out;
  auto num = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  auto key_fields = [&](const std::pair<std::string, sim::HostId>& key) {
    std::string s = "\"name\":\"";
    json_escape_into(s, key.first);
    s += "\",\"host\":" + std::to_string(static_cast<int>(key.second));
    return s;
  };

  out += "{\n\"counters\":[";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{" + key_fields(key) +
           ",\"value\":" + std::to_string(c.value()) + "}";
  }
  out += "\n],\n\"gauges\":[";
  first = true;
  for (const auto& [key, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{" + key_fields(key) + ",\"value\":" + num(g.value()) + "}";
  }
  out += "\n],\n\"histograms\":[";
  first = true;
  for (const auto& [key, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{" + key_fields(key) +
           ",\"count\":" + std::to_string(h.count()) +
           ",\"sum\":" + num(h.sum()) + ",\"bounds_ms\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i != 0) out += ',';
      out += num(h.bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(h.bucket(i));
    }
    out += "]}";
  }
  out += "\n]\n}\n";
  return out;
}

util::Status Registry::write_metrics_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return util::Status(util::Err::kNoEnt, "cannot open " + path);
  const std::string json = metrics_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size())
    return util::Status(util::Err::kNoSpace, "short write to " + path);
  return util::Status::ok();
}

}  // namespace sprite::trace
