#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/assert.h"
#include "util/log.h"
#include "util/table.h"

namespace sprite::trace {

namespace {

// Only one registry at a time may capture kTrace log lines (the same
// last-wins discipline the log time source uses across Simulators).
Registry* g_log_sink_owner = nullptr;

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Chrome "pid" must be non-negative; unattributable events (global log
// lines, cluster-wide bookkeeping) render under one synthetic process.
constexpr int kGlobalPid = 999;

int chrome_pid(sim::HostId h) {
  return h == sim::kInvalidHost ? kGlobalPid : static_cast<int>(h);
}

void append_args(std::string& out, const Args& args, std::int64_t pid) {
  out += ",\"args\":{";
  bool first = true;
  if (pid >= 0) {
    out += "\"pid\":";
    out += std::to_string(pid);
    first = false;
  }
  for (const auto& [k, v] : args) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape_into(out, k);
    out += "\":\"";
    json_escape_into(out, v);
    out += '"';
  }
  out += '}';
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  SPRITE_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be sorted");
}

void LatencyHistogram::record(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v >= bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Registry(std::function<std::int64_t()> now_us)
    : now_us_(std::move(now_us)) {
  SPRITE_CHECK(now_us_ != nullptr);
}

Registry::~Registry() {
  if (g_log_sink_owner == this) {
    util::set_log_trace_sink(nullptr);
    g_log_sink_owner = nullptr;
  }
}

void Registry::set_tracing(bool on) {
  tracing_ = on;
  if (on) {
    g_log_sink_owner = this;
    util::set_log_trace_sink([this](const char* tag, const char* body) {
      instant(tag, body, sim::kInvalidHost);
    });
  } else if (g_log_sink_owner == this) {
    util::set_log_trace_sink(nullptr);
    g_log_sink_owner = nullptr;
  }
}

void Registry::set_host_name(sim::HostId h, std::string name) {
  host_names_[h] = std::move(name);
}

Counter& Registry::counter(const std::string& name, sim::HostId host) {
  return counters_[{name, host}];
}

Gauge& Registry::gauge(const std::string& name, sim::HostId host) {
  return gauges_[{name, host}];
}

LatencyHistogram& Registry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      sim::HostId host) {
  auto it = histograms_.find({name, host});
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::make_pair(name, host),
                      LatencyHistogram(std::move(bounds)))
             .first;
  }
  return it->second;
}

std::int64_t Registry::counter_value(const std::string& name,
                                     sim::HostId host) const {
  auto it = counters_.find({name, host});
  return it == counters_.end() ? 0 : it->second.value();
}

int Registry::lane_for(const std::string& cat) {
  auto it = lanes_.find(cat);
  if (it == lanes_.end())
    it = lanes_.emplace(cat, static_cast<int>(lanes_.size()) + 1).first;
  return it->second;
}

bool Registry::record(Event e) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(e));
  return true;
}

SpanId Registry::begin_span(std::string cat, std::string name,
                            sim::HostId host, std::int64_t pid, Args args) {
  if (!tracing_) return 0;
  const SpanId id = next_span_++;
  const int lane = lane_for(cat);
  if (!record(Event{'b', now_us_(), host, pid, id, lane, cat, name,
                    std::move(args)}))
    return 0;
  open_spans_.emplace(id, OpenSpan{std::move(cat), std::move(name), host,
                                   pid, lane});
  return id;
}

void Registry::end_span(SpanId id, Args args) {
  if (id == 0) return;
  auto it = open_spans_.find(id);
  if (it == open_spans_.end()) return;  // events were cleared meanwhile
  OpenSpan sp = std::move(it->second);
  open_spans_.erase(it);
  if (!tracing_) return;
  record(Event{'e', now_us_(), sp.host, sp.pid, id, sp.lane,
               std::move(sp.cat), std::move(sp.name), std::move(args)});
}

void Registry::instant(std::string cat, std::string name, sim::HostId host,
                       std::int64_t pid, Args args) {
  if (!tracing_) return;
  const int lane = lane_for(cat);
  record(Event{'i', now_us_(), host, pid, 0, lane, std::move(cat),
               std::move(name), std::move(args)});
}

void Registry::span_at(std::string cat, std::string name, sim::HostId host,
                       std::int64_t pid, sim::Time begin, sim::Time end,
                       Args args) {
  if (!tracing_) return;
  const SpanId id = next_span_++;
  const int lane = lane_for(cat);
  record(Event{'b', begin.us(), host, pid, id, lane, cat, name,
               std::move(args)});
  record(Event{'e', end.us(), host, pid, id, lane, std::move(cat),
               std::move(name), {}});
}

void Registry::clear_events() {
  events_.clear();
  open_spans_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

std::string Registry::chrome_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: hosts as processes, categories as per-process threads.
  std::set<int> pids;
  std::set<std::pair<int, int>> threads;  // (pid, lane)
  for (const auto& e : events_) {
    pids.insert(chrome_pid(e.host));
    threads.insert({chrome_pid(e.host), e.lane});
  }
  // lane -> category name (lanes_ is cat -> lane).
  std::map<int, std::string> lane_names;
  for (const auto& [cat, lane] : lanes_) lane_names[lane] = cat;

  for (int pid : pids) {
    std::string name = pid == kGlobalPid ? "cluster" : "host";
    if (pid != kGlobalPid) {
      auto it = host_names_.find(static_cast<sim::HostId>(pid));
      name = it != host_names_.end() ? it->second
                                     : "host" + std::to_string(pid);
    }
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    json_escape_into(out, name);
    out += "\"}}";
  }
  for (const auto& [pid, lane] : threads) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(lane) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(out, lane_names.count(lane) ? lane_names[lane] : "?");
    out += "\"}}";
  }

  for (const auto& e : events_) {
    sep();
    out += "{\"ph\":\"";
    out += e.phase;
    out += "\",\"cat\":\"";
    json_escape_into(out, e.cat);
    out += "\",\"name\":\"";
    json_escape_into(out, e.name);
    out += "\",\"pid\":" + std::to_string(chrome_pid(e.host)) +
           ",\"tid\":" + std::to_string(e.lane) +
           ",\"ts\":" + std::to_string(e.ts_us);
    if (e.phase == 'b' || e.phase == 'e') {
      char idbuf[24];
      std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                    static_cast<unsigned long long>(e.id));
      out += ",\"id\":\"";
      out += idbuf;
      out += '"';
    } else {
      out += ",\"s\":\"t\"";
    }
    append_args(out, e.args, e.pid);
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

util::Status Registry::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return util::Status(util::Err::kNoEnt, "cannot open " + path);
  const std::string json = chrome_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size())
    return util::Status(util::Err::kNoSpace, "short write to " + path);
  return util::Status::ok();
}

std::string Registry::metrics_report() const {
  util::Table t({"metric", "host", "value"});
  auto host_cell = [](sim::HostId h) {
    return h == sim::kInvalidHost ? std::string("-") : std::to_string(h);
  };
  for (const auto& [key, c] : counters_) {
    if (c.value() == 0) continue;  // keep the snapshot legible
    t.add_row({key.first, host_cell(key.second), std::to_string(c.value())});
  }
  for (const auto& [key, g] : gauges_)
    t.add_row({key.first, host_cell(key.second), util::Table::num(g.value())});
  for (const auto& [key, h] : histograms_) {
    if (h.count() == 0) continue;
    t.add_row({key.first, host_cell(key.second),
               "n=" + std::to_string(h.count()) +
                   " mean=" + util::Table::num(h.mean()) +
                   " sum=" + util::Table::num(h.sum())});
  }
  return t.to_string();
}

}  // namespace sprite::trace
