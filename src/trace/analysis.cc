#include "trace/analysis.h"

#include <algorithm>
#include <map>

#include "util/table.h"

namespace sprite::trace::analysis {

const Span* SpanTree::find(SpanId id) const {
  for (const Span& s : spans)
    if (s.id == id) return &s;
  return nullptr;
}

const Span* SpanTree::root_like(const std::string& cat,
                                const std::string& name_prefix) const {
  for (std::size_t i : roots) {
    const Span& s = spans[i];
    if (s.cat != cat) continue;
    if (s.name.compare(0, name_prefix.size(), name_prefix) != 0) continue;
    return &s;
  }
  return nullptr;
}

std::vector<std::uint64_t> trace_ids(const std::vector<Event>& events) {
  std::vector<std::uint64_t> out;
  for (const Event& e : events)
    if (e.phase == 'b' && e.trace_id != 0) out.push_back(e.trace_id);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SpanTree build_tree(const std::vector<Event>& events, std::uint64_t trace_id) {
  SpanTree t;
  t.trace_id = trace_id;
  // First pass: collect this trace's begin events (span-id order == event
  // order for a given id, since ids are allocated monotonically).
  std::map<SpanId, std::size_t> index;
  for (const Event& e : events) {
    if (e.phase != 'b' || e.trace_id != trace_id) continue;
    Span s;
    s.id = e.id;
    s.parent = e.parent;
    s.host = e.host;
    s.pid = e.pid;
    s.cat = e.cat;
    s.name = e.name;
    s.begin_us = e.ts_us;
    s.end_us = e.ts_us;  // provisional until the 'e' is seen
    s.args = e.args;
    index[s.id] = t.spans.size();
    t.spans.push_back(std::move(s));
  }
  // Second pass: close them. A span can be begun and ended out of event
  // order only via span_at (which emits b then e adjacently), so a single
  // sweep suffices.
  std::vector<bool> closed(t.spans.size(), false);
  for (const Event& e : events) {
    if (e.phase != 'e') continue;
    auto it = index.find(e.id);
    if (it == index.end()) continue;
    Span& s = t.spans[it->second];
    s.end_us = e.ts_us;
    for (const auto& kv : e.args) s.args.push_back(kv);
    closed[it->second] = true;
  }
  // Drop still-open spans (crash mid-operation): erase from the back so
  // earlier indices stay valid.
  for (std::size_t i = t.spans.size(); i-- > 0;) {
    if (!closed[i]) {
      index.erase(t.spans[i].id);
      t.spans.erase(t.spans.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  // Rebuild the index after erasure and wire parents.
  index.clear();
  for (std::size_t i = 0; i < t.spans.size(); ++i) index[t.spans[i].id] = i;
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    const Span& s = t.spans[i];
    auto pit = s.parent != 0 ? index.find(s.parent) : index.end();
    if (pit == index.end() || pit->second == i)
      t.roots.push_back(i);
    else
      t.spans[pit->second].children.push_back(i);
  }
  return t;
}

namespace {

// Appends, in reverse chronological order, the self-time segments of the
// critical path through spans[idx] covering [spans[idx].begin_us, upto).
void walk_reverse(const SpanTree& t, std::size_t idx, std::int64_t upto,
                  std::vector<PathSegment>& out) {
  const Span& s = t.spans[idx];
  std::int64_t cur = upto;
  while (cur > s.begin_us) {
    // The child that finishes latest but not after the cursor is the one
    // whose completion gated this point in time. Ties (identical end) break
    // toward the later begin: the shorter span is the inner dependency.
    std::size_t best = t.spans.size();
    for (std::size_t c : s.children) {
      const Span& ch = t.spans[c];
      if (ch.end_us > cur || ch.end_us <= s.begin_us) continue;
      // Only children that begin strictly before the cursor can advance it;
      // a zero-length child sitting exactly at `cur` would otherwise be
      // re-selected forever.
      if (ch.begin_us >= cur) continue;
      if (best == t.spans.size() || ch.end_us > t.spans[best].end_us ||
          (ch.end_us == t.spans[best].end_us &&
           ch.begin_us > t.spans[best].begin_us))
        best = c;
    }
    if (best == t.spans.size()) {
      out.push_back(PathSegment{idx, s.begin_us, cur});
      return;
    }
    const Span& ch = t.spans[best];
    if (ch.end_us < cur) out.push_back(PathSegment{idx, ch.end_us, cur});
    const std::int64_t child_from = std::max(ch.begin_us, s.begin_us);
    walk_reverse(t, best, ch.end_us, out);
    cur = child_from;
  }
}

}  // namespace

std::vector<PathSegment> critical_path(const SpanTree& tree, SpanId root) {
  std::vector<PathSegment> out;
  for (std::size_t i = 0; i < tree.spans.size(); ++i) {
    if (tree.spans[i].id != root) continue;
    walk_reverse(tree, i, tree.spans[i].end_us, out);
    std::reverse(out.begin(), out.end());
    // Zero-length segments carry no information.
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](const PathSegment& p) {
                               return p.duration_us() <= 0;
                             }),
              out.end());
    return out;
  }
  return out;
}

std::vector<LabelTime> self_time_by_label(
    const SpanTree& tree, const std::vector<PathSegment>& path) {
  std::map<std::string, LabelTime> agg;
  for (const PathSegment& p : path) {
    const Span& s = tree.spans[p.span];
    const std::string label = s.cat + "/" + s.name;
    LabelTime& lt = agg[label];
    lt.label = label;
    lt.us += p.duration_us();
    ++lt.segments;
  }
  std::vector<LabelTime> out;
  out.reserve(agg.size());
  for (auto& [_, lt] : agg) out.push_back(std::move(lt));
  std::sort(out.begin(), out.end(), [](const LabelTime& a, const LabelTime& b) {
    if (a.us != b.us) return a.us > b.us;
    return a.label < b.label;
  });
  return out;
}

std::int64_t MigrationBreakdown::sum_in_total_us() const {
  std::int64_t sum = 0;
  for (const BreakdownRow& r : rows)
    if (r.in_total) sum += r.us;
  return sum;
}

std::string MigrationBreakdown::table() const {
  util::Table t({"component", "ms", "% of total"});
  for (const BreakdownRow& r : rows) {
    const double pct =
        total_us > 0
            ? 100.0 * static_cast<double>(r.us) / static_cast<double>(total_us)
            : 0.0;
    std::string name = r.component;
    if (!r.in_total) name += " *";
    if (r.count > 0) name += " (n=" + std::to_string(r.count) + ")";
    t.add_row({name, util::Table::num(static_cast<double>(r.us) / 1000.0, 3),
               util::Table::num(pct, 1)});
  }
  t.add_row({"total (end-to-end)",
             util::Table::num(static_cast<double>(total_us) / 1000.0, 3),
             "100.0"});
  std::string out = t.to_string();
  out += "  (* overlay: overlaps the components above, not summed)\n";
  return out;
}

MigrationBreakdown migration_breakdown(const std::vector<Event>& events,
                                       std::uint64_t trace_id,
                                       int first_n_pages) {
  MigrationBreakdown b;
  b.trace_id = trace_id;
  const SpanTree t = build_tree(events, trace_id);
  const Span* root = t.root_like("mig", "migrate");
  if (root == nullptr) return b;
  b.valid = true;
  b.total_us = root->duration_us();

  // The retroactive partition spans tile [started, resumed] exactly; find
  // them among the root's children by name.
  const Span* vm = nullptr;
  const Span* init = nullptr;
  const Span* streams = nullptr;
  const Span* xfer = nullptr;
  for (std::size_t c : root->children) {
    const Span& s = t.spans[c];
    if (s.cat != "mig") continue;
    if (s.name == "init handshake") init = &s;
    else if (s.name.rfind("vm ", 0) == 0) vm = &s;
    else if (s.name == "streams re-attribute") streams = &s;
    else if (s.name == "transfer+resume") xfer = &s;
  }

  if (init != nullptr)
    b.rows.push_back({"init handshake", init->duration_us(), 0, true});
  if (vm != nullptr) b.rows.push_back({vm->name, vm->duration_us(), 0, true});
  if (streams != nullptr)
    b.rows.push_back(
        {"streams re-attribute", streams->duration_us(), 0, true});

  // Split transfer+resume into the state RPC (the migration call span the
  // source ran inside that window) and the remainder — install + scheduling
  // on the target until the process was runnable.
  if (xfer != nullptr) {
    std::int64_t rpc_us = 0;
    for (const Span& s : t.spans) {
      if (s.cat != "rpc" || s.host != root->host) continue;
      if (s.name.rfind("call migration", 0) != 0) continue;
      const std::int64_t lo = std::max(s.begin_us, xfer->begin_us);
      const std::int64_t hi = std::min(s.end_us, xfer->end_us);
      if (hi > lo) rpc_us += hi - lo;
    }
    rpc_us = std::min(rpc_us, xfer->duration_us());
    b.rows.push_back({"state RPC (transfer)", rpc_us, 0, true});
    b.rows.push_back({"resume", xfer->duration_us() - rpc_us, 0, true});
  }

  // Overlay rows: the freeze window spans vm/streams/transfer; demand-page
  // cost accrues after the root span already ended.
  for (std::size_t i : t.roots) {
    const Span& s = t.spans[i];
    if (s.cat == "mig" && s.name == "frozen") {
      b.freeze_us = s.duration_us();
      b.rows.push_back({"frozen (freeze time)", b.freeze_us, 0, false});
      break;
    }
  }

  // First-N demand pages: total fault-service time of the first N
  // post-resume demand-page faults on the target — the Sprite-flush
  // strategy's deferred cost (~0 for whole-copy, which ships everything up
  // front). Service time, not wall clock, so workload think-time between
  // faults does not pollute the row.
  std::vector<const Span*> faults;
  for (const Span& s : t.spans)
    if (s.cat == "vm" && s.name == "demand-page" && s.begin_us >= root->end_us)
      faults.push_back(&s);
  std::sort(faults.begin(), faults.end(), [](const Span* a, const Span* b2) {
    if (a->begin_us != b2->begin_us) return a->begin_us < b2->begin_us;
    return a->id < b2->id;
  });
  if (!faults.empty()) {
    const std::size_t n =
        std::min(faults.size(), static_cast<std::size_t>(first_n_pages));
    std::int64_t service_us = 0;
    for (std::size_t i = 0; i < n; ++i) service_us += faults[i]->duration_us();
    b.rows.push_back({"first-" + std::to_string(n) + " demand-page faults",
                      service_us, static_cast<std::int64_t>(n), false});
  }
  return b;
}

}  // namespace sprite::trace::analysis
