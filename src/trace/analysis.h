// Offline analysis over the registry's event stream: span-tree
// reconstruction, critical-path extraction, and the migration breakdown the
// benchmarks print next to the paper's numbers.
//
// Everything here is pure — functions take the recorded event vector and
// return value types — so the benches and tests can analyse a trace without
// mutating the registry, and the same code can in principle digest a
// previously exported run.
//
// The central object is the span tree of one logical operation (one
// trace_id): every 'b'/'e' pair whose begin event carries that trace id,
// wired parent-to-child through the causal `parent` field that
// ScopedContext/the RPC wire propagated at record time. Cross-host edges are
// ordinary parent links here; only the Chrome export renders them specially.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace sprite::trace::analysis {

// One reconstructed span (a matched 'b'/'e' pair).
struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 or an id missing from the trace => root
  sim::HostId host = sim::kInvalidHost;
  std::int64_t pid = -1;
  std::string cat;
  std::string name;
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;
  Args args;                          // begin-side + end-side, concatenated
  std::vector<std::size_t> children;  // indices into SpanTree::spans

  std::int64_t duration_us() const { return end_us - begin_us; }
};

// All spans of one trace, in span-id (= creation) order.
struct SpanTree {
  std::uint64_t trace_id = 0;
  std::vector<Span> spans;
  std::vector<std::size_t> roots;  // indices of parentless spans

  const Span* find(SpanId id) const;
  // The root matching a cat (and name prefix, if non-empty); nullptr if
  // absent or ambiguous-free first match wins (span-id order).
  const Span* root_like(const std::string& cat,
                        const std::string& name_prefix = "") const;
};

// Trace ids present in the stream, ascending.
std::vector<std::uint64_t> trace_ids(const std::vector<Event>& events);

// Builds the span tree for one logical operation. Spans still open at the
// end of the stream (no 'e') are dropped; spans whose parent id never
// appears in this trace become roots.
SpanTree build_tree(const std::vector<Event>& events, std::uint64_t trace_id);

// One segment of a critical path: a half-open interval [begin_us, end_us)
// attributed to `span` (index into tree.spans). `self` is true when the
// interval is the span's own time — no child of it was active — and false
// when it merely brackets the descent into a child (those segments are
// omitted; only leaf-level self-time is emitted, so segments tile the root's
// duration exactly).
struct PathSegment {
  std::size_t span = 0;
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;

  std::int64_t duration_us() const { return end_us - begin_us; }
};

// Critical path through `root` (a span id in the tree): the chain of work
// that determined the operation's end time. Walks backwards from the root's
// end, at each cursor descending into the child with the latest end time not
// after the cursor; time no child covers is the parent's self-time. Segments
// come back in chronological order and sum exactly to the root's duration.
std::vector<PathSegment> critical_path(const SpanTree& tree, SpanId root);

// Critical-path self-time aggregated by "cat/name", largest first (ties by
// label). The bench binaries print this as the component table of a
// forwarded call or a migration.
struct LabelTime {
  std::string label;
  std::int64_t us = 0;
  int segments = 0;
};
std::vector<LabelTime> self_time_by_label(const SpanTree& tree,
                                          const std::vector<PathSegment>& path);

// ---- Migration breakdown ----
//
// The per-component decomposition of one migration (thesis §5: where the
// time goes). Components flagged `in_total` partition the root span end to
// end — their sum equals total_us by construction, which the benches CHECK
// to within 5% as a self-test of the span data. `freeze` and the first-N
// demand-page window overlap/extend the root and are reported as overlay
// rows.
struct BreakdownRow {
  std::string component;
  std::int64_t us = 0;
  std::int64_t count = 0;  // pages, streams, ... 0 when not meaningful
  bool in_total = false;
};

struct MigrationBreakdown {
  std::uint64_t trace_id = 0;
  bool valid = false;  // false: no migration root span in this trace
  std::int64_t total_us = 0;   // root span duration (migrate -> resumed)
  std::int64_t freeze_us = 0;  // the "frozen" overlay span
  std::vector<BreakdownRow> rows;

  std::int64_t sum_in_total_us() const;
  // Rendered util::Table: component | ms | % of total.
  std::string table() const;
};

// Decomposes the migration in `trace_id`:
//   init handshake / vm <strategy> / streams re-attribute — the retroactive
//     partition spans under the root;
//   state RPC — the portion of the transfer+resume window covered by the
//     source's migration RPC call span;
//   resume — the remainder of that window;
//   frozen — overlay row (overlaps vm/streams/transfer);
//   first-N demand pages — wall clock from resume to the Nth post-resume
//     demand-page fault on the target, overlay row.
MigrationBreakdown migration_breakdown(const std::vector<Event>& events,
                                       std::uint64_t trace_id,
                                       int first_n_pages = 8);

}  // namespace sprite::trace::analysis
