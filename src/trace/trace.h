// Unified tracing & metrics registry.
//
// One Registry hangs off each Simulator, so every measurement is stamped
// with the simulated clock and runs stay deterministic and single-threaded
// (no atomics anywhere). Two kinds of data flow through it:
//
//   * Metrics — named counters, gauges, and fixed-bucket latency histograms,
//     keyed by (name, host). Always on: they are plain integer/double work,
//     and the legacy per-subsystem Stats structs are thin views over them.
//     Naming convention: `subsystem.noun.verb` ("fs.server.open",
//     "mig.page.flushed").
//
//   * Events — begin/end spans and instant events with host/pid attribution.
//     Gated: a disabled registry costs exactly one branch per site and
//     records nothing. Enabled, events accumulate in memory and export as
//     Chrome `trace_event` JSON (open in chrome://tracing or Perfetto):
//     hosts render as "processes", subsystems (event categories) as
//     "threads".
//
// Because kernel mechanisms are continuation-passing, spans are token-based
// rather than RAII: begin_span() returns a SpanId the caller threads through
// its callback chain to end_span(). Code that already has both endpoints on
// hand (e.g. a MigrationRecord) emits the span retroactively via span_at().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/ids.h"
#include "sim/time.h"
#include "util/status.h"

namespace sprite::trace {

using SpanId = std::uint64_t;
// Small key/value annotations attached to an event ("pages" -> "256").
using Args = std::vector<std::pair<std::string, std::string>>;

// Default millisecond bucket boundaries for latency histograms: roughly
// logarithmic from sub-millisecond RPCs to multi-second bulk transfers.
inline std::vector<double> default_latency_bounds_ms() {
  return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

// A monotonically increasing integer metric. Addresses are stable for the
// registry's lifetime, so instrumented subsystems cache the pointer once.
class Counter {
 public:
  void inc(std::int64_t n = 1) { v_ += n; }
  std::int64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::int64_t v_ = 0;
};

// A point-in-time measurement (load average, queue depth).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

// Fixed-boundary latency histogram: buckets [0,b0), [b0,b1), ...,
// [b_last, inf). Bounds are fixed at creation so accumulation is O(buckets)
// and export is deterministic.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> bounds);

  void record(double v);
  void record(sim::Time t) { record(t.ms()); }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last bucket is the overflow bucket.
  std::int64_t bucket(std::size_t i) const { return counts_[i]; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

// One recorded trace event. phase: 'b' span begin, 'e' span end,
// 'i' instant.
struct Event {
  char phase = 'i';
  std::int64_t ts_us = 0;
  sim::HostId host = sim::kInvalidHost;
  std::int64_t pid = -1;  // sprite process id; -1 when not attributable
  SpanId id = 0;          // links 'b'/'e' pairs
  int lane = 0;           // per-category display lane ("thread")
  std::string cat;        // subsystem: "rpc", "mig", "vm", "fs", "proc", "ls"
  std::string name;
  Args args;
};

class Registry {
 public:
  explicit Registry(std::function<std::int64_t()> now_us);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // ---- Event gating ----
  // Enabling also routes kTrace-level SPRITE_LOG lines into the stream as
  // instant events, so log and trace timelines line up.
  bool tracing() const { return tracing_; }
  void set_tracing(bool on);

  // ---- Display names (Chrome "process_name" metadata) ----
  void set_host_name(sim::HostId h, std::string name);

  // ---- Metrics (always on) ----
  // host = kInvalidHost scopes a metric to the whole cluster.
  Counter& counter(const std::string& name,
                   sim::HostId host = sim::kInvalidHost);
  Gauge& gauge(const std::string& name, sim::HostId host = sim::kInvalidHost);
  // Bounds are fixed by the first call for a given (name, host).
  LatencyHistogram& histogram(const std::string& name,
                              std::vector<double> bounds,
                              sim::HostId host = sim::kInvalidHost);
  // 0 when the counter was never touched (tests, reporting).
  std::int64_t counter_value(const std::string& name,
                             sim::HostId host = sim::kInvalidHost) const;

  // ---- Events (recorded only while tracing) ----
  // Returns 0 when tracing is disabled; end_span(0) is a no-op.
  SpanId begin_span(std::string cat, std::string name, sim::HostId host,
                    std::int64_t pid = -1, Args args = {});
  void end_span(SpanId id, Args args = {});
  void instant(std::string cat, std::string name, sim::HostId host,
               std::int64_t pid = -1, Args args = {});
  // Retroactive span with explicit endpoints (e.g. from a MigrationRecord).
  void span_at(std::string cat, std::string name, sim::HostId host,
               std::int64_t pid, sim::Time begin, sim::Time end,
               Args args = {});

  const std::vector<Event>& events() const { return events_; }
  std::int64_t dropped_events() const { return dropped_; }
  void clear_events();
  // Safety valve for very long traced runs (default 4M events).
  void set_max_events(std::size_t n) { max_events_ = n; }

  // ---- Export ----
  // Chrome trace_event JSON: hosts as processes, categories as threads.
  // Byte-identical across runs with the same seed.
  std::string chrome_json() const;
  util::Status write_chrome_json(const std::string& path) const;
  // Human-readable snapshot of every metric, via util/table.
  std::string metrics_report() const;

 private:
  struct OpenSpan {
    std::string cat;
    std::string name;
    sim::HostId host = sim::kInvalidHost;
    std::int64_t pid = -1;
    int lane = 0;
  };

  int lane_for(const std::string& cat);
  bool record(Event e);

  std::function<std::int64_t()> now_us_;
  bool tracing_ = false;

  std::map<std::pair<std::string, sim::HostId>, Counter> counters_;
  std::map<std::pair<std::string, sim::HostId>, Gauge> gauges_;
  std::map<std::pair<std::string, sim::HostId>, LatencyHistogram> histograms_;

  std::vector<Event> events_;
  std::map<SpanId, OpenSpan> open_spans_;
  std::map<std::string, int> lanes_;  // category -> display lane
  std::map<sim::HostId, std::string> host_names_;
  SpanId next_span_ = 1;
  std::size_t max_events_ = 4u << 20;
  std::int64_t dropped_ = 0;
};

}  // namespace sprite::trace
