// Unified tracing & metrics registry.
//
// One Registry hangs off each Simulator, so every measurement is stamped
// with the simulated clock and runs stay deterministic and single-threaded
// (no atomics anywhere). Two kinds of data flow through it:
//
//   * Metrics — named counters, gauges, and fixed-bucket latency histograms,
//     keyed by (name, host). Always on: they are plain integer/double work,
//     and the legacy per-subsystem Stats structs are thin views over them.
//     Naming convention: `subsystem.noun.verb` ("fs.server.open",
//     "mig.page.flushed").
//
//   * Events — begin/end spans and instant events with host/pid attribution.
//     Gated: a disabled registry costs exactly one branch per site and
//     records nothing. Enabled, events accumulate in memory and export as
//     Chrome `trace_event` JSON (open in chrome://tracing or Perfetto):
//     hosts render as "processes", subsystems (event categories) as
//     "threads".
//
// Because kernel mechanisms are continuation-passing, spans are token-based
// rather than RAII: begin_span() returns a SpanId the caller threads through
// its callback chain to end_span(). Code that already has both endpoints on
// hand (e.g. a MigrationRecord) emits the span retroactively via span_at().
//
// Causality: a Context{trace_id, parent_span} travels with the work — set
// ambiently via ScopedContext, captured by the simulator at event-scheduling
// time, and carried on every RPC wire message — so a span begun on the
// server side records the client-side span as its parent even though the two
// hosts share no call stack. chrome_json() exports each cross-host
// parent/child edge as a Chrome `flow` event pair, which Perfetto renders as
// an arrow between the host tracks.
//
// Forensics: independent of event tracing, the registry keeps an always-on
// FlightRecorder — a bounded ring of the last few thousand protocol events
// (RPC traffic, migration stages, crash/reboot, monitor verdicts). It costs
// a few stores per note and is dumped automatically, together with
// metrics_report(), when a SPRITE_CHECK fails or run_until_done() starves.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/ids.h"
#include "sim/time.h"
#include "util/status.h"

namespace sprite::trace {

using SpanId = std::uint64_t;
// Small key/value annotations attached to an event ("pages" -> "256").
using Args = std::vector<std::pair<std::string, std::string>>;

// Default millisecond bucket boundaries for latency histograms: roughly
// logarithmic from sub-millisecond RPCs to multi-second bulk transfers.
inline std::vector<double> default_latency_bounds_ms() {
  return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

// A monotonically increasing integer metric. Addresses are stable for the
// registry's lifetime, so instrumented subsystems cache the pointer once.
class Counter {
 public:
  void inc(std::int64_t n = 1) { v_ += n; }
  std::int64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::int64_t v_ = 0;
};

// A point-in-time measurement (load average, queue depth).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

// Fixed-boundary latency histogram: buckets [0,b0), [b0,b1), ...,
// [b_last, inf). Bounds are fixed at creation so accumulation is O(buckets)
// and export is deterministic.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> bounds);

  void record(double v);
  void record(sim::Time t) { record(t.ms()); }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last bucket is the overflow bucket.
  std::int64_t bucket(std::size_t i) const { return counts_[i]; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

// Causal context: which logical operation (trace) this work belongs to and
// which span caused it. Propagated ambiently within a host (ScopedContext +
// the simulator's scheduling capture) and explicitly on RPC wire messages.
// trace_id 0 means "no context".
struct Context {
  std::uint64_t trace_id = 0;
  SpanId parent_span = 0;

  bool valid() const { return trace_id != 0 || parent_span != 0; }
};

// One recorded trace event. phase: 'b' span begin, 'e' span end,
// 'i' instant.
struct Event {
  char phase = 'i';
  std::int64_t ts_us = 0;
  sim::HostId host = sim::kInvalidHost;
  std::int64_t pid = -1;  // sprite process id; -1 when not attributable
  SpanId id = 0;          // links 'b'/'e' pairs
  std::uint64_t trace_id = 0;  // logical operation ('b' events only)
  SpanId parent = 0;           // causal parent span ('b' events only)
  int lane = 0;           // per-category display lane ("thread")
  std::string cat;        // subsystem: "rpc", "mig", "vm", "fs", "proc", "ls"
  std::string name;
  Args args;
};

// Always-on ring of the last `capacity` protocol events, for post-mortem
// forensics when tracing was off (the fault matrices run untraced). Entries
// are POD — `cat`/`name` must be string literals (static storage) — so a
// note is a handful of stores regardless of tracing state.
class FlightRecorder {
 public:
  struct Entry {
    std::int64_t ts_us = 0;
    sim::HostId host = sim::kInvalidHost;
    std::int64_t pid = -1;
    const char* cat = "";
    const char* name = "";
    std::int64_t a0 = 0;  // site-specific (peer host, op, page count, ...)
    std::int64_t a1 = 0;
  };

  explicit FlightRecorder(std::size_t capacity = 4096);

  void note(std::int64_t ts_us, sim::HostId host, std::int64_t pid,
            const char* cat, const char* name, std::int64_t a0,
            std::int64_t a1);

  std::size_t capacity() const { return ring_.size(); }
  std::int64_t recorded() const { return recorded_; }
  // Oldest-to-newest view of the last min(n, size) entries.
  std::vector<Entry> tail(std::size_t n) const;
  // Human-readable tail, one line per entry, for crash dumps.
  std::string report(std::size_t n) const;
  void clear();

 private:
  std::vector<Entry> ring_;
  std::size_t next_ = 0;        // ring write cursor
  std::int64_t recorded_ = 0;   // total notes ever
};

class Registry {
 public:
  explicit Registry(std::function<std::int64_t()> now_us);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // ---- Event gating ----
  // Enabling also routes kTrace-level SPRITE_LOG lines into the stream as
  // instant events, so log and trace timelines line up.
  bool tracing() const { return tracing_; }
  void set_tracing(bool on);

  // ---- Display names (Chrome "process_name" metadata) ----
  void set_host_name(sim::HostId h, std::string name);

  // ---- Metrics (always on) ----
  // host = kInvalidHost scopes a metric to the whole cluster.
  Counter& counter(const std::string& name,
                   sim::HostId host = sim::kInvalidHost);
  Gauge& gauge(const std::string& name, sim::HostId host = sim::kInvalidHost);
  // Bounds are fixed by the first call for a given (name, host).
  LatencyHistogram& histogram(const std::string& name,
                              std::vector<double> bounds,
                              sim::HostId host = sim::kInvalidHost);
  // 0 when the counter was never touched (tests, reporting).
  std::int64_t counter_value(const std::string& name,
                             sim::HostId host = sim::kInvalidHost) const;

  // ---- Causal context (ambient) ----
  // The context new spans inherit: begin_span() records current() as the
  // span's trace/parent. Set via ScopedContext; the simulator captures it at
  // event-scheduling time so it follows continuation chains automatically.
  Context current() const { return current_; }
  // Allocates a fresh trace id for a new logical operation (a migration, a
  // benchmark iteration). Invalid when tracing is off.
  Context new_trace();
  // Reserves a span id without recording anything, so a root span can be
  // parented on before its retroactive span_at() is emitted. 0 when off.
  SpanId reserve_span();
  // Context that makes new work a child of open span `id` (its trace id is
  // looked up from the open-span table). Invalid for unknown ids.
  Context span_context(SpanId id) const;

  // ---- Events (recorded only while tracing) ----
  // Returns 0 when tracing is disabled; end_span(0) is a no-op.
  SpanId begin_span(std::string cat, std::string name, sim::HostId host,
                    std::int64_t pid = -1, Args args = {});
  void end_span(SpanId id, Args args = {});
  void instant(std::string cat, std::string name, sim::HostId host,
               std::int64_t pid = -1, Args args = {});
  // Retroactive span with explicit endpoints (e.g. from a MigrationRecord).
  // `parent` links it into a trace; `reuse_id` emits it under a previously
  // reserve_span()ed id (0 allocates). Returns the span id used (0 when
  // tracing is off), so siblings can be parented on a retroactive root.
  SpanId span_at(std::string cat, std::string name, sim::HostId host,
                 std::int64_t pid, sim::Time begin, sim::Time end,
                 Args args = {}, Context parent = {}, SpanId reuse_id = 0);

  const std::vector<Event>& events() const { return events_; }
  std::int64_t dropped_events() const { return dropped_; }
  void clear_events();
  // Safety valve for very long traced runs (default 4M events).
  void set_max_events(std::size_t n) { max_events_ = n; }

  // ---- Flight recorder (always on) ----
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }
  // One-call note stamped with the registry clock. cat/name must be string
  // literals. Cheap enough for per-message call sites.
  void flight_note(const char* cat, const char* name,
                   sim::HostId host = sim::kInvalidHost, std::int64_t pid = -1,
                   std::int64_t a0 = 0, std::int64_t a1 = 0) {
    flight_.note(now_us_(), host, pid, cat, name, a0, a1);
  }
  // Writes the flight tail + metrics_report() to stderr; called from the
  // CHECK-failure hook and the starvation dump. `why` labels the dump.
  void dump_flight(const char* why, std::size_t n = 4096) const;
  // Down-verdict dumps flood the partition matrices, so they are gated:
  // default off, overridable here or via SPRITE_FLIGHT_DUMP_ON_VERDICT=1.
  void set_dump_on_down_verdict(bool on) { dump_on_down_verdict_ = on; }
  bool dump_on_down_verdict() const { return dump_on_down_verdict_; }

  // ---- Export ----
  // Chrome trace_event JSON: hosts as processes, categories as threads,
  // cross-host parent/child edges as flow-event ('s'/'f') arrows.
  // Byte-identical across runs with the same seed.
  std::string chrome_json() const;
  util::Status write_chrome_json(const std::string& path) const;
  // Human-readable snapshot of every metric, via util/table.
  std::string metrics_report() const;
  // Machine-readable metrics snapshot: counters, gauges, and histogram
  // buckets with deterministic key order (the maps iterate sorted).
  std::string metrics_json() const;
  util::Status write_metrics_json(const std::string& path) const;

 private:
  friend class ScopedContext;

  struct OpenSpan {
    std::string cat;
    std::string name;
    sim::HostId host = sim::kInvalidHost;
    std::int64_t pid = -1;
    int lane = 0;
    std::uint64_t trace_id = 0;
  };

  int lane_for(const std::string& cat);
  bool record(Event e);

  std::function<std::int64_t()> now_us_;
  bool tracing_ = false;

  std::map<std::pair<std::string, sim::HostId>, Counter> counters_;
  std::map<std::pair<std::string, sim::HostId>, Gauge> gauges_;
  std::map<std::pair<std::string, sim::HostId>, LatencyHistogram> histograms_;

  std::vector<Event> events_;
  std::map<SpanId, OpenSpan> open_spans_;
  std::map<std::string, int> lanes_;  // category -> display lane
  std::map<sim::HostId, std::string> host_names_;
  SpanId next_span_ = 1;
  std::uint64_t next_trace_ = 1;
  Context current_;
  std::size_t max_events_ = 4u << 20;
  std::int64_t dropped_ = 0;

  FlightRecorder flight_;
  bool dump_on_down_verdict_ = false;
};

// RAII ambient-context scope. Applying an invalid context is a no-op (the
// surrounding ambient context, if any, stays in effect), so call sites can
// apply whatever they captured unconditionally.
class ScopedContext {
 public:
  ScopedContext(Registry& r, Context ctx) : r_(r), saved_(r.current_) {
    if (ctx.valid()) r_.current_ = ctx;
  }
  ~ScopedContext() { r_.current_ = saved_; }

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Registry& r_;
  Context saved_;
};

}  // namespace sprite::trace
