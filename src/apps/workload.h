// Workload generators for the evaluation:
//
//   UserActivityModel — synthetic diurnal user behaviour standing in for the
//     production traces behind the thesis's availability chapter: sessions
//     of keystrokes during office hours, long absences at night and on
//     weekends. Calibrated so 65–70 % of hosts are idle during the day and
//     ~80 % at night (experiment E7).
//
//   ZhouLifetimes — the heavy-tailed process-lifetime distribution Zhou
//     measured on a VAX-11/780 (mean 1.5 s, sd ~19 s), as a two-phase
//     hyperexponential.
//
//   PolicyWorkload — the placement-vs-migration policy experiment (E10):
//     jobs with Zhou lifetimes arrive at every workstation; policies range
//     from "run at home" through exec-time placement to placement plus
//     periodic rebalancing of long-running processes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "loadshare/facility.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sprite::kern {
class Cluster;
}

namespace sprite::apps {

class UserActivityModel {
 public:
  struct Profile {
    // Probability a cycle beginning at hour h finds the user present.
    std::array<double, 24> presence;
    // Weekend presence multiplier (days 5 and 6 of the simulated week).
    double weekend_factor = 0.3;
    sim::Time mean_session = sim::Time::minutes(25);
    sim::Time mean_absence = sim::Time::minutes(45);
    sim::Time mean_keystroke_gap = sim::Time::sec(4);

    // Office-hours default, calibrated for E7's idle fractions.
    static Profile office();
  };

  UserActivityModel(kern::Cluster& cluster, Profile profile);

  // Starts activity on every workstation (staggered deterministically).
  void start();

  // Has this host's user been seen at all (distinguishes night absences)?
  bool user_present(sim::HostId h) const;

 private:
  void cycle(sim::HostId h);
  void keystrokes(sim::HostId h, sim::Time session_end);
  double presence_now() const;

  kern::Cluster& cluster_;
  Profile profile_;
  util::Rng rng_;
  std::map<sim::HostId, bool> present_;
};

// Zhou's process lifetime distribution [Zho87]: two-phase hyperexponential
// with mean 1.5 s and standard deviation ~19-20 s.
class ZhouLifetimes {
 public:
  explicit ZhouLifetimes(util::Rng rng) : rng_(std::move(rng)) {}
  sim::Time next() {
    return sim::Time::sec(rng_.hyperexponential(0.994, 0.4, 183.7));
  }

 private:
  util::Rng rng_;
};

class PolicyWorkload {
 public:
  enum class Policy : int {
    kNone = 0,        // every job runs at home
    kPlacement,       // exec-time placement of jobs arriving at busy hosts
    kPlacementPlusMigration,  // placement + periodic rebalancing of
                              // long-running processes
  };
  static const char* policy_name(Policy p);

  struct Options {
    Policy policy = Policy::kNone;
    // Poisson arrival rate of jobs per workstation.
    double arrivals_per_host_hz = 0.3;
    sim::Time duration = sim::Time::minutes(10);
    // Rebalance scan period for kPlacementPlusMigration.
    sim::Time rebalance_period = sim::Time::sec(5);
    // A process is "known long-running" once it has lived this long
    // (Cabrera's heuristic).
    sim::Time long_running_age = sim::Time::sec(2);
  };

  struct Result {
    util::Distribution response_s;  // completion - arrival
    util::Distribution slowdown;    // response / cpu demand
    int jobs_submitted = 0;
    int jobs_finished = 0;
    int placed_remotely = 0;
    int active_migrations = 0;
  };

  PolicyWorkload(kern::Cluster& cluster, ls::Facility& facility,
                 Options options);

  // Runs to completion (all submitted jobs finished); returns the result.
  Result run();

 private:
  void arrival(sim::HostId h);
  void submit(sim::HostId h, sim::Time lifetime);
  void rebalance();

  kern::Cluster& cluster_;
  ls::Facility& facility_;
  Options options_;
  util::Rng rng_;
  ZhouLifetimes lifetimes_;
  Result result_;
  int outstanding_ = 0;
  sim::Time deadline_;  // no arrivals after this instant
};

}  // namespace sprite::apps
