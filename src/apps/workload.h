// Compatibility shim: the workload generators moved to src/workload/ (the
// trace-driven workload subsystem). This header keeps the old
// sprite::apps spellings compiling; new code should include
// workload/activity.h, workload/policy.h, or workload/session.h directly.
#pragma once

#include "workload/activity.h"
#include "workload/policy.h"
#include "workload/session.h"

namespace sprite::apps {

using wl::PolicyWorkload;
using wl::UserActivityModel;
using wl::ZhouLifetimes;

}  // namespace sprite::apps
