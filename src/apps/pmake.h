// pmake: parallel make over process migration (thesis chapter 7).
//
// Like Sprite's pmake, the controller builds a dependency graph, finds
// targets whose dependencies are satisfied, and recreates independent
// targets in parallel — farming jobs out to idle hosts with exec-time
// migration obtained from the load-sharing facility, and running one job
// locally. Each compile job is a real simulated process: it opens its
// sources and headers (paying server name lookups — the bottleneck that
// saturates the speedup curve in experiment E3), reads them through the
// client cache, consumes compile CPU, and writes its output file.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "loadshare/facility.h"
#include "proc/program.h"
#include "sim/time.h"

namespace sprite::kern {
class Cluster;
}

namespace sprite::apps {

// One buildable target (or a leaf source file if `leaf` is true).
struct Target {
  std::string name;                    // output path
  std::vector<std::string> deps;       // targets or source paths
  std::vector<std::string> includes;   // extra files opened (headers)
  sim::Time cpu = sim::Time::msec(500);     // compile CPU demand
  std::int64_t read_bytes = 32 * 1024;      // per dependency read
  std::int64_t write_bytes = 24 * 1024;     // output size
};

class Pmake {
 public:
  struct Options {
    sim::HostId controller = sim::kInvalidHost;  // user's workstation
    int max_jobs = 8;              // overall parallelism cap
    bool run_local_job = true;     // keep one job on the controller
    // When null, everything runs on the controller (plain `make`).
    ls::Facility* facility = nullptr;
  };

  struct Result {
    sim::Time makespan;
    int jobs = 0;
    int remote_jobs = 0;
    sim::Time total_job_cpu;  // sum of per-job CPU demands
  };

  Pmake(kern::Cluster& cluster, Options options, std::vector<Target> targets);

  // Installs the /bin/cc image (idempotent per cluster) and creates the
  // source/header files the graph references. Call once before run().
  void prepare();

  // Builds everything; `done` fires with the result.
  void run(std::function<void(Result)> done);

 private:
  struct Job {
    std::string target;
    sim::HostId remote = sim::kInvalidHost;  // granted host, if any
  };

  void schedule();
  void launch(const std::string& target, sim::HostId remote);
  void job_finished(const std::string& target, sim::HostId remote);
  bool deps_ready(const Target& t) const;
  const Target& target(const std::string& name) const;

  kern::Cluster& cluster_;
  Options options_;
  std::vector<Target> targets_;
  std::map<std::string, const Target*> by_name_;
  std::set<std::string> done_;
  std::set<std::string> building_;
  int running_ = 0;
  int local_running_ = 0;
  bool requesting_ = false;
  bool finished_ = false;
  sim::Time started_;
  Result result_;
  std::function<void(Result)> done_cb_;
  std::vector<sim::HostId> idle_pool_;  // granted, currently unused hosts
};

// Registers the shared /bin/cc image used by every Pmake instance in the
// cluster. Safe to call multiple times.
void install_cc(kern::Cluster& cluster);

// Registers /bin/rexec, the generic "remote exec" launcher:
//   rexec <target-host|-1> <exe> <args...>
// arms exec-time migration to the target (when given) and execs the program.
void install_rexec(kern::Cluster& cluster);

// Builds a representative compilation graph: `n` object files, each
// depending on its own source plus `shared_headers` common headers, and one
// final link target depending on every object (the Amdahl serial tail).
std::vector<Target> make_compile_graph(int n, int shared_headers,
                                       sim::Time compile_cpu,
                                       sim::Time link_cpu);

// As above, with the shared headers rooted under `header_root` (e.g. "/s1"
// to place them on a second file server — the thesis's chapter-9 scaling
// direction).
std::vector<Target> make_compile_graph_at(int n, int shared_headers,
                                          sim::Time compile_cpu,
                                          sim::Time link_cpu,
                                          const std::string& header_root);

}  // namespace sprite::apps
