#include "apps/pmake.h"

#include <algorithm>

#include "kern/cluster.h"
#include "proc/script.h"
#include "proc/table.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::apps {

using proc::Action;
using proc::ProgramImage;
using proc::ScriptProgram;
using sim::HostId;
using sim::Time;

namespace {

// Builds the compile-job program from its "command line":
//   cc -o <out> -c <cpu_us> -r <read_bytes> -w <write_bytes> <inputs...>
std::unique_ptr<proc::Program> make_cc_program(
    const std::vector<std::string>& args) {
  std::string out;
  std::int64_t cpu_us = 500000, read_bytes = 32768, write_bytes = 24576;
  auto files = std::make_shared<std::vector<std::string>>();
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      out = args[++i];
    } else if (args[i] == "-c" && i + 1 < args.size()) {
      cpu_us = std::stoll(args[++i]);
    } else if (args[i] == "-r" && i + 1 < args.size()) {
      read_bytes = std::stoll(args[++i]);
    } else if (args[i] == "-w" && i + 1 < args.size()) {
      write_bytes = std::stoll(args[++i]);
    } else {
      files->push_back(args[i]);
    }
  }

  std::vector<ScriptProgram::Step> steps;
  // 0: loop head — open the next input, or jump past the loop when done.
  steps.push_back([files](ScriptProgram::Ctx& c) -> Action {
    const auto i = static_cast<std::size_t>(c.locals["i"]);
    if (i >= files->size()) {
      c.jump(4);
      return proc::Compute{Time::zero()};
    }
    return proc::SysOpen{(*files)[i], fs::OpenFlags::read_only()};
  });
  // 1: read it.
  steps.push_back([read_bytes](ScriptProgram::Ctx& c) -> Action {
    if (!c.view->status.is_ok()) {  // missing input: skip read
      c.locals["fd"] = -1;
      c.jump(3);
      return proc::Compute{Time::zero()};
    }
    c.locals["fd"] = c.view->rv;
    return proc::SysRead{static_cast<int>(c.locals["fd"]), read_bytes};
  });
  // 2: close it.
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    return proc::SysClose{static_cast<int>(c.locals["fd"])};
  });
  // 3: advance the loop.
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    ++c.locals["i"];
    c.jump(0);
    return proc::Compute{Time::zero()};
  });
  // 4: "compile": dirty a working set, then burn CPU.
  steps.push_back([](ScriptProgram::Ctx&) -> Action {
    return proc::Touch{vm::Segment::kHeap, 0, 64, true};
  });
  steps.push_back([cpu_us](ScriptProgram::Ctx&) -> Action {
    return proc::Compute{Time::usec(cpu_us)};
  });
  // 6: create the output.
  steps.push_back([out](ScriptProgram::Ctx&) -> Action {
    fs::OpenFlags flags = fs::OpenFlags::create_rw();
    flags.truncate = true;
    return proc::SysOpen{out, flags};
  });
  // 7: write it (delayed write, like a real compiler).
  steps.push_back([write_bytes](ScriptProgram::Ctx& c) -> Action {
    c.locals["ofd"] = c.view->rv;
    return proc::SysWrite{static_cast<int>(c.locals["ofd"]), {}, write_bytes};
  });
  // 8: close + exit.
  steps.push_back([](ScriptProgram::Ctx& c) -> Action {
    return proc::SysClose{static_cast<int>(c.locals["ofd"])};
  });
  steps.push_back([](ScriptProgram::Ctx&) -> Action { return proc::SysExit{0}; });
  return std::make_unique<ScriptProgram>(std::move(steps));
}

// Launcher ("remote exec"): optionally arm exec-time migration, then exec
// the named program. args: <target-host|-1> <exe> <exe args...>
std::unique_ptr<proc::Program> make_launcher_program(
    const std::vector<std::string>& args) {
  SPRITE_CHECK_MSG(args.size() >= 2, "launcher: <host> <exe> [args...]");
  const auto target = static_cast<HostId>(std::stol(args[0]));
  const std::string exe = args[1];
  const std::vector<std::string> exe_args(args.begin() + 2, args.end());

  std::vector<ScriptProgram::Step> steps;
  if (target != sim::kInvalidHost) {
    steps.push_back([target](ScriptProgram::Ctx&) -> Action {
      return proc::SysMigrateSelf{.target = target, .at_exec = true};
    });
  }
  steps.push_back([exe, exe_args](ScriptProgram::Ctx&) -> Action {
    return proc::SysExec{exe, exe_args};
  });
  return std::make_unique<ScriptProgram>(std::move(steps));
}

}  // namespace

void install_rexec(kern::Cluster& cluster) {
  if (cluster.find_program("/bin/rexec") != nullptr) return;
  ProgramImage launcher;
  launcher.factory = make_launcher_program;
  launcher.code_pages = 4;
  launcher.heap_pages = 4;
  launcher.stack_pages = 2;
  SPRITE_CHECK(cluster.install_program("/bin/rexec", launcher).is_ok());
}

void install_cc(kern::Cluster& cluster) {
  install_rexec(cluster);
  if (cluster.find_program("/bin/cc") != nullptr) return;
  ProgramImage cc;
  cc.factory = make_cc_program;
  cc.code_pages = 128;  // a compiler is a fat binary
  cc.heap_pages = 256;
  cc.stack_pages = 8;
  SPRITE_CHECK(cluster.install_program("/bin/cc", cc).is_ok());
}

std::vector<Target> make_compile_graph(int n, int shared_headers,
                                       Time compile_cpu, Time link_cpu) {
  return make_compile_graph_at(n, shared_headers, compile_cpu, link_cpu, "");
}

std::vector<Target> make_compile_graph_at(int n, int shared_headers,
                                          Time compile_cpu, Time link_cpu,
                                          const std::string& header_root) {
  std::vector<Target> targets;
  // Headers live deep in the shared tree, as Sprite's did — every component
  // of every open is a server-side lookup.
  std::vector<std::string> headers;
  for (int h = 0; h < shared_headers; ++h)
    headers.push_back(header_root + "/sprite/lib/include/sys/h" +
                      std::to_string(h) + ".h");

  std::vector<std::string> objects;
  for (int i = 0; i < n; ++i) {
    Target t;
    t.name = "/src/f" + std::to_string(i) + ".o";
    t.deps = {"/src/f" + std::to_string(i) + ".c"};
    t.includes = headers;
    t.cpu = compile_cpu;
    targets.push_back(t);
    objects.push_back(t.name);
  }
  Target link;
  link.name = "/src/prog";
  link.deps = objects;  // the serial tail
  link.cpu = link_cpu;
  link.write_bytes = 256 * 1024;
  targets.push_back(link);
  return targets;
}

Pmake::Pmake(kern::Cluster& cluster, Options options,
             std::vector<Target> targets)
    : cluster_(cluster), options_(options), targets_(std::move(targets)) {
  SPRITE_CHECK(options_.controller != sim::kInvalidHost);
  for (const auto& t : targets_) by_name_[t.name] = &t;
}

void Pmake::prepare() {
  install_cc(cluster_);
  auto* server = cluster_.file_server().fs_server();
  auto ensure_file = [server](const std::string& path, std::int64_t size) {
    const auto slash = path.rfind('/');
    if (slash != std::string::npos && slash > 0)
      server->mkdir_p(path.substr(0, slash));
    auto r = server->create_file(path, size);
    (void)r;  // kExist is fine: shared headers appear in many targets
  };
  server->mkdir_p("/src");
  for (const auto& t : targets_) {
    for (const auto& d : t.deps) {
      if (by_name_.count(d)) continue;  // built, not a source
      ensure_file(d, t.read_bytes);
    }
    for (const auto& inc : t.includes) ensure_file(inc, t.read_bytes);
  }
}

bool Pmake::deps_ready(const Target& t) const {
  for (const auto& d : t.deps) {
    if (by_name_.count(d) && !done_.count(d)) return false;
  }
  return true;
}

const Target& Pmake::target(const std::string& name) const {
  return *by_name_.at(name);
}

void Pmake::run(std::function<void(Result)> done) {
  done_cb_ = std::move(done);
  started_ = cluster_.sim().now();
  schedule();
}

void Pmake::schedule() {
  if (finished_) return;

  // Honour cooperative recall: migd may have reassigned some of our pooled
  // hosts to another requester for fairness; stop dispatching to them.
  if (options_.facility != nullptr) {
    for (sim::HostId r :
         options_.facility->selector(options_.controller).take_revoked()) {
      idle_pool_.erase(std::remove(idle_pool_.begin(), idle_pool_.end(), r),
                       idle_pool_.end());
    }
  }

  std::vector<std::string> ready;
  for (const auto& t : targets_) {
    if (done_.count(t.name) || building_.count(t.name)) continue;
    if (deps_ready(t)) ready.push_back(t.name);
  }

  if (ready.empty() && building_.empty()) {
    finished_ = true;
    result_.makespan = cluster_.sim().now() - started_;
    // Hand every pooled host back.
    if (options_.facility != nullptr) {
      for (HostId h : idle_pool_)
        options_.facility->selector(options_.controller).release_host(h);
    }
    idle_pool_.clear();
    done_cb_(result_);
    return;
  }

  std::size_t next = 0;
  while (next < ready.size() && running_ < options_.max_jobs) {
    if (!idle_pool_.empty()) {
      const HostId h = idle_pool_.back();
      idle_pool_.pop_back();
      launch(ready[next++], h);
      continue;
    }
    const int local_cap = options_.facility == nullptr
                              ? options_.max_jobs
                              : (options_.run_local_job ? 1 : 0);
    if (local_running_ < local_cap) {
      launch(ready[next++], sim::kInvalidHost);
      continue;
    }
    break;
  }

  // Still work but no hosts: ask the facility for more.
  const int unstarted = static_cast<int>(ready.size() - next);
  if (unstarted > 0 && options_.facility != nullptr && !requesting_) {
    requesting_ = true;
    const int want = std::min(unstarted, options_.max_jobs - running_);
    if (want <= 0) {
      requesting_ = false;
      return;
    }
    options_.facility->selector(options_.controller)
        .request_hosts(want, [this](std::vector<HostId> hosts) {
          requesting_ = false;
          for (HostId h : hosts) idle_pool_.push_back(h);
          if (hosts.empty()) {
            // Nothing idle right now; poll again shortly.
            cluster_.sim().after(Time::sec(1), [this] { schedule(); });
          } else {
            schedule();
          }
        });
  }
}

void Pmake::launch(const std::string& name, HostId remote) {
  building_.insert(name);
  ++running_;
  if (remote == sim::kInvalidHost) ++local_running_;

  const Target& t = target(name);
  std::vector<std::string> args;
  args.push_back(std::to_string(remote));
  args.push_back("/bin/cc");
  args.push_back("-o");
  args.push_back(t.name);
  args.push_back("-c");
  args.push_back(std::to_string(t.cpu.us()));
  args.push_back("-r");
  args.push_back(std::to_string(t.read_bytes));
  args.push_back("-w");
  args.push_back(std::to_string(t.write_bytes));
  for (const auto& d : t.deps) args.push_back(d);
  for (const auto& inc : t.includes) args.push_back(inc);

  result_.total_job_cpu += t.cpu;
  ++result_.jobs;
  if (remote != sim::kInvalidHost) ++result_.remote_jobs;

  auto& procs = cluster_.host(options_.controller).procs();
  procs.spawn("/bin/rexec", std::move(args),
              [this, name, remote](util::Result<proc::Pid> r) {
                if (!r.is_ok()) {
                  LOG_WARN("pmake", "spawn failed: %s",
                           r.status().to_string().c_str());
                  job_finished(name, remote);
                  return;
                }
                cluster_.host(options_.controller)
                    .procs()
                    .notify_on_exit(*r, [this, name, remote](int) {
                      job_finished(name, remote);
                    });
              });
}

void Pmake::job_finished(const std::string& name, HostId remote) {
  building_.erase(name);
  done_.insert(name);
  --running_;
  if (remote == sim::kInvalidHost) {
    --local_running_;
  } else {
    idle_pool_.push_back(remote);  // reuse the host for the next job
  }
  schedule();
}

}  // namespace sprite::apps
