#include "ckpt/manager.h"

#include <algorithm>
#include <utility>

#include "ckpt/wire.h"
#include "kern/cluster.h"
#include "proc/wire.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::ckpt {

using rpc::Reply;
using rpc::Request;
using rpc::ServiceId;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Result;
using util::Status;

const char* ckpt_stage_name(CkptStage s) {
  switch (s) {
    case CkptStage::kFrozen: return "frozen";
    case CkptStage::kFlushed: return "flushed";
    case CkptStage::kPagesWritten: return "pages_written";
    case CkptStage::kMetaWritten: return "meta_written";
    case CkptStage::kCommitted: return "committed";
    case CkptStage::kCompacted: return "compacted";
    case CkptStage::kRegistered: return "registered";
    case CkptStage::kRestartRead: return "restart_read";
    case CkptStage::kRestartStaged: return "restart_staged";
    case CkptStage::kRestartResumed: return "restart_resumed";
  }
  return "?";
}

CkptManager::CkptManager(kern::Host& host)
    : host_(host), self_(host.id()) {
  const sim::Costs& costs = host_.cluster().costs();
  auto_interval_ = costs.ckpt_auto_interval;
  auto_dirty_threshold_ = costs.ckpt_dirty_threshold_pages;

  trace::Registry& tr = host_.cluster().sim().trace();
  c_captures_ = &tr.counter("ckpt.capture.completed", self_);
  c_capture_failed_ = &tr.counter("ckpt.capture.failed", self_);
  c_full_ = &tr.counter("ckpt.capture.full_base", self_);
  c_incr_ = &tr.counter("ckpt.capture.incremental", self_);
  c_declined_ = &tr.counter("ckpt.capture.declined", self_);
  c_pages_captured_ = &tr.counter("ckpt.page.captured", self_);
  c_restarts_ = &tr.counter("ckpt.restart.completed", self_);
  c_restart_failed_ = &tr.counter("ckpt.restart.failed", self_);
  c_pages_restored_ = &tr.counter("ckpt.page.restored", self_);
  c_compactions_ = &tr.counter("ckpt.chain.compacted", self_);
  c_auto_ = &tr.counter("ckpt.auto.triggered", self_);
  c_departs_ = &tr.counter("ckpt.depart.completed", self_);
  c_stale_reaped_ = &tr.counter("ckpt.stale.reaped", self_);
  c_registers_ = &tr.counter("ckpt.register.received", self_);
  h_capture_ms_ = &tr.histogram("ckpt.capture.total_ms",
                                trace::default_latency_bounds_ms(), self_);
  h_restart_ms_ = &tr.histogram("ckpt.restart.total_ms",
                                trace::default_latency_bounds_ms(), self_);

  // Reintegration / reboot of a host the home restarted away from: a healed
  // partition may still run the superseded incarnation — kill it; a reboot
  // wiped it.
  host_.monitor().add_peer_reintegrated_observer([this](HostId peer) {
    std::vector<std::pair<proc::Pid, std::int64_t>> kills;
    for (auto it = restarted_from_.begin(); it != restarted_from_.end();) {
      if (it->second == peer) {
        kills.emplace_back(it->first, procs().home_record_incarnation(it->first));
        it = restarted_from_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [pid, inc] : kills) {
      auto body = std::make_shared<KillStaleReq>();
      body->pid = pid;
      body->incarnation = inc;
      host_.rpc().call(peer, ServiceId::kCkpt,
                       static_cast<int>(CkptOp::kKillStale), body,
                       [](Result<Reply>) {});
    }
  });
  host_.monitor().add_peer_rebooted_observer([this](HostId peer) {
    for (auto it = restarted_from_.begin(); it != restarted_from_.end();) {
      if (it->second == peer)
        it = restarted_from_.erase(it);
      else
        ++it;
    }
  });
}

void CkptManager::register_services() {
  host_.rpc().register_service(
      ServiceId::kCkpt,
      [this](HostId src, const Request& req,
             std::function<void(Reply)> respond) {
        handle_rpc(src, req, std::move(respond));
      });
}

proc::ProcTable& CkptManager::procs() const { return host_.procs(); }
vm::VmManager& CkptManager::vm() const { return host_.vm(); }
fs::FsClient& CkptManager::fs() const { return host_.fs(); }

const CkptManager::Stats& CkptManager::stats() const {
  stats_view_.captures = c_captures_->value();
  stats_view_.capture_failures = c_capture_failed_->value();
  stats_view_.full_bases = c_full_->value();
  stats_view_.incrementals = c_incr_->value();
  stats_view_.declined = c_declined_->value();
  stats_view_.pages_captured = c_pages_captured_->value();
  stats_view_.restarts = c_restarts_->value();
  stats_view_.restarts_failed = c_restart_failed_->value();
  stats_view_.pages_restored = c_pages_restored_->value();
  stats_view_.compactions = c_compactions_->value();
  stats_view_.auto_triggers = c_auto_->value();
  stats_view_.departs = c_departs_->value();
  stats_view_.stale_reaped = c_stale_reaped_->value();
  return stats_view_;
}

std::int64_t CkptManager::chain_length(proc::Pid pid) const {
  auto it = chains_.find(pid);
  return it == chains_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.seqs.size());
}

std::int64_t CkptManager::last_seq(proc::Pid pid) const {
  auto it = chains_.find(pid);
  return it == chains_.end() || it->second.seqs.empty()
             ? 0
             : it->second.seqs.back();
}

void CkptManager::notify_stage(proc::Pid pid, CkptStage stage) {
  // Copy: an observer may crash this host reentrantly (fault tests),
  // clearing the vector under us.
  auto observers = stage_observers_;
  for (const auto& fn : observers) fn(pid, stage);
}

// ---------------------------------------------------------------------------
// Eligibility

util::Status CkptManager::eligible(const proc::Pcb& pcb) const {
  if (pcb.state == proc::ProcState::kZombie ||
      pcb.state == proc::ProcState::kDead)
    return Status(Err::kSrch, "process is gone");
  if (!pcb.program || !pcb.program->checkpointable())
    return Status(Err::kNotSupported, "program is not checkpointable");
  if (pcb.forward_file_calls)
    return Status(Err::kNotMigratable,
            "file calls are forwarded home (no transferred stream state)");
  if (!pcb.space) return Status(Err::kNotMigratable, "no address space");
  if (pcb.space->shared_writable)
    return Status(Err::kNotMigratable, "shares writable memory");
  for (auto seg : vm::kAllSegments) {
    if (pcb.space->segment(seg).remote_pages() > 0)
      return Status(Err::kNotMigratable,
              "copy-on-reference residue (pages still on the source host)");
  }
  for (const auto& [fd, s] : pcb.fds) {
    (void)fd;
    if (!fs::FsClient::recoverable_by_path(*s))
      return Status(Err::kNotMigratable,
              "stream not recoverable by path: " +
                  (s->path.empty() ? std::string("<anonymous>") : s->path));
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Capture pipeline

void CkptManager::checkpoint(const proc::PcbPtr& pcb, StatusCb cb) {
  capture_begin(pcb, /*keep_frozen=*/false, std::move(cb));
}

void CkptManager::capture_begin(const proc::PcbPtr& pcb, bool keep_frozen,
                                StatusCb cb) {
  if (!cb) cb = [](Status) {};
  SPRITE_CHECK(pcb != nullptr);
  const proc::Pid pid = pcb->pid;
  if (active_captures_.count(pid))
    return cb(Status(Err::kBusy, "checkpoint already in progress"));
  if (active_restores_.count(pid))
    return cb(Status(Err::kBusy, "restore in progress"));
  if (procs().find(pid) != pcb)
    return cb(Status(Err::kSrch, "process not resident on this host"));
  if (Status e = eligible(*pcb); !e.is_ok()) {
    c_declined_->inc();
    host_.cluster().sim().trace().flight_note("ckpt.capture", "declined",
                                              self_, static_cast<std::int64_t>(pid),
                                              static_cast<int>(e.err()));
    return cb(e);
  }

  const std::uint64_t token = next_token_++;
  Capture& c = captures_[token];
  c.pcb = pcb;
  c.cb = std::move(cb);
  c.keep_frozen = keep_frozen;
  c.t0 = host_.cluster().sim().now();
  c.span = host_.cluster().sim().trace().begin_span(
      "ckpt", "capture", self_, static_cast<std::int64_t>(pid));
  active_captures_.insert(pid);

  procs().freeze(pcb, [this, token] {
    auto it = captures_.find(token);
    if (it == captures_.end()) return;  // crashed meanwhile
    notify_stage(it->second.pcb->pid, CkptStage::kFrozen);
    capture_flush(token);
  });
}

void CkptManager::capture_flush(std::uint64_t token) {
  auto it = captures_.find(token);
  if (it == captures_.end()) return;
  // Output-commit: data the program believes written may still sit dirty in
  // this host's cache. A restart elsewhere replays from the checkpoint
  // onward; bytes written *before* the capture must already be durable or
  // the replayed run diverges from the surviving file contents.
  std::vector<fs::FileId> ids;
  for (const auto& [fd, s] : it->second.pcb->fds) {
    (void)fd;
    if (std::find(ids.begin(), ids.end(), s->file) == ids.end())
      ids.push_back(s->file);
  }
  flush_files(std::move(ids), 0, [this, token](Status st) {
    auto it = captures_.find(token);
    if (it == captures_.end()) return;
    if (!st.is_ok()) return capture_fail(token, st);
    notify_stage(it->second.pcb->pid, CkptStage::kFlushed);
    // Serialize the PCB record and page maps (migration's encapsulate
    // sibling).
    host_.cpu().submit(sim::JobClass::kKernel,
                       host_.cluster().costs().ckpt_capture_cpu,
                       [this, token] { capture_load_chain(token); });
  });
}

void CkptManager::flush_files(std::vector<fs::FileId> ids, std::size_t i,
                              StatusCb cb) {
  if (i >= ids.size()) return cb(Status::ok());
  const fs::FileId id = ids[i];
  fs().flush_file(id, [this, ids = std::move(ids), i,
                       cb = std::move(cb)](Status st) mutable {
    if (!st.is_ok()) return cb(st);
    flush_files(std::move(ids), i + 1, std::move(cb));
  });
}

void CkptManager::capture_load_chain(std::uint64_t token) {
  auto it = captures_.find(token);
  if (it == captures_.end()) return;
  const proc::Pid pid = it->second.pcb->pid;
  if (chains_.count(pid)) return capture_plan(token);

  // Unknown chain: first capture here, or the process arrived by migration
  // mid-chain. Read the head so sequence numbers stay monotonic across
  // hosts, and adopt the chain list so the capture can stay incremental
  // (the checkpoint-dirty plane travelled in the space descriptor).
  read_image_file(head_path(pid), [this, token, pid](Result<fs::Bytes> r) {
    auto it = captures_.find(token);
    if (it == captures_.end()) return;
    if (!r.is_ok()) {
      if (r.status().err() != Err::kNoEnt)
        return capture_fail(token, r.status());
      return capture_plan(token);  // fresh chain, seq 1
    }
    auto hs = decode_head(*r);
    if (!hs.is_ok()) {
      // Unreadable head: start a fresh base well past anything on disk is
      // impossible to know — refuse rather than risk colliding with a
      // chain we cannot see.
      return capture_fail(token, hs.status());
    }
    const std::int64_t head_seq = *hs;
    read_image_file(meta_path(pid, head_seq),
                    [this, token, pid, head_seq](Result<fs::Bytes> mr) {
                      auto it = captures_.find(token);
                      if (it == captures_.end()) return;
                      if (mr.is_ok()) {
                        auto m = CkptMeta::decode(*mr);
                        if (m.is_ok() && m->pid == pid) {
                          Chain& ch = chains_[pid];
                          ch.seqs = m->chain;
                          ch.last_capture = host_.cluster().sim().now();
                          return capture_plan(token);
                        }
                      }
                      // Head exists but its meta is unreadable: force a
                      // fresh base above the head seq (nothing to compact —
                      // the old files leak, the chain stays consistent).
                      it->second.seq_floor = head_seq;
                      capture_plan(token);
                    });
  });
}

void CkptManager::capture_plan(std::uint64_t token) {
  auto it = captures_.find(token);
  if (it == captures_.end()) return;
  Capture& c = it->second;
  const proc::Pid pid = c.pcb->pid;
  const int chain_max = host_.cluster().costs().ckpt_chain_max;

  auto cit = chains_.find(pid);
  std::int64_t next_seq = c.seq_floor + 1;
  if (cit != chains_.end() && !cit->second.seqs.empty())
    next_seq = cit->second.seqs.back() + 1;
  c.seq = next_seq;
  c.full = cit == chains_.end() ||
           static_cast<int>(cit->second.seqs.size()) >= chain_max;
  if (c.full) {
    c.chain = {c.seq};
    if (cit != chains_.end()) c.compacted = cit->second.seqs;
  } else {
    c.chain = cit->second.seqs;
    c.chain.push_back(c.seq);
  }
  c.meta = build_meta(*c.pcb, c.seq, c.chain, c.full);
  capture_write_pages(token);
}

CkptMeta CkptManager::build_meta(const proc::Pcb& pcb, std::int64_t seq,
                                 std::vector<std::int64_t> chain,
                                 bool full) const {
  CkptMeta m;
  m.pid = pcb.pid;
  m.seq = seq;
  m.chain = std::move(chain);
  m.incarnation = pcb.incarnation;
  m.ppid = pcb.ppid;
  m.home = pcb.home;
  m.exe_path = pcb.exe_path;
  m.args = pcb.args;
  m.program_state = pcb.program->encode_state();
  m.view_err = static_cast<int>(pcb.view.status.err());
  m.view_msg = pcb.view.status.message();
  m.view_rv = pcb.view.rv;
  m.view_aux = pcb.view.aux;
  m.view_data = pcb.view.data;
  m.view_is_child = pcb.view.is_child;
  m.view_text = pcb.view.text;
  m.remaining_compute_us = pcb.remaining_compute.us();
  m.pause_remaining_us = pcb.pause_remaining.us();
  m.blocked_in_wait = pcb.blocked_in_wait;
  m.kill_pending = pcb.kill_pending;
  m.kill_sig = pcb.kill_sig;
  m.next_fd = pcb.next_fd;
  m.spawned_at_us = pcb.spawned_at.us();
  for (const auto& [fd, s] : pcb.fds) {
    CkptStream cs;
    cs.fd = fd;
    cs.path = s->path;
    cs.offset = s->offset;
    cs.flags = s->flags;
    m.streams.push_back(std::move(cs));
  }
  m.code_pages = pcb.space->segment(vm::Segment::kCode).pages;

  // Capture set: a full base takes every page that differs from zero-fill
  // (dirty in memory, flushed to swap, or written since the last capture);
  // an increment takes exactly the checkpoint-dirty pages.
  auto runs_for = [full](const vm::SegmentState& st) {
    CkptSegRuns out;
    out.pages = st.pages;
    std::int64_t run_start = -1;
    for (std::int64_t p = 0; p <= st.pages; ++p) {
      const bool take =
          p < st.pages &&
          (full ? (st.dirty[static_cast<std::size_t>(p)] ||
                   st.in_backing[static_cast<std::size_t>(p)] ||
                   st.ckpt_dirty[static_cast<std::size_t>(p)])
                : st.ckpt_dirty[static_cast<std::size_t>(p)]);
      if (take && run_start < 0) run_start = p;
      if (!take && run_start >= 0) {
        out.runs.emplace_back(run_start, p - run_start);
        run_start = -1;
      }
    }
    return out;
  };
  m.heap = runs_for(pcb.space->segment(vm::Segment::kHeap));
  m.stack = runs_for(pcb.space->segment(vm::Segment::kStack));
  return m;
}

void CkptManager::capture_write_pages(std::uint64_t token) {
  auto it = captures_.find(token);
  if (it == captures_.end()) return;
  Capture& c = it->second;
  const std::int64_t nbytes =
      c.meta.captured_pages() * host_.cluster().costs().page_size;
  write_image_zeros(pages_path(c.pcb->pid, c.seq), nbytes,
                    [this, token](Status st) {
                      auto it = captures_.find(token);
                      if (it == captures_.end()) return;
                      if (!st.is_ok()) return capture_fail(token, st);
                      notify_stage(it->second.pcb->pid,
                                   CkptStage::kPagesWritten);
                      capture_write_meta(token);
                    });
}

void CkptManager::capture_write_meta(std::uint64_t token) {
  auto it = captures_.find(token);
  if (it == captures_.end()) return;
  Capture& c = it->second;
  write_image_file(meta_path(c.pcb->pid, c.seq), c.meta.encode(),
                   [this, token](Status st) {
                     auto it = captures_.find(token);
                     if (it == captures_.end()) return;
                     if (!st.is_ok()) return capture_fail(token, st);
                     notify_stage(it->second.pcb->pid,
                                  CkptStage::kMetaWritten);
                     capture_commit(token);
                   });
}

void CkptManager::capture_commit(std::uint64_t token) {
  auto it = captures_.find(token);
  if (it == captures_.end()) return;
  const std::int64_t seq = it->second.seq;
  // The head rewrite is the commit point: everything before it is invisible
  // to restart, everything after it is recoverable.
  write_image_file(head_path(it->second.pcb->pid), encode_head(seq),
                   [this, token](Status st) {
    auto it = captures_.find(token);
    if (it == captures_.end()) return;
    if (!st.is_ok()) return capture_fail(token, st);

    Capture c = std::move(it->second);
    captures_.erase(it);
    const proc::Pid pid = c.pcb->pid;
    active_captures_.erase(pid);

    const Time now = host_.cluster().sim().now();
    vm().clear_ckpt_dirty(c.pcb->space);
    Chain& ch = chains_[pid];
    ch.seqs = c.chain;
    ch.last_capture = now;
    auto_first_seen_.erase(pid);

    const std::int64_t npages = c.meta.captured_pages();
    c_captures_->inc();
    (c.full ? c_full_ : c_incr_)->inc();
    c_pages_captured_->inc(npages);
    h_capture_ms_->record((now - c.t0).ms());
    trace::Registry& tr = host_.cluster().sim().trace();
    tr.flight_note("ckpt.capture", "done", self_,
                   static_cast<std::int64_t>(pid), c.seq, npages);
    if (tr.tracing())
      tr.instant("ckpt", c.full ? "full base committed" : "increment committed",
                 self_, static_cast<std::int64_t>(pid));
    tr.end_span(c.span);
    notify_stage(pid, CkptStage::kCommitted);

    // Tell the home an image exists (its restart table indexes recovery).
    // Best-effort: a lost registration only costs recoverability of this
    // capture, never chain consistency.
    auto body = std::make_shared<RegisterReq>();
    body->pid = pid;
    body->seq = c.seq;
    body->host = self_;
    body->incarnation = c.pcb->incarnation;
    host_.rpc().call(c.pcb->home, ServiceId::kCkpt,
                     static_cast<int>(CkptOp::kRegister), body,
                     [](Result<Reply>) {});

    if (!c.keep_frozen && procs().find(pid) == c.pcb)
      procs().install_and_resume(c.pcb);

    if (!c.compacted.empty()) compact(pid, std::move(c.compacted));
    c.cb(Status::ok());
  });
}

void CkptManager::capture_fail(std::uint64_t token, util::Status st) {
  auto it = captures_.find(token);
  if (it == captures_.end()) return;
  Capture c = std::move(it->second);
  captures_.erase(it);
  const proc::Pid pid = c.pcb->pid;
  active_captures_.erase(pid);
  c_capture_failed_->inc();
  trace::Registry& tr = host_.cluster().sim().trace();
  tr.flight_note("ckpt.capture", "failed", self_,
                 static_cast<std::int64_t>(pid),
                 static_cast<int>(st.err()));
  tr.end_span(c.span);
  // Thaw: a failed capture must leave the process exactly as it was.
  if (procs().find(pid) == c.pcb &&
      c.pcb->state == proc::ProcState::kFrozen)
    procs().install_and_resume(c.pcb);
  c.cb(st);
}

void CkptManager::compact(proc::Pid pid, std::vector<std::int64_t> seqs) {
  // Unlink superseded captures after the fresh base committed. Failures are
  // ignored: a leaked file wastes space, the chain stays consistent.
  auto paths = std::make_shared<std::vector<std::string>>();
  for (std::int64_t s : seqs) {
    paths->push_back(meta_path(pid, s));
    paths->push_back(pages_path(pid, s));
  }
  const std::int64_t n = static_cast<std::int64_t>(seqs.size());
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  // The in-flight unlink callback keeps `step` alive (strong capture); the
  // step function itself holds only a weak reference to avoid a self-cycle.
  *step = [this, pid, paths, n, wstep = std::weak_ptr<std::function<void(std::size_t)>>(step)](
              std::size_t i) {
    if (i >= paths->size()) {
      c_compactions_->inc();
      host_.cluster().sim().trace().flight_note(
          "ckpt.compact", "done", self_, static_cast<std::int64_t>(pid), n);
      notify_stage(pid, CkptStage::kCompacted);
      return;
    }
    auto self = wstep.lock();
    if (!self) return;
    fs().unlink((*paths)[i], [self, i](Status) { (*self)(i + 1); });
  };
  (*step)(0);
}

void CkptManager::cleanup_chain(proc::Pid pid) {
  // Best-effort: the pid's home record was retired, so the whole image is
  // garbage. Read the head to learn the chain, then unlink everything.
  read_image_file(head_path(pid), [this, pid](Result<fs::Bytes> r) {
    if (!r.is_ok()) return;
    auto hs = decode_head(*r);
    if (!hs.is_ok()) return;
    read_image_file(meta_path(pid, *hs), [this, pid](Result<fs::Bytes> mr) {
      std::vector<std::int64_t> seqs;
      if (mr.is_ok()) {
        auto m = CkptMeta::decode(*mr);
        if (m.is_ok()) seqs = m->chain;
      }
      auto paths = std::make_shared<std::vector<std::string>>();
      for (std::int64_t s : seqs) {
        paths->push_back(meta_path(pid, s));
        paths->push_back(pages_path(pid, s));
      }
      paths->push_back(head_path(pid));
      auto step = std::make_shared<std::function<void(std::size_t)>>();
      *step = [this, paths,
               wstep = std::weak_ptr<std::function<void(std::size_t)>>(step)](
                  std::size_t i) {
        if (i >= paths->size()) return;
        auto self = wstep.lock();
        if (!self) return;
        fs().unlink((*paths)[i], [self, i](Status) { (*self)(i + 1); });
      };
      (*step)(0);
    });
  });
}

// ---------------------------------------------------------------------------
// Restore pipeline

void CkptManager::restore(proc::Pid pid, std::int64_t incarnation,
                          StatusCb cb) {
  if (!cb) cb = [](Status) {};
  if (active_restores_.count(pid))
    return cb(Status(Err::kBusy, "restore already in progress"));
  if (procs().find(pid))
    return cb(Status(Err::kExist, "pid already resident on this host"));

  const std::uint64_t token = next_token_++;
  Restore& r = restores_[token];
  r.pid = pid;
  r.incarnation = incarnation;
  r.cb = std::move(cb);
  r.t0 = host_.cluster().sim().now();
  active_restores_.insert(pid);
  trace::Registry& tr = host_.cluster().sim().trace();
  r.span = tr.begin_span("ckpt", "restart", self_,
                         static_cast<std::int64_t>(pid));
  tr.flight_note("ckpt.restart", "begin", self_,
                 static_cast<std::int64_t>(pid), incarnation);

  read_image_file(head_path(pid), [this, token](Result<fs::Bytes> b) {
    auto it = restores_.find(token);
    if (it == restores_.end()) return;
    if (!b.is_ok()) {
      return restore_fail(token,
                          b.status().err() == Err::kNoEnt
                              ? Status(Err::kNoEnt, "no checkpoint image")
                              : b.status());
    }
    auto hs = decode_head(*b);
    if (!hs.is_ok()) return restore_fail(token, hs.status());
    it->second.head_seq = *hs;
    it->second.to_read.push_back(*hs);
    restore_read_chain(token);
  });
}

void CkptManager::restore_read_chain(std::uint64_t token) {
  auto it = restores_.find(token);
  if (it == restores_.end()) return;
  Restore& r = it->second;
  if (r.read_i >= r.to_read.size()) {
    notify_stage(r.pid, CkptStage::kRestartRead);
    // Deserialize (migration's deencapsulate sibling), then rebuild.
    host_.cpu().submit(sim::JobClass::kKernel,
                       host_.cluster().costs().ckpt_restore_cpu,
                       [this, token] { restore_build(token); });
    return;
  }
  const std::int64_t seq = r.to_read[r.read_i];
  read_image_file(meta_path(r.pid, seq),
                  [this, token, seq](Result<fs::Bytes> mr) {
    auto it = restores_.find(token);
    if (it == restores_.end()) return;
    Restore& r = it->second;
    if (!mr.is_ok()) return restore_fail(token, mr.status());
    auto m = CkptMeta::decode(*mr);
    if (!m.is_ok()) return restore_fail(token, m.status());
    if (m->pid != r.pid || m->seq != seq)
      return restore_fail(token, Status(Err::kInval, "checkpoint meta identity mismatch"));
    if (seq == r.head_seq) {
      // The head meta names the rest of the chain.
      for (std::int64_t s : m->chain)
        if (s != r.head_seq) r.to_read.push_back(s);
    }
    r.metas.emplace(seq, std::move(*m));
    ++r.read_i;
    restore_read_chain(token);
  });
}

void CkptManager::restore_build(std::uint64_t token) {
  auto it = restores_.find(token);
  if (it == restores_.end()) return;
  Restore& r = it->second;
  const CkptMeta& m = r.metas.at(r.head_seq);

  const proc::ProgramImage* img = host_.cluster().find_program(m.exe_path);
  if (!img)
    return restore_fail(token, Status(Err::kNoEnt, "unknown executable: " + m.exe_path));
  auto program = img->factory(m.args);
  if (!program)
    return restore_fail(token, Status(Err::kInval, "program factory failed"));
  if (Status ds = program->decode_state(m.program_state); !ds.is_ok())
    return restore_fail(token, ds);

  auto pcb = std::make_shared<proc::Pcb>();
  pcb->pid = m.pid;
  pcb->ppid = m.ppid;
  pcb->home = m.home;
  pcb->current = self_;
  pcb->state = proc::ProcState::kFrozen;
  pcb->incarnation = r.incarnation;
  pcb->program = std::move(program);
  pcb->view.pid = m.pid;
  pcb->view.ppid = m.ppid;
  pcb->view.status = Status(static_cast<Err>(m.view_err), m.view_msg);
  pcb->view.rv = m.view_rv;
  pcb->view.aux = m.view_aux;
  pcb->view.data = m.view_data;
  pcb->view.is_child = m.view_is_child;
  pcb->view.text = m.view_text;
  pcb->exe_path = m.exe_path;
  pcb->args = m.args;
  pcb->next_fd = m.next_fd;
  pcb->remaining_compute = Time::usec(m.remaining_compute_us);
  pcb->pause_remaining = Time::usec(m.pause_remaining_us);
  pcb->blocked_in_wait = m.blocked_in_wait;
  pcb->kill_pending = m.kill_pending;
  pcb->kill_sig = m.kill_sig;
  pcb->spawned_at = Time::usec(m.spawned_at_us);
  r.pcb = std::move(pcb);

  vm().create_space(m.exe_path, m.code_pages, m.heap.pages, m.stack.pages,
                    [this, token](Result<vm::SpacePtr> rs) {
                      auto it = restores_.find(token);
                      if (it == restores_.end()) return;
                      if (!rs.is_ok()) return restore_fail(token, rs.status());
                      it->second.space = *rs;
                      it->second.pcb->space = *rs;
                      restore_stage_pages(token);
                    });
}

void CkptManager::restore_stage_pages(std::uint64_t token) {
  auto it = restores_.find(token);
  if (it == restores_.end()) return;
  Restore& r = it->second;

  // Overlay the chain's capture lists oldest-first: for every page the
  // final owner is the *latest* capture that wrote it, and its position in
  // that capture's pages file is its capture-order index (heap runs first,
  // then stack runs).
  struct Owner {
    std::int64_t seq = 0;
    std::int64_t src = -1;
  };
  std::map<vm::Segment, std::vector<Owner>> owners;
  const CkptMeta& head = r.metas.at(r.head_seq);
  owners[vm::Segment::kHeap].resize(static_cast<std::size_t>(head.heap.pages));
  owners[vm::Segment::kStack].resize(
      static_cast<std::size_t>(head.stack.pages));
  for (std::int64_t seq : head.chain) {
    const CkptMeta& m = r.metas.at(seq);
    std::int64_t idx = 0;
    auto overlay = [&](vm::Segment seg, const CkptSegRuns& sr) {
      auto& own = owners[seg];
      for (const auto& [first, count] : sr.runs) {
        for (std::int64_t p = first; p < first + count; ++p, ++idx) {
          if (p >= 0 && static_cast<std::size_t>(p) < own.size())
            own[static_cast<std::size_t>(p)] = {seq, idx};
        }
      }
    };
    overlay(vm::Segment::kHeap, m.heap);
    overlay(vm::Segment::kStack, m.stack);
  }

  // Coalesce into contiguous (same capture, consecutive source, consecutive
  // destination) stage ops.
  for (auto seg : {vm::Segment::kHeap, vm::Segment::kStack}) {
    const auto& own = owners[seg];
    for (std::size_t p = 0; p < own.size(); ++p) {
      if (own[p].src < 0) continue;
      if (!r.ops.empty() && r.ops.back().seg == seg &&
          r.ops.back().seq == own[p].seq &&
          r.ops.back().dest_first + r.ops.back().count ==
              static_cast<std::int64_t>(p) &&
          r.ops.back().src_first + r.ops.back().count == own[p].src) {
        ++r.ops.back().count;
      } else {
        r.ops.push_back({seg, static_cast<std::int64_t>(p), 1, own[p].seq,
                         own[p].src});
      }
    }
  }
  restore_stage_step(token);
}

void CkptManager::restore_stage_step(std::uint64_t token) {
  auto it = restores_.find(token);
  if (it == restores_.end()) return;
  Restore& r = it->second;
  if (r.op_i >= r.ops.size()) {
    // Done staging: drop the image streams and move on to the descriptor
    // table.
    for (auto& [seq, s] : r.imgs) fs().close(s, [](Status) {});
    r.imgs.clear();
    notify_stage(r.pid, CkptStage::kRestartStaged);
    return restore_streams(token);
  }
  const StageOp op = r.ops[r.op_i];
  auto iit = r.imgs.find(op.seq);
  if (iit == r.imgs.end()) {
    fs::OpenFlags fl = fs::OpenFlags::read_only();
    fl.no_cache = true;
    fs().open(pages_path(r.pid, op.seq), fl,
              [this, token, seq = op.seq](Result<fs::StreamPtr> rs) {
                auto it = restores_.find(token);
                if (it == restores_.end()) return;
                if (!rs.is_ok()) return restore_fail(token, rs.status());
                it->second.imgs.emplace(seq, *rs);
                restore_stage_step(token);  // re-enter with the stream open
              });
    return;
  }
  const fs::StreamPtr img = iit->second;
  const std::int64_t page_size = host_.cluster().costs().page_size;
  if (Status st = fs().seek(img, op.src_first * page_size); !st.is_ok())
    return restore_fail(token, st);
  fs().read(img, op.count * page_size, [this, token,
                                        op](Result<fs::Bytes> rb) {
    auto it = restores_.find(token);
    if (it == restores_.end()) return;
    if (!rb.is_ok()) return restore_fail(token, rb.status());
    Restore& r = it->second;
    const std::int64_t page_size = host_.cluster().costs().page_size;
    const fs::StreamPtr backing = r.space->segment(op.seg).backing;
    if (Status st = fs().seek(backing, op.dest_first * page_size);
        !st.is_ok())
      return restore_fail(token, st);
    fs().write(backing,
               fs::Bytes(static_cast<std::size_t>(op.count * page_size), 0),
               [this, token, op](Result<std::int64_t> w) {
                 auto it = restores_.find(token);
                 if (it == restores_.end()) return;
                 if (!w.is_ok()) return restore_fail(token, w.status());
                 Restore& r = it->second;
                 vm().note_staged(r.space, op.seg, op.dest_first, op.count);
                 r.staged_pages += op.count;
                 c_pages_restored_->inc(op.count);
                 ++r.op_i;
                 restore_stage_step(token);
               });
  });
}

void CkptManager::restore_streams(std::uint64_t token) {
  auto it = restores_.find(token);
  if (it == restores_.end()) return;
  Restore& r = it->second;
  const CkptMeta& m = r.metas.at(r.head_seq);
  if (r.stream_i >= m.streams.size()) return restore_claim(token);
  const CkptStream& cs = m.streams[r.stream_i];
  // Rebuild by recorded identity — the same reopen-by-path helper staleness
  // recovery uses, so a server reboot between capture and restart is
  // absorbed the same way.
  fs().open_recorded(cs.path, cs.flags, cs.offset,
                     [this, token, fd = cs.fd](Result<fs::StreamPtr> rs) {
                       auto it = restores_.find(token);
                       if (it == restores_.end()) return;
                       if (!rs.is_ok()) return restore_fail(token, rs.status());
                       Restore& r = it->second;
                       r.pcb->fds[fd] = *rs;
                       ++r.stream_i;
                       restore_streams(token);
                     });
}

void CkptManager::restore_claim(std::uint64_t token) {
  auto it = restores_.find(token);
  if (it == restores_.end()) return;
  Restore& r = it->second;
  // Claim the process's location under the new incarnation. This is where
  // the "exactly one incarnation" invariant bites: if a newer epoch exists
  // (another restart won the race), the home answers kStale and this copy
  // dismantles itself instead of installing.
  if (r.pcb->home == self_) {
    if (!procs().home_record_alive(r.pid))
      return restore_fail(token, Status(Err::kSrch, "home record retired"));
    if (r.incarnation < procs().home_record_incarnation(r.pid))
      return restore_fail(token, Status(Err::kStale, "superseded incarnation"));
    procs().set_home_record_location(r.pid, self_);
    return restore_finish(token);
  }
  auto body = std::make_shared<proc::UpdateLocationReq>();
  body->pid = r.pid;
  body->host = self_;
  body->incarnation = r.incarnation;
  host_.rpc().call(r.pcb->home, ServiceId::kProc,
                   static_cast<int>(proc::ProcOp::kUpdateLocation), body,
                   [this, token](Result<Reply> rr) {
                     auto it = restores_.find(token);
                     if (it == restores_.end()) return;
                     const Status st = rr.is_ok() ? rr->status : rr.status();
                     if (!st.is_ok()) return restore_fail(token, st);
                     restore_finish(token);
                   });
}

void CkptManager::restore_finish(std::uint64_t token) {
  auto it = restores_.find(token);
  if (it == restores_.end()) return;
  Restore r = std::move(it->second);
  restores_.erase(it);
  active_restores_.erase(r.pid);

  procs().install_and_resume(r.pcb);
  const Time now = host_.cluster().sim().now();
  Chain& ch = chains_[r.pid];
  ch.seqs = r.metas.at(r.head_seq).chain;
  ch.last_capture = now;

  c_restarts_->inc();
  h_restart_ms_->record((now - r.t0).ms());
  trace::Registry& tr = host_.cluster().sim().trace();
  tr.flight_note("ckpt.restart", "done", self_,
                 static_cast<std::int64_t>(r.pid), r.head_seq,
                 r.staged_pages);
  if (tr.tracing())
    tr.instant("ckpt", "restart resumed", self_,
               static_cast<std::int64_t>(r.pid));
  tr.end_span(r.span);
  notify_stage(r.pid, CkptStage::kRestartResumed);
  r.cb(Status::ok());
}

void CkptManager::restore_fail(std::uint64_t token, util::Status st) {
  auto it = restores_.find(token);
  if (it == restores_.end()) return;
  Restore r = std::move(it->second);
  restores_.erase(it);
  active_restores_.erase(r.pid);

  c_restart_failed_->inc();
  trace::Registry& tr = host_.cluster().sim().trace();
  tr.flight_note("ckpt.restart", "failed", self_,
                 static_cast<std::int64_t>(r.pid),
                 static_cast<int>(st.err()));
  tr.end_span(r.span);
  // Dismantle the half-built copy: nothing of it may survive.
  for (auto& [seq, s] : r.imgs) fs().close(s, [](Status) {});
  if (r.pcb)
    for (auto& [fd, s] : r.pcb->fds) fs().close(s, [](Status) {});
  if (r.space) vm().destroy_space(r.space, [](Status) {});
  r.cb(st);
}

// ---------------------------------------------------------------------------
// Eviction fast path

void CkptManager::checkpoint_and_depart(const proc::PcbPtr& pcb,
                                        StatusCb cb) {
  if (!cb) cb = [](Status) {};
  const proc::Pid pid = pcb->pid;
  if (pcb->home == self_)
    return cb(Status(Err::kInval, "depart is for foreign processes"));
  capture_begin(pcb, /*keep_frozen=*/true, [this, pcb, pid,
                                            cb = std::move(cb)](Status st) {
    if (!st.is_ok()) return cb(st);  // capture thawed the process already
    auto cit = chains_.find(pid);
    auto body = std::make_shared<DepartReq>();
    body->pid = pid;
    body->seq = (cit != chains_.end() && !cit->second.seqs.empty())
                    ? cit->second.seqs.back()
                    : 0;
    body->host = self_;
    host_.rpc().call(pcb->home, ServiceId::kCkpt,
                     static_cast<int>(CkptOp::kDepart), body,
                     [this, pcb, pid, cb](Result<Reply> rr) {
      const Status st = rr.is_ok() ? rr->status : rr.status();
      auto resident = procs().find(pid);
      if (resident != pcb) return cb(Status(Err::kSrch, "process vanished"));
      if (!st.is_ok()) {
        // Home refused (or is unreachable): thaw and let the caller fall
        // back to a plain migration home.
        if (pcb->state == proc::ProcState::kFrozen)
          procs().install_and_resume(pcb);
        return cb(st);
      }
      // The home took over by image: drop the frozen copy. Its swap files
      // are garbage (the restarted incarnation stages into fresh backing).
      procs().remove(pid);
      for (auto& [fd, s] : pcb->fds) fs().close(s, [](Status) {});
      pcb->fds.clear();
      if (pcb->space) vm().destroy_space(pcb->space, [](Status) {});
      pcb->state = proc::ProcState::kDead;
      c_departs_->inc();
      host_.cluster().sim().trace().flight_note(
          "ckpt.depart", "done", self_, static_cast<std::int64_t>(pid));
      cb(Status::ok());
    });
  });
}

// ---------------------------------------------------------------------------
// Home-node crash recovery (proc::RestarterIface)

bool CkptManager::try_restart(proc::Pid pid, sim::HostId dead_host) {
  if (!recovery_enabled_) return false;
  auto it = home_table_.find(pid);
  if (it == home_table_.end()) return false;
  if (it->second.restarting) return true;  // one restart at a time
  it->second.restarting = true;
  restarted_from_[pid] = dead_host;
  // Escape the monitor's notification cascade before doing real work.
  const std::uint64_t gen = gen_;
  host_.cluster().sim().after(Time::zero(), [this, pid, dead_host, gen] {
    if (gen != gen_) return;
    initiate_restart(pid, dead_host);
  });
  return true;
}

void CkptManager::initiate_restart(proc::Pid pid, sim::HostId dead_host) {
  auto r = procs().bump_incarnation(pid);
  if (!r.is_ok()) return restart_done(pid, sim::kInvalidHost, r.status());
  const std::int64_t inc = *r;
  const HostId target = pick_restart_target(dead_host);
  host_.cluster().sim().trace().flight_note(
      "ckpt.restart", "dispatched", self_, static_cast<std::int64_t>(pid),
      target, inc);
  if (target == self_) {
    restore(pid, inc,
            [this, pid, target](Status st) { restart_done(pid, target, st); });
    return;
  }
  auto body = std::make_shared<RestartReq>();
  body->pid = pid;
  body->incarnation = inc;
  host_.rpc().call(target, ServiceId::kCkpt,
                   static_cast<int>(CkptOp::kRestart), body,
                   [this, pid, target](Result<Reply> rr) {
                     restart_done(pid, target,
                                  rr.is_ok() ? rr->status : rr.status());
                   });
}

sim::HostId CkptManager::pick_restart_target(sim::HostId exclude) const {
  if (restart_target_ != sim::kInvalidHost && restart_target_ != exclude)
    return restart_target_;
  for (HostId w : host_.cluster().workstations()) {
    if (w == exclude || w == self_) continue;
    if (host_.monitor().peer_state(w) == recov::PeerState::kDown) continue;
    return w;
  }
  return self_;
}

void CkptManager::restart_done(proc::Pid pid, sim::HostId target,
                               util::Status st) {
  auto it = home_table_.find(pid);
  if (it != home_table_.end()) it->second.restarting = false;
  if (st.is_ok()) {
    if (it != home_table_.end()) it->second.last_host = target;
    return;
  }
  host_.cluster().sim().trace().flight_note(
      "ckpt.restart", "abandoned", self_, static_cast<std::int64_t>(pid),
      static_cast<int>(st.err()));
  // No second target: the process is as dead as if never checkpointed.
  // (note_home_exit below then forgets the pid and scrubs the image.)
  if (procs().home_record_alive(pid)) procs().home_crash_exit(pid);
}

void CkptManager::note_home_exit(proc::Pid pid) {
  const bool known = home_table_.erase(pid) != 0;
  restarted_from_.erase(pid);
  if (known && host_.up()) cleanup_chain(pid);
}

void CkptManager::note_departed(proc::Pid pid) {
  // The PCB left this host: chain knowledge follows the image head now.
  chains_.erase(pid);
  auto_first_seen_.erase(pid);
}

// ---------------------------------------------------------------------------
// RPC service

void CkptManager::handle_rpc(sim::HostId src, const rpc::Request& req,
                             std::function<void(rpc::Reply)> respond) {
  switch (static_cast<CkptOp>(req.op)) {
    case CkptOp::kRegister: {
      auto body = rpc::body_cast<RegisterReq>(req.body);
      if (!body) return respond({Status(Err::kInval, "bad body"), nullptr});
      if (procs().home_record_alive(body->pid) &&
          body->incarnation >= procs().home_record_incarnation(body->pid)) {
        HomeCkpt& e = home_table_[body->pid];
        e.last_seq = body->seq;
        e.last_host = body->host;
        c_registers_->inc();
        notify_stage(body->pid, CkptStage::kRegistered);
      }
      return respond({Status::ok(), nullptr});
    }
    case CkptOp::kRestart: {
      auto body = rpc::body_cast<RestartReq>(req.body);
      if (!body) return respond({Status(Err::kInval, "bad body"), nullptr});
      auto respond_sp =
          std::make_shared<std::function<void(Reply)>>(std::move(respond));
      restore(body->pid, body->incarnation, [respond_sp](Status st) {
        (*respond_sp)({st, nullptr});
      });
      return;
    }
    case CkptOp::kDepart: {
      auto body = rpc::body_cast<DepartReq>(req.body);
      if (!body) return respond({Status(Err::kInval, "bad body"), nullptr});
      const proc::Pid pid = body->pid;
      if (!procs().home_record_alive(pid))
        return respond({Status(Err::kSrch, "no live home record"), nullptr});
      auto it = home_table_.find(pid);
      if (it != home_table_.end() && it->second.restarting)
        return respond({Status(Err::kBusy, "restart in progress"), nullptr});
      auto r = procs().bump_incarnation(pid);
      if (!r.is_ok()) return respond({r.status(), nullptr});
      HomeCkpt& e = home_table_[pid];
      e.last_seq = body->seq;
      e.last_host = body->host;
      e.restarting = true;
      // Accept now (the image is committed and the epoch is bumped: any
      // stale copy fails kStale from here on), restart asynchronously.
      respond({Status::ok(), nullptr});
      const std::int64_t inc = *r;
      const HostId departing = body->host;
      const std::uint64_t gen = gen_;
      host_.cluster().sim().after(Time::zero(), [this, pid, departing, inc,
                                                 gen] {
        if (gen != gen_) return;
        const HostId target = pick_restart_target(departing);
        if (target == self_) {
          restore(pid, inc, [this, pid, target](Status st) {
            restart_done(pid, target, st);
          });
          return;
        }
        auto rb = std::make_shared<RestartReq>();
        rb->pid = pid;
        rb->incarnation = inc;
        host_.rpc().call(target, ServiceId::kCkpt,
                         static_cast<int>(CkptOp::kRestart), rb,
                         [this, pid, target](Result<Reply> rr) {
                           restart_done(pid, target,
                                        rr.is_ok() ? rr->status : rr.status());
                         });
      });
      return;
    }
    case CkptOp::kKillStale: {
      auto body = rpc::body_cast<KillStaleReq>(req.body);
      if (!body) return respond({Status(Err::kInval, "bad body"), nullptr});
      auto pcb = procs().find(body->pid);
      if (pcb && pcb->incarnation < body->incarnation) {
        c_stale_reaped_->inc();
        host_.cluster().sim().trace().flight_note(
            "ckpt.stale", "reaped", self_,
            static_cast<std::int64_t>(body->pid), body->incarnation);
        procs().reap_stale_incarnation(body->pid);
      }
      return respond({Status::ok(), nullptr});
    }
  }
  respond({Status(Err::kInval, "unknown ckpt op"), nullptr});
  (void)src;
}

// ---------------------------------------------------------------------------
// Autocheckpoint daemon

void CkptManager::enable_autocheckpoint(bool on) {
  auto_enabled_ = on;
  if (on) {
    arm_autockpt();
  } else {
    auto_tick_ev_.cancel();
    auto_ticking_ = false;
  }
}

void CkptManager::set_auto_policy(sim::Time interval,
                                  std::int64_t dirty_threshold) {
  auto_interval_ = interval;
  auto_dirty_threshold_ = dirty_threshold;
}

void CkptManager::arm_autockpt() {
  if (!auto_enabled_ || auto_ticking_ || !host_.up()) return;
  auto_ticking_ = true;
  const std::int64_t scan_us =
      std::max<std::int64_t>(auto_interval_.us() / 4, Time::msec(500).us());
  const std::uint64_t gen = gen_;
  auto_tick_ev_ = host_.cluster().sim().after(Time::usec(scan_us),
                                              [this, gen] {
                                                if (gen != gen_) return;
                                                auto_ticking_ = false;
                                                autockpt_tick();
                                              });
}

void CkptManager::autockpt_tick() {
  if (!auto_enabled_ || !host_.up()) return;
  const Time now = host_.cluster().sim().now();
  auto pids = std::make_shared<std::vector<proc::Pid>>();
  auto consider = [&](const proc::PcbPtr& pcb) {
    const proc::Pid pid = pcb->pid;
    if (active_captures_.count(pid) || active_restores_.count(pid)) return;
    if (!eligible(*pcb).is_ok()) return;
    const std::int64_t dirty = vm().ckpt_dirty_pages(pcb->space);
    auto cit = chains_.find(pid);
    Time last;
    if (cit != chains_.end()) {
      if (dirty == 0) return;  // nothing new since the last capture
      last = cit->second.last_capture;
    } else {
      last = auto_first_seen_.try_emplace(pid, now).first->second;
    }
    const bool due = now - last >= auto_interval_;
    const bool over = dirty >= auto_dirty_threshold_;
    if (due || over) pids->push_back(pid);
  };
  for (const auto& pcb : procs().local_processes()) consider(pcb);
  for (const auto& pcb : procs().foreign_processes()) consider(pcb);
  run_auto_batch(pids, 0);
}

void CkptManager::run_auto_batch(std::shared_ptr<std::vector<proc::Pid>> pids,
                                 std::size_t i) {
  if (i >= pids->size()) return arm_autockpt();
  auto pcb = procs().find((*pids)[i]);
  if (!pcb) return run_auto_batch(std::move(pids), i + 1);
  c_auto_->inc();
  const std::uint64_t gen = gen_;
  checkpoint(pcb, [this, pids = std::move(pids), i, gen](Status) mutable {
    if (gen != gen_) return;
    run_auto_batch(std::move(pids), i + 1);
  });
}

// ---------------------------------------------------------------------------
// Crash / boot / interest

void CkptManager::crash_reset() {
  ++gen_;
  captures_.clear();
  restores_.clear();
  active_captures_.clear();
  active_restores_.clear();
  chains_.clear();
  auto_first_seen_.clear();
  home_table_.clear();
  restarted_from_.clear();
  auto_tick_ev_.cancel();
  auto_ticking_ = false;
  // Policy knobs (auto_enabled_, recovery_enabled_, restart_target_) are
  // boot configuration, like RPC service registrations: they survive.
}

void CkptManager::boot() {
  if (auto_enabled_) arm_autockpt();
}

void CkptManager::collect_peer_interest(std::vector<sim::HostId>& out) const {
  // Hosts the home restarted away from: their reintegration must be
  // noticed so the superseded incarnation gets killed.
  for (const auto& [pid, h] : restarted_from_) {
    (void)pid;
    out.push_back(h);
  }
}

// ---------------------------------------------------------------------------
// FS helpers

void CkptManager::write_image_file(const std::string& path, fs::Bytes data,
                                   StatusCb cb) {
  // Cache-bypassing write-through: the image must be durable at the server
  // when the callback fires, not parked in this host's delayed-write cache.
  fs::OpenFlags fl;
  fl.read = true;
  fl.write = true;
  fl.create = true;
  fl.truncate = true;
  fl.no_cache = true;
  fs().open(path, fl, [this, data = std::move(data),
                       cb = std::move(cb)](Result<fs::StreamPtr> r) mutable {
    if (!r.is_ok()) return cb(r.status());
    fs::StreamPtr s = *r;
    if (data.empty()) {
      fs().close(s, [cb = std::move(cb)](Status) { cb(Status::ok()); });
      return;
    }
    fs().write(s, std::move(data),
               [this, s, cb = std::move(cb)](Result<std::int64_t> w) {
                 const Status st = w.is_ok() ? Status::ok() : w.status();
                 fs().close(s, [cb, st](Status) { cb(st); });
               });
  });
}

void CkptManager::write_image_zeros(const std::string& path,
                                    std::int64_t nbytes, StatusCb cb) {
  write_image_file(path, fs::Bytes(static_cast<std::size_t>(nbytes), 0),
                   std::move(cb));
}

void CkptManager::read_image_file(const std::string& path, BytesCb cb) {
  fs::OpenFlags fl = fs::OpenFlags::read_only();
  fl.no_cache = true;
  fs().open(path, fl, [this, cb = std::move(cb)](Result<fs::StreamPtr> r) mutable {
    if (!r.is_ok()) return cb(r.status());
    fs::StreamPtr s = *r;
    const std::int64_t len = s->size_hint;
    if (len <= 0) {
      fs().close(s, [cb = std::move(cb)](Status) { cb(fs::Bytes{}); });
      return;
    }
    fs().read(s, len, [this, s, cb = std::move(cb)](Result<fs::Bytes> rb) {
      fs().close(s, [cb = std::move(cb), rb = std::move(rb)](Status) mutable {
        cb(std::move(rb));
      });
    });
  });
}

}  // namespace sprite::ckpt
