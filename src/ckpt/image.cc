#include "ckpt/image.h"

#include "util/codec.h"

namespace sprite::ckpt {

namespace {

void put_runs(util::Encoder& e, const CkptSegRuns& sr) {
  e.put_i64(sr.pages);
  e.put_u64(sr.runs.size());
  for (const auto& [first, count] : sr.runs) {
    e.put_i64(first);
    e.put_i64(count);
  }
}

CkptSegRuns get_runs(util::Decoder& d) {
  CkptSegRuns sr;
  sr.pages = d.i64();
  const std::uint64_t n = d.u64();
  for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
    const std::int64_t first = d.i64();
    const std::int64_t count = d.i64();
    sr.runs.emplace_back(first, count);
  }
  return sr;
}

}  // namespace

std::int64_t CkptSegRuns::captured() const {
  std::int64_t n = 0;
  for (const auto& [first, count] : runs) {
    (void)first;
    n += count;
  }
  return n;
}

fs::Bytes CkptMeta::encode() const {
  util::Encoder e;
  e.put_i64(kMagic);
  e.put_i64(kVersion);
  e.put_i64(static_cast<std::int64_t>(pid));
  e.put_i64(seq);
  e.put_u64(chain.size());
  for (std::int64_t s : chain) e.put_i64(s);
  e.put_i64(incarnation);
  e.put_i64(static_cast<std::int64_t>(ppid));
  e.put_i32(home);
  e.put_str(exe_path);
  e.put_u64(args.size());
  for (const auto& a : args) e.put_str(a);
  e.put_bytes(program_state);
  e.put_i32(view_err);
  e.put_str(view_msg);
  e.put_i64(view_rv);
  e.put_i32(view_aux);
  e.put_bytes(view_data);
  e.put_bool(view_is_child);
  e.put_str(view_text);
  e.put_i64(remaining_compute_us);
  e.put_i64(pause_remaining_us);
  e.put_bool(blocked_in_wait);
  e.put_bool(kill_pending);
  e.put_i32(kill_sig);
  e.put_i32(next_fd);
  e.put_i64(spawned_at_us);
  e.put_u64(streams.size());
  for (const auto& s : streams) {
    e.put_i32(s.fd);
    e.put_str(s.path);
    e.put_i64(s.offset);
    e.put_bool(s.flags.read);
    e.put_bool(s.flags.write);
    e.put_bool(s.flags.create);
    e.put_bool(s.flags.truncate);
    e.put_bool(s.flags.no_cache);
  }
  e.put_i64(code_pages);
  put_runs(e, heap);
  put_runs(e, stack);
  return e.take();
}

util::Result<CkptMeta> CkptMeta::decode(const fs::Bytes& raw) {
  util::Decoder d(raw);
  if (d.i64() != kMagic || d.i64() != kVersion)
    return {util::Err::kInval, "checkpoint meta: bad magic/version"};
  CkptMeta m;
  m.pid = static_cast<proc::Pid>(d.i64());
  m.seq = d.i64();
  const std::uint64_t nchain = d.u64();
  for (std::uint64_t i = 0; i < nchain && d.ok(); ++i) m.chain.push_back(d.i64());
  m.incarnation = d.i64();
  m.ppid = static_cast<proc::Pid>(d.i64());
  m.home = d.i32();
  m.exe_path = d.str();
  const std::uint64_t nargs = d.u64();
  for (std::uint64_t i = 0; i < nargs && d.ok(); ++i) m.args.push_back(d.str());
  m.program_state = d.blob();
  m.view_err = d.i32();
  m.view_msg = d.str();
  m.view_rv = d.i64();
  m.view_aux = d.i32();
  m.view_data = d.blob();
  m.view_is_child = d.boolean();
  m.view_text = d.str();
  m.remaining_compute_us = d.i64();
  m.pause_remaining_us = d.i64();
  m.blocked_in_wait = d.boolean();
  m.kill_pending = d.boolean();
  m.kill_sig = d.i32();
  m.next_fd = d.i32();
  m.spawned_at_us = d.i64();
  const std::uint64_t nstreams = d.u64();
  for (std::uint64_t i = 0; i < nstreams && d.ok(); ++i) {
    CkptStream s;
    s.fd = d.i32();
    s.path = d.str();
    s.offset = d.i64();
    s.flags.read = d.boolean();
    s.flags.write = d.boolean();
    s.flags.create = d.boolean();
    s.flags.truncate = d.boolean();
    s.flags.no_cache = d.boolean();
    m.streams.push_back(std::move(s));
  }
  m.code_pages = d.i64();
  m.heap = get_runs(d);
  m.stack = get_runs(d);
  if (!d.ok() || !d.at_end())
    return {util::Err::kInval, "checkpoint meta: truncated or oversized"};
  if (m.chain.empty() || m.chain.back() != m.seq)
    return {util::Err::kInval, "checkpoint meta: malformed chain"};
  return m;
}

fs::Bytes encode_head(std::int64_t seq) {
  util::Encoder e;
  e.put_i64(CkptMeta::kMagic);
  e.put_i64(seq);
  return e.take();
}

util::Result<std::int64_t> decode_head(const fs::Bytes& raw) {
  util::Decoder d(raw);
  if (d.i64() != CkptMeta::kMagic)
    return {util::Err::kInval, "checkpoint head: bad magic"};
  const std::int64_t seq = d.i64();
  if (!d.ok() || !d.at_end() || seq <= 0)
    return {util::Err::kInval, "checkpoint head: malformed"};
  return seq;
}

std::string head_path(proc::Pid pid) {
  return "/ckpt/p" + std::to_string(pid) + ".head";
}

std::string meta_path(proc::Pid pid, std::int64_t seq) {
  return "/ckpt/p" + std::to_string(pid) + ".meta." + std::to_string(seq);
}

std::string pages_path(proc::Pid pid, std::int64_t seq) {
  return "/ckpt/p" + std::to_string(pid) + ".pages." + std::to_string(seq);
}

}  // namespace sprite::ckpt
