// Wire messages for the checkpoint/restart service (rpc::ServiceId::kCkpt).
//
// Three conversations run over this service:
//   - register: a host that committed a checkpoint tells the process's home
//     machine that an image exists (the home's restart table is the index
//     the crash-recovery policy consults);
//   - restart: the home machine asks a chosen host to rebuild a process
//     from its on-disk image under a new incarnation epoch;
//   - depart / kill-stale: the eviction fast path hands a frozen process to
//     the home by image instead of by migration, and the home reaps a stale
//     incarnation that reappears after a partition heals.
#pragma once

#include <cstdint>

#include "proc/program.h"
#include "rpc/rpc.h"
#include "sim/ids.h"

namespace sprite::ckpt {

enum class CkptOp : int {
  kRegister = 1,  // checkpointing host -> home: image committed
  kRestart,       // home -> restoring host: rebuild from image
  kDepart,        // evicting host -> home: frozen image committed, take over
  kKillStale,     // home -> healed host: reap a superseded incarnation
};

// A checkpoint chain head was committed for `pid`: sequence `seq`, captured
// on `host` by the copy running under `incarnation`.
struct RegisterReq : rpc::Message {
  proc::Pid pid = proc::kInvalidPid;
  std::int64_t seq = 0;
  sim::HostId host = sim::kInvalidHost;
  std::int64_t incarnation = 0;
  std::int64_t wire_bytes() const override { return 40; }
};

// Rebuild `pid` from its latest committed image. `incarnation` is the fresh
// epoch the home's pid authority granted this copy; the restored process
// claims its location with it (older copies then fail kStale).
struct RestartReq : rpc::Message {
  proc::Pid pid = proc::kInvalidPid;
  std::int64_t incarnation = 0;
  std::int64_t wire_bytes() const override { return 24; }
};

// Eviction fast path: `host` holds `pid` frozen with checkpoint `seq`
// committed, and wants to drop its copy. The home bumps the incarnation and
// restarts the process elsewhere from the image.
struct DepartReq : rpc::Message {
  proc::Pid pid = proc::kInvalidPid;
  std::int64_t seq = 0;
  sim::HostId host = sim::kInvalidHost;
  std::int64_t wire_bytes() const override { return 32; }
};

// A copy of `pid` older than `incarnation` is running on the destination
// host (it was partitioned while the home restarted the process): reap it.
struct KillStaleReq : rpc::Message {
  proc::Pid pid = proc::kInvalidPid;
  std::int64_t incarnation = 0;
  std::int64_t wire_bytes() const override { return 24; }
};

}  // namespace sprite::ckpt
