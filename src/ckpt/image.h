// Checkpoint image format (src/ckpt/).
//
// A process's checkpoint lives on the shared file system as a chain of
// numbered captures plus a tiny head file naming the latest committed one:
//
//   /ckpt/p<pid>.meta.<seq>    serialized CkptMeta (this header)
//   /ckpt/p<pid>.pages.<seq>   captured page contents, in capture order
//   /ckpt/p<pid>.head          latest committed seq (rewritten last)
//
// A capture is either a full base (chain == {seq}) or an increment whose
// meta lists every older member of its chain. The pages file holds only the
// pages this capture wrote (full base: every page that differs from
// zero-fill; increment: pages dirtied since the previous capture), so the
// final memory image is reconstructed at restart by overlaying the chain's
// capture lists oldest-first — no cumulative page map is ever stored.
//
// Commit protocol: pages, then meta, then head, all written through the
// cache-bypassing path. The head rewrite is the commit point; a crash at
// any earlier step leaves the head naming the previous complete capture, so
// a checkpoint chain is never lost to a crash mid-checkpoint.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fs/types.h"
#include "proc/program.h"
#include "sim/ids.h"
#include "util/status.h"

namespace sprite::ckpt {

// One open descriptor, by durable identity: enough to rebuild the stream on
// any host via FsClient::open_recorded. Only path-recoverable streams are
// checkpointable (see FsClient::recoverable_by_path).
struct CkptStream {
  int fd = -1;
  std::string path;
  std::int64_t offset = 0;
  fs::OpenFlags flags;
};

// Pages one capture wrote for one segment, as (first, count) runs over the
// segment's page index space. Runs appear in ascending order; their
// concatenation (heap runs, then stack runs) is the pages-file layout.
struct CkptSegRuns {
  std::int64_t pages = 0;  // segment size, for create_space at restart
  std::vector<std::pair<std::int64_t, std::int64_t>> runs;
  std::int64_t captured() const;
};

struct CkptMeta {
  static constexpr std::int64_t kMagic = 0x53435250'434B5054;  // "SCRP CKPT"
  static constexpr std::int64_t kVersion = 1;

  // Identity and chain position.
  proc::Pid pid = proc::kInvalidPid;
  std::int64_t seq = 0;
  std::vector<std::int64_t> chain;  // oldest (base) .. seq, inclusive
  std::int64_t incarnation = 0;     // epoch of the copy that captured this

  // PCB record (the migration TransferReq's durable subset).
  proc::Pid ppid = proc::kInvalidPid;
  sim::HostId home = sim::kInvalidHost;
  std::string exe_path;
  std::vector<std::string> args;
  fs::Bytes program_state;  // Program::encode_state at the frozen safe point
  // Last-action result (ProcessView), replayed into the rebuilt PCB.
  int view_err = 0;
  std::string view_msg;
  std::int64_t view_rv = 0;
  int view_aux = 0;
  fs::Bytes view_data;
  bool view_is_child = false;
  std::string view_text;
  // Blocking detail, mirrored from the frozen PCB.
  std::int64_t remaining_compute_us = 0;
  std::int64_t pause_remaining_us = 0;
  bool blocked_in_wait = false;
  bool kill_pending = false;
  int kill_sig = 0;
  int next_fd = 3;
  std::int64_t spawned_at_us = 0;

  // Open streams and memory.
  std::vector<CkptStream> streams;
  std::int64_t code_pages = 0;
  CkptSegRuns heap;
  CkptSegRuns stack;

  std::int64_t captured_pages() const { return heap.captured() + stack.captured(); }

  fs::Bytes encode() const;
  static util::Result<CkptMeta> decode(const fs::Bytes& raw);
};

// Head file payload: just the committed seq, magic-framed.
fs::Bytes encode_head(std::int64_t seq);
util::Result<std::int64_t> decode_head(const fs::Bytes& raw);

// Image pathnames, shared by capture, restart, and compaction.
std::string head_path(proc::Pid pid);
std::string meta_path(proc::Pid pid, std::int64_t seq);
std::string pages_path(proc::Pid pid, std::int64_t seq);

}  // namespace sprite::ckpt
