// CkptManager: per-kernel checkpoint/restart (the src/ckpt/ subsystem).
//
// Migration moves a *live* process between kernels; checkpointing makes the
// process's state *durable* so it survives the kernel it runs on. A capture
// freezes the process at a safe point (the same safe points migration
// uses), flushes its open files' dirty cached blocks (output-commit: bytes
// the program believes written must not die with this host's cache), and
// writes a versioned image to the shared file system:
//
//   - a full base captures every heap/stack page that differs from
//     zero-fill; subsequent *incremental* captures write only the pages
//     dirtied since the previous capture, using the VM's checkpoint-dirty
//     plane (vm::SegmentState::ckpt_dirty), and chain back to the base;
//   - after Costs::ckpt_chain_max increments the next capture forces a
//     fresh base and compacts (unlinks) the superseded chain;
//   - the head-file rewrite is the commit point (see ckpt/image.h), so a
//     crash mid-capture never loses the previous committed chain.
//
// Restart rebuilds the process on *any* host: the PCB is reconstructed
// under the home machine's pid authority, streams are reopened by recorded
// pathname (the same helper staleness recovery uses), and captured pages
// are staged from the image into fresh swap backing so the process
// demand-pages them exactly as after a migration-by-flush. The restored
// copy runs under a fresh *incarnation epoch* granted by the home
// (ProcTable::bump_incarnation); any older copy that reappears — a
// late-thawing migration, a partitioned survivor — fails kStale when it
// tries to claim the process's location, and is reaped. This is the
// "exactly one incarnation" invariant.
//
// Two policies drive captures and restarts:
//   - the per-host autocheckpoint daemon captures eligible processes every
//     ckpt_auto_interval, or sooner once ckpt_dirty_threshold_pages have
//     been dirtied;
//   - home-node crash recovery: when a host's monitor declares a peer down,
//     the home's process table offers each lost process to this module
//     (proc::RestarterIface) before declaring it exited; registered
//     checkpoints are restarted on a surviving host instead.
// Additionally the eviction fast path (checkpoint_and_depart) lets a
// returning workstation owner get rid of foreign processes at local-write
// cost: commit an (incremental) image, hand the process to its home by
// reference, and drop the frozen copy.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ckpt/image.h"
#include "fs/client.h"
#include "proc/pcb.h"
#include "proc/table.h"
#include "rpc/rpc.h"
#include "sim/costs.h"
#include "sim/simulator.h"
#include "util/status.h"
#include "vm/vm.h"

namespace sprite::kern {
class Host;
}

namespace sprite::ckpt {

// Capture/restart progress points, observable by fault-injection tests
// (same pattern as mig::MigStage): crash the host between any two of these
// and the chain must still restore.
enum class CkptStage : int {
  kFrozen = 0,      // process suspended at a safe point
  kFlushed,         // open files' dirty cached blocks committed
  kPagesWritten,    // pages.<seq> image written
  kMetaWritten,     // meta.<seq> written (not yet committed)
  kCommitted,       // head rewritten: this capture is now the restart point
  kCompacted,       // superseded chain unlinked
  kRegistered,      // home machine recorded the image (fires on the home)
  kRestartRead,     // restart: head + chain metas read back
  kRestartStaged,   // restart: pages staged into fresh swap backing
  kRestartResumed,  // restart: location claimed, process running again
};
const char* ckpt_stage_name(CkptStage s);

class CkptManager : public proc::RestarterIface {
 public:
  using StatusCb = std::function<void(util::Status)>;
  using StageObserver = std::function<void(proc::Pid, CkptStage)>;

  explicit CkptManager(kern::Host& host);

  // Registers the kCkpt RPC service.
  void register_services();

  // ---- Capture (process resident on this host) ----
  // Why a process cannot be checkpointed, or kOk: needs a checkpointable
  // program, transferred (not forwarded) file state, no copy-on-reference
  // residue, and every stream recoverable by path.
  util::Status eligible(const proc::Pcb& pcb) const;
  // Freezes, captures (incremental when a chain exists, full base
  // otherwise), commits, registers with the home, and thaws. cb(kOk) fires
  // once the head commit is durable; registration and compaction complete
  // asynchronously after it.
  void checkpoint(const proc::PcbPtr& pcb, StatusCb cb);

  // ---- Restart (this host rebuilds the process) ----
  // Rebuilds `pid` from its latest committed image under `incarnation`
  // (granted by the home's bump_incarnation) and resumes it here. Used by
  // the kRestart RPC handler, by home-local recovery, and by tests.
  void restore(proc::Pid pid, std::int64_t incarnation, StatusCb cb);

  // ---- Eviction fast path (this host wants a foreign process gone) ----
  // Capture keeping the process frozen, ask the home to restart it
  // elsewhere from the image, and drop the local copy. On failure the
  // process is thawed and cb gets the error (caller falls back to
  // migration).
  void checkpoint_and_depart(const proc::PcbPtr& pcb, StatusCb cb);
  // Opt-in: when set, MigrationManager::evict_all_foreign tries this path
  // before a full migration home. Off by default.
  void set_evict_via_checkpoint(bool on) { evict_via_ckpt_ = on; }
  bool evict_via_checkpoint() const { return evict_via_ckpt_; }

  // ---- Autocheckpoint daemon (per-host policy) ----
  // Off by default; when enabled, every eligible resident process is
  // captured once `interval` has passed since its last capture, or sooner
  // once `dirty_threshold` pages accumulate in the checkpoint-dirty plane.
  void enable_autocheckpoint(bool on);
  void set_auto_policy(sim::Time interval, std::int64_t dirty_threshold);

  // ---- Home-node crash recovery policy ----
  // On by default (inert until a checkpoint is registered): a down verdict
  // for a host running a checkpointed process homed here triggers a restart
  // on a surviving host instead of the crash-exit path.
  void set_recovery(bool on) { recovery_enabled_ = on; }
  // Pins the host recovery restarts onto (tests want determinism);
  // kInvalidHost restores the default policy (lowest up workstation, else
  // this host).
  void set_restart_target(sim::HostId h) { restart_target_ = h; }

  // proc::RestarterIface (called by this host's process table).
  bool try_restart(proc::Pid pid, sim::HostId dead_host) override;
  void note_home_exit(proc::Pid pid) override;
  void note_departed(proc::Pid pid) override;

  // ---- Introspection (tests, benches) ----
  bool home_has_checkpoint(proc::Pid pid) const {
    return home_table_.count(pid) != 0;
  }
  // Committed captures currently chained for a process hosted here (0 when
  // unknown; the first capture after a migration re-reads the head).
  std::int64_t chain_length(proc::Pid pid) const;
  std::int64_t last_seq(proc::Pid pid) const;
  std::size_t active_ops() const {
    return active_captures_.size() + active_restores_.size();
  }

  void add_stage_observer(StageObserver fn) {
    stage_observers_.push_back(std::move(fn));
  }

  // ---- Crash / boot support ----
  void crash_reset();
  void boot();
  void collect_peer_interest(std::vector<sim::HostId>& out) const;

  // Registry-backed statistics view.
  struct Stats {
    std::int64_t captures = 0;
    std::int64_t capture_failures = 0;
    std::int64_t full_bases = 0;
    std::int64_t incrementals = 0;
    std::int64_t declined = 0;
    std::int64_t pages_captured = 0;
    std::int64_t restarts = 0;
    std::int64_t restarts_failed = 0;
    std::int64_t pages_restored = 0;
    std::int64_t compactions = 0;
    std::int64_t auto_triggers = 0;
    std::int64_t departs = 0;
    std::int64_t stale_reaped = 0;
  };
  const Stats& stats() const;

 private:
  // One in-flight capture. Closures hold the token and revalidate through
  // captures_ so a crash (which clears the map) turns them into no-ops.
  struct Capture {
    proc::PcbPtr pcb;
    StatusCb cb;
    bool keep_frozen = false;
    bool full = false;
    std::int64_t seq = 0;
    // Highest seq known used when the chain list itself is unreadable
    // (collision avoidance only; nothing to compact).
    std::int64_t seq_floor = 0;
    std::vector<std::int64_t> chain;      // chain including this capture
    std::vector<std::int64_t> compacted;  // seqs to unlink after commit
    CkptMeta meta;
    sim::Time t0;
    trace::SpanId span = 0;
  };
  // One restore stage op: `count` pages into `seg` at `dest_first`, read
  // from capture `seq`'s pages file starting at capture-order index
  // `src_first`.
  struct StageOp {
    vm::Segment seg = vm::Segment::kHeap;
    std::int64_t dest_first = 0;
    std::int64_t count = 0;
    std::int64_t seq = 0;
    std::int64_t src_first = 0;
  };
  // One in-flight restore.
  struct Restore {
    proc::Pid pid = proc::kInvalidPid;
    std::int64_t incarnation = 0;
    StatusCb cb;
    std::int64_t head_seq = 0;
    std::map<std::int64_t, CkptMeta> metas;  // chain seq -> meta
    std::vector<std::int64_t> to_read;       // chain metas still unread
    std::size_t read_i = 0;
    proc::PcbPtr pcb;
    vm::SpacePtr space;
    std::vector<StageOp> ops;
    std::size_t op_i = 0;
    std::map<std::int64_t, fs::StreamPtr> imgs;  // open pages files by seq
    std::size_t stream_i = 0;
    std::int64_t staged_pages = 0;
    sim::Time t0;
    trace::SpanId span = 0;
  };
  // Chain knowledge for a process hosted here. Rebuilt from the head file
  // when missing (fresh arrival after a migration).
  struct Chain {
    std::vector<std::int64_t> seqs;
    sim::Time last_capture;
  };
  // Home-side restart table: pids homed here with a registered image.
  struct HomeCkpt {
    std::int64_t last_seq = 0;
    sim::HostId last_host = sim::kInvalidHost;
    bool restarting = false;
  };

  // Capture pipeline (one method per stage; each revalidates its token).
  void capture_begin(const proc::PcbPtr& pcb, bool keep_frozen, StatusCb cb);
  void capture_flush(std::uint64_t token);
  void capture_load_chain(std::uint64_t token);
  void capture_plan(std::uint64_t token);
  void capture_write_pages(std::uint64_t token);
  void capture_write_meta(std::uint64_t token);
  void capture_commit(std::uint64_t token);
  void capture_fail(std::uint64_t token, util::Status st);
  void compact(proc::Pid pid, std::vector<std::int64_t> seqs);
  void cleanup_chain(proc::Pid pid);
  CkptMeta build_meta(const proc::Pcb& pcb, std::int64_t seq,
                      std::vector<std::int64_t> chain, bool full) const;

  // Restore pipeline.
  void restore_read_chain(std::uint64_t token);
  void restore_build(std::uint64_t token);
  void restore_stage_pages(std::uint64_t token);
  void restore_stage_step(std::uint64_t token);
  void restore_streams(std::uint64_t token);
  void restore_claim(std::uint64_t token);
  void restore_finish(std::uint64_t token);
  void restore_fail(std::uint64_t token, util::Status st);

  // Home-side recovery.
  void initiate_restart(proc::Pid pid, sim::HostId dead_host);
  sim::HostId pick_restart_target(sim::HostId exclude) const;
  void restart_done(proc::Pid pid, sim::HostId target, util::Status st);

  // Shared FS helpers (whole-file, cache-bypassing).
  void write_image_file(const std::string& path, fs::Bytes data,
                        StatusCb cb);
  void write_image_zeros(const std::string& path, std::int64_t nbytes,
                         StatusCb cb);
  using BytesCb = std::function<void(util::Result<fs::Bytes>)>;
  void read_image_file(const std::string& path, BytesCb cb);
  void flush_files(std::vector<fs::FileId> ids, std::size_t i, StatusCb cb);

  void handle_rpc(sim::HostId src, const rpc::Request& req,
                  std::function<void(rpc::Reply)> respond);
  void autockpt_tick();
  void arm_autockpt();
  void run_auto_batch(std::shared_ptr<std::vector<proc::Pid>> pids,
                      std::size_t i);
  void notify_stage(proc::Pid pid, CkptStage stage);
  proc::ProcTable& procs() const;
  vm::VmManager& vm() const;
  fs::FsClient& fs() const;

  kern::Host& host_;
  sim::HostId self_;
  bool evict_via_ckpt_ = false;
  bool recovery_enabled_ = true;
  bool auto_enabled_ = false;
  sim::Time auto_interval_;
  std::int64_t auto_dirty_threshold_ = 0;
  sim::HostId restart_target_ = sim::kInvalidHost;

  std::uint64_t next_token_ = 1;
  std::uint64_t gen_ = 1;  // bumped by crash_reset; stale timers check it
  std::map<std::uint64_t, Capture> captures_;
  std::map<std::uint64_t, Restore> restores_;
  std::set<proc::Pid> active_captures_;
  std::set<proc::Pid> active_restores_;
  std::map<proc::Pid, Chain> chains_;
  std::map<proc::Pid, sim::Time> auto_first_seen_;
  std::map<proc::Pid, HomeCkpt> home_table_;
  // Restarted pids -> the host the superseded copy was running on; healed
  // partitions get a kKillStale so at most one incarnation survives.
  std::map<proc::Pid, sim::HostId> restarted_from_;
  bool auto_ticking_ = false;
  sim::EventHandle auto_tick_ev_;
  std::vector<StageObserver> stage_observers_;

  trace::Counter* c_captures_;
  trace::Counter* c_capture_failed_;
  trace::Counter* c_full_;
  trace::Counter* c_incr_;
  trace::Counter* c_declined_;
  trace::Counter* c_pages_captured_;
  trace::Counter* c_restarts_;
  trace::Counter* c_restart_failed_;
  trace::Counter* c_pages_restored_;
  trace::Counter* c_compactions_;
  trace::Counter* c_auto_;
  trace::Counter* c_departs_;
  trace::Counter* c_stale_reaped_;
  trace::Counter* c_registers_;
  trace::LatencyHistogram* h_capture_ms_;
  trace::LatencyHistogram* h_restart_ms_;
  mutable Stats stats_view_;
};

}  // namespace sprite::ckpt
