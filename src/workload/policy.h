// PolicyWorkload: the placement-vs-migration policy experiment (E10).
//
// Jobs with Zhou lifetimes arrive at every workstation; policies range from
// "run at home" through exec-time placement to placement plus periodic
// rebalancing of long-running processes (Cabrera's heuristic).
#pragma once

#include <string>
#include <vector>

#include "loadshare/facility.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/session.h"

namespace sprite::kern {
class Cluster;
}

namespace sprite::wl {

class PolicyWorkload {
 public:
  enum class Policy : int {
    kNone = 0,        // every job runs at home
    kPlacement,       // exec-time placement of jobs arriving at busy hosts
    kPlacementPlusMigration,  // placement + periodic rebalancing of
                              // long-running processes
  };
  static const char* policy_name(Policy p);

  struct Options {
    Policy policy = Policy::kNone;
    // Poisson arrival rate of jobs per workstation.
    double arrivals_per_host_hz = 0.3;
    sim::Time duration = sim::Time::minutes(10);
    // Rebalance scan period for kPlacementPlusMigration.
    sim::Time rebalance_period = sim::Time::sec(5);
    // A process is "known long-running" once it has lived this long
    // (Cabrera's heuristic).
    sim::Time long_running_age = sim::Time::sec(2);
  };

  struct Result {
    util::Distribution response_s;  // completion - arrival
    util::Distribution slowdown;    // response / cpu demand
    int jobs_submitted = 0;
    int jobs_finished = 0;
    int placed_remotely = 0;
    int active_migrations = 0;
  };

  PolicyWorkload(kern::Cluster& cluster, ls::Facility& facility,
                 Options options);

  // Runs to completion (all submitted jobs finished); returns the result.
  Result run();

 private:
  void arrival(sim::HostId h);
  void submit(sim::HostId h, sim::Time lifetime);
  void rebalance();

  kern::Cluster& cluster_;
  ls::Facility& facility_;
  Options options_;
  util::Rng rng_;
  ZhouLifetimes lifetimes_;
  Result result_;
  int outstanding_ = 0;
  sim::Time deadline_;  // no arrivals after this instant
};

}  // namespace sprite::wl
