#include "workload/policy.h"

#include <algorithm>

#include "apps/pmake.h"
#include "kern/cluster.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"
#include "util/assert.h"

namespace sprite::wl {

using proc::Pid;
using sim::HostId;
using sim::Time;

const char* PolicyWorkload::policy_name(Policy p) {
  switch (p) {
    case Policy::kNone: return "local-only";
    case Policy::kPlacement: return "exec-time-placement";
    case Policy::kPlacementPlusMigration: return "placement+migration";
  }
  return "?";
}

PolicyWorkload::PolicyWorkload(kern::Cluster& cluster, ls::Facility& facility,
                               Options options)
    : cluster_(cluster),
      facility_(facility),
      options_(options),
      rng_(cluster.sim().fork_rng()),
      lifetimes_(cluster.sim().fork_rng()) {}

void PolicyWorkload::arrival(HostId h) {
  const double gap_s = rng_.exponential(1.0 / options_.arrivals_per_host_hz);
  const Time next = cluster_.sim().now() + Time::sec(gap_s);
  if (next > deadline_) return;
  cluster_.sim().at(next, [this, h] {
    submit(h, lifetimes_.next());
    arrival(h);
  });
}

void PolicyWorkload::submit(HostId h, Time lifetime) {
  ++result_.jobs_submitted;
  ++outstanding_;
  const Time arrival_time = cluster_.sim().now();

  auto launch = [this, h, lifetime, arrival_time](HostId target) {
    std::vector<std::string> args;
    std::string exe;
    if (target == sim::kInvalidHost) {
      exe = "/bin/job";
      args = {std::to_string(lifetime.us())};
    } else {
      exe = "/bin/rexec";
      args = {std::to_string(target), "/bin/job",
              std::to_string(lifetime.us())};
      ++result_.placed_remotely;
    }
    cluster_.host(h).procs().spawn(
        exe, std::move(args),
        [this, h, lifetime, arrival_time, target](util::Result<Pid> r) {
          if (!r.is_ok()) {
            --outstanding_;
            return;
          }
          cluster_.host(h).procs().notify_on_exit(
              *r, [this, h, lifetime, arrival_time, target](int) {
                const Time response = cluster_.sim().now() - arrival_time;
                result_.response_s.add(response.s());
                result_.slowdown.add(response.s() /
                                     std::max(0.05, lifetime.s()));
                ++result_.jobs_finished;
                --outstanding_;
                if (target != sim::kInvalidHost)
                  facility_.selector(h).release_host(target);
              });
        });
  };

  const bool local_busy = cluster_.host(h).cpu().runnable_users() >= 1;
  if (options_.policy == Policy::kNone || !local_busy) {
    launch(sim::kInvalidHost);
    return;
  }
  facility_.selector(h).request_hosts(1, [launch](std::vector<HostId> hosts) {
    launch(hosts.empty() ? sim::kInvalidHost : hosts[0]);
  });
}

void PolicyWorkload::rebalance() {
  for (HostId w : cluster_.workstations()) {
    auto& host = cluster_.host(w);
    if (host.cpu().runnable_users() < 2) continue;
    // Find a home-grown long-running process to move (foreign ones are
    // someone else's responsibility).
    const Time now = cluster_.sim().now();
    for (const auto& pcb : host.procs().local_processes()) {
      if (pcb->foreign()) continue;
      if (now - pcb->spawned_at < options_.long_running_age) continue;
      if (pcb->state != proc::ProcState::kRunnable) continue;
      facility_.selector(w).request_hosts(
          1, [this, w, pid = pcb->pid](std::vector<HostId> hosts) {
            if (hosts.empty()) return;
            auto pcb = cluster_.host(w).procs().find(pid);
            if (!pcb || pcb->state != proc::ProcState::kRunnable) {
              facility_.selector(w).release_host(hosts[0]);
              return;
            }
            ++result_.active_migrations;
            cluster_.host(w).mig().migrate(
                pcb, hosts[0],
                [this, w, pid, h = hosts[0]](util::Status s) {
                  if (!s.is_ok()) {
                    facility_.selector(w).release_host(h);
                    return;
                  }
                  // Release the rebalance grant when the moved process
                  // finishes (its home is w, so the record lives there).
                  cluster_.host(w).procs().notify_on_exit(
                      pid, [this, w, h](int) {
                        facility_.selector(w).release_host(h);
                      });
                });
          });
      break;  // at most one move per host per scan
    }
  }
}

PolicyWorkload::Result PolicyWorkload::run() {
  apps::install_rexec(cluster_);
  if (cluster_.find_program("/bin/job") == nullptr) {
    proc::ProgramImage job;
    job.code_pages = 8;
    job.heap_pages = 16;
    job.stack_pages = 2;
    job.factory = [](const std::vector<std::string>& args) {
      SPRITE_CHECK(!args.empty());
      const Time cpu = Time::usec(std::stoll(args[0]));
      proc::ScriptBuilder b;
      b.compute(cpu).exit(0);
      return std::unique_ptr<proc::Program>(b.build());
    };
    SPRITE_CHECK(cluster_.install_program("/bin/job", job).is_ok());
  }

  deadline_ = cluster_.sim().now() + options_.duration;
  for (HostId w : cluster_.workstations()) arrival(w);
  if (options_.policy == Policy::kPlacementPlusMigration) {
    cluster_.sim().every(
        options_.rebalance_period, [this] { rebalance(); },
        cluster_.sim().now() + options_.duration);
  }
  const Time end = cluster_.sim().now() + options_.duration;
  cluster_.run_until_done([this, end] {
    return cluster_.sim().now() >= end && outstanding_ == 0;
  });
  return std::move(result_);
}

}  // namespace sprite::wl
