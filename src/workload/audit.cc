#include "workload/audit.h"

#include <map>

#include "kern/cluster.h"
#include "proc/table.h"

namespace sprite::wl {

using sim::HostId;

AuditResult audit_incarnations(kern::Cluster& cluster,
                               const std::vector<Engine::JobRecord>& jobs) {
  AuditResult r;

  // 1. Ledger completeness: every submitted job reached a terminal state.
  for (const auto& j : jobs) {
    if (j.terminal()) continue;
    ++r.lost;
    r.problems.push_back("job " + std::to_string(j.id) + " (home host" +
                         std::to_string(j.home) + ", pid " +
                         std::to_string(j.pid) + ") never reached a "
                         "terminal state");
  }

  // 2. Residency sweep: each pid may be resident on at most one running
  // host, and a resident copy must carry its home's current incarnation
  // epoch (an older epoch is a pre-restart ghost that should have died).
  std::map<proc::Pid, std::vector<std::pair<HostId, std::int64_t>>> where;
  for (std::size_t i = 0; i < cluster.num_hosts(); ++i) {
    const auto h = static_cast<HostId>(i);
    kern::Host& host = cluster.host(h);
    if (!host.up()) continue;  // the kernel's own state, not a peer query
    for (const auto& pcb : host.procs().local_processes())
      where[pcb->pid].push_back({h, pcb->incarnation});
  }
  for (const auto& [pid, sites] : where) {
    if (sites.size() > 1) {
      ++r.duplicated;
      std::string msg = "pid " + std::to_string(pid) + " resident on " +
                        std::to_string(sites.size()) + " hosts:";
      for (const auto& [h, inc] : sites)
        msg += " host" + std::to_string(h) + "@inc" + std::to_string(inc);
      r.problems.push_back(std::move(msg));
    }
    for (const auto& [h, inc] : sites) {
      kern::Host& current = cluster.host(h);
      // Ask the home machine (if it is this host or still running) what
      // incarnation epoch is authoritative for the pid.
      const HostId home = [&] {
        const auto pcb = current.procs().find(pid);
        return pcb ? pcb->home : sim::kInvalidHost;
      }();
      if (home == sim::kInvalidHost || !cluster.host(home).up()) continue;
      const auto authoritative =
          cluster.host(home).procs().home_record_incarnation(pid);
      if (authoritative >= 0 && inc < authoritative) {
        ++r.duplicated;
        r.problems.push_back(
            "pid " + std::to_string(pid) + " on host" + std::to_string(h) +
            " carries stale incarnation " + std::to_string(inc) +
            " (home says " + std::to_string(authoritative) + ")");
      }
    }
  }

  return r;
}

}  // namespace sprite::wl
