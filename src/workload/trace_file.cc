#include "workload/trace_file.h"

#include <fstream>

#include "util/assert.h"
#include "util/codec.h"

namespace sprite::wl {

namespace {

constexpr std::uint8_t kFooterSentinel = 0xFF;
constexpr std::size_t kHeaderBytes = 16;  // magic u32, fmt u16, rsvd u16, seed
constexpr std::size_t kFooterBytes = 17;  // sentinel u8, count u64, sum u64

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

const char* ev_kind_name(EvKind k) {
  switch (k) {
    case EvKind::kSessionBegin: return "session-begin";
    case EvKind::kKeystroke: return "keystroke";
    case EvKind::kSessionEnd: return "session-end";
    case EvKind::kBatchSubmit: return "batch-submit";
    case EvKind::kStorm: return "storm";
  }
  return "?";
}

TraceWriter::TraceWriter(std::uint64_t seed) {
  put_u32(buf_, kTraceMagic);
  put_u16(buf_, kTraceFormat);
  put_u16(buf_, 0);  // reserved
  put_u64(buf_, seed);
}

void TraceWriter::add(const WorkloadEvent& ev) {
  SPRITE_CHECK_MSG(!finished_, "TraceWriter::add after finish");
  SPRITE_CHECK_MSG(ev.at >= last_, "workload events must be time-ordered");
  SPRITE_CHECK_MSG(ev.host >= 0, "workload events need a real host");
  util::Encoder e;
  e.put_varint(static_cast<std::uint64_t>((ev.at - last_).us()));
  e.put_u8(static_cast<std::uint8_t>(ev.kind));
  e.put_varint(static_cast<std::uint64_t>(ev.host));
  e.put_zigzag(ev.a0);
  e.put_zigzag(ev.a1);
  const auto& b = e.bytes();
  buf_.insert(buf_.end(), b.begin(), b.end());
  last_ = ev.at;
  ++count_;
}

std::vector<std::uint8_t> TraceWriter::finish() {
  SPRITE_CHECK_MSG(!finished_, "TraceWriter::finish called twice");
  finished_ = true;
  const std::uint64_t sum = fnv1a(buf_.data(), buf_.size());
  buf_.push_back(kFooterSentinel);
  put_u64(buf_, static_cast<std::uint64_t>(count_));
  put_u64(buf_, sum);
  return std::move(buf_);
}

std::vector<std::uint8_t> encode_trace(std::uint64_t seed,
                                       const std::vector<WorkloadEvent>& evs) {
  TraceWriter w(seed);
  for (const auto& e : evs) w.add(e);
  return w.finish();
}

util::Result<ParsedTrace> decode_trace(
    const std::vector<std::uint8_t>& bytes) {
  using util::Err;
  if (bytes.size() < kHeaderBytes + kFooterBytes)
    return {Err::kInval, "trace too short for header + footer"};

  // The footer is fixed-width at the very end, so its position — and with it
  // the checksum range — is unambiguous regardless of event payloads.
  const std::size_t body_end = bytes.size() - kFooterBytes;
  if (bytes[body_end] != kFooterSentinel)
    return {Err::kInval, "trace footer sentinel missing (truncated?)"};
  const std::uint64_t want_count = get_u64(bytes.data() + body_end + 1);
  const std::uint64_t want_sum = get_u64(bytes.data() + body_end + 9);
  if (fnv1a(bytes.data(), body_end) != want_sum)
    return {Err::kInval, "trace checksum mismatch"};

  const std::vector<std::uint8_t> body(bytes.begin(),
                                       bytes.begin() + static_cast<std::ptrdiff_t>(body_end));
  util::Decoder d(body);
  const auto magic = static_cast<std::uint32_t>(d.u8()) |
                     static_cast<std::uint32_t>(d.u8()) << 8 |
                     static_cast<std::uint32_t>(d.u8()) << 16 |
                     static_cast<std::uint32_t>(d.u8()) << 24;
  if (magic != kTraceMagic) return {Err::kInval, "bad trace magic"};
  const auto format = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(d.u8()) |
      static_cast<std::uint16_t>(d.u8()) << 8);
  if (format != kTraceFormat) return {Err::kInval, "unsupported trace format"};
  d.u8();  // reserved
  d.u8();

  ParsedTrace out;
  out.seed = d.u64();
  if (!d.ok()) return {Err::kInval, "trace truncated in header"};

  sim::Time t;
  while (!d.at_end()) {
    const std::uint64_t delta = d.varint();
    const std::uint8_t kind = d.u8();
    if (!d.ok()) return {Err::kInval, "trace truncated mid-event"};
    if (kind >= kNumEvKinds) return {Err::kInval, "unknown event kind"};
    t += sim::Time::usec(static_cast<std::int64_t>(delta));
    WorkloadEvent ev;
    ev.at = t;
    ev.kind = static_cast<EvKind>(kind);
    ev.host = static_cast<sim::HostId>(d.varint());
    ev.a0 = d.zigzag();
    ev.a1 = d.zigzag();
    if (!d.ok()) return {Err::kInval, "trace truncated mid-event"};
    out.events.push_back(ev);
  }
  if (out.events.size() != want_count)
    return {Err::kInval, "trace event count mismatch"};
  return out;
}

util::Status write_trace_file(const std::string& path,
                              const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return util::Status(util::Err::kNoEnt, "cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  f.close();
  if (!f) return util::Status(util::Err::kNoSpace, "short write to " + path);
  return util::Status::ok();
}

util::Result<ParsedTrace> read_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {util::Err::kNoEnt, "cannot open " + path};
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  return decode_trace(bytes);
}

}  // namespace sprite::wl
