// Long-horizon soak harness: the workload engine layered over faults,
// partitions, and autocheckpoint for week-scale simulated runs.
//
// The harness assembles a full cluster (file server + workstations, central
// load-sharing facility with owner-return eviction armed), drives it with a
// generated or replayed multi-user workload, injects a rotating schedule of
// workstation crashes and network partitions, keeps autocheckpoint running
// so crashed work restarts instead of dying, and — the paper's headline
// numbers — reports how much CPU migration recovered from idle
// workstations, how fast owners got their machines back, and how much
// foreign work was resident over the horizon. Every run ends with the
// incarnation audit (audit.h): a soak that loses or duplicates a single
// process incarnation fails.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "sim/fault.h"
#include "workload/audit.h"
#include "workload/engine.h"
#include "workload/session.h"

namespace sprite::wl {

struct SoakOptions {
  int workstations = 24;
  std::uint64_t seed = 1;
  SessionSpec sessions;        // users, horizon, rates
  Engine::Options engine;

  // Fault schedule: one workstation crash per crash_period (rotating, never
  // the file server — migd lives there), rebooting reboot_after later; one
  // partition per partition_period isolating a rotating trio of
  // workstations, healing after partition_heal.
  bool faults = true;
  sim::Time crash_period = sim::Time::hours(6);
  sim::Time reboot_after = sim::Time::minutes(2);
  bool partitions = true;
  sim::Time partition_period = sim::Time::hours(12);
  sim::Time partition_heal = sim::Time::minutes(1);

  // Autocheckpoint: the interval must sit inside the long-batch lifetime
  // range (SessionSpec::long_batch_min/max) or no job ever lives long
  // enough to be captured.
  bool autocheckpoint = true;
  sim::Time ckpt_interval = sim::Time::minutes(3);
  std::int64_t ckpt_dirty_threshold = 256;

  // Foreign-CPU / residency sampling cadence.
  sim::Time sample_period = sim::Time::sec(10);
};

struct SoakReport {
  Engine::Summary workload;
  AuditResult audit;

  // CPU the cluster delivered to migrated-in (foreign) processes vs all
  // user CPU: the utilization migration recovered from idle workstations.
  double foreign_cpu_s = 0.0;
  double total_user_cpu_s = 0.0;
  double utilization_recovered = 0.0;  // foreign / total, 0 when no CPU

  // Owner-return eviction latency percentiles (ms), merged across hosts.
  std::int64_t evictions = 0;
  double evict_p50_ms = 0.0;
  double evict_p90_ms = 0.0;
  double evict_p99_ms = 0.0;

  // Mean number of foreign processes resident cluster-wide per sample.
  double avg_foreign_resident = 0.0;

  std::int64_t crashes = 0;
  std::int64_t reboots = 0;
  std::int64_t links_cut = 0;
  std::int64_t checkpoints = 0;
  std::int64_t restarts = 0;
  std::int64_t evicted_processes = 0;

  std::string to_string() const;
};

class SoakHarness {
 public:
  explicit SoakHarness(SoakOptions opts);
  ~SoakHarness();

  kern::Cluster& cluster() { return *cluster_; }
  Engine& engine() { return *engine_; }

  // Generates the workload from opts.seed and runs to drained. Call run()
  // or run_replay() exactly once per harness.
  SoakReport run();
  // Replays a previously recorded trace instead of generating.
  SoakReport run_replay(ParsedTrace trace);

  // After a run with engine.record: the trace bytes of this run.
  std::vector<std::uint8_t> take_recorded_trace() {
    return engine_->take_recorded_trace();
  }

 private:
  void schedule_faults();
  void sample();
  SoakReport finish();
  // Percentile (0 < q < 1) over the merged per-host eviction histograms,
  // with linear interpolation inside the winning bucket.
  double eviction_percentile(double q) const;

  SoakOptions opts_;
  std::unique_ptr<kern::Cluster> cluster_;
  std::unique_ptr<ls::Facility> facility_;
  std::unique_ptr<sim::FaultPlan> faults_;
  std::unique_ptr<Engine> engine_;

  std::int64_t samples_ = 0;
  std::int64_t foreign_resident_sum_ = 0;

  trace::Gauge* g_foreign_resident_;
  trace::Gauge* g_util_recovered_;
};

}  // namespace sprite::wl
