// UserActivityModel: push-style interactive user behaviour driven directly
// by the simulator (the original E7 idle-fraction generator, now built on
// the shared DiurnalProfile so there is exactly one session vocabulary).
//
// Prefer the pull-based Generator (session.h) + Engine (engine.h) for new
// experiments — they add batch/storm events and record/replay. This model
// remains for the availability experiments that only need keystrokes and
// presence tracking per host.
#pragma once

#include <map>

#include "sim/ids.h"
#include "sim/time.h"
#include "util/rng.h"
#include "workload/session.h"

namespace sprite::kern {
class Cluster;
}

namespace sprite::wl {

class UserActivityModel {
 public:
  struct Profile {
    DiurnalProfile diurnal = DiurnalProfile::office();
    sim::Time mean_session = sim::Time::minutes(25);
    sim::Time mean_absence = sim::Time::minutes(45);
    sim::Time mean_keystroke_gap = sim::Time::sec(4);

    // Office-hours default, calibrated for E7's idle fractions (65-70 % of
    // hosts idle during the day, ~80 % at night).
    static Profile office() { return {}; }
  };

  UserActivityModel(kern::Cluster& cluster, Profile profile);

  // Starts activity on every workstation (staggered deterministically).
  void start();

  // Has this host's user been seen at all (distinguishes night absences)?
  bool user_present(sim::HostId h) const;

 private:
  void cycle(sim::HostId h);
  void keystrokes(sim::HostId h, sim::Time session_end);

  kern::Cluster& cluster_;
  Profile profile_;
  util::Rng rng_;
  std::map<sim::HostId, bool> present_;
};

}  // namespace sprite::wl
