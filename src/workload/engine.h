// Engine: applies a workload-event stream to a live cluster.
//
// The engine is the deterministic bridge between the stochastic session
// model (session.h) and the kernel under test: it pumps events one at a
// time through the simulator, turns keystrokes into Host::note_user_input
// (arming owner-return eviction), batch submissions into /bin/job processes
// placed through the load-sharing facility, and storm events into real
// apps::Pmake builds. Because every decision the engine makes is a function
// of the event stream and the cluster state, feeding it a recorded trace
// reproduces the original run — and re-recording the replay yields the
// byte-identical trace (the soak harness asserts exactly that).
//
// Crash discipline: the engine learns host liveness ONLY through the
// cluster's crash/reboot observers (never by querying simulator ground
// truth), mirroring how a real login manager would observe its machines.
// Jobs homed on a crashed host are marked terminal immediately: the kernel
// dropped their exit observers with the dead home record, so nobody else
// will ever account for them.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "proc/pcb.h"
#include "workload/session.h"
#include "workload/trace_file.h"

namespace sprite::kern {
class Cluster;
}
namespace sprite::ls {
class Facility;
}
namespace sprite::apps {
class Pmake;
}
namespace sprite::trace {
class Counter;
class Gauge;
}

namespace sprite::wl {

class Engine {
 public:
  struct Options {
    // Place batch jobs on idle hosts via the facility when the submitting
    // host is busy (the thesis's exec-time placement policy).
    bool place_batch = true;
    // Batch jobs running concurrently per host before new ones queue.
    int max_running_per_host = 4;
    // Queued jobs per host before further submissions are shed.
    int max_queue_per_host = 64;
    // Apply kStorm events (requires a facility for remote compiles).
    bool storms = true;
    // Record every applied event into a trace (take_recorded_trace()).
    bool record = false;
  };

  // One batch job's life, kept for the end-of-run incarnation audit. Every
  // record must reach a terminal state by the end of a drained run.
  struct JobRecord {
    enum class State {
      kQueued,    // waiting for a per-host slot
      kPlacing,   // asking the facility / spawning
      kRunning,   // pid live, exit observer armed
      kFinished,  // exited normally (includes checkpoint-restarted runs)
      kCrashed,   // died with a host crash and was never restarted
      kDropped,   // shed before ever becoming a process
    };
    std::int64_t id = 0;
    sim::HostId home = sim::kInvalidHost;
    sim::HostId placed = sim::kInvalidHost;  // facility grant, if any
    proc::Pid pid = proc::kInvalidPid;
    std::int64_t cpu_us = 0;
    State state = State::kQueued;
    int exit_status = 0;

    bool terminal() const {
      return state == State::kFinished || state == State::kCrashed ||
             state == State::kDropped;
    }
  };

  // Live snapshot for the starvation diagnosis dump and the soak report.
  struct Summary {
    int active_sessions = 0;
    int jobs_running = 0;
    int jobs_queued = 0;
    int storms_active = 0;
    std::int64_t events_applied = 0;
    std::int64_t events_total = -1;  // -1 while the stream is still open
    std::int64_t sessions_begun = 0;
    std::int64_t jobs_submitted = 0;
    std::int64_t jobs_finished = 0;
    std::int64_t jobs_crashed = 0;
    std::int64_t jobs_dropped = 0;
    std::int64_t storms_finished = 0;
    std::int64_t storms_crashed = 0;
  };

  // `facility` may be null (then everything runs at home and storms are
  // skipped). The engine registers crash/reboot observers on construction
  // and must outlive the run.
  Engine(kern::Cluster& cluster, ls::Facility* facility, Options opts);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Starts pumping a generated stream / a previously recorded trace. Call
  // exactly one of these, once, before running the simulator.
  void start(const SessionSpec& spec, std::uint64_t seed);
  void start_replay(ParsedTrace trace);

  // True once every event has been applied and every job and storm has
  // reached a terminal state — the soak's run_until_done predicate.
  bool drained() const;

  // The finished trace bytes (opts.record only; call after the run).
  std::vector<std::uint8_t> take_recorded_trace();

  Summary summary() const;
  const std::vector<JobRecord>& jobs() const { return jobs_; }

  // Multi-line state dump for the cluster's starvation diagnosis: active
  // sessions, queued/running jobs (with pids and states), storm backlog.
  std::string diagnosis() const;

 private:
  struct PerHost {
    bool up = true;
    std::int64_t epoch = 0;         // bumped on every crash
    int running = 0;                // batch jobs in kPlacing/kRunning
    std::deque<std::int64_t> queue; // job ids in kQueued
  };

  struct Storm {
    std::unique_ptr<apps::Pmake> pmake;  // kept alive for the whole run:
                                         // in-flight closures reference it
    sim::HostId controller = sim::kInvalidHost;
    bool done = false;
  };

  void pump();
  void apply(const WorkloadEvent& ev);
  void submit_batch(sim::HostId h, std::int64_t cpu_us);
  void launch_job(std::int64_t id);
  void spawn_job(std::int64_t id, sim::HostId target);
  void job_terminal(std::int64_t id, JobRecord::State state, int status);
  void drain_queue(sim::HostId h);
  void start_storm(sim::HostId h, std::int64_t files, std::int64_t cpu_us);
  void on_crash(sim::HostId h);
  void install_job_program();

  kern::Cluster& cluster_;
  ls::Facility* facility_;
  Options opts_;

  std::unique_ptr<Generator> gen_;
  std::vector<WorkloadEvent> replay_;
  std::size_t replay_next_ = 0;
  bool replaying_ = false;
  bool source_done_ = false;
  bool started_ = false;
  std::unique_ptr<TraceWriter> writer_;
  std::vector<std::uint8_t> recorded_;

  std::map<sim::HostId, PerHost> hosts_;
  std::vector<JobRecord> jobs_;
  std::vector<std::unique_ptr<Storm>> storms_;
  int active_sessions_ = 0;
  int storms_active_ = 0;
  int total_running_ = 0;
  int total_queued_ = 0;
  std::int64_t live_jobs_ = 0;  // records not yet terminal
  std::int64_t events_applied_ = 0;
  int diagnosis_hook_ = 0;

  // workload.* metrics (trace/trace.h).
  trace::Counter* c_applied_;
  trace::Counter* c_skipped_;
  trace::Counter* c_session_begun_;
  trace::Counter* c_session_ended_;
  trace::Counter* c_keystrokes_;
  trace::Counter* c_submitted_;
  trace::Counter* c_launched_;
  trace::Counter* c_placed_;
  trace::Counter* c_finished_;
  trace::Counter* c_crashed_;
  trace::Counter* c_dropped_;
  trace::Counter* c_queued_;
  trace::Counter* c_storm_begun_;
  trace::Counter* c_storm_finished_;
  trace::Counter* c_storm_crashed_;
  trace::Gauge* g_sessions_;
  trace::Gauge* g_running_;
  trace::Gauge* g_backlog_;
};

}  // namespace sprite::wl
