// Compact binary workload traces: record <-> replay, byte-identical.
//
// Layout (little-endian throughout, built on util/codec):
//
//   header   magic "SPWT", format u16, reserved u16, seed u64
//   events   per event: varint delta-us from the previous event,
//            u8 kind, varint host, zigzag a0, zigzag a1
//   footer   fixed-width trailer: u8 0xFF sentinel, u64 event count,
//            u64 FNV-1a checksum of every byte before the sentinel
//
// Timestamps are monotone by construction (the generator and the engine both
// emit in time order), so delta encoding plus varints makes a keystroke cost
// two or three bytes. The footer makes truncation and bit-rot detectable:
// decode rejects a trace whose byte stream underruns, whose trailing count
// disagrees with the events decoded, whose checksum mismatches, or which
// carries trailing garbage. A rejected trace yields no events at all —
// replaying half a workload would silently skew every soak statistic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/event.h"

namespace sprite::wl {

inline constexpr std::uint32_t kTraceMagic = 0x54575053;  // "SPWT"
inline constexpr std::uint16_t kTraceFormat = 1;

// Streaming encoder. add() must be called in non-decreasing time order.
class TraceWriter {
 public:
  explicit TraceWriter(std::uint64_t seed);

  void add(const WorkloadEvent& e);
  std::int64_t count() const { return count_; }

  // Appends the footer and returns the finished byte stream. The writer is
  // spent afterwards.
  std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> buf_;
  sim::Time last_;
  std::int64_t count_ = 0;
  bool finished_ = false;
};

struct ParsedTrace {
  std::uint64_t seed = 0;
  std::vector<WorkloadEvent> events;
};

// Encodes a whole event list (record helper for tests and the engine).
std::vector<std::uint8_t> encode_trace(std::uint64_t seed,
                                       const std::vector<WorkloadEvent>& evs);

// Full validation: header, per-event decode, footer count, checksum, no
// trailing bytes. Any violation rejects the whole trace.
util::Result<ParsedTrace> decode_trace(const std::vector<std::uint8_t>& bytes);

// File round-trip for benches (`bench_soak --record/--replay`).
util::Status write_trace_file(const std::string& path,
                              const std::vector<std::uint8_t>& bytes);
util::Result<ParsedTrace> read_trace_file(const std::string& path);

}  // namespace sprite::wl
