#include "workload/activity.h"

#include "kern/cluster.h"

namespace sprite::wl {

using sim::HostId;
using sim::Time;

UserActivityModel::UserActivityModel(kern::Cluster& cluster, Profile profile)
    : cluster_(cluster),
      profile_(profile),
      rng_(cluster.sim().fork_rng()) {}

void UserActivityModel::start() {
  for (HostId w : cluster_.workstations()) {
    present_[w] = false;
    const Time stagger = Time::sec(rng_.uniform(0.0, 60.0));
    cluster_.sim().after(stagger, [this, w] { cycle(w); });
  }
}

bool UserActivityModel::user_present(HostId h) const {
  auto it = present_.find(h);
  return it != present_.end() && it->second;
}

void UserActivityModel::cycle(HostId h) {
  if (rng_.bernoulli(profile_.diurnal.at(cluster_.sim().now()))) {
    present_[h] = true;
    cluster_.host(h).note_user_input();
    const Time session =
        Time::sec(rng_.exponential(profile_.mean_session.s()));
    keystrokes(h, cluster_.sim().now() + session);
  } else {
    present_[h] = false;
    const Time absence =
        Time::sec(rng_.exponential(profile_.mean_absence.s()));
    cluster_.sim().after(absence, [this, h] { cycle(h); });
  }
}

void UserActivityModel::keystrokes(HostId h, Time session_end) {
  const Time gap =
      Time::sec(rng_.exponential(profile_.mean_keystroke_gap.s()));
  const Time next = cluster_.sim().now() + gap;
  if (next >= session_end) {
    // Session over; the user walks away.
    cluster_.sim().at(session_end, [this, h] {
      present_[h] = false;
      cycle(h);
    });
    return;
  }
  cluster_.sim().at(next, [this, h, session_end] {
    cluster_.host(h).note_user_input();
    keystrokes(h, session_end);
  });
}

}  // namespace sprite::wl
