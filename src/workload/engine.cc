#include "workload/engine.h"

#include <algorithm>
#include <string>

#include "apps/pmake.h"
#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "proc/script.h"
#include "proc/table.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::wl {

using proc::Pid;
using sim::HostId;
using sim::Time;

Engine::Engine(kern::Cluster& cluster, ls::Facility* facility, Options opts)
    : cluster_(cluster), facility_(facility), opts_(opts) {
  trace::Registry& tr = cluster_.sim().trace();
  c_applied_ = &tr.counter("workload.event.applied");
  c_skipped_ = &tr.counter("workload.event.skipped");
  c_session_begun_ = &tr.counter("workload.session.begun");
  c_session_ended_ = &tr.counter("workload.session.ended");
  c_keystrokes_ = &tr.counter("workload.keystroke.applied");
  c_submitted_ = &tr.counter("workload.job.submitted");
  c_launched_ = &tr.counter("workload.job.launched");
  c_placed_ = &tr.counter("workload.job.placed");
  c_finished_ = &tr.counter("workload.job.finished");
  c_crashed_ = &tr.counter("workload.job.crashed");
  c_dropped_ = &tr.counter("workload.job.dropped");
  c_queued_ = &tr.counter("workload.job.queued");
  c_storm_begun_ = &tr.counter("workload.storm.begun");
  c_storm_finished_ = &tr.counter("workload.storm.finished");
  c_storm_crashed_ = &tr.counter("workload.storm.crashed");
  g_sessions_ = &tr.gauge("workload.session.active");
  g_running_ = &tr.gauge("workload.job.running");
  g_backlog_ = &tr.gauge("workload.job.backlog");

  for (std::size_t h = 0; h < cluster_.num_hosts(); ++h)
    hosts_[static_cast<HostId>(h)] = PerHost{};
  cluster_.add_crash_observer([this](HostId h) { on_crash(h); });
  cluster_.add_reboot_observer([this](HostId h) { hosts_[h].up = true; });
  diagnosis_hook_ = cluster_.add_diagnosis_hook([this] { return diagnosis(); });
}

Engine::~Engine() { cluster_.remove_diagnosis_hook(diagnosis_hook_); }

std::string Engine::diagnosis() const {
  std::string out = "workload engine: " + std::to_string(active_sessions_) +
                    " active sessions, " + std::to_string(total_running_) +
                    " jobs running, " + std::to_string(total_queued_) +
                    " queued, " + std::to_string(storms_active_) +
                    " storms active, " + std::to_string(events_applied_) +
                    " events applied" + (source_done_ ? " (stream done)" : "");
  int listed = 0;
  for (const auto& j : jobs_) {
    if (j.terminal() || j.state == JobRecord::State::kQueued) continue;
    if (++listed > 20) {
      out += "\n  ... more jobs in flight elided";
      break;
    }
    out += "\n  job " + std::to_string(j.id) + ": home host" +
           std::to_string(j.home) + " pid " + std::to_string(j.pid) +
           (j.state == JobRecord::State::kPlacing ? " placing" : " running") +
           (j.placed != sim::kInvalidHost
                ? " placed@host" + std::to_string(j.placed)
                : "");
  }
  for (const auto& s : storms_) {
    if (s->done) continue;
    out += "\n  storm on host" + std::to_string(s->controller) + " unfinished";
  }
  return out;
}

void Engine::install_job_program() {
  if (facility_ != nullptr) apps::install_rexec(cluster_);
  if (cluster_.find_program("/bin/job") != nullptr) return;
  proc::ProgramImage job;
  job.code_pages = 8;
  job.heap_pages = 16;
  job.stack_pages = 2;
  job.factory = [](const std::vector<std::string>& args) {
    SPRITE_CHECK(!args.empty());
    const Time cpu = Time::usec(std::stoll(args[0]));
    proc::ScriptBuilder b;
    // Compute in bounded chunks, dirtying heap pages between them: real
    // batch work touches memory as it runs, and the dirty pages are what
    // makes a long-lived job eligible for autocheckpoint.
    const Time chunk = Time::sec(30);
    Time left = cpu;
    do {
      b.act(proc::Touch{vm::Segment::kHeap, 0, 12, true});
      const Time step = left < chunk ? left : chunk;
      b.compute(step);
      left = left - step;
    } while (left > Time::zero());
    b.exit(0);
    return std::unique_ptr<proc::Program>(b.build());
  };
  SPRITE_CHECK(cluster_.install_program("/bin/job", job).is_ok());
}

void Engine::start(const SessionSpec& spec, std::uint64_t seed) {
  SPRITE_CHECK_MSG(!started_, "Engine::start called twice");
  started_ = true;
  install_job_program();
  gen_ = std::make_unique<Generator>(spec, cluster_.workstations(), seed);
  if (opts_.record) writer_ = std::make_unique<TraceWriter>(seed);
  pump();
}

void Engine::start_replay(ParsedTrace trace) {
  SPRITE_CHECK_MSG(!started_, "Engine::start called twice");
  started_ = true;
  install_job_program();
  replaying_ = true;
  replay_ = std::move(trace.events);
  if (opts_.record) writer_ = std::make_unique<TraceWriter>(trace.seed);
  pump();
}

void Engine::pump() {
  WorkloadEvent ev;
  bool have = false;
  if (replaying_) {
    if (replay_next_ < replay_.size()) {
      ev = replay_[replay_next_++];
      have = true;
    }
  } else {
    have = gen_->next(&ev);
  }
  if (!have) {
    source_done_ = true;
    if (writer_) recorded_ = writer_->finish();
    return;
  }
  if (writer_) writer_->add(ev);
  cluster_.sim().at(ev.at, [this, ev] {
    apply(ev);
    pump();
  });
}

void Engine::apply(const WorkloadEvent& ev) {
  ++events_applied_;
  c_applied_->inc();
  PerHost& ph = hosts_[ev.host];
  switch (ev.kind) {
    case EvKind::kSessionBegin:
      ++active_sessions_;
      g_sessions_->set(active_sessions_);
      c_session_begun_->inc();
      cluster_.sim().trace().flight_note("wl", "session begin", ev.host, -1,
                                         ev.a0);
      if (ph.up) cluster_.host(ev.host).note_user_input();
      break;
    case EvKind::kKeystroke:
      if (ph.up) {
        cluster_.host(ev.host).note_user_input();
        c_keystrokes_->inc();
      } else {
        c_skipped_->inc();
      }
      break;
    case EvKind::kSessionEnd:
      --active_sessions_;
      g_sessions_->set(active_sessions_);
      c_session_ended_->inc();
      cluster_.sim().trace().flight_note("wl", "session end", ev.host, -1,
                                         ev.a0);
      break;
    case EvKind::kBatchSubmit:
      submit_batch(ev.host, ev.a0);
      break;
    case EvKind::kStorm:
      if (opts_.storms && facility_ != nullptr && ph.up) {
        start_storm(ev.host, ev.a0, ev.a1);
      } else {
        c_skipped_->inc();
      }
      break;
  }
}

void Engine::submit_batch(HostId h, std::int64_t cpu_us) {
  c_submitted_->inc();
  const auto id = static_cast<std::int64_t>(jobs_.size());
  JobRecord j;
  j.id = id;
  j.home = h;
  j.cpu_us = std::max<std::int64_t>(1, cpu_us);
  jobs_.push_back(j);
  ++live_jobs_;

  PerHost& ph = hosts_[h];
  if (!ph.up) {
    job_terminal(id, JobRecord::State::kDropped, -1);
    return;
  }
  if (ph.running >= opts_.max_running_per_host) {
    if (static_cast<int>(ph.queue.size()) >= opts_.max_queue_per_host) {
      job_terminal(id, JobRecord::State::kDropped, -1);
      return;
    }
    ph.queue.push_back(id);
    ++total_queued_;
    c_queued_->inc();
    g_backlog_->set(total_queued_);
    return;
  }
  launch_job(id);
}

void Engine::launch_job(std::int64_t id) {
  JobRecord& j = jobs_[static_cast<std::size_t>(id)];
  const HostId h = j.home;
  PerHost& ph = hosts_[h];
  j.state = JobRecord::State::kPlacing;
  ++ph.running;
  ++total_running_;
  g_running_->set(total_running_);

  const bool try_place = opts_.place_batch && facility_ != nullptr &&
                         cluster_.host(h).cpu().runnable_users() >= 1;
  if (!try_place) {
    spawn_job(id, sim::kInvalidHost);
    return;
  }
  const std::int64_t epoch = ph.epoch;
  facility_->selector(h).request_hosts(
      1, [this, id, h, epoch](std::vector<HostId> hosts) {
        const JobRecord& j = jobs_[static_cast<std::size_t>(id)];
        if (j.state != JobRecord::State::kPlacing ||
            hosts_[h].epoch != epoch) {
          // The home crashed while we were asking; the grant (if any) died
          // with the selector's soft state.
          return;
        }
        spawn_job(id, hosts.empty() ? sim::kInvalidHost : hosts[0]);
      });
}

void Engine::spawn_job(std::int64_t id, HostId target) {
  JobRecord& j = jobs_[static_cast<std::size_t>(id)];
  const HostId h = j.home;
  const std::int64_t epoch = hosts_[h].epoch;
  j.placed = target;

  std::string exe;
  std::vector<std::string> args;
  if (target == sim::kInvalidHost) {
    exe = "/bin/job";
    args = {std::to_string(j.cpu_us)};
  } else {
    exe = "/bin/rexec";
    args = {std::to_string(target), "/bin/job", std::to_string(j.cpu_us)};
    c_placed_->inc();
  }

  cluster_.host(h).procs().spawn(
      exe, std::move(args), [this, id, h, epoch](util::Result<Pid> r) {
        JobRecord& j = jobs_[static_cast<std::size_t>(id)];
        if (j.state != JobRecord::State::kPlacing ||
            hosts_[h].epoch != epoch) {
          return;
        }
        if (!r.is_ok()) {
          if (j.placed != sim::kInvalidHost && facility_ != nullptr)
            facility_->selector(h).release_host(j.placed);
          job_terminal(id, JobRecord::State::kDropped, -1);
          return;
        }
        j.pid = *r;
        j.state = JobRecord::State::kRunning;
        c_launched_->inc();
        cluster_.host(h).procs().notify_on_exit(
            *r, [this, id, h, epoch](int status) {
              const JobRecord& j = jobs_[static_cast<std::size_t>(id)];
              if (j.state != JobRecord::State::kRunning ||
                  hosts_[h].epoch != epoch) {
                return;
              }
              if (j.placed != sim::kInvalidHost && facility_ != nullptr)
                facility_->selector(h).release_host(j.placed);
              job_terminal(id,
                           status == proc::kHostCrashExitStatus
                               ? JobRecord::State::kCrashed
                               : JobRecord::State::kFinished,
                           status);
            });
      });
}

void Engine::job_terminal(std::int64_t id, JobRecord::State state,
                          int status) {
  JobRecord& j = jobs_[static_cast<std::size_t>(id)];
  SPRITE_CHECK(!j.terminal());
  const JobRecord::State old = j.state;
  j.state = state;
  j.exit_status = status;
  --live_jobs_;
  switch (state) {
    case JobRecord::State::kFinished: c_finished_->inc(); break;
    case JobRecord::State::kCrashed: c_crashed_->inc(); break;
    case JobRecord::State::kDropped: c_dropped_->inc(); break;
    default: SPRITE_CHECK_MSG(false, "job_terminal: non-terminal state");
  }
  if (old == JobRecord::State::kPlacing || old == JobRecord::State::kRunning) {
    PerHost& ph = hosts_[j.home];
    --ph.running;
    --total_running_;
    g_running_->set(total_running_);
    drain_queue(j.home);
  }
}

void Engine::drain_queue(HostId h) {
  PerHost& ph = hosts_[h];
  if (!ph.up) return;
  while (ph.running < opts_.max_running_per_host && !ph.queue.empty()) {
    const std::int64_t id = ph.queue.front();
    ph.queue.pop_front();
    --total_queued_;
    if (jobs_[static_cast<std::size_t>(id)].state != JobRecord::State::kQueued)
      continue;
    launch_job(id);
  }
  g_backlog_->set(total_queued_);
}

void Engine::start_storm(HostId h, std::int64_t files, std::int64_t cpu_us) {
  const auto k = storms_.size();
  c_storm_begun_->inc();
  ++storms_active_;
  cluster_.sim().trace().flight_note("wl", "storm begin", h, -1,
                                     static_cast<std::int64_t>(files));

  // Unique target names per storm so concurrent builds never collide; the
  // shared headers are the same files every storm opens (server lookups are
  // the contended resource, as in E3).
  const std::string base = "/src/w" + std::to_string(k);
  std::vector<std::string> headers;
  for (int i = 0; i < 3; ++i)
    headers.push_back("/sprite/lib/include/sys/h" + std::to_string(i) + ".h");
  std::vector<apps::Target> targets;
  std::vector<std::string> objects;
  for (std::int64_t i = 0; i < std::max<std::int64_t>(1, files); ++i) {
    apps::Target t;
    t.name = base + "_f" + std::to_string(i) + ".o";
    t.deps = {base + "_f" + std::to_string(i) + ".c"};
    t.includes = headers;
    t.cpu = Time::usec(cpu_us);
    objects.push_back(t.name);
    targets.push_back(std::move(t));
  }
  apps::Target link;
  link.name = base + "_prog";
  link.deps = std::move(objects);
  link.cpu = Time::usec(cpu_us / 2);
  link.write_bytes = 256 * 1024;
  targets.push_back(std::move(link));

  apps::Pmake::Options po;
  po.controller = h;
  po.max_jobs = 4;
  po.facility = facility_;
  auto storm = std::make_unique<Storm>();
  storm->controller = h;
  storm->pmake =
      std::make_unique<apps::Pmake>(cluster_, po, std::move(targets));
  storm->pmake->prepare();
  Storm* s = storm.get();
  storms_.push_back(std::move(storm));
  s->pmake->run([this, s, h](apps::Pmake::Result) {
    if (s->done) return;  // already written off by a controller crash
    s->done = true;
    --storms_active_;
    c_storm_finished_->inc();
    cluster_.sim().trace().flight_note("wl", "storm done", h);
  });
}

void Engine::on_crash(HostId h) {
  PerHost& ph = hosts_[h];
  ph.up = false;
  ++ph.epoch;

  // Shed the queue first so job_terminal's drain cannot relaunch anything
  // (drain_queue is a no-op on a down host anyway — belt and braces).
  std::deque<std::int64_t> queued;
  queued.swap(ph.queue);
  total_queued_ -= static_cast<int>(queued.size());
  g_backlog_->set(total_queued_);
  for (std::int64_t id : queued)
    job_terminal(id, JobRecord::State::kDropped, -1);

  // In-flight jobs homed here are gone: the kernel dropped their home
  // records and exit observers with the crash, so this is the only place
  // left that can account for them.
  for (auto& j : jobs_) {
    if (j.home != h || j.terminal() || j.state == JobRecord::State::kQueued)
      continue;
    job_terminal(j.id, JobRecord::State::kCrashed,
                 proc::kHostCrashExitStatus);
  }
  SPRITE_CHECK(ph.running == 0);

  // Storms whose controller died can never report completion: their
  // notify_on_exit observers died with the controller's process table.
  for (auto& s : storms_) {
    if (s->controller != h || s->done) continue;
    s->done = true;
    --storms_active_;
    c_storm_crashed_->inc();
  }
  cluster_.sim().trace().flight_note("wl", "host lost", h);
}

bool Engine::drained() const {
  return started_ && source_done_ && storms_active_ == 0 && live_jobs_ == 0;
}

std::vector<std::uint8_t> Engine::take_recorded_trace() {
  return std::move(recorded_);
}

Engine::Summary Engine::summary() const {
  Summary s;
  s.active_sessions = active_sessions_;
  s.jobs_running = total_running_;
  s.jobs_queued = total_queued_;
  s.storms_active = storms_active_;
  s.events_applied = events_applied_;
  s.events_total = source_done_ ? events_applied_ : -1;
  s.sessions_begun = c_session_begun_->value();
  s.jobs_submitted = c_submitted_->value();
  s.jobs_finished = c_finished_->value();
  s.jobs_crashed = c_crashed_->value();
  s.jobs_dropped = c_dropped_->value();
  s.storms_finished = c_storm_finished_->value();
  s.storms_crashed = c_storm_crashed_->value();
  return s;
}

}  // namespace sprite::wl
