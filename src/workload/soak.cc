#include "workload/soak.h"

#include <algorithm>
#include <cstdio>

#include "ckpt/manager.h"
#include "proc/table.h"
#include "sim/cpu.h"
#include "util/assert.h"

namespace sprite::wl {

using sim::HostId;
using sim::Time;

namespace {

// Per-host metrics summed cluster-wide (plus the unscoped slot).
std::int64_t sum_counter(const kern::Cluster& cluster,
                         const trace::Registry& tr, const std::string& name) {
  std::int64_t total = tr.counter_value(name, sim::kInvalidHost);
  for (std::size_t h = 0; h < cluster.num_hosts(); ++h)
    total += tr.counter_value(name, static_cast<HostId>(h));
  return total;
}

}  // namespace

SoakHarness::SoakHarness(SoakOptions opts) : opts_(opts) {
  kern::Cluster::Config cfg;
  cfg.num_workstations = opts_.workstations;
  cfg.num_file_servers = 1;
  cfg.seed = opts_.seed;
  // Slack past the session horizon: crash detection, restarts, and the last
  // batch jobs drain after the final event; recurring activity (monitor
  // probes, autockpt scans) must keep ticking while they do.
  cfg.horizon = opts_.sessions.horizon + Time::hours(4);
  cluster_ = std::make_unique<kern::Cluster>(cfg);
  facility_ = std::make_unique<ls::Facility>(*cluster_, ls::Arch::kCentral);

  if (opts_.faults) {
    faults_ = std::make_unique<sim::FaultPlan>(cluster_->sim(),
                                               cluster_->net());
    schedule_faults();
    faults_->arm({.crash = [this](HostId h) { cluster_->crash_host(h); },
                  .reboot = [this](HostId h) { cluster_->reboot_host(h); }});
  }

  if (opts_.autocheckpoint) {
    for (HostId w : cluster_->workstations()) {
      auto& ck = cluster_->host(w).ckpt();
      ck.set_auto_policy(opts_.ckpt_interval, opts_.ckpt_dirty_threshold);
      ck.enable_autocheckpoint(true);
    }
  }

  engine_ = std::make_unique<Engine>(*cluster_, facility_.get(), opts_.engine);

  trace::Registry& tr = cluster_->sim().trace();
  g_foreign_resident_ = &tr.gauge("soak.residency.foreign");
  g_util_recovered_ = &tr.gauge("soak.util.recovered");
  cluster_->sim().every(opts_.sample_period, [this] { sample(); });
}

SoakHarness::~SoakHarness() = default;

void SoakHarness::schedule_faults() {
  const auto ws = cluster_->workstations();
  const auto n = ws.size();
  const Time horizon = opts_.sessions.horizon;

  // Rotating workstation crashes — never the file server: it holds the
  // shared FS, the checkpoint images, and migd, and the thesis's failure
  // model keeps servers on conditioned power.
  std::size_t i = 0;
  for (Time t = opts_.crash_period; t + opts_.reboot_after < horizon;
       t += opts_.crash_period, ++i) {
    faults_->crash_host(ws[i % n], t, opts_.reboot_after);
  }

  if (!opts_.partitions || n < 6) return;
  // A rotating trio of workstations loses touch with everyone else (file
  // server included), then the partition heals and reintegration runs.
  std::size_t k = 0;
  for (Time t = opts_.partition_period;
       t + opts_.partition_heal < horizon;
       t += opts_.partition_period, ++k) {
    std::vector<HostId> island = {ws[(3 * k) % n], ws[(3 * k + 1) % n],
                                  ws[(3 * k + 2) % n]};
    std::vector<HostId> mainland;
    for (std::size_t h = 0; h < cluster_->num_hosts(); ++h) {
      const auto id = static_cast<HostId>(h);
      if (std::find(island.begin(), island.end(), id) == island.end())
        mainland.push_back(id);
    }
    faults_->partition(island, mainland, t, t + opts_.partition_heal);
  }
}

void SoakHarness::sample() {
  // Residency only: foreign CPU is accounted where it burns, by the kernel
  // (proc.cpu.foreign_us), so short-lived foreign processes that start and
  // exit between samples are never missed.
  std::int64_t foreign_now = 0;
  for (std::size_t h = 0; h < cluster_->num_hosts(); ++h) {
    kern::Host& host = cluster_->host(static_cast<HostId>(h));
    if (!host.up()) continue;
    for (const auto& pcb : host.procs().local_processes())
      if (pcb->foreign()) ++foreign_now;
  }
  g_foreign_resident_->set(static_cast<double>(foreign_now));
  foreign_resident_sum_ += foreign_now;
  ++samples_;
}

double SoakHarness::eviction_percentile(double q) const {
  const auto bounds = trace::default_latency_bounds_ms();
  std::vector<std::int64_t> counts(bounds.size() + 1, 0);
  std::int64_t total = 0;
  trace::Registry& tr = cluster_->sim().trace();
  for (HostId w : cluster_->workstations()) {
    auto& h = tr.histogram("ls.eviction.latency_ms",
                           trace::default_latency_bounds_ms(), w);
    for (std::size_t b = 0; b < counts.size(); ++b) counts[b] += h.bucket(b);
    total += h.count();
  }
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double next = cum + static_cast<double>(counts[b]);
    if (next >= target && counts[b] > 0) {
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      if (b == bounds.size()) return lo;  // overflow bucket: report its floor
      const double hi = bounds[b];
      return lo + (hi - lo) * (target - cum) /
                      static_cast<double>(counts[b]);
    }
    cum = next;
  }
  return bounds.back();
}

SoakReport SoakHarness::run() {
  engine_->start(opts_.sessions, opts_.seed);
  cluster_->run_until_done([this] { return engine_->drained(); });
  return finish();
}

SoakReport SoakHarness::run_replay(ParsedTrace trace) {
  engine_->start_replay(std::move(trace));
  cluster_->run_until_done([this] { return engine_->drained(); });
  return finish();
}

SoakReport SoakHarness::finish() {
  sample();  // final residency reading

  SoakReport r;
  r.workload = engine_->summary();
  r.audit = audit_incarnations(*cluster_, engine_->jobs());

  r.foreign_cpu_s = static_cast<double>(sum_counter(
                        *cluster_, cluster_->sim().trace(),
                        "proc.cpu.foreign_us")) /
                    1e6;
  for (std::size_t h = 0; h < cluster_->num_hosts(); ++h)
    r.total_user_cpu_s += cluster_->host(static_cast<HostId>(h))
                              .cpu()
                              .busy_time(sim::JobClass::kUser)
                              .s();
  r.utilization_recovered =
      r.total_user_cpu_s > 0.0 ? r.foreign_cpu_s / r.total_user_cpu_s : 0.0;
  g_util_recovered_->set(r.utilization_recovered);

  const trace::Registry& tr = cluster_->sim().trace();
  for (HostId w : cluster_->workstations())
    r.evictions += tr.counter_value("ls.eviction.triggered", w);
  r.evict_p50_ms = eviction_percentile(0.50);
  r.evict_p90_ms = eviction_percentile(0.90);
  r.evict_p99_ms = eviction_percentile(0.99);

  r.avg_foreign_resident =
      samples_ > 0 ? static_cast<double>(foreign_resident_sum_) /
                         static_cast<double>(samples_)
                   : 0.0;

  r.crashes = sum_counter(*cluster_, tr, "fault.crash.injected");
  r.reboots = sum_counter(*cluster_, tr, "fault.reboot.injected");
  r.links_cut = sum_counter(*cluster_, tr, "fault.link.cut");
  r.checkpoints = sum_counter(*cluster_, tr, "ckpt.capture.completed");
  r.restarts = sum_counter(*cluster_, tr, "ckpt.restart.completed");
  r.evicted_processes = sum_counter(*cluster_, tr, "mig.eviction.completed");
  return r;
}

std::string SoakReport::to_string() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "soak: %lld sessions (%lld jobs: %lld finished, %lld crashed, %lld "
      "dropped; %lld storms + %lld crashed)\n"
      "  utilization recovered by migration: %.2f%% (%.1fs foreign of %.1fs "
      "user CPU)\n"
      "  evictions: %lld (latency p50 %.2fms, p90 %.2fms, p99 %.2fms)\n"
      "  foreign residency: %.2f processes avg\n"
      "  faults: %lld crashes, %lld reboots, %lld links cut; %lld "
      "checkpoints, %lld restarts, %lld processes evicted\n"
      "  audit: %s (%lld lost, %lld duplicated)",
      static_cast<long long>(workload.sessions_begun),
      static_cast<long long>(workload.jobs_submitted),
      static_cast<long long>(workload.jobs_finished),
      static_cast<long long>(workload.jobs_crashed),
      static_cast<long long>(workload.jobs_dropped),
      static_cast<long long>(workload.storms_finished),
      static_cast<long long>(workload.storms_crashed),
      utilization_recovered * 100.0, foreign_cpu_s, total_user_cpu_s,
      static_cast<long long>(evictions), evict_p50_ms, evict_p90_ms,
      evict_p99_ms, avg_foreign_resident, static_cast<long long>(crashes),
      static_cast<long long>(reboots), static_cast<long long>(links_cut),
      static_cast<long long>(checkpoints), static_cast<long long>(restarts),
      static_cast<long long>(evicted_processes),
      audit.ok() ? "OK" : "FAILED", static_cast<long long>(audit.lost),
      static_cast<long long>(audit.duplicated));
  return buf;
}

}  // namespace sprite::wl
