// End-of-soak incarnation audit.
//
// The property a month of production Sprite use rested on, checked over a
// simulated week of crashes, partitions, evictions, and restarts: every
// process the workload ever submitted is accounted for exactly once. "Lost"
// means a job the engine launched that no terminal state ever claimed
// (its home record evaporated without the crash path firing); "duplicated"
// means two live incarnations of one pid coexist on running hosts — the
// disaster checkpoint-restart epochs exist to prevent (a stale pre-restart
// copy still executing beside the restarted one).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/engine.h"

namespace sprite::kern {
class Cluster;
}

namespace sprite::wl {

struct AuditResult {
  std::int64_t lost = 0;        // jobs with no terminal state
  std::int64_t duplicated = 0;  // pids alive twice, or stale incarnations
  std::vector<std::string> problems;  // human-readable, for test failures

  bool ok() const { return lost == 0 && duplicated == 0; }
};

// Sweeps every running host's process table and the engine's job ledger.
// Call after the cluster has drained (Engine::drained() true).
AuditResult audit_incarnations(kern::Cluster& cluster,
                               const std::vector<Engine::JobRecord>& jobs);

}  // namespace sprite::wl
