#include "workload/session.h"

#include <algorithm>

#include "util/assert.h"

namespace sprite::wl {

using sim::Time;

DiurnalProfile DiurnalProfile::office() {
  DiurnalProfile p;
  p.weekend_factor = 0.5;
  for (int h = 0; h < 24; ++h) {
    if (h >= 9 && h < 18) {
      p.presence[static_cast<std::size_t>(h)] = 0.46;  // office hours
    } else if (h >= 18 && h < 21) {
      p.presence[static_cast<std::size_t>(h)] = 0.34;  // evening stragglers
    } else {
      p.presence[static_cast<std::size_t>(h)] = 0.26;  // night owls
    }
  }
  return p;
}

double DiurnalProfile::at(Time t) const {
  const double hours_total = t.h();
  const int hour = static_cast<int>(hours_total) % 24;
  const int day = (static_cast<int>(hours_total) / 24) % 7;
  double p = presence[static_cast<std::size_t>(hour)];
  if (day >= 5) p *= weekend_factor;
  return p;
}

Generator::Generator(SessionSpec spec, std::vector<sim::HostId> hosts,
                     std::uint64_t seed)
    : spec_(spec), seed_(seed) {
  SPRITE_CHECK_MSG(!hosts.empty(), "workload generator needs >= 1 host");
  SPRITE_CHECK_MSG(spec_.users > 0, "workload generator needs >= 1 user");
  util::Rng master(seed);
  users_.reserve(static_cast<std::size_t>(spec_.users));
  for (int u = 0; u < spec_.users; ++u) {
    // Fork in fixed user order so each user's stream depends only on
    // (seed, u) — never on how other users' events interleave.
    util::Rng r = master.fork();
    util::Rng lt = master.fork();
    users_.emplace_back(std::move(r), std::move(lt),
                        hosts[static_cast<std::size_t>(u) % hosts.size()]);
    // Stagger first decisions inside the first minute, as the interactive
    // model always did, so 1000 users don't all wake on the same tick.
    users_.back().clock = Time::sec(users_.back().rng.uniform(0.0, 60.0));
  }
  for (std::size_t u = 0; u < users_.size(); ++u) {
    refill(u);
    push_ready(u);
  }
}

void Generator::push_ready(std::size_t u) {
  if (!users_[u].pending.empty())
    ready_.push({users_[u].pending.front().at.us(), u});
}

void Generator::generate_session(User& user, std::int64_t uid, Time start) {
  const Time length = Time::sec(user.rng.exponential(spec_.mean_session.s()));
  const Time end = start + std::max(Time::usec(1), length);

  std::vector<WorkloadEvent> evs;
  evs.push_back({start, EvKind::kSessionBegin, user.host, uid, 0});

  // Keystrokes at exponential gaps until the session ends.
  for (Time t = start;;) {
    t += Time::sec(user.rng.exponential(spec_.mean_keystroke_gap.s()));
    if (t >= end) break;
    evs.push_back({t, EvKind::kKeystroke, user.host, uid, 0});
  }

  // Batch submissions: Poisson arrivals while present. CPU demand is a Zhou
  // lifetime, except for the occasional long job (the autocheckpoint fodder).
  if (spec_.batch_per_hour > 0) {
    const double mean_gap_s = 3600.0 / spec_.batch_per_hour;
    for (Time t = start;;) {
      t += Time::sec(user.rng.exponential(mean_gap_s));
      if (t >= end) break;
      std::int64_t cpu_us;
      if (user.rng.bernoulli(spec_.long_batch_fraction)) {
        cpu_us = static_cast<std::int64_t>(user.rng.uniform(
            spec_.long_batch_min.s(), spec_.long_batch_max.s()) * 1e6);
      } else {
        cpu_us = user.lifetimes.next().us();
      }
      evs.push_back(
          {t, EvKind::kBatchSubmit, user.host, std::max<std::int64_t>(1, cpu_us), 0});
    }
  }

  // At most one compile storm per session, at a uniform instant inside it.
  if (user.rng.bernoulli(spec_.storm_per_session)) {
    const Time at = start + (end - start) * user.rng.next_double();
    const auto files = user.rng.uniform_int(spec_.storm_files_min,
                                            spec_.storm_files_max);
    const auto cpu_us = std::max<std::int64_t>(
        1000,
        static_cast<std::int64_t>(
            user.rng.exponential(spec_.storm_mean_compile_cpu.s()) * 1e6));
    evs.push_back({at, EvKind::kStorm, user.host, files, cpu_us});
  }

  evs.push_back({end, EvKind::kSessionEnd, user.host, uid, 0});

  // Stable-order the merged sub-streams: time, then original emit order.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const WorkloadEvent& a, const WorkloadEvent& b) {
                     return a.at < b.at;
                   });
  for (auto& e : evs) user.pending.push_back(e);
  user.clock = end;
}

void Generator::refill(std::size_t u) {
  User& user = users_[u];
  while (user.pending.empty() && !user.done) {
    if (user.clock >= spec_.horizon) {
      user.done = true;
      return;
    }
    if (user.rng.bernoulli(spec_.profile.at(user.clock))) {
      generate_session(user, static_cast<std::int64_t>(u), user.clock);
    } else {
      user.clock +=
          Time::sec(user.rng.exponential(spec_.mean_absence.s()));
    }
  }
}

bool Generator::next(WorkloadEvent* out) {
  while (!ready_.empty()) {
    const auto [at_us, u] = ready_.top();
    ready_.pop();
    User& user = users_[u];
    if (user.pending.empty()) continue;  // stale heap entry
    SPRITE_CHECK(user.pending.front().at.us() == at_us);
    *out = user.pending.front();
    user.pending.pop_front();
    if (user.pending.empty()) refill(u);
    push_ready(u);
    return true;
  }
  return false;
}

std::vector<WorkloadEvent> Generator::all() {
  std::vector<WorkloadEvent> evs;
  WorkloadEvent e;
  while (next(&e)) evs.push_back(e);
  return evs;
}

}  // namespace sprite::wl
