// The workload-event vocabulary: everything the trace-driven engine can do
// to a cluster, as plain data.
//
// A workload is a time-ordered stream of these events. The stream comes
// either from the Generator (a pure function of SessionSpec + seed — see
// session.h) or from a recorded binary trace (trace_file.h); the Engine
// (engine.h) applies it to a live cluster either way, so a generated run and
// its replay are byte-for-byte the same experiment.
#pragma once

#include <cstdint>

#include "sim/ids.h"
#include "sim/time.h"

namespace sprite::wl {

enum class EvKind : std::uint8_t {
  kSessionBegin = 0,  // a user sits down at `host` (a0 = user id)
  kKeystroke,         // user input at `host` (owner-return eviction trigger)
  kSessionEnd,        // the user walks away (a0 = user id)
  kBatchSubmit,       // submit a batch job at `host` (a0 = CPU demand, us)
  kStorm,             // pmake compile storm from `host` (a0 = files,
                      //   a1 = per-file compile CPU, us)
};
inline constexpr int kNumEvKinds = 5;

const char* ev_kind_name(EvKind k);

struct WorkloadEvent {
  sim::Time at;                        // absolute simulated time
  EvKind kind = EvKind::kKeystroke;
  sim::HostId host = sim::kInvalidHost;
  std::int64_t a0 = 0;                 // kind-specific payload
  std::int64_t a1 = 0;

  friend bool operator==(const WorkloadEvent&, const WorkloadEvent&) = default;
};

}  // namespace sprite::wl
