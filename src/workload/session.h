// User-session models: the stochastic half of the workload engine.
//
// A Generator turns (SessionSpec, host list, seed) into a time-ordered
// stream of WorkloadEvents — a pure function with no simulator attached, so
// the exact same stream can be recorded to a trace, replayed, or fed
// straight into a live Engine. Each simulated user follows the diurnal
// presence model the evaluation chapter calibrated (office hours, evening
// stragglers, night owls, quiet weekends): present users type, submit batch
// jobs with Zhou's heavy-tailed CPU demands, and occasionally kick off pmake
// compile storms; absent users leave their workstation idle and evictable.
//
// Determinism: every user forks a private Rng from the master seed in user
// order, and the cross-user merge breaks time ties by user index, so the
// event stream is a deterministic function of (spec, hosts, seed) —
// independent of platform, map iteration order, or anything the simulator
// does with the events.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"
#include "workload/event.h"

namespace sprite::wl {

// Probability that a cycle starting at a given hour finds the user present.
struct DiurnalProfile {
  std::array<double, 24> presence;
  // Presence multiplier on days 5 and 6 of each simulated week.
  double weekend_factor = 0.3;

  // Office-hours default, calibrated so 65-70 % of hosts are idle during the
  // day and ~80 % at night (experiment E7).
  static DiurnalProfile office();

  // Presence probability at an absolute simulated instant (epoch = Monday
  // 00:00).
  double at(sim::Time t) const;
};

// Zhou's process-lifetime distribution [Zho87]: two-phase hyperexponential
// with mean 1.5 s and standard deviation ~19-20 s.
class ZhouLifetimes {
 public:
  explicit ZhouLifetimes(util::Rng rng) : rng_(std::move(rng)) {}
  sim::Time next() {
    return sim::Time::sec(rng_.hyperexponential(0.994, 0.4, 183.7));
  }

 private:
  util::Rng rng_;
};

struct SessionSpec {
  int users = 48;
  sim::Time horizon = sim::Time::hours(24);
  DiurnalProfile profile = DiurnalProfile::office();

  sim::Time mean_session = sim::Time::minutes(25);
  sim::Time mean_absence = sim::Time::minutes(45);
  sim::Time mean_keystroke_gap = sim::Time::sec(4);

  // Poisson rate of batch submissions while a user is present; CPU demand
  // per job is a Zhou lifetime.
  double batch_per_hour = 4.0;

  // A small fraction of batch jobs are long-running (simulations, document
  // builds) with uniform CPU demand in [long_batch_min, long_batch_max] —
  // the jobs autocheckpoint and crash-restart exist for.
  double long_batch_fraction = 0.08;
  sim::Time long_batch_min = sim::Time::minutes(2);
  sim::Time long_batch_max = sim::Time::minutes(10);

  // Probability a session includes one pmake storm, and its shape.
  double storm_per_session = 0.12;
  int storm_files_min = 4;
  int storm_files_max = 12;
  sim::Time storm_mean_compile_cpu = sim::Time::sec(2);
};

// Pull-based event source: next() yields events in non-decreasing time order
// until the horizon exhausts every user.
class Generator {
 public:
  // Users are assigned round-robin to `hosts` (user u sits at
  // hosts[u % hosts.size()]).
  Generator(SessionSpec spec, std::vector<sim::HostId> hosts,
            std::uint64_t seed);

  const SessionSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

  // Fills *out with the next event; false once the stream is exhausted.
  bool next(WorkloadEvent* out);

  // Drains the whole stream (record helper; also used by tests).
  std::vector<WorkloadEvent> all();

 private:
  struct User {
    util::Rng rng;
    ZhouLifetimes lifetimes;
    sim::HostId host = sim::kInvalidHost;
    sim::Time clock;              // next cycle decision instant
    std::deque<WorkloadEvent> pending;
    bool done = false;

    User(util::Rng r, util::Rng lt, sim::HostId h)
        : rng(std::move(r)), lifetimes(std::move(lt)), host(h) {}
  };

  // Advances user u until it has pending events or passes the horizon.
  void refill(std::size_t u);
  void generate_session(User& user, std::int64_t uid, sim::Time start);
  void push_ready(std::size_t u);

  SessionSpec spec_;
  std::uint64_t seed_;
  std::vector<User> users_;
  // Min-heap of (event time us, user index): deterministic cross-user merge.
  using HeapItem = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      ready_;
};

}  // namespace sprite::wl
