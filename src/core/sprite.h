// SpriteCluster: the library's front door.
//
// One object assembles a simulated Sprite network — workstations, file
// servers, the shared file system, process migration, and (optionally) a
// load-sharing facility — and offers blocking-style helpers for driving
// experiments: install programs, run them to completion, migrate them,
// request idle hosts, and advance simulated time.
//
// Everything underneath is reachable for advanced use: kernel() exposes the
// per-host subsystems (fs, vm, procs, mig, rpc, cpu), and load_sharing()
// exposes the selection facility.
//
// Quick start:
//
//   sprite::core::SpriteCluster cluster({.workstations = 8});
//   proc::ScriptBuilder b;
//   b.compute(sim::Time::sec(2)).exit(0);
//   cluster.install_program("/bin/work", b.image());
//   auto pid = cluster.spawn(cluster.workstation(0), "/bin/work", {});
//   cluster.migrate(pid, cluster.workstation(1));   // transparent move
//   int status = cluster.wait(pid);
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/pmake.h"
#include "apps/workload.h"  // compat shim over src/workload/
#include "kern/cluster.h"
#include "loadshare/facility.h"
#include "migration/manager.h"
#include "proc/script.h"
#include "proc/table.h"
#include "sim/costs.h"

namespace sprite::core {

class SpriteCluster {
 public:
  struct Options {
    int workstations = 8;
    int file_servers = 1;
    std::uint64_t seed = 1;
    // Host-selection architecture; load sharing can be disabled entirely
    // for mechanism-only experiments.
    bool enable_load_sharing = true;
    ls::Arch selection = ls::Arch::kCentral;
    sim::Costs costs;
    sim::Time horizon = sim::Time::hours(24);
  };

  SpriteCluster();  // all defaults
  explicit SpriteCluster(Options options);

  // ---- Direct access to the layers ----
  kern::Cluster& kernel() { return cluster_; }
  sim::Simulator& sim() { return cluster_.sim(); }
  ls::Facility& load_sharing();
  kern::Host& host(sim::HostId id) { return cluster_.host(id); }
  sim::HostId workstation(int i) const;
  int num_workstations() const;

  // ---- Programs ----
  // Registers an executable (creates the binary on the file server too).
  void install_program(const std::string& path, proc::ProgramImage image);

  // Starts a process on `where` (its home). Blocks simulated time until the
  // kernel has created it.
  proc::Pid spawn(sim::HostId where, const std::string& exe,
                  std::vector<std::string> args);

  // Runs until `pid` exits; returns its exit status. `pid`'s home must be
  // the host it was spawned on.
  int wait(proc::Pid pid);

  // ---- Migration ----
  // Transparently moves a running process; fails with the kernel's reason
  // (not idle target checks are the policy layer's job, not enforced here).
  util::Status migrate(proc::Pid pid, sim::HostId target);

  // Evicts all foreign processes from a host (what happens when its owner
  // touches the keyboard); returns how many went home.
  int evict(sim::HostId host);

  // ---- Load sharing ----
  // Blocking host request/release through the configured architecture.
  std::vector<sim::HostId> request_idle_hosts(sim::HostId requester, int n);
  void release_host(sim::HostId requester, sim::HostId granted);

  // ---- Time ----
  // Advances simulated time (processes, daemons, caches keep running).
  void run_for(sim::Time duration);
  // Lets every workstation pass the idle-detection threshold.
  void warm_up() { run_for(sim::Time::sec(45)); }

  // Where a process currently runs, according to its home record.
  sim::HostId locate(proc::Pid pid);

 private:
  Options options_;
  kern::Cluster cluster_;
  std::unique_ptr<ls::Facility> facility_;
};

}  // namespace sprite::core
