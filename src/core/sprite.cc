#include "core/sprite.h"

#include "util/assert.h"

namespace sprite::core {

using proc::Pid;
using sim::HostId;
using sim::Time;

SpriteCluster::SpriteCluster() : SpriteCluster(Options{}) {}

SpriteCluster::SpriteCluster(Options options)
    : options_(options),
      cluster_({.num_workstations = options.workstations,
                .num_file_servers = options.file_servers,
                .seed = options.seed,
                .costs = options.costs,
                .horizon = options.horizon}) {
  if (options_.enable_load_sharing) {
    facility_ = std::make_unique<ls::Facility>(cluster_, options_.selection);
  }
}

ls::Facility& SpriteCluster::load_sharing() {
  SPRITE_CHECK_MSG(facility_ != nullptr, "load sharing disabled");
  return *facility_;
}

HostId SpriteCluster::workstation(int i) const {
  auto ws = cluster_.workstations();
  SPRITE_CHECK(i >= 0 && static_cast<std::size_t>(i) < ws.size());
  return ws[static_cast<std::size_t>(i)];
}

int SpriteCluster::num_workstations() const {
  return static_cast<int>(cluster_.workstations().size());
}

void SpriteCluster::install_program(const std::string& path,
                                    proc::ProgramImage image) {
  SPRITE_CHECK(cluster_.install_program(path, std::move(image)).is_ok());
}

Pid SpriteCluster::spawn(HostId where, const std::string& exe,
                         std::vector<std::string> args) {
  util::Result<Pid> out(util::Err::kAgain);
  bool done = false;
  cluster_.host(where).procs().spawn(exe, std::move(args),
                                     [&](util::Result<Pid> r) {
                                       out = std::move(r);
                                       done = true;
                                     });
  cluster_.run_until_done([&] { return done; });
  SPRITE_CHECK_MSG(out.is_ok(), "spawn failed");
  return *out;
}

int SpriteCluster::wait(Pid pid) {
  const HostId home = proc::pid_home(pid);
  int status = -1;
  bool done = false;
  cluster_.host(home).procs().notify_on_exit(pid, [&](int s) {
    status = s;
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  return status;
}

util::Status SpriteCluster::migrate(Pid pid, HostId target) {
  const HostId home = proc::pid_home(pid);
  const HostId where = cluster_.host(home).procs().home_record_location(pid);
  if (where == sim::kInvalidHost)
    return util::Status(util::Err::kSrch, "no such process");
  auto pcb = cluster_.host(where).procs().find(pid);
  if (!pcb) return util::Status(util::Err::kSrch, "process table miss");
  util::Status out(util::Err::kAgain);
  bool done = false;
  cluster_.host(where).mig().migrate(pcb, target, [&](util::Status s) {
    out = s;
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  return out;
}

int SpriteCluster::evict(HostId host) {
  int evicted = -1;
  bool done = false;
  cluster_.host(host).mig().evict_all_foreign([&](int n) {
    evicted = n;
    done = true;
  });
  cluster_.run_until_done([&] { return done; });
  return evicted;
}

std::vector<HostId> SpriteCluster::request_idle_hosts(HostId requester,
                                                      int n) {
  std::vector<HostId> out;
  bool done = false;
  load_sharing().selector(requester).request_hosts(
      n, [&](std::vector<HostId> hosts) {
        out = std::move(hosts);
        done = true;
      });
  cluster_.run_until_done([&] { return done; });
  return out;
}

void SpriteCluster::release_host(HostId requester, HostId granted) {
  load_sharing().selector(requester).release_host(granted);
  run_for(Time::msec(100));
}

void SpriteCluster::run_for(Time duration) {
  cluster_.sim().run_until(cluster_.sim().now() + duration);
}

HostId SpriteCluster::locate(Pid pid) {
  const HostId home = proc::pid_home(pid);
  return cluster_.host(home).procs().home_record_location(pid);
}

}  // namespace sprite::core
