// Cluster and Host: the glue binding one simulated Sprite network together.
//
// A Cluster owns the Simulator, the shared-medium Network, the calibration
// Costs, and one Host (kernel instance) per machine. File servers export
// prefixes of the shared namespace; every host runs the FS client, the RPC
// node, the VM manager, and the process table. The migration and
// load-sharing layers attach on top (see migration/ and loadshare/).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fs/client.h"
#include "fs/pdev.h"
#include "fs/server.h"
#include "proc/program.h"
#include "recov/monitor.h"
#include "rpc/rpc.h"
#include "sim/costs.h"
#include "sim/cpu.h"
#include "sim/ids.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "vm/vm.h"

namespace sprite::proc {
class ProcTable;
}
namespace sprite::mig {
class MigrationManager;
}
namespace sprite::ckpt {
class CkptManager;
}

namespace sprite::kern {

class Cluster;

// One machine's kernel: the bundle of per-host subsystems.
class Host {
 public:
  Host(Cluster& cluster, sim::HostId id, bool is_file_server);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  sim::HostId id() const { return id_; }
  bool is_file_server() const { return fs_server_ != nullptr; }
  std::string name() const { return "host" + std::to_string(id_); }

  Cluster& cluster() { return cluster_; }
  sim::Cpu& cpu() { return *cpu_; }
  rpc::RpcNode& rpc() { return *rpc_; }
  recov::HostMonitor& monitor() { return *monitor_; }
  fs::FsClient& fs() { return *fs_client_; }
  fs::FsServer* fs_server() { return fs_server_.get(); }
  fs::PdevRegistry& pdev() { return *pdev_; }
  vm::VmManager& vm() { return *vm_; }
  proc::ProcTable& procs() { return *procs_; }
  mig::MigrationManager& mig() { return *mig_; }
  ckpt::CkptManager& ckpt() { return *ckpt_; }

  // ---- User-input tracking (idle-host detection reads this) ----
  // Called by the user-activity model whenever the simulated user types or
  // moves the mouse.
  void note_user_input();
  sim::Time last_user_input() const { return last_input_; }
  // Observer invoked on every user input (the load-sharing node hooks this
  // to trigger eviction and not-idle announcements).
  void set_input_observer(std::function<void()> fn) {
    input_observer_ = std::move(fn);
  }

  // ---- Crash support (driven by Cluster::crash_host/reboot_host) ----
  // Tears down every subsystem's volatile state in place. The objects stay
  // alive (in-flight event lambdas capture raw subsystem pointers; the
  // teardown makes those callbacks find-nothing no-ops), which also models
  // a reboot reusing the same kernel text.
  void crash_reset();
  // Restarts boot-time activity (the host monitor's probe tick) after a
  // reboot. Called by Cluster::reboot_host before the reboot observers.
  void boot();
  // Whether this kernel itself is running — its own knowledge, not a
  // liveness query about a peer (cleared by crash_reset, set by boot).
  bool up() const { return up_; }
  // Reaps state that depended on `peer`, which the *host monitor* has
  // declared down or rebooted. Never called by the simulator or by tests
  // directly: the monitor is the only legitimate origin (CHECK-enforced).
  void peer_crashed(sim::HostId peer);

 private:
  Cluster& cluster_;
  sim::HostId id_;
  bool up_ = true;
  std::unique_ptr<sim::Cpu> cpu_;
  std::unique_ptr<rpc::RpcNode> rpc_;
  std::unique_ptr<recov::HostMonitor> monitor_;
  std::unique_ptr<fs::FsClient> fs_client_;
  std::unique_ptr<fs::FsServer> fs_server_;
  std::unique_ptr<fs::PdevRegistry> pdev_;
  std::unique_ptr<vm::VmManager> vm_;
  std::unique_ptr<proc::ProcTable> procs_;
  std::unique_ptr<mig::MigrationManager> mig_;
  std::unique_ptr<ckpt::CkptManager> ckpt_;
  sim::Time last_input_;
  std::function<void()> input_observer_;
};

class Cluster {
 public:
  struct Config {
    int num_workstations = 4;
    int num_file_servers = 1;
    std::uint64_t seed = 1;
    sim::Costs costs;
    sim::Time horizon = sim::Time::hours(24);
  };

  explicit Cluster(Config config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  const sim::Costs& costs() const { return config_.costs; }

  std::size_t num_hosts() const { return hosts_.size(); }
  Host& host(sim::HostId id) { return *hosts_[static_cast<std::size_t>(id)]; }

  // File server `i` (0-based). Server 0 exports "/", additional servers
  // export "/s<i>".
  Host& file_server(int i = 0);
  // Workstations are the hosts that are not file servers.
  std::vector<sim::HostId> workstations() const;

  // Runs the simulation until `done` returns true; CHECK-fails if the event
  // queue starves first (deadlock in a protocol under test), after dumping
  // a diagnosis of what every host was waiting on.
  void run_until_done(const std::function<bool()>& done);

  // ---- Crash / reboot semantics (thesis failure model) ----
  // Crashing a host drops it off the network and destroys all kernel soft
  // state: local processes die, the FS client cache is lost, pending RPCs
  // are abandoned, and the host's reboot epoch is bumped. Survivors are NOT
  // told: each host's monitor (src/recov/) must discover the death from RPC
  // timeouts, failed echo probes, or the new epoch after a reboot.
  void crash_host(sim::HostId h);
  // Brings a crashed host back with empty tables; peers see the new epoch
  // on its first message. Reboot observers re-establish boot-time services
  // (e.g. the load-sharing daemon).
  void reboot_host(sim::HostId h);
  // Simulator ground truth, for the fault layer and test assertions ONLY.
  // Kernel subsystems must consult their host's monitor instead (a test
  // greps the tree to keep it that way).
  bool host_crashed(sim::HostId h) const { return crashed_.count(h) != 0; }

  void add_crash_observer(std::function<void(sim::HostId)> fn) {
    crash_observers_.push_back(std::move(fn));
  }
  void add_reboot_observer(std::function<void(sim::HostId)> fn) {
    reboot_observers_.push_back(std::move(fn));
  }

  // ---- Starvation diagnosis hooks ----
  // Layers above the kernel (e.g. the workload engine) register a hook
  // returning a multi-line state summary; run_until_done prints every
  // hook's text in its starvation diagnosis, so a hung soak names the jobs
  // and sessions in flight, not just kernel wait-state. Returns an id for
  // remove_diagnosis_hook (hooks may be outlived by the cluster).
  int add_diagnosis_hook(std::function<std::string()> fn);
  void remove_diagnosis_hook(int id);

  // ---- Program registry ----
  // All hosts see the same binaries through the shared file system, so
  // executable images are registered cluster-wide. install_program also
  // creates the executable file on file server 0 sized to the code segment.
  void register_program(const std::string& path, proc::ProgramImage image);
  util::Status install_program(const std::string& path,
                               proc::ProgramImage image);
  const proc::ProgramImage* find_program(const std::string& path) const;

 private:
  Config config_;
  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<sim::HostId> file_servers_;
  std::map<std::string, proc::ProgramImage> programs_;
  std::set<sim::HostId> crashed_;
  std::vector<std::function<void(sim::HostId)>> crash_observers_;
  std::vector<std::function<void(sim::HostId)>> reboot_observers_;
  std::map<int, std::function<std::string()>> diagnosis_hooks_;
  int next_diagnosis_hook_ = 1;
};

}  // namespace sprite::kern
