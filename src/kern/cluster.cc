#include "kern/cluster.h"

#include "ckpt/manager.h"
#include "migration/manager.h"
#include "proc/table.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::kern {

Host::Host(Cluster& cluster, sim::HostId id, bool is_file_server)
    : cluster_(cluster), id_(id) {
  const sim::Costs& costs = cluster.costs();
  cpu_ = std::make_unique<sim::Cpu>(cluster.sim(), costs);
  cpu_->start_load_sampling();
  rpc_ = std::make_unique<rpc::RpcNode>(cluster.sim(), cluster.net(), *cpu_,
                                        id, costs);
  monitor_ = std::make_unique<recov::HostMonitor>(cluster.sim(), *rpc_, costs);
  monitor_->register_services();
  rpc_->set_liveness(monitor_.get());
  fs_client_ = std::make_unique<fs::FsClient>(cluster.sim(), *cpu_, *rpc_,
                                              costs);
  fs_client_->register_services();
  pdev_ = std::make_unique<fs::PdevRegistry>(cluster.sim(), *cpu_, *rpc_,
                                             costs);
  pdev_->register_services();
  vm_ = std::make_unique<vm::VmManager>(cluster.sim(), *cpu_, *fs_client_,
                                        costs, id);
  procs_ = std::make_unique<proc::ProcTable>(*this);
  procs_->register_services();
  mig_ = std::make_unique<mig::MigrationManager>(*this);
  mig_->register_services();
  procs_->set_migrator(mig_.get());
  ckpt_ = std::make_unique<ckpt::CkptManager>(*this);
  ckpt_->register_services();
  procs_->set_restarter(ckpt_.get());
  if (is_file_server) {
    fs_server_ = std::make_unique<fs::FsServer>(cluster.sim(), *cpu_, *rpc_,
                                                costs);
    fs_server_->register_services();
  }

  // Failure detection: the monitor's verdicts drive peer_crashed, and the
  // kernel subsystems tell it which peers currently matter.
  monitor_->add_peer_down_observer(
      [this](sim::HostId peer) { peer_crashed(peer); });
  monitor_->add_interest_provider([this](std::vector<sim::HostId>& out) {
    procs_->collect_peer_interest(out);
    mig_->collect_peer_interest(out);
    ckpt_->collect_peer_interest(out);
    fs_client_->collect_peer_interest(out);
  });
  monitor_->start();
}

Host::~Host() = default;

void Host::note_user_input() {
  last_input_ = cluster_.sim().now();
  if (input_observer_) input_observer_();
}

void Host::crash_reset() {
  up_ = false;
  // Order: consumers before providers, so nothing re-registers state in a
  // subsystem that is about to be wiped.
  monitor_->crash_reset();
  ckpt_->crash_reset();
  procs_->crash_reset();
  mig_->crash_reset();
  fs_client_->crash_reset();
  if (fs_server_) fs_server_->crash_reset();
  pdev_->crash_reset();
  vm_->crash_reset();
  rpc_->crash_reset();
  cpu_->crash_reset();
  input_observer_ = nullptr;  // re-wired by the facility on reboot
}

void Host::boot() {
  up_ = true;
  monitor_->start();
  ckpt_->boot();
}

void Host::peer_crashed(sim::HostId peer) {
  // Every peer-death notification must be a monitor verdict — nothing else
  // (not the simulator, not a test) may claim a peer died.
  SPRITE_CHECK_MSG(monitor_->notifying(),
                   "peer_crashed outside a host-monitor notification");
  procs_->peer_crashed(peer);
  mig_->peer_crashed(peer);
  fs_client_->peer_crashed(peer);
  if (fs_server_) fs_server_->peer_crashed(peer);
}

Cluster::Cluster(Config config)
    : config_(config), sim_(config.seed), net_(sim_, config_.costs) {
  SPRITE_CHECK(config_.num_file_servers >= 1);
  sim_.set_horizon(config_.horizon);

  const int total = config_.num_file_servers + config_.num_workstations;
  // Attach all hosts to the network first so ids are assigned, then build
  // the kernels. Delivery handlers look hosts up at packet arrival.
  for (int i = 0; i < total; ++i) {
    const sim::HostId id = net_.attach([this, i](const sim::Packet& pkt) {
      hosts_[static_cast<std::size_t>(i)]->rpc().handle_packet(pkt);
    });
    SPRITE_CHECK(id == i);
  }
  for (int i = 0; i < total; ++i) {
    const bool is_server = i < config_.num_file_servers;
    hosts_.push_back(std::make_unique<Host>(*this, i, is_server));
    if (is_server) file_servers_.push_back(i);
  }

  // Standard directories every experiment relies on.
  host(file_servers_[0]).fs_server()->mkdir_p("/swap");
  host(file_servers_[0]).fs_server()->mkdir_p("/ckpt");
  host(file_servers_[0]).fs_server()->mkdir_p("/bin");
  host(file_servers_[0]).fs_server()->mkdir_p("/tmp");

  // Prefix table: server 0 exports "/", server i>0 exports "/s<i>".
  for (auto& h : hosts_) {
    h->fs().add_prefix("/", file_servers_[0]);
    for (std::size_t s = 1; s < file_servers_.size(); ++s) {
      h->fs().add_prefix("/s" + std::to_string(s), file_servers_[s]);
      host(file_servers_[s]).fs_server()->mkdir_p("/");  // root exists
    }
  }
}

Cluster::~Cluster() = default;

Host& Cluster::file_server(int i) {
  SPRITE_CHECK(i >= 0 && static_cast<std::size_t>(i) < file_servers_.size());
  return host(file_servers_[static_cast<std::size_t>(i)]);
}

std::vector<sim::HostId> Cluster::workstations() const {
  std::vector<sim::HostId> out;
  for (const auto& h : hosts_) {
    if (!h->is_file_server()) out.push_back(h->id());
  }
  return out;
}

void Cluster::register_program(const std::string& path,
                               proc::ProgramImage image) {
  programs_[path] = std::move(image);
}

util::Status Cluster::install_program(const std::string& path,
                                      proc::ProgramImage image) {
  auto r = file_server(0).fs_server()->create_file(
      path, image.code_pages * costs().page_size);
  if (!r.is_ok()) return r.status();
  register_program(path, std::move(image));
  return util::Status::ok();
}

const proc::ProgramImage* Cluster::find_program(
    const std::string& path) const {
  auto it = programs_.find(path);
  return it == programs_.end() ? nullptr : &it->second;
}

void Cluster::crash_host(sim::HostId h) {
  SPRITE_CHECK_MSG(!host_crashed(h), "crash_host on an already-crashed host");
  crashed_.insert(h);
  net_.set_host_up(h, false);
  LOG_INFO("kern", "host%d crashed", h);
  host(h).crash_reset();
  sim_.trace().flight_note("kern.crash", "host", h);
  sim_.trace().counter("kern.host.crashes", h).inc();
  if (sim_.trace().tracing()) sim_.trace().instant("kern", "crash", h);
  // Survivors are NOT told. Each one's host monitor discovers the death
  // in-protocol: timed-out calls raise suspicion, echo probes go
  // unanswered, and either the silence ages into a down verdict or the
  // rebooted host's first message carries a new epoch.
  for (const auto& fn : crash_observers_) fn(h);
}

void Cluster::reboot_host(sim::HostId h) {
  SPRITE_CHECK_MSG(host_crashed(h), "reboot_host on a host that is up");
  crashed_.erase(h);
  net_.set_host_up(h, true);
  host(h).boot();
  LOG_INFO("kern", "host%d rebooted", h);
  sim_.trace().flight_note("kern.reboot", "host", h);
  sim_.trace().counter("kern.host.reboots", h).inc();
  if (sim_.trace().tracing()) sim_.trace().instant("kern", "reboot", h);
  for (const auto& fn : reboot_observers_) fn(h);
}

int Cluster::add_diagnosis_hook(std::function<std::string()> fn) {
  const int id = next_diagnosis_hook_++;
  diagnosis_hooks_[id] = std::move(fn);
  return id;
}

void Cluster::remove_diagnosis_hook(int id) { diagnosis_hooks_.erase(id); }

void Cluster::run_until_done(const std::function<bool()>& done) {
  const bool finished = sim_.run_while_pending(done);
  if (!finished) {
    // Starved: dump what every host was waiting on before aborting, so a
    // protocol deadlock found by a fault test is debuggable.
    LOG_ERROR("kern", "--- starvation diagnosis at t=%.3fms ---",
              sim_.now().ms());
    for (const auto& hp : hosts_) {
      const sim::HostId h = hp->id();
      if (host_crashed(h)) {
        LOG_ERROR("kern", "host%d: crashed", h);
        continue;
      }
      for (const auto& pc : hp->rpc().pending_calls())
        LOG_ERROR("kern",
                  "host%d: pending rpc call#%llu -> host%d %s op=%d "
                  "(attempt %d%s)",
                  h, static_cast<unsigned long long>(pc.call_id), pc.dst,
                  rpc::service_name(pc.service), pc.op, pc.attempts,
                  pc.parked ? ", parked" : "");
      for (const auto& pi : hp->monitor().table()) {
        if (pi.state == recov::PeerState::kUp && !pi.echo_inflight) continue;
        LOG_ERROR("kern",
                  "host%d: monitor peer host%d %s last-heard=%.3fms "
                  "suspect-for=%.3fms%s",
                  h, pi.peer, recov::peer_state_name(pi.state),
                  pi.last_heard.ms(),
                  pi.state == recov::PeerState::kSuspect
                      ? (sim_.now() - pi.suspect_since).ms()
                      : 0.0,
                  pi.echo_inflight ? " (echo in flight)" : "");
      }
      for (const auto& pcb : hp->procs().local_processes())
        if (pcb->state != proc::ProcState::kRunnable ||
            pcb->migrate_syscall_pending)
          LOG_ERROR("kern", "host%d: pid %lld state=%s%s", h,
                    static_cast<long long>(pcb->pid),
                    proc::proc_state_name(pcb->state),
                    pcb->migrate_syscall_pending ? " (migrating)" : "");
      if (const std::size_t n = hp->mig().active_migrations(); n > 0)
        LOG_ERROR("kern", "host%d: %zu migration(s) in flight", h, n);
      if (const std::size_t n = hp->fs().parked_pipe_retries(); n > 0)
        LOG_ERROR("kern", "host%d: %zu parked pipe retr%s", h, n,
                  n == 1 ? "y" : "ies");
    }
    // Layered-subsystem summaries (workload engine, experiment harnesses):
    // what the cluster was being ASKED to do when it stalled.
    for (const auto& [id, fn] : diagnosis_hooks_) {
      const std::string text = fn();
      if (!text.empty()) LOG_ERROR("kern", "%s", text.c_str());
    }
    // The per-host snapshot above says what everyone is waiting ON; the
    // flight recorder says what everyone was DOING. Dump it here rather
    // than relying on the CHECK hook so the tail prints even if a custom
    // hook was installed over the registry's.
    sim_.trace().dump_flight("starvation diagnosis");
  }
  SPRITE_CHECK_MSG(finished,
                   "simulation starved before completion (protocol deadlock?)");
}

}  // namespace sprite::kern
