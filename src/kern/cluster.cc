#include "kern/cluster.h"

#include "migration/manager.h"
#include "proc/table.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::kern {

Host::Host(Cluster& cluster, sim::HostId id, bool is_file_server)
    : cluster_(cluster), id_(id) {
  const sim::Costs& costs = cluster.costs();
  cpu_ = std::make_unique<sim::Cpu>(cluster.sim(), costs);
  cpu_->start_load_sampling();
  rpc_ = std::make_unique<rpc::RpcNode>(cluster.sim(), cluster.net(), *cpu_,
                                        id, costs);
  fs_client_ = std::make_unique<fs::FsClient>(cluster.sim(), *cpu_, *rpc_,
                                              costs);
  fs_client_->register_services();
  pdev_ = std::make_unique<fs::PdevRegistry>(cluster.sim(), *cpu_, *rpc_,
                                             costs);
  pdev_->register_services();
  vm_ = std::make_unique<vm::VmManager>(cluster.sim(), *cpu_, *fs_client_,
                                        costs, id);
  procs_ = std::make_unique<proc::ProcTable>(*this);
  procs_->register_services();
  mig_ = std::make_unique<mig::MigrationManager>(*this);
  mig_->register_services();
  procs_->set_migrator(mig_.get());
  if (is_file_server) {
    fs_server_ = std::make_unique<fs::FsServer>(cluster.sim(), *cpu_, *rpc_,
                                                costs);
    fs_server_->register_services();
  }
}

Host::~Host() = default;

void Host::note_user_input() {
  last_input_ = cluster_.sim().now();
  if (input_observer_) input_observer_();
}

Cluster::Cluster(Config config)
    : config_(config), sim_(config.seed), net_(sim_, config_.costs) {
  SPRITE_CHECK(config_.num_file_servers >= 1);
  sim_.set_horizon(config_.horizon);

  const int total = config_.num_file_servers + config_.num_workstations;
  // Attach all hosts to the network first so ids are assigned, then build
  // the kernels. Delivery handlers look hosts up at packet arrival.
  for (int i = 0; i < total; ++i) {
    const sim::HostId id = net_.attach([this, i](const sim::Packet& pkt) {
      hosts_[static_cast<std::size_t>(i)]->rpc().handle_packet(pkt);
    });
    SPRITE_CHECK(id == i);
  }
  for (int i = 0; i < total; ++i) {
    const bool is_server = i < config_.num_file_servers;
    hosts_.push_back(std::make_unique<Host>(*this, i, is_server));
    if (is_server) file_servers_.push_back(i);
  }

  // Standard directories every experiment relies on.
  host(file_servers_[0]).fs_server()->mkdir_p("/swap");
  host(file_servers_[0]).fs_server()->mkdir_p("/bin");
  host(file_servers_[0]).fs_server()->mkdir_p("/tmp");

  // Prefix table: server 0 exports "/", server i>0 exports "/s<i>".
  for (auto& h : hosts_) {
    h->fs().add_prefix("/", file_servers_[0]);
    for (std::size_t s = 1; s < file_servers_.size(); ++s) {
      h->fs().add_prefix("/s" + std::to_string(s), file_servers_[s]);
      host(file_servers_[s]).fs_server()->mkdir_p("/");  // root exists
    }
  }
}

Cluster::~Cluster() = default;

Host& Cluster::file_server(int i) {
  SPRITE_CHECK(i >= 0 && static_cast<std::size_t>(i) < file_servers_.size());
  return host(file_servers_[static_cast<std::size_t>(i)]);
}

std::vector<sim::HostId> Cluster::workstations() const {
  std::vector<sim::HostId> out;
  for (const auto& h : hosts_) {
    if (!h->is_file_server()) out.push_back(h->id());
  }
  return out;
}

void Cluster::register_program(const std::string& path,
                               proc::ProgramImage image) {
  programs_[path] = std::move(image);
}

util::Status Cluster::install_program(const std::string& path,
                                      proc::ProgramImage image) {
  auto r = file_server(0).fs_server()->create_file(
      path, image.code_pages * costs().page_size);
  if (!r.is_ok()) return r.status();
  register_program(path, std::move(image));
  return util::Status::ok();
}

const proc::ProgramImage* Cluster::find_program(
    const std::string& path) const {
  auto it = programs_.find(path);
  return it == programs_.end() ? nullptr : &it->second;
}

void Cluster::run_until_done(const std::function<bool()>& done) {
  const bool finished = sim_.run_while_pending(done);
  SPRITE_CHECK_MSG(finished,
                   "simulation starved before completion (protocol deadlock?)");
}

}  // namespace sprite::kern
