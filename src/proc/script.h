// ScriptProgram: a convenient Program implementation driven by a list of
// steps. Tests, examples, and the workload generators all express simulated
// user programs this way.
//
// Each step is a function returning the next Action; it sees the previous
// action's results through the context. Steps may carry per-process state in
// `locals` and may `jump()` to implement loops. Everything in the context is
// deep-copied on fork, so parent and child diverge exactly as real processes
// do. The `trace` vector records whatever the program wants to observe —
// transparency tests assert that a migrated run produces the identical
// trace to a local run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "proc/program.h"
#include "util/codec.h"

namespace sprite::proc {

class ScriptProgram : public Program {
 public:
  struct Ctx {
    const ProcessView* view = nullptr;       // previous action's results
    std::map<std::string, std::int64_t> locals;
    std::vector<std::string> trace;
    // When set by a step, execution continues at this step index instead of
    // the next one.
    int jump_to = -1;

    void jump(int index) { jump_to = index; }
    void note(std::string s) { trace.push_back(std::move(s)); }
  };

  // A step produces the action to perform next. Steps must capture only
  // values (no mutable shared state) so that clone() yields an independent
  // process, exactly like fork of a real address space.
  using Step = std::function<Action(Ctx&)>;

  explicit ScriptProgram(std::vector<Step> steps)
      : steps_(std::make_shared<const std::vector<Step>>(std::move(steps))) {}

  Action next(const ProcessView& view) override {
    if (index_ >= static_cast<int>(steps_->size())) return SysExit{0};
    ctx_.view = &view;
    ctx_.jump_to = -1;
    Action a = (*steps_)[static_cast<std::size_t>(index_)](ctx_);
    index_ = ctx_.jump_to >= 0 ? ctx_.jump_to : index_ + 1;
    return a;
  }

  std::unique_ptr<Program> clone() const override {
    auto copy = std::make_unique<ScriptProgram>(*this);
    return copy;
  }

  // ---- Checkpoint support ----
  // The script position plus everything a step can observe: the next step
  // index, the locals, and the observation trace. The step list itself is
  // code, not state — the restore side rebuilds it from the executable's
  // ProgramImage factory, exactly as demand-paged text comes from the
  // backing file rather than the checkpoint image.
  bool checkpointable() const override { return true; }
  fs::Bytes encode_state() const override {
    util::Encoder e;
    e.put_i32(index_);
    e.put_u64(ctx_.locals.size());
    for (const auto& [k, v] : ctx_.locals) {
      e.put_str(k);
      e.put_i64(v);
    }
    e.put_u64(ctx_.trace.size());
    for (const auto& s : ctx_.trace) e.put_str(s);
    return e.take();
  }
  util::Status decode_state(const fs::Bytes& state) override {
    util::Decoder d(state);
    const int index = d.i32();
    std::map<std::string, std::int64_t> locals;
    const std::uint64_t nlocals = d.u64();
    for (std::uint64_t i = 0; i < nlocals && d.ok(); ++i) {
      std::string k = d.str();
      const std::int64_t v = d.i64();
      locals.emplace(std::move(k), v);
    }
    std::vector<std::string> trace;
    const std::uint64_t ntrace = d.u64();
    for (std::uint64_t i = 0; i < ntrace && d.ok(); ++i)
      trace.push_back(d.str());
    if (!d.ok() || !d.at_end())
      return util::Status(util::Err::kInval, "corrupt script state");
    index_ = index;
    ctx_.locals = std::move(locals);
    ctx_.trace = std::move(trace);
    ctx_.view = nullptr;
    ctx_.jump_to = -1;
    return util::Status::ok();
  }

  // Program-state inspection for tests (the "user memory" of the process).
  const std::vector<std::string>& trace() const { return ctx_.trace; }
  const std::map<std::string, std::int64_t>& locals() const {
    return ctx_.locals;
  }

 private:
  std::shared_ptr<const std::vector<Step>> steps_;  // immutable, shared
  Ctx ctx_;
  int index_ = 0;
};

// Builder with the common idioms spelled out.
class ScriptBuilder {
 public:
  ScriptBuilder& step(ScriptProgram::Step s) {
    steps_.push_back(std::move(s));
    return *this;
  }
  // Fixed action, ignoring the view.
  ScriptBuilder& act(Action a) {
    steps_.push_back([a](ScriptProgram::Ctx&) { return a; });
    return *this;
  }
  ScriptBuilder& compute(sim::Time t) { return act(Compute{t}); }
  ScriptBuilder& exit(int status = 0) { return act(SysExit{status}); }

  int next_index() const { return static_cast<int>(steps_.size()); }

  std::unique_ptr<ScriptProgram> build() {
    return std::make_unique<ScriptProgram>(std::move(steps_));
  }
  // As a ProgramImage factory that ignores args.
  ProgramImage image(std::int64_t code_pages = 16, std::int64_t heap_pages = 16,
                     std::int64_t stack_pages = 4) {
    auto steps = std::make_shared<const std::vector<ScriptProgram::Step>>(
        std::move(steps_));
    ProgramImage img;
    img.code_pages = code_pages;
    img.heap_pages = heap_pages;
    img.stack_pages = stack_pages;
    img.factory = [steps](const std::vector<std::string>&) {
      return std::make_unique<ScriptProgram>(
          std::vector<ScriptProgram::Step>(*steps));
    };
    return img;
  }

 private:
  std::vector<ScriptProgram::Step> steps_;
};

}  // namespace sprite::proc
