// ProcTable: one host's process management.
//
// Owns the PCBs of processes currently executing on this host (including
// foreign, i.e. migrated-in, processes) and the *home records* of processes
// whose home is this host wherever they currently execute. Home records are
// the state that gives Sprite its transparency: process-family operations
// (fork pid allocation, wait, exit, signal routing) always consult the home
// machine, so a process's pid, parent, and children look the same no matter
// where it runs.
//
// The kernel-call dispatcher implements the Appendix-A table in
// proc/syscalls.h: transferred-state calls run here against migrated state,
// forward-home calls turn into kProc RPCs, and home-involved calls do their
// home bookkeeping as a side effect.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "proc/pcb.h"
#include "proc/program.h"
#include "proc/syscalls.h"
#include "proc/wire.h"
#include "rpc/rpc.h"
#include "util/status.h"

namespace sprite::kern {
class Host;
}

namespace sprite::proc {

// Exit status reported for processes that died because a host crashed
// (128 + SIGKILL, the convention a kill -9 would produce).
inline constexpr int kHostCrashExitStatus = 137;

// Interface the checkpoint module implements (same decoupling pattern as
// MigratorIface): lets the home machine's process table offer a dead
// process to the checkpoint layer before declaring it lost.
class RestarterIface {
 public:
  virtual ~RestarterIface() = default;
  // A home record's process was executing on `dead_host` when the monitor
  // declared it down. Return true to take ownership: a checkpoint restart
  // is under way and the record must stay alive; false falls back to the
  // crash-exit path (kHostCrashExitStatus).
  virtual bool try_restart(Pid pid, sim::HostId dead_host) = 0;
  // The home record was retired (normal exit, kill, or crash-exit): any
  // checkpoint chain for the pid is garbage from now on.
  virtual void note_home_exit(Pid /*pid*/) {}
  // The PCB left this host (migrated away or departed): local chain
  // knowledge is stale — the next hosting kernel re-reads the image head.
  virtual void note_departed(Pid /*pid*/) {}
};

// Interface the migration module implements; keeps proc/ decoupled from
// migration/ (which depends on proc/).
class MigratorIface {
 public:
  virtual ~MigratorIface() = default;
  // Moves `pcb` (resident on this host, already eligible) to `target`.
  virtual void migrate(const PcbPtr& pcb, sim::HostId target,
                       std::function<void(util::Status)> cb) = 0;
  // The process table destroyed `pid` outside the migration protocol (its
  // home machine crashed): any outgoing migration of it must abort without
  // touching the now-dead PCB.
  virtual void note_process_reaped(Pid /*pid*/) {}
};

class ProcTable {
 public:
  using SpawnCb = std::function<void(util::Result<Pid>)>;

  explicit ProcTable(kern::Host& host);

  // Registers the kProc RPC service.
  void register_services();

  // The migration module installs itself here (may stay null in tests that
  // exercise proc/ alone; migrate-self then fails kNotSupported).
  void set_migrator(MigratorIface* m) { migrator_ = m; }
  // The checkpoint module installs itself here (optional; without it a dead
  // host's processes are simply declared exited).
  void set_restarter(RestarterIface* r) { restarter_ = r; }

  // ---- Process creation and observation ----
  // Starts a fresh process on this host (its home). The executable must be
  // registered with the Cluster and exist in the file system.
  void spawn(const std::string& exe_path, std::vector<std::string> args,
             SpawnCb cb);

  // Fires `cb(exit_status)` when `pid` exits. Must be called on the pid's
  // home host. Fires immediately if already exited.
  void notify_on_exit(Pid pid, std::function<void(int)> cb);

  // ---- Introspection ----
  PcbPtr find(Pid pid) const;
  std::vector<PcbPtr> local_processes() const;
  std::vector<PcbPtr> foreign_processes() const;  // migrated-in
  bool home_record_alive(Pid pid) const;
  sim::HostId home_record_location(Pid pid) const;
  std::int64_t home_record_incarnation(Pid pid) const;

  // Registry-backed (trace/trace.h); the struct is a refreshed view.
  struct Stats {
    std::int64_t spawns = 0;
    std::int64_t forks = 0;
    std::int64_t execs = 0;
    std::int64_t exits = 0;
    std::int64_t syscalls = 0;
    std::int64_t forwarded_calls = 0;  // executed via the home machine
  };
  const Stats& stats() const;

  // ---- Hooks for the migration module ----
  // Suspends the process at its next safe point (immediately if computing —
  // the remaining burst is carried — or when the in-flight kernel call
  // completes). cb fires once the process is frozen.
  void freeze(const PcbPtr& pcb, std::function<void()> cb);
  // Removes a (frozen) pcb from this host after its state has been shipped.
  void remove(Pid pid);
  // Installs a migrated-in pcb and resumes it. The pcb must have its
  // program/space/fds already reconstructed; `current` is set here.
  void install_and_resume(const PcbPtr& pcb);
  // Updates the home record's location field (local form; the RPC form is
  // ProcOp::kUpdateLocation).
  void set_home_record_location(Pid pid, sim::HostId where);

  // ---- Hooks for the checkpoint module (this host as home machine) ----
  // Advances the home record's incarnation epoch and returns the new value.
  // Called before a checkpoint restart: only a copy carrying the new epoch
  // may claim the process's location from now on (older ones get kStale).
  util::Result<std::int64_t> bump_incarnation(Pid pid);
  // Destroys a local PCB that the home has superseded with a restarted
  // incarnation (detected after a partition heals). Local resources are
  // released; the home is NOT notified — its record already moved on.
  void reap_stale_incarnation(Pid pid);
  // Retires a home record with the crash exit status (checkpoint recovery
  // gave up on a restart: the process is as dead as if never checkpointed).
  void home_crash_exit(Pid pid);

  // Continues a process after externally-managed state changes (used by the
  // migration module after exec-time image construction).
  void resume(const PcbPtr& pcb);

  // ---- Crash support ----
  // This host crashed: every PCB and home record dies with it. No RPCs are
  // issued (the host is off the network); pending sleep timers are cancelled
  // so they cannot fire into the rebooted kernel. Exit observers registered
  // on home records are dropped, not fired — their closures belonged to the
  // dead kernel.
  void crash_reset();
  // A peer crashed. Foreign processes whose home machine died are reaped
  // silently (nobody is left that knows their pid); home records of
  // processes that were executing on the dead host are marked exited with
  // kHostCrashExitStatus, which unblocks waiters and fires exit observers.
  void peer_crashed(sim::HostId peer);
  // Peers whose death this host must detect (host-monitor interest): the
  // home machines of foreign processes running here, and the hosts where
  // processes homed here currently execute.
  void collect_peer_interest(std::vector<sim::HostId>& out) const;

  // Delivers a signal to a process resident on this host (re-routed via the
  // home machine if it moved). Public so the migration module can kill
  // processes whose copy-on-reference page source crashed.
  void deliver_signal(Pid pid, int sig);

  // ---- Remote-UNIX comparator (thesis §4.3.1 design alternative) ----
  // Moves the process's descriptor table into its home record so that file
  // kernel calls issued remotely are forwarded here instead of running
  // against transferred state. Must be called on the home host.
  void park_streams_at_home(const PcbPtr& pcb);
  // Inverse, when the process returns home: direct access resumes.
  void restore_parked_streams(const PcbPtr& pcb);

 private:
  struct HomeRecord {
    Pid pid = kInvalidPid;
    Pid parent = kInvalidPid;
    sim::HostId current = sim::kInvalidHost;
    bool alive = true;
    int exit_status = 0;
    // Incarnation epoch (see Pcb::incarnation); the home's copy is the
    // authority, bumped by checkpoint restarts.
    std::int64_t incarnation = 0;
    std::vector<Pid> children;                   // live children
    std::deque<std::pair<Pid, int>> zombies;     // exited, unreaped
    bool waiter_registered = false;
    sim::HostId waiter_host = sim::kInvalidHost;
    std::vector<std::function<void(int)>> observers;
    // Remote-UNIX comparator: streams kept at home while the process runs
    // remotely with file-call forwarding.
    std::map<int, fs::StreamPtr> resident_streams;
    int stub_next_fd = 3;
  };

  // ---- Dispatch loop ----
  void continue_process(const PcbPtr& pcb);
  void dispatch(const PcbPtr& pcb, Action action);
  // Charges local kernel-call overhead then runs `fn`.
  void syscall_enter(const PcbPtr& pcb, std::function<void()> fn);
  // Marks the action result applied and schedules the next dispatch.
  void finish_action(const PcbPtr& pcb);
  bool owns(const PcbPtr& pcb) const;

  // ---- Individual kernel calls ----
  void do_open(const PcbPtr& pcb, const SysOpen& a);
  void do_close(const PcbPtr& pcb, const SysClose& a);
  void do_read(const PcbPtr& pcb, const SysRead& a);
  void do_write(const PcbPtr& pcb, const SysWrite& a);
  void do_seek(const PcbPtr& pcb, const SysSeek& a);
  void do_fsync(const PcbPtr& pcb, const SysFsync& a);
  void do_dup(const PcbPtr& pcb, const SysDup& a);
  void do_ftruncate(const PcbPtr& pcb, const SysFtruncate& a);
  void do_unlink(const PcbPtr& pcb, const SysUnlink& a);
  void do_mkdir(const PcbPtr& pcb, const SysMkdir& a);
  void do_stat(const PcbPtr& pcb, const SysStat& a);
  void do_pdev_call(const PcbPtr& pcb, const SysPdevCall& a);
  void do_fork(const PcbPtr& pcb);
  void do_pipe(const PcbPtr& pcb);
  void do_exec(const PcbPtr& pcb, const SysExec& a);
  void do_exit(const PcbPtr& pcb, int status);
  void do_wait(const PcbPtr& pcb);
  void do_kill(const PcbPtr& pcb, const SysKill& a);
  void do_get_host_name(const PcbPtr& pcb);
  void do_migrate_self(const PcbPtr& pcb, const SysMigrateSelf& a);

  // ---- Home-record operations (this host as home machine) ----
  void handle_proc_rpc(sim::HostId src, const rpc::Request& req,
                       std::function<void(rpc::Reply)> respond);
  // Forwarded-file-call plumbing (Remote-UNIX comparator).
  void forward_file_call(const PcbPtr& pcb, std::shared_ptr<FileCallReq> req);
  void home_file_call(const FileCallReq& req,
                      std::function<void(rpc::Reply)> respond);
  Pid home_fork_child(Pid parent, sim::HostId child_host);
  void home_exit(Pid pid, int status);
  WaitRep home_wait(Pid parent, sim::HostId waiter_host);
  util::Status home_signal(Pid pid, int sig);
  // Delivery on the current host.
  void deliver_wait_notify(Pid parent, Pid child, int status);
  // Destroys a foreign PCB whose home machine crashed: no exit notification
  // is sent (the home is gone), but local resources are released.
  void reap_on_peer_crash(const PcbPtr& pcb);

  kern::Host& host_;
  sim::HostId self_;
  std::map<Pid, PcbPtr> procs_;
  std::map<Pid, HomeRecord> home_records_;
  std::uint32_t next_seq_ = 1;
  MigratorIface* migrator_ = nullptr;
  RestarterIface* restarter_ = nullptr;

  // Registry-backed metrics (trace/trace.h) and the legacy struct view.
  trace::Counter* c_spawns_;
  trace::Counter* c_forks_;
  trace::Counter* c_execs_;
  trace::Counter* c_exits_;
  trace::Counter* c_syscalls_;
  trace::Counter* c_forwarded_;
  // Foreign processes killed because their home machine crashed — distinct
  // from owner-return evictions (mig.eviction.completed), which move the
  // process home alive.
  trace::Counter* c_peer_kills_;
  // CPU time this host delivered to foreign (migrated-in) processes — the
  // numerator of the paper's "utilization recovered by migration". Credited
  // where the cycles were actually burned, including the served fraction of
  // a burst preempted by a further migration.
  trace::Counter* c_foreign_cpu_us_;
  mutable Stats stats_view_;
};

}  // namespace sprite::proc
