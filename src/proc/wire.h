// RPC wire messages for the kProc service: home-machine process-family
// operations and home-call forwarding for remote processes.
#pragma once

#include <cstdint>
#include <string>

#include "proc/program.h"
#include "rpc/rpc.h"

namespace sprite::proc {

enum class ProcOp : int {
  kForkChild = 1,    // home allocates a pid and records the child
  kExitNotify,       // remote process exited: retire home record
  kWait,             // parent waits; home replies found/none + registers
  kWaitNotify,       // home -> parent's current host: a child exited
  kSignal,           // any host -> home: route a signal by pid
  kSignalDeliver,    // home -> current host: deliver the signal
  kUpdateLocation,   // migration moved a process; home updates its record
  kGetHostName,      // forwarded gethostname: answered by home
  kMigrateRequest,   // forwarded migrate-self: home initiates the migration
  kFileCall,         // Remote-UNIX comparator: execute a file call at home
};

// Which file call is being forwarded home (Remote-UNIX comparator).
enum class FileCallOp : int {
  kOpen = 1,
  kClose,
  kRead,
  kWrite,
  kSeek,
  kFsync,
};

struct FileCallReq : rpc::Message {
  Pid pid = kInvalidPid;
  FileCallOp op = FileCallOp::kRead;
  int fd = -1;
  std::string path;           // open
  fs::OpenFlags flags;        // open
  std::int64_t len = 0;       // read / zero-fill write
  std::int64_t offset = 0;    // seek
  fs::Bytes data;             // write payload
  std::int64_t wire_bytes() const override {
    return 48 + static_cast<std::int64_t>(path.size()) +
           static_cast<std::int64_t>(data.size());
  }
};

struct FileCallRep : rpc::Message {
  std::int64_t rv = 0;
  fs::Bytes data;  // read results cross the wire back
  std::int64_t wire_bytes() const override {
    return 16 + static_cast<std::int64_t>(data.size());
  }
};

struct ForkChildReq : rpc::Message {
  Pid parent = kInvalidPid;
  sim::HostId child_host = sim::kInvalidHost;  // where the child will run
  std::int64_t wire_bytes() const override { return 24; }
};

struct ForkChildRep : rpc::Message {
  Pid child = kInvalidPid;
  std::int64_t wire_bytes() const override { return 16; }
};

struct ExitNotifyReq : rpc::Message {
  Pid pid = kInvalidPid;
  int status = 0;
  std::int64_t wire_bytes() const override { return 24; }
};

struct WaitReq : rpc::Message {
  Pid parent = kInvalidPid;
  sim::HostId waiter_host = sim::kInvalidHost;
  std::int64_t wire_bytes() const override { return 24; }
};

struct WaitRep : rpc::Message {
  bool found = false;       // a zombie child was reaped
  bool no_children = false; // ECHILD: nothing to wait for, ever
  Pid child = kInvalidPid;
  int status = 0;
  std::int64_t wire_bytes() const override { return 24; }
};

struct WaitNotifyReq : rpc::Message {
  Pid parent = kInvalidPid;
  Pid child = kInvalidPid;
  int status = 0;
  std::int64_t wire_bytes() const override { return 32; }
};

struct SignalReq : rpc::Message {
  Pid pid = kInvalidPid;
  int sig = 9;
  std::int64_t wire_bytes() const override { return 24; }
};

struct UpdateLocationReq : rpc::Message {
  Pid pid = kInvalidPid;
  sim::HostId host = sim::kInvalidHost;
  // Incarnation epoch of the copy claiming the new location. The home
  // rejects (kStale) updates older than its record's epoch, so a stale copy
  // racing a checkpoint restart kills itself instead of installing.
  std::int64_t incarnation = 0;
  std::int64_t wire_bytes() const override { return 32; }
};

struct HostNameRep : rpc::Message {
  std::string name;
  std::int64_t wire_bytes() const override {
    return 8 + static_cast<std::int64_t>(name.size());
  }
};

struct MigrateRequestReq : rpc::Message {
  Pid pid = kInvalidPid;
  sim::HostId target = sim::kInvalidHost;
  std::int64_t wire_bytes() const override { return 24; }
};

}  // namespace sprite::proc
