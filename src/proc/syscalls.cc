#include "proc/syscalls.h"

#include "util/assert.h"

namespace sprite::proc {

Handling handling_of(Syscall call) {
  switch (call) {
    // File operations act on streams that migrated with the process; the
    // I/O server sees the new host directly. No home involvement.
    case Syscall::kOpen:
    case Syscall::kClose:
    case Syscall::kRead:
    case Syscall::kWrite:
    case Syscall::kSeek:
    case Syscall::kFsync:
    case Syscall::kDup:
    case Syscall::kFtruncate:
    case Syscall::kUnlink:
    case Syscall::kMkdir:
    case Syscall::kStat:
    case Syscall::kPdevCall:
    case Syscall::kPipe:
      return Handling::kTransferredState;

    // Identity is carried in the PCB (pids encode the home machine).
    case Syscall::kGetPid:
    case Syscall::kGetPPid:
      return Handling::kTransferredState;

    // Sprite keeps cluster clocks synchronized; time is answered locally
    // (contrast with Plan 9 / MOSIX, which forward gettimeofday home).
    case Syscall::kGetTime:
      return Handling::kLocal;

    // The process must appear to run on its home machine, so host identity
    // is answered by the home kernel.
    case Syscall::kGetHostName:
      return Handling::kForwardHome;

    // Process-family state lives at home.
    case Syscall::kWait:
    case Syscall::kKill:
      return Handling::kForwardHome;

    // Executed here but the home machine participates: fork allocates the
    // child's pid at home; exit retires the home record.
    case Syscall::kFork:
    case Syscall::kExit:
      return Handling::kHomeInvolved;

    // Exec runs locally unless a migration is pending, in which case the
    // new image is built on the target (exec-time migration).
    case Syscall::kExec:
      return Handling::kTransferredState;

    // "Migrate me" affects the process relative to its home machine; the
    // thesis forwards it home.
    case Syscall::kMigrateSelf:
      return Handling::kForwardHome;
  }
  SPRITE_UNREACHABLE("unknown syscall");
}

const std::vector<Syscall>& all_syscalls() {
  static const std::vector<Syscall> all = {
      Syscall::kOpen,    Syscall::kClose,       Syscall::kRead,
      Syscall::kWrite,   Syscall::kSeek,        Syscall::kFsync,
      Syscall::kDup,     Syscall::kFtruncate,
      Syscall::kUnlink,  Syscall::kMkdir,       Syscall::kStat,
      Syscall::kPdevCall, Syscall::kPipe,       Syscall::kFork,
      Syscall::kExec,
      Syscall::kExit,    Syscall::kWait,        Syscall::kGetPid,
      Syscall::kGetPPid, Syscall::kGetTime,     Syscall::kGetHostName,
      Syscall::kKill,    Syscall::kMigrateSelf,
  };
  return all;
}

const char* syscall_name(Syscall call) {
  switch (call) {
    case Syscall::kOpen: return "open";
    case Syscall::kClose: return "close";
    case Syscall::kRead: return "read";
    case Syscall::kWrite: return "write";
    case Syscall::kSeek: return "lseek";
    case Syscall::kFsync: return "fsync";
    case Syscall::kDup: return "dup";
    case Syscall::kFtruncate: return "ftruncate";
    case Syscall::kUnlink: return "unlink";
    case Syscall::kMkdir: return "mkdir";
    case Syscall::kStat: return "stat";
    case Syscall::kPdevCall: return "pdev_call";
    case Syscall::kPipe: return "pipe";
    case Syscall::kFork: return "fork";
    case Syscall::kExec: return "execve";
    case Syscall::kExit: return "exit";
    case Syscall::kWait: return "wait";
    case Syscall::kGetPid: return "getpid";
    case Syscall::kGetPPid: return "getppid";
    case Syscall::kGetTime: return "gettimeofday";
    case Syscall::kGetHostName: return "gethostname";
    case Syscall::kKill: return "kill";
    case Syscall::kMigrateSelf: return "migrate";
  }
  return "?";
}

const std::vector<AppendixAEntry>& appendix_a() {
  using H = Handling;
  static const std::vector<AppendixAEntry> table = {
      // ---- File system: streams migrated with the process; the I/O server
      // sees the process's current host directly.
      {"open", H::kTransferredState, true, "prefix table + server open"},
      {"close", H::kTransferredState, true, "releases migrated stream"},
      {"read", H::kTransferredState, true, "via migrated stream"},
      {"write", H::kTransferredState, true, "via migrated stream"},
      {"lseek", H::kTransferredState, true, "local offset or shadow stream"},
      {"dup", H::kTransferredState, true, "fd table is migrated state"},
      {"dup2", H::kTransferredState, false, "fd table is migrated state"},
      {"pipe", H::kTransferredState, true,
       "server-resident buffer; both ends are migratable streams"},
      {"fcntl", H::kTransferredState, false, "acts on migrated stream"},
      {"ioctl", H::kTransferredState, false, "forwarded to I/O server"},
      {"select", H::kTransferredState, false, "waits on migrated streams"},
      {"fsync", H::kTransferredState, true, "flushes the client cache"},
      {"ftruncate", H::kTransferredState, true, "I/O-server operation"},
      {"stat", H::kTransferredState, true, "name server answers anyone"},
      {"lstat", H::kTransferredState, false, "as stat"},
      {"fstat", H::kTransferredState, false, "via migrated stream"},
      {"access", H::kTransferredState, false, "name server + migrated ids"},
      {"unlink", H::kTransferredState, true, "name server operation"},
      {"mkdir", H::kTransferredState, true, "name server operation"},
      {"rmdir", H::kTransferredState, false, "name server operation"},
      {"rename", H::kTransferredState, false, "name server operation"},
      {"link", H::kTransferredState, false, "name server operation"},
      {"symlink", H::kTransferredState, false, "name server operation"},
      {"readlink", H::kTransferredState, false, "name server operation"},
      {"chmod", H::kTransferredState, false, "ids migrated with process"},
      {"chown", H::kTransferredState, false, "ids migrated with process"},
      {"utimes", H::kTransferredState, false, "name server operation"},
      {"mknod", H::kTransferredState, false, "name server operation"},
      {"mount", H::kLocal, false, "privileged; affects current host"},
      {"umount", H::kLocal, false, "privileged; affects current host"},
      {"chdir", H::kTransferredState, false, "cwd is migrated state"},
      {"chroot", H::kTransferredState, false, "root is migrated state"},
      {"umask", H::kTransferredState, false, "pcb field"},
      {"flock", H::kTransferredState, false, "kept at the I/O server"},

      // ---- Process management: the family lives at home.
      {"fork", H::kHomeInvolved, true, "pid allocated at home"},
      {"vfork", H::kHomeInvolved, false, "as fork"},
      {"execve", H::kTransferredState, true,
       "local, unless migration pending (exec-time migration)"},
      {"exit", H::kHomeInvolved, true, "home record retired"},
      {"wait", H::kForwardHome, true, "family state lives at home"},
      {"getpid", H::kTransferredState, true, "pcb field (home-encoded)"},
      {"getppid", H::kTransferredState, true, "pcb field"},
      {"kill", H::kForwardHome, true, "routed by the pid's home"},
      {"killpg", H::kForwardHome, false, "process groups live at home"},
      {"getpgrp", H::kForwardHome, false, "process groups live at home"},
      {"setpgrp", H::kForwardHome, false, "process groups live at home"},
      {"setpriority", H::kForwardHome, false,
       "priority relative to the home machine"},
      {"getpriority", H::kForwardHome, false, "as setpriority"},
      {"ptrace", H::kForwardHome, false, "debugger attaches via home"},
      {"sigvec", H::kTransferredState, false, "signal table is pcb state"},
      {"sigblock", H::kTransferredState, false, "pcb state"},
      {"sigsetmask", H::kTransferredState, false, "pcb state"},
      {"sigpause", H::kTransferredState, false, "pcb state"},
      {"sigstack", H::kTransferredState, false, "pcb state"},

      // ---- Identity and accounting.
      {"getuid", H::kTransferredState, false, "credentials migrate"},
      {"geteuid", H::kTransferredState, false, "credentials migrate"},
      {"getgid", H::kTransferredState, false, "credentials migrate"},
      {"getgroups", H::kTransferredState, false, "credentials migrate"},
      {"setreuid", H::kHomeInvolved, false, "home validates + records"},
      {"setregid", H::kHomeInvolved, false, "home validates + records"},
      {"getrusage", H::kForwardHome, false,
       "usage is accumulated against the home machine"},
      {"getrlimit", H::kTransferredState, false, "pcb state"},
      {"setrlimit", H::kTransferredState, false, "pcb state"},

      // ---- Time and host identity.
      {"gettimeofday", H::kLocal, true, "Sprite synchronizes clocks"},
      {"settimeofday", H::kLocal, false, "privileged, current host"},
      {"getitimer", H::kTransferredState, false, "timers migrate"},
      {"setitimer", H::kTransferredState, false, "timers migrate"},
      {"gethostname", H::kForwardHome, true,
       "the process appears to run at home"},
      {"sethostname", H::kForwardHome, false, "as gethostname"},
      {"gethostid", H::kForwardHome, false, "as gethostname"},

      // ---- Memory.
      {"sbrk", H::kTransferredState, false, "grows the migrated heap"},
      {"mmap", H::kTransferredState, false,
       "backed by the shared FS; migrates like other segments"},
      {"munmap", H::kTransferredState, false, "as mmap"},
      {"mprotect", H::kTransferredState, false, "page tables migrate"},

      // ---- IPC: pseudo-devices / sockets via the FS (location hidden by
      // the kernel; [Che87] routes Internet sockets through a server).
      {"socket", H::kTransferredState, false, "pseudo-device to IP server"},
      {"bind", H::kTransferredState, false, "via the IP server"},
      {"connect", H::kTransferredState, false, "via the IP server"},
      {"accept", H::kTransferredState, false, "via the IP server"},
      {"send", H::kTransferredState, false, "via the IP server"},
      {"recv", H::kTransferredState, false, "via the IP server"},

      // ---- Sprite-specific.
      {"migrate", H::kForwardHome, true,
       "affects the process relative to its home machine"},
      {"pdev_call", H::kTransferredState, true,
       "pseudo-device request; kernel hides both endpoints' locations"},
  };
  return table;
}

const char* handling_name(Handling h) {
  switch (h) {
    case Handling::kLocal: return "local";
    case Handling::kTransferredState: return "transferred-state";
    case Handling::kForwardHome: return "forward-home";
    case Handling::kHomeInvolved: return "home-involved";
  }
  return "?";
}

}  // namespace sprite::proc
